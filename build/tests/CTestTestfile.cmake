# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_ecc[1]_include.cmake")
include("/root/repo/build/tests/test_margin[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
