file(REMOVE_RECURSE
  "CMakeFiles/test_margin.dir/test_margin.cc.o"
  "CMakeFiles/test_margin.dir/test_margin.cc.o.d"
  "test_margin"
  "test_margin.pdb"
  "test_margin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
