# Empty compiler generated dependencies file for test_margin.
# This may be replaced when dependencies are built.
