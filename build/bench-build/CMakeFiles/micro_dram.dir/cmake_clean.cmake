file(REMOVE_RECURSE
  "../bench/micro_dram"
  "../bench/micro_dram.pdb"
  "CMakeFiles/micro_dram.dir/micro_dram.cc.o"
  "CMakeFiles/micro_dram.dir/micro_dram.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
