file(REMOVE_RECURSE
  "../bench/micro_eventqueue"
  "../bench/micro_eventqueue.pdb"
  "CMakeFiles/micro_eventqueue.dir/micro_eventqueue.cc.o"
  "CMakeFiles/micro_eventqueue.dir/micro_eventqueue.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_eventqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
