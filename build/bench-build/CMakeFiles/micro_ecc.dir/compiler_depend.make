# Empty compiler generated dependencies file for micro_ecc.
# This may be replaced when dependencies are built.
