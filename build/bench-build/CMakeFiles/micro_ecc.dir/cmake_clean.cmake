file(REMOVE_RECURSE
  "../bench/micro_ecc"
  "../bench/micro_ecc.pdb"
  "CMakeFiles/micro_ecc.dir/micro_ecc.cc.o"
  "CMakeFiles/micro_ecc.dir/micro_ecc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
