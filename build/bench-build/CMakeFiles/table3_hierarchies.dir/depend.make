# Empty dependencies file for table3_hierarchies.
# This may be replaced when dependencies are built.
