file(REMOVE_RECURSE
  "../bench/table3_hierarchies"
  "../bench/table3_hierarchies.pdb"
  "CMakeFiles/table3_hierarchies.dir/table3_hierarchies.cc.o"
  "CMakeFiles/table3_hierarchies.dir/table3_hierarchies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hierarchies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
