file(REMOVE_RECURSE
  "../bench/fig03_brand_chips_per_rank"
  "../bench/fig03_brand_chips_per_rank.pdb"
  "CMakeFiles/fig03_brand_chips_per_rank.dir/fig03_brand_chips_per_rank.cc.o"
  "CMakeFiles/fig03_brand_chips_per_rank.dir/fig03_brand_chips_per_rank.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_brand_chips_per_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
