# Empty dependencies file for fig03_brand_chips_per_rank.
# This may be replaced when dependencies are built.
