# Empty dependencies file for fig17_system_wide.
# This may be replaced when dependencies are built.
