file(REMOVE_RECURSE
  "../bench/fig17_system_wide"
  "../bench/fig17_system_wide.pdb"
  "CMakeFiles/fig17_system_wide.dir/fig17_system_wide.cc.o"
  "CMakeFiles/fig17_system_wide.dir/fig17_system_wide.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_system_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
