file(REMOVE_RECURSE
  "../bench/fig15_bandwidth_utilization"
  "../bench/fig15_bandwidth_utilization.pdb"
  "CMakeFiles/fig15_bandwidth_utilization.dir/fig15_bandwidth_utilization.cc.o"
  "CMakeFiles/fig15_bandwidth_utilization.dir/fig15_bandwidth_utilization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_bandwidth_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
