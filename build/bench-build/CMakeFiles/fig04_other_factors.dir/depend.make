# Empty dependencies file for fig04_other_factors.
# This may be replaced when dependencies are built.
