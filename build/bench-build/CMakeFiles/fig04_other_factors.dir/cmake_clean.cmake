file(REMOVE_RECURSE
  "../bench/fig04_other_factors"
  "../bench/fig04_other_factors.pdb"
  "CMakeFiles/fig04_other_factors.dir/fig04_other_factors.cc.o"
  "CMakeFiles/fig04_other_factors.dir/fig04_other_factors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_other_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
