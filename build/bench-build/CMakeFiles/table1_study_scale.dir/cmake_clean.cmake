file(REMOVE_RECURSE
  "../bench/table1_study_scale"
  "../bench/table1_study_scale.pdb"
  "CMakeFiles/table1_study_scale.dir/table1_study_scale.cc.o"
  "CMakeFiles/table1_study_scale.dir/table1_study_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_study_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
