# Empty compiler generated dependencies file for table1_study_scale.
# This may be replaced when dependencies are built.
