file(REMOVE_RECURSE
  "../bench/fig05_margin_speedup"
  "../bench/fig05_margin_speedup.pdb"
  "CMakeFiles/fig05_margin_speedup.dir/fig05_margin_speedup.cc.o"
  "CMakeFiles/fig05_margin_speedup.dir/fig05_margin_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_margin_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
