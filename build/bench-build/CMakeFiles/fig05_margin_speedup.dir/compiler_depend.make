# Empty compiler generated dependencies file for fig05_margin_speedup.
# This may be replaced when dependencies are built.
