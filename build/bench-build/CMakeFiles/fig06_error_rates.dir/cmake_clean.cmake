file(REMOVE_RECURSE
  "../bench/fig06_error_rates"
  "../bench/fig06_error_rates.pdb"
  "CMakeFiles/fig06_error_rates.dir/fig06_error_rates.cc.o"
  "CMakeFiles/fig06_error_rates.dir/fig06_error_rates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_error_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
