# Empty dependencies file for fig06_error_rates.
# This may be replaced when dependencies are built.
