file(REMOVE_RECURSE
  "../bench/table2_memory_settings"
  "../bench/table2_memory_settings.pdb"
  "CMakeFiles/table2_memory_settings.dir/table2_memory_settings.cc.o"
  "CMakeFiles/table2_memory_settings.dir/table2_memory_settings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_memory_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
