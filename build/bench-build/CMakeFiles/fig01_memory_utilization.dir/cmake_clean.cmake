file(REMOVE_RECURSE
  "../bench/fig01_memory_utilization"
  "../bench/fig01_memory_utilization.pdb"
  "CMakeFiles/fig01_memory_utilization.dir/fig01_memory_utilization.cc.o"
  "CMakeFiles/fig01_memory_utilization.dir/fig01_memory_utilization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_memory_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
