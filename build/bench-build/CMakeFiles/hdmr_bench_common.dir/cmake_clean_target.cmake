file(REMOVE_RECURSE
  "../lib/libhdmr_bench_common.a"
)
