# Empty compiler generated dependencies file for hdmr_bench_common.
# This may be replaced when dependencies are built.
