file(REMOVE_RECURSE
  "../lib/libhdmr_bench_common.a"
  "../lib/libhdmr_bench_common.pdb"
  "CMakeFiles/hdmr_bench_common.dir/eval_common.cc.o"
  "CMakeFiles/hdmr_bench_common.dir/eval_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
