# Empty dependencies file for ablation_heterodmr.
# This may be replaced when dependencies are built.
