file(REMOVE_RECURSE
  "../bench/ablation_heterodmr"
  "../bench/ablation_heterodmr.pdb"
  "CMakeFiles/ablation_heterodmr.dir/ablation_heterodmr.cc.o"
  "CMakeFiles/ablation_heterodmr.dir/ablation_heterodmr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heterodmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
