file(REMOVE_RECURSE
  "../bench/fig02_margin_distribution"
  "../bench/fig02_margin_distribution.pdb"
  "CMakeFiles/fig02_margin_distribution.dir/fig02_margin_distribution.cc.o"
  "CMakeFiles/fig02_margin_distribution.dir/fig02_margin_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_margin_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
