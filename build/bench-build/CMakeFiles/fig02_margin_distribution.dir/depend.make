# Empty dependencies file for fig02_margin_distribution.
# This may be replaced when dependencies are built.
