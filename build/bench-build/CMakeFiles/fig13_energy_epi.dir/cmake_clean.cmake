file(REMOVE_RECURSE
  "../bench/fig13_energy_epi"
  "../bench/fig13_energy_epi.pdb"
  "CMakeFiles/fig13_energy_epi.dir/fig13_energy_epi.cc.o"
  "CMakeFiles/fig13_energy_epi.dir/fig13_energy_epi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_energy_epi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
