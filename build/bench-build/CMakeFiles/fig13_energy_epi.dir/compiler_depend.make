# Empty compiler generated dependencies file for fig13_energy_epi.
# This may be replaced when dependencies are built.
