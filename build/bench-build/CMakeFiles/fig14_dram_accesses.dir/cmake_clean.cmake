file(REMOVE_RECURSE
  "../bench/fig14_dram_accesses"
  "../bench/fig14_dram_accesses.pdb"
  "CMakeFiles/fig14_dram_accesses.dir/fig14_dram_accesses.cc.o"
  "CMakeFiles/fig14_dram_accesses.dir/fig14_dram_accesses.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dram_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
