# Empty compiler generated dependencies file for fig14_dram_accesses.
# This may be replaced when dependencies are built.
