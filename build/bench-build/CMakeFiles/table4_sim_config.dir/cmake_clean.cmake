file(REMOVE_RECURSE
  "../bench/table4_sim_config"
  "../bench/table4_sim_config.pdb"
  "CMakeFiles/table4_sim_config.dir/table4_sim_config.cc.o"
  "CMakeFiles/table4_sim_config.dir/table4_sim_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sim_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
