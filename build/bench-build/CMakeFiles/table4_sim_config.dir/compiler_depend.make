# Empty compiler generated dependencies file for table4_sim_config.
# This may be replaced when dependencies are built.
