# Empty compiler generated dependencies file for fig16_silicon_corroboration.
# This may be replaced when dependencies are built.
