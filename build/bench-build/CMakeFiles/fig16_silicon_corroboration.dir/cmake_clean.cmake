file(REMOVE_RECURSE
  "../bench/fig16_silicon_corroboration"
  "../bench/fig16_silicon_corroboration.pdb"
  "CMakeFiles/fig16_silicon_corroboration.dir/fig16_silicon_corroboration.cc.o"
  "CMakeFiles/fig16_silicon_corroboration.dir/fig16_silicon_corroboration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_silicon_corroboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
