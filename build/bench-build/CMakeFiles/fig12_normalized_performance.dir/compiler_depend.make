# Empty compiler generated dependencies file for fig12_normalized_performance.
# This may be replaced when dependencies are built.
