file(REMOVE_RECURSE
  "../bench/fig12_normalized_performance"
  "../bench/fig12_normalized_performance.pdb"
  "CMakeFiles/fig12_normalized_performance.dir/fig12_normalized_performance.cc.o"
  "CMakeFiles/fig12_normalized_performance.dir/fig12_normalized_performance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_normalized_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
