file(REMOVE_RECURSE
  "../bench/fig11_margin_variability"
  "../bench/fig11_margin_variability.pdb"
  "CMakeFiles/fig11_margin_variability.dir/fig11_margin_variability.cc.o"
  "CMakeFiles/fig11_margin_variability.dir/fig11_margin_variability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_margin_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
