# Empty dependencies file for fig11_margin_variability.
# This may be replaced when dependencies are built.
