# Empty dependencies file for hdmr_workloads.
# This may be replaced when dependencies are built.
