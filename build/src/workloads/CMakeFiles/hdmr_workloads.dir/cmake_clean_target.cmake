file(REMOVE_RECURSE
  "libhdmr_workloads.a"
)
