file(REMOVE_RECURSE
  "CMakeFiles/hdmr_workloads.dir/hpc_workloads.cc.o"
  "CMakeFiles/hdmr_workloads.dir/hpc_workloads.cc.o.d"
  "libhdmr_workloads.a"
  "libhdmr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
