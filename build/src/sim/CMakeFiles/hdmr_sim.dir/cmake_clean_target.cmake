file(REMOVE_RECURSE
  "libhdmr_sim.a"
)
