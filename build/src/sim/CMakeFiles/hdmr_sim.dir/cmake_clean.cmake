file(REMOVE_RECURSE
  "CMakeFiles/hdmr_sim.dir/event_queue.cc.o"
  "CMakeFiles/hdmr_sim.dir/event_queue.cc.o.d"
  "libhdmr_sim.a"
  "libhdmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
