# Empty compiler generated dependencies file for hdmr_sim.
# This may be replaced when dependencies are built.
