# Empty compiler generated dependencies file for hdmr_sched.
# This may be replaced when dependencies are built.
