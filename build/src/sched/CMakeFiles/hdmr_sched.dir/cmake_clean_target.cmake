file(REMOVE_RECURSE
  "libhdmr_sched.a"
)
