file(REMOVE_RECURSE
  "CMakeFiles/hdmr_sched.dir/cluster_sim.cc.o"
  "CMakeFiles/hdmr_sched.dir/cluster_sim.cc.o.d"
  "libhdmr_sched.a"
  "libhdmr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
