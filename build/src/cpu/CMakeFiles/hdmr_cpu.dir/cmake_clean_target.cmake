file(REMOVE_RECURSE
  "libhdmr_cpu.a"
)
