file(REMOVE_RECURSE
  "CMakeFiles/hdmr_cpu.dir/core.cc.o"
  "CMakeFiles/hdmr_cpu.dir/core.cc.o.d"
  "libhdmr_cpu.a"
  "libhdmr_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
