# Empty compiler generated dependencies file for hdmr_cpu.
# This may be replaced when dependencies are built.
