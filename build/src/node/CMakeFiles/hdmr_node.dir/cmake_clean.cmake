file(REMOVE_RECURSE
  "CMakeFiles/hdmr_node.dir/config.cc.o"
  "CMakeFiles/hdmr_node.dir/config.cc.o.d"
  "CMakeFiles/hdmr_node.dir/energy.cc.o"
  "CMakeFiles/hdmr_node.dir/energy.cc.o.d"
  "CMakeFiles/hdmr_node.dir/node_system.cc.o"
  "CMakeFiles/hdmr_node.dir/node_system.cc.o.d"
  "CMakeFiles/hdmr_node.dir/runner.cc.o"
  "CMakeFiles/hdmr_node.dir/runner.cc.o.d"
  "libhdmr_node.a"
  "libhdmr_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
