file(REMOVE_RECURSE
  "libhdmr_node.a"
)
