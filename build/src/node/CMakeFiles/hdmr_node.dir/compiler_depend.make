# Empty compiler generated dependencies file for hdmr_node.
# This may be replaced when dependencies are built.
