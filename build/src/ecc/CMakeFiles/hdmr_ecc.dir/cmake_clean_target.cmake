file(REMOVE_RECURSE
  "libhdmr_ecc.a"
)
