# Empty dependencies file for hdmr_ecc.
# This may be replaced when dependencies are built.
