file(REMOVE_RECURSE
  "CMakeFiles/hdmr_ecc.dir/bamboo.cc.o"
  "CMakeFiles/hdmr_ecc.dir/bamboo.cc.o.d"
  "CMakeFiles/hdmr_ecc.dir/error_inject.cc.o"
  "CMakeFiles/hdmr_ecc.dir/error_inject.cc.o.d"
  "CMakeFiles/hdmr_ecc.dir/gf256.cc.o"
  "CMakeFiles/hdmr_ecc.dir/gf256.cc.o.d"
  "CMakeFiles/hdmr_ecc.dir/reed_solomon.cc.o"
  "CMakeFiles/hdmr_ecc.dir/reed_solomon.cc.o.d"
  "libhdmr_ecc.a"
  "libhdmr_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
