
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/bamboo.cc" "src/ecc/CMakeFiles/hdmr_ecc.dir/bamboo.cc.o" "gcc" "src/ecc/CMakeFiles/hdmr_ecc.dir/bamboo.cc.o.d"
  "/root/repo/src/ecc/error_inject.cc" "src/ecc/CMakeFiles/hdmr_ecc.dir/error_inject.cc.o" "gcc" "src/ecc/CMakeFiles/hdmr_ecc.dir/error_inject.cc.o.d"
  "/root/repo/src/ecc/gf256.cc" "src/ecc/CMakeFiles/hdmr_ecc.dir/gf256.cc.o" "gcc" "src/ecc/CMakeFiles/hdmr_ecc.dir/gf256.cc.o.d"
  "/root/repo/src/ecc/reed_solomon.cc" "src/ecc/CMakeFiles/hdmr_ecc.dir/reed_solomon.cc.o" "gcc" "src/ecc/CMakeFiles/hdmr_ecc.dir/reed_solomon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hdmr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
