# Empty compiler generated dependencies file for hdmr_dram.
# This may be replaced when dependencies are built.
