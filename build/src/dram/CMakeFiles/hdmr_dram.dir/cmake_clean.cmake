file(REMOVE_RECURSE
  "CMakeFiles/hdmr_dram.dir/address_map.cc.o"
  "CMakeFiles/hdmr_dram.dir/address_map.cc.o.d"
  "CMakeFiles/hdmr_dram.dir/controller.cc.o"
  "CMakeFiles/hdmr_dram.dir/controller.cc.o.d"
  "CMakeFiles/hdmr_dram.dir/timing.cc.o"
  "CMakeFiles/hdmr_dram.dir/timing.cc.o.d"
  "libhdmr_dram.a"
  "libhdmr_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
