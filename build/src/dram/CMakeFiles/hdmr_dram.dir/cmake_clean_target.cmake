file(REMOVE_RECURSE
  "libhdmr_dram.a"
)
