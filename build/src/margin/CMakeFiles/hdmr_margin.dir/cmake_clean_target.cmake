file(REMOVE_RECURSE
  "libhdmr_margin.a"
)
