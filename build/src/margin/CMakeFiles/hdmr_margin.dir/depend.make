# Empty dependencies file for hdmr_margin.
# This may be replaced when dependencies are built.
