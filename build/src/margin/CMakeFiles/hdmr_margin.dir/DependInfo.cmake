
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/margin/error_model.cc" "src/margin/CMakeFiles/hdmr_margin.dir/error_model.cc.o" "gcc" "src/margin/CMakeFiles/hdmr_margin.dir/error_model.cc.o.d"
  "/root/repo/src/margin/module.cc" "src/margin/CMakeFiles/hdmr_margin.dir/module.cc.o" "gcc" "src/margin/CMakeFiles/hdmr_margin.dir/module.cc.o.d"
  "/root/repo/src/margin/monte_carlo.cc" "src/margin/CMakeFiles/hdmr_margin.dir/monte_carlo.cc.o" "gcc" "src/margin/CMakeFiles/hdmr_margin.dir/monte_carlo.cc.o.d"
  "/root/repo/src/margin/population.cc" "src/margin/CMakeFiles/hdmr_margin.dir/population.cc.o" "gcc" "src/margin/CMakeFiles/hdmr_margin.dir/population.cc.o.d"
  "/root/repo/src/margin/profiler.cc" "src/margin/CMakeFiles/hdmr_margin.dir/profiler.cc.o" "gcc" "src/margin/CMakeFiles/hdmr_margin.dir/profiler.cc.o.d"
  "/root/repo/src/margin/study.cc" "src/margin/CMakeFiles/hdmr_margin.dir/study.cc.o" "gcc" "src/margin/CMakeFiles/hdmr_margin.dir/study.cc.o.d"
  "/root/repo/src/margin/test_machine.cc" "src/margin/CMakeFiles/hdmr_margin.dir/test_machine.cc.o" "gcc" "src/margin/CMakeFiles/hdmr_margin.dir/test_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hdmr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
