file(REMOVE_RECURSE
  "CMakeFiles/hdmr_margin.dir/error_model.cc.o"
  "CMakeFiles/hdmr_margin.dir/error_model.cc.o.d"
  "CMakeFiles/hdmr_margin.dir/module.cc.o"
  "CMakeFiles/hdmr_margin.dir/module.cc.o.d"
  "CMakeFiles/hdmr_margin.dir/monte_carlo.cc.o"
  "CMakeFiles/hdmr_margin.dir/monte_carlo.cc.o.d"
  "CMakeFiles/hdmr_margin.dir/population.cc.o"
  "CMakeFiles/hdmr_margin.dir/population.cc.o.d"
  "CMakeFiles/hdmr_margin.dir/profiler.cc.o"
  "CMakeFiles/hdmr_margin.dir/profiler.cc.o.d"
  "CMakeFiles/hdmr_margin.dir/study.cc.o"
  "CMakeFiles/hdmr_margin.dir/study.cc.o.d"
  "CMakeFiles/hdmr_margin.dir/test_machine.cc.o"
  "CMakeFiles/hdmr_margin.dir/test_machine.cc.o.d"
  "libhdmr_margin.a"
  "libhdmr_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
