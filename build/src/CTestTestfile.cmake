# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("ecc")
subdirs("margin")
subdirs("dram")
subdirs("cache")
subdirs("workloads")
subdirs("cpu")
subdirs("core")
subdirs("node")
subdirs("traces")
subdirs("sched")
