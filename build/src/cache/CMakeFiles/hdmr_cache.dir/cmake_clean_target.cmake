file(REMOVE_RECURSE
  "libhdmr_cache.a"
)
