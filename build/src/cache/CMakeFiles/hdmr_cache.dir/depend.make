# Empty dependencies file for hdmr_cache.
# This may be replaced when dependencies are built.
