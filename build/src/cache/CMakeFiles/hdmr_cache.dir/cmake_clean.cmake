file(REMOVE_RECURSE
  "CMakeFiles/hdmr_cache.dir/cache.cc.o"
  "CMakeFiles/hdmr_cache.dir/cache.cc.o.d"
  "CMakeFiles/hdmr_cache.dir/prefetcher.cc.o"
  "CMakeFiles/hdmr_cache.dir/prefetcher.cc.o.d"
  "CMakeFiles/hdmr_cache.dir/writeback_cache.cc.o"
  "CMakeFiles/hdmr_cache.dir/writeback_cache.cc.o.d"
  "libhdmr_cache.a"
  "libhdmr_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
