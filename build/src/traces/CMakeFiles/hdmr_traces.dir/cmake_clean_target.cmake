file(REMOVE_RECURSE
  "libhdmr_traces.a"
)
