file(REMOVE_RECURSE
  "CMakeFiles/hdmr_traces.dir/job_trace.cc.o"
  "CMakeFiles/hdmr_traces.dir/job_trace.cc.o.d"
  "CMakeFiles/hdmr_traces.dir/memory_usage.cc.o"
  "CMakeFiles/hdmr_traces.dir/memory_usage.cc.o.d"
  "libhdmr_traces.a"
  "libhdmr_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
