# Empty dependencies file for hdmr_traces.
# This may be replaced when dependencies are built.
