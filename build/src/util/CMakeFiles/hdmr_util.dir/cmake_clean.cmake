file(REMOVE_RECURSE
  "CMakeFiles/hdmr_util.dir/logging.cc.o"
  "CMakeFiles/hdmr_util.dir/logging.cc.o.d"
  "CMakeFiles/hdmr_util.dir/rng.cc.o"
  "CMakeFiles/hdmr_util.dir/rng.cc.o.d"
  "CMakeFiles/hdmr_util.dir/stats.cc.o"
  "CMakeFiles/hdmr_util.dir/stats.cc.o.d"
  "CMakeFiles/hdmr_util.dir/table.cc.o"
  "CMakeFiles/hdmr_util.dir/table.cc.o.d"
  "libhdmr_util.a"
  "libhdmr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
