# Empty dependencies file for hdmr_util.
# This may be replaced when dependencies are built.
