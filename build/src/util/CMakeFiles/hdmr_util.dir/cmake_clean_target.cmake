file(REMOVE_RECURSE
  "libhdmr_util.a"
)
