# Empty compiler generated dependencies file for hdmr_core.
# This may be replaced when dependencies are built.
