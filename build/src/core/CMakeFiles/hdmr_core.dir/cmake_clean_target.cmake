file(REMOVE_RECURSE
  "libhdmr_core.a"
)
