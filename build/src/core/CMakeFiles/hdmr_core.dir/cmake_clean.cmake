file(REMOVE_RECURSE
  "CMakeFiles/hdmr_core.dir/epoch_guard.cc.o"
  "CMakeFiles/hdmr_core.dir/epoch_guard.cc.o.d"
  "CMakeFiles/hdmr_core.dir/mode_controller.cc.o"
  "CMakeFiles/hdmr_core.dir/mode_controller.cc.o.d"
  "CMakeFiles/hdmr_core.dir/replication.cc.o"
  "CMakeFiles/hdmr_core.dir/replication.cc.o.d"
  "libhdmr_core.a"
  "libhdmr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdmr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
