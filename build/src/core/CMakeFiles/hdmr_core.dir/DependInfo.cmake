
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/epoch_guard.cc" "src/core/CMakeFiles/hdmr_core.dir/epoch_guard.cc.o" "gcc" "src/core/CMakeFiles/hdmr_core.dir/epoch_guard.cc.o.d"
  "/root/repo/src/core/mode_controller.cc" "src/core/CMakeFiles/hdmr_core.dir/mode_controller.cc.o" "gcc" "src/core/CMakeFiles/hdmr_core.dir/mode_controller.cc.o.d"
  "/root/repo/src/core/replication.cc" "src/core/CMakeFiles/hdmr_core.dir/replication.cc.o" "gcc" "src/core/CMakeFiles/hdmr_core.dir/replication.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hdmr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hdmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hdmr_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hdmr_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
