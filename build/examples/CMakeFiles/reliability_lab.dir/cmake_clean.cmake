file(REMOVE_RECURSE
  "CMakeFiles/reliability_lab.dir/reliability_lab.cc.o"
  "CMakeFiles/reliability_lab.dir/reliability_lab.cc.o.d"
  "reliability_lab"
  "reliability_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
