# Empty compiler generated dependencies file for reliability_lab.
# This may be replaced when dependencies are built.
