file(REMOVE_RECURSE
  "CMakeFiles/characterize_fleet.dir/characterize_fleet.cc.o"
  "CMakeFiles/characterize_fleet.dir/characterize_fleet.cc.o.d"
  "characterize_fleet"
  "characterize_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
