# Empty dependencies file for characterize_fleet.
# This may be replaced when dependencies are built.
