# Empty compiler generated dependencies file for hpc_campaign.
# This may be replaced when dependencies are built.
