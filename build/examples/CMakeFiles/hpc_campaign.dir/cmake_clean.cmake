file(REMOVE_RECURSE
  "CMakeFiles/hpc_campaign.dir/hpc_campaign.cc.o"
  "CMakeFiles/hpc_campaign.dir/hpc_campaign.cc.o.d"
  "hpc_campaign"
  "hpc_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
