#include "monitor/scheme.hh"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "snapshot/digest.hh"
#include "snapshot/serializer.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace hdmr::monitor
{

const char *
toString(SchemeAction action)
{
    switch (action) {
      case SchemeAction::kStat: return "stat";
      case SchemeAction::kDrainWrites: return "drain";
      case SchemeAction::kPreferReads: return "prefer_reads";
      case SchemeAction::kEpochShorten: return "epoch_shorten";
      case SchemeAction::kEpochLengthen: return "epoch_lengthen";
      case SchemeAction::kPromoteMargin: return "promote";
      case SchemeAction::kDemoteMargin: return "demote";
      case SchemeAction::kHintFast: return "hint_fast";
      case SchemeAction::kHintSpec: return "hint_spec";
    }
    return "?";
}

bool
schemeActionFromName(std::string_view name, SchemeAction *out)
{
    static constexpr SchemeAction kAll[] = {
        SchemeAction::kStat,          SchemeAction::kDrainWrites,
        SchemeAction::kPreferReads,   SchemeAction::kEpochShorten,
        SchemeAction::kEpochLengthen, SchemeAction::kPromoteMargin,
        SchemeAction::kDemoteMargin,  SchemeAction::kHintFast,
        SchemeAction::kHintSpec,
    };
    for (const SchemeAction action : kAll) {
        if (name == toString(action)) {
            *out = action;
            return true;
        }
    }
    return false;
}

bool
isLevelAction(SchemeAction action)
{
    return action == SchemeAction::kPreferReads ||
           action == SchemeAction::kEpochShorten ||
           action == SchemeAction::kEpochLengthen;
}

bool
SchemePredicate::matches(const Region &region,
                         const AggregationInfo &info) const
{
    const std::uint64_t size = region.sizeBytes();
    if (size < minSizeBytes || size > maxSizeBytes)
        return false;
    if (region.nrAccesses < minAccesses ||
        region.nrAccesses > maxAccesses)
        return false;
    if (region.age < minAge || region.age > maxAge)
        return false;
    const double wfrac = region.writeFraction();
    if (wfrac < minWriteFraction || wfrac > maxWriteFraction)
        return false;
    if (info.sampledAccesses < minNodeSamples ||
        info.sampledAccesses > maxNodeSamples)
        return false;
    return true;
}

namespace
{

bool
validSchemeName(const std::string &name)
{
    if (name.empty() || name.size() > kMaxSchemeNameBytes)
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

} // anonymous namespace

util::Status
SchemeConfig::validate() const
{
    if (schemes.size() > kMaxSchemes)
        return util::invalidArgument(
            "SchemeConfig.schemes must hold at most %zu schemes "
            "(got %zu)",
            kMaxSchemes, schemes.size());
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const Scheme &s = schemes[i];
        if (!validSchemeName(s.name))
            return util::invalidArgument(
                "SchemeConfig.schemes[%zu].name must be 1-%zu chars "
                "of [a-z0-9_-]",
                i, kMaxSchemeNameBytes);
        for (std::size_t j = 0; j < i; ++j) {
            if (schemes[j].name == s.name)
                return util::invalidArgument(
                    "SchemeConfig.schemes[%zu].name duplicates "
                    "scheme '%s'",
                    i, s.name.c_str());
        }
        const SchemePredicate &p = s.predicate;
        if (p.minSizeBytes > p.maxSizeBytes)
            return util::invalidArgument(
                "SchemeConfig.schemes[%zu].predicate size bounds "
                "are inverted",
                i);
        if (p.minAccesses > p.maxAccesses)
            return util::invalidArgument(
                "SchemeConfig.schemes[%zu].predicate access bounds "
                "are inverted",
                i);
        if (p.minAge > p.maxAge)
            return util::invalidArgument(
                "SchemeConfig.schemes[%zu].predicate age bounds "
                "are inverted",
                i);
        if (!(p.minWriteFraction >= 0.0 &&
              p.maxWriteFraction <= 1.0 &&
              p.minWriteFraction <= p.maxWriteFraction))
            return util::invalidArgument(
                "SchemeConfig.schemes[%zu].predicate write-fraction "
                "bounds must be an ordered pair inside [0, 1]",
                i);
        if (p.minNodeSamples > p.maxNodeSamples)
            return util::invalidArgument(
                "SchemeConfig.schemes[%zu].predicate node-sample "
                "bounds are inverted",
                i);
    }
    if (!(writeTriggerBoost >= 0.0 && writeTriggerBoost <= 0.5))
        return util::invalidArgument(
            "SchemeConfig.writeTriggerBoost must be in [0, 0.5]");
    if (!(preferReadsCleanFraction >= 0.0 &&
          preferReadsCleanFraction <= 1.0)) {
        return util::invalidArgument(
            "SchemeConfig.preferReadsCleanFraction must be in [0, 1]");
    }
    if (!(drainCleanFraction >= 0.0 && drainCleanFraction <= 1.0))
        return util::invalidArgument(
            "SchemeConfig.drainCleanFraction must be in [0, 1]");
    if (!(epochShortenScale > 0.0 && epochShortenScale <= 1.0))
        return util::invalidArgument(
            "SchemeConfig.epochShortenScale must be in (0, 1]");
    if (!(epochLengthenScale >= 1.0 && epochLengthenScale <= 1.0e6))
        return util::invalidArgument(
            "SchemeConfig.epochLengthenScale must be in [1, 1e6]");
    return util::Status();
}

// ---- Text-format parser. --------------------------------------------

namespace
{

/** One whitespace-separated token walk over a line. */
std::vector<std::string_view>
tokenize(std::string_view line)
{
    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t'))
            ++i;
        std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t')
            ++i;
        if (i > start)
            tokens.push_back(line.substr(start, i - start));
    }
    return tokens;
}

bool
parseU64(std::string_view text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    const auto result = std::from_chars(
        text.data(), text.data() + text.size(), *out);
    return result.ec == std::errc() &&
           result.ptr == text.data() + text.size();
}

bool
parseDouble(std::string_view text, double *out)
{
    if (text.empty() || text.size() > 64)
        return false;
    char buffer[65];
    std::copy(text.begin(), text.end(), buffer);
    buffer[text.size()] = '\0';
    char *end = nullptr;
    *out = std::strtod(buffer, &end);
    return end == buffer + text.size();
}

/** Parse "min:max" with `*` for an unbounded end (u64 domain). */
bool
parseU64Range(std::string_view text, std::uint64_t *min,
              std::uint64_t *max)
{
    const std::size_t colon = text.find(':');
    if (colon == std::string_view::npos)
        return false;
    const std::string_view lo = text.substr(0, colon);
    const std::string_view hi = text.substr(colon + 1);
    if (lo == "*")
        *min = 0;
    else if (!parseU64(lo, min))
        return false;
    if (hi == "*")
        *max = ~std::uint64_t(0);
    else if (!parseU64(hi, max))
        return false;
    return true;
}

/** Parse "min:max" with `*` for an unbounded end (double domain). */
bool
parseDoubleRange(std::string_view text, double *min, double *max,
                 double lo_default, double hi_default)
{
    const std::size_t colon = text.find(':');
    if (colon == std::string_view::npos)
        return false;
    const std::string_view lo = text.substr(0, colon);
    const std::string_view hi = text.substr(colon + 1);
    if (lo == "*")
        *min = lo_default;
    else if (!parseDouble(lo, min))
        return false;
    if (hi == "*")
        *max = hi_default;
    else if (!parseDouble(hi, max))
        return false;
    return true;
}

util::Status
lineError(std::size_t line_no, const char *message)
{
    return util::invalidArgument("scheme config line %zu: %s",
                                 line_no, message);
}

util::Status
parseSchemeLine(std::size_t line_no,
                const std::vector<std::string_view> &tokens,
                Scheme *out)
{
    if (tokens.size() < 2)
        return lineError(line_no, "scheme needs a name");
    Scheme scheme;
    scheme.name.assign(tokens[1].begin(), tokens[1].end());
    bool have_action = false;
    for (std::size_t t = 2; t < tokens.size(); ++t) {
        const std::string_view token = tokens[t];
        const std::size_t eq = token.find('=');
        if (eq == std::string_view::npos)
            return lineError(line_no,
                             "scheme attributes must be key=value");
        const std::string_view key = token.substr(0, eq);
        const std::string_view value = token.substr(eq + 1);
        SchemePredicate &p = scheme.predicate;
        if (key == "size") {
            if (!parseU64Range(value, &p.minSizeBytes,
                               &p.maxSizeBytes))
                return lineError(line_no, "bad size=min:max range");
        } else if (key == "acc") {
            if (!parseU64Range(value, &p.minAccesses,
                               &p.maxAccesses))
                return lineError(line_no, "bad acc=min:max range");
        } else if (key == "age") {
            std::uint64_t min = 0, max = 0;
            if (!parseU64Range(value, &min, &max) ||
                min > ~std::uint32_t(0))
                return lineError(line_no, "bad age=min:max range");
            p.minAge = static_cast<std::uint32_t>(min);
            p.maxAge = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(max, ~std::uint32_t(0)));
        } else if (key == "wfrac") {
            if (!parseDoubleRange(value, &p.minWriteFraction,
                                  &p.maxWriteFraction, 0.0, 1.0))
                return lineError(line_no, "bad wfrac=min:max range");
        } else if (key == "node") {
            if (!parseU64Range(value, &p.minNodeSamples,
                               &p.maxNodeSamples))
                return lineError(line_no, "bad node=min:max range");
        } else if (key == "action") {
            if (!schemeActionFromName(value, &scheme.action))
                return lineError(line_no, "unknown action name");
            have_action = true;
        } else if (key == "quota") {
            if (!parseU64(value, &scheme.quota))
                return lineError(line_no, "bad quota value");
        } else if (key == "cooldown") {
            std::uint64_t cooldown = 0;
            if (!parseU64(value, &cooldown) ||
                cooldown > ~std::uint32_t(0))
                return lineError(line_no, "bad cooldown value");
            scheme.cooldown = static_cast<std::uint32_t>(cooldown);
        } else {
            return lineError(line_no, "unknown scheme attribute");
        }
    }
    if (!have_action)
        return lineError(line_no, "scheme needs an action=");
    *out = std::move(scheme);
    return util::Status();
}

util::Status
parseSetLine(std::size_t line_no,
             const std::vector<std::string_view> &tokens,
             SchemeConfig *config)
{
    if (tokens.size() != 2)
        return lineError(line_no, "set needs exactly key=value");
    const std::string_view token = tokens[1];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos)
        return lineError(line_no, "set needs key=value");
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    double parsed = 0.0;
    if (!parseDouble(value, &parsed))
        return lineError(line_no, "bad set value");
    if (key == "write_trigger_boost")
        config->writeTriggerBoost = parsed;
    else if (key == "prefer_reads_clean_fraction")
        config->preferReadsCleanFraction = parsed;
    else if (key == "drain_clean_fraction")
        config->drainCleanFraction = parsed;
    else if (key == "epoch_shorten_scale")
        config->epochShortenScale = parsed;
    else if (key == "epoch_lengthen_scale")
        config->epochLengthenScale = parsed;
    else
        return lineError(line_no, "unknown set key");
    return util::Status();
}

} // anonymous namespace

util::Status
parseSchemeConfig(std::string_view text, SchemeConfig *out)
{
    if (text.size() > kMaxSchemeConfigBytes)
        return util::invalidArgument(
            "scheme config exceeds %zu bytes", kMaxSchemeConfigBytes);

    SchemeConfig config;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t newline = text.find('\n', pos);
        std::string_view line =
            newline == std::string_view::npos
                ? text.substr(pos)
                : text.substr(pos, newline - pos);
        pos = newline == std::string_view::npos ? text.size() + 1
                                                : newline + 1;
        ++line_no;
        if (line.size() > kMaxSchemeConfigLineBytes)
            return lineError(line_no, "line too long");
        const std::size_t hash = line.find('#');
        if (hash != std::string_view::npos)
            line = line.substr(0, hash);
        if (!line.empty() && line.back() == '\r')
            line.remove_suffix(1);
        const std::vector<std::string_view> tokens = tokenize(line);
        if (tokens.empty())
            continue;
        if (tokens[0] == "scheme") {
            if (config.schemes.size() >= kMaxSchemes)
                return lineError(line_no, "too many schemes");
            Scheme scheme;
            HDMR_RETURN_IF_ERROR(
                parseSchemeLine(line_no, tokens, &scheme));
            config.schemes.push_back(std::move(scheme));
        } else if (tokens[0] == "set") {
            HDMR_RETURN_IF_ERROR(
                parseSetLine(line_no, tokens, &config));
        } else {
            return lineError(line_no,
                             "expected 'scheme', 'set', or comment");
        }
    }
    HDMR_RETURN_IF_ERROR(config.validate());
    *out = std::move(config); // commit only on success
    return util::Status();
}

const char *
defaultPhaseAdaptiveSchemes()
{
    return
        "# Shipped phase-adaptive policy.\n"
        "#\n"
        "# earn_margin: the deployment's static per-module thresholds\n"
        "# hold a guard band below the qualified fast rate because\n"
        "# they must stand for the worst workload phase ever observed\n"
        "# (fig11: margin varies with phase).  Once monitoring shows\n"
        "# sustained, aged, read-dominated hot regions - the phase\n"
        "# shape the fast setting was qualified under - re-earn the\n"
        "# band one step per fire.  The promote path is bounded by the\n"
        "# qualified rate, and the epoch guard / recalibration\n"
        "# machinery still owns demotion when errors say otherwise.\n"
        "#\n"
        "# prefer_reads_hot: while hot read-dominated regions exist\n"
        "# (the common compute-phase shape), defer the write side's\n"
        "# discretionary work - boost the write-mode trigger so an\n"
        "# eviction trickle cannot force a mid-phase entry, and cap\n"
        "# the per-entry LLC-cleaning budget so a forced entry stalls\n"
        "# reads only as long as the backlog itself requires.\n"
        "#\n"
        "# No quiet-window drain scheme ships by default.  Measured on\n"
        "# the fig19 phase-heavy mix, forcing write-mode entries into\n"
        "# checkpoint waits - even with drain_clean_fraction=0 - loses\n"
        "# to letting the pressure path pick its own entry points: the\n"
        "# backlog's one deferred flush is already scheduled into the\n"
        "# cheapest slot, and extra entries only perturb it.  The drain\n"
        "# action stays in the language (drain_clean_fraction sizes its\n"
        "# cleaning to the window it fires into) for workloads with\n"
        "# longer idle windows than a 10 us barrier wait.\n"
        "#\n"
        "# The node thresholds come from the measured per-aggregation\n"
        "# sample distribution on the fig19 node (5 us aggregations,\n"
        "# ~30 us iterations): genuinely idle windows sample under a\n"
        "# few hundred accesses, compute-phase windows sample 1600+.\n"
        "set write_trigger_boost=0.08\n"
        "set prefer_reads_clean_fraction=0.1\n"
        "set drain_clean_fraction=0.1\n"
        "scheme earn_margin acc=64:* wfrac=0.0:0.25 age=4:* "
        "node=1600:* action=promote quota=2 cooldown=16\n"
        "scheme prefer_reads_hot acc=64:* wfrac=0.0:0.25 node=1600:* "
        "action=prefer_reads\n"
        "scheme stat_all action=stat\n";
}

// ---- Engine. --------------------------------------------------------

SchemeEngine::SchemeEngine(SchemeConfig config, ActionSink *sink)
    : config_(std::move(config)), sink_(sink),
      states_(config_.schemes.size()), tm_(config_.schemes.size())
{
    util::checkOk(config_.validate());
}

bool
SchemeEngine::canFire(const Scheme &scheme, const SchemeState &state,
                      std::uint64_t agg_index) const
{
    if (scheme.quota != 0 && state.fires >= scheme.quota)
        return false;
    if (state.lastFireAggregation != kNeverFired &&
        agg_index - state.lastFireAggregation <= scheme.cooldown)
        return false;
    return true;
}

void
SchemeEngine::onAggregation(const std::vector<Region> &regions,
                            const AggregationInfo &info)
{
    bool want_prefer = false;
    bool want_shorten = false;
    bool want_lengthen = false;

    for (std::size_t i = 0; i < config_.schemes.size(); ++i) {
        const Scheme &scheme = config_.schemes[i];
        SchemeState &state = states_[i];

        bool matched = false;
        std::uint64_t matched_bytes = 0;
        for (const Region &region : regions) {
            if (!scheme.predicate.matches(region, info))
                continue;
            matched = true;
            matched_bytes += region.sizeBytes();
            ++state.hits;
            HDMR_TM_INC(tm_[i].hits);
        }

        if (isLevelAction(scheme.action)) {
            if (matched && !state.active &&
                canFire(scheme, state, info.index)) {
                state.active = true;
                ++state.fires;
                state.lastFireAggregation = info.index;
                HDMR_TM_INC(tm_[i].fires);
            } else if (!matched && state.active) {
                state.active = false;
            }
            if (state.active) {
                want_prefer |=
                    scheme.action == SchemeAction::kPreferReads;
                want_shorten |=
                    scheme.action == SchemeAction::kEpochShorten;
                want_lengthen |=
                    scheme.action == SchemeAction::kEpochLengthen;
            }
            continue;
        }

        if (!matched || !canFire(scheme, state, info.index))
            continue;
        ++state.fires;
        state.lastFireAggregation = info.index;
        HDMR_TM_INC(tm_[i].fires);
        if (sink_ == nullptr)
            continue;
        switch (scheme.action) {
          case SchemeAction::kStat:
            break; // accounting only
          case SchemeAction::kDrainWrites:
            sink_->drainWrites(config_.drainCleanFraction);
            break;
          case SchemeAction::kPromoteMargin:
            sink_->promoteMargin();
            break;
          case SchemeAction::kDemoteMargin:
            sink_->demoteMargin();
            break;
          case SchemeAction::kHintFast:
            sink_->hintPlacement(PlacementClass::kFast,
                                 matched_bytes);
            break;
          case SchemeAction::kHintSpec:
            sink_->hintPlacement(PlacementClass::kSpec,
                                 matched_bytes);
            break;
          default:
            util::panic("unreachable scheme action");
        }
    }

    // Resolve the hold levels once over all schemes; a shorten hold
    // wins over a simultaneous lengthen hold (the conservative side).
    const bool prefer = want_prefer;
    const double scale = want_shorten
                             ? config_.epochShortenScale
                             : (want_lengthen
                                    ? config_.epochLengthenScale
                                    : 1.0);
    if (prefer != preferActive_) {
        preferActive_ = prefer;
        if (sink_) {
            sink_->setWriteTriggerBoost(
                preferActive_ ? config_.writeTriggerBoost : 0.0);
            sink_->setCleanFraction(
                preferActive_ ? config_.preferReadsCleanFraction
                              : 1.0);
        }
    }
    if (scale != epochScale_) {
        epochScale_ = scale;
        if (sink_)
            sink_->setEpochScale(epochScale_);
    }
}

std::uint64_t
SchemeEngine::totalHits() const
{
    std::uint64_t total = 0;
    for (const SchemeState &state : states_)
        total += state.hits;
    return total;
}

std::uint64_t
SchemeEngine::totalFires() const
{
    std::uint64_t total = 0;
    for (const SchemeState &state : states_)
        total += state.fires;
    return total;
}

void
SchemeEngine::bindTelemetry(telemetry::Registry &registry,
                            const std::string &prefix)
{
    for (std::size_t i = 0; i < config_.schemes.size(); ++i) {
        const std::string base =
            prefix + "." +
            telemetry::sanitizeMetricComponent(
                config_.schemes[i].name);
        tm_[i].hits = &registry.counter(base + ".hits");
        tm_[i].fires = &registry.counter(base + ".fires");
    }
}

void
SchemeEngine::saveState(snapshot::Serializer &out) const
{
    out.writeU32(static_cast<std::uint32_t>(config_.schemes.size()));
    for (const Scheme &scheme : config_.schemes) {
        out.writeString(scheme.name);
        out.writeU8(static_cast<std::uint8_t>(scheme.action));
        out.writeU64(scheme.quota);
        out.writeU32(scheme.cooldown);
    }
    out.writeDouble(config_.writeTriggerBoost);
    out.writeDouble(config_.preferReadsCleanFraction);
    out.writeDouble(config_.drainCleanFraction);
    out.writeDouble(config_.epochShortenScale);
    out.writeDouble(config_.epochLengthenScale);

    for (const SchemeState &state : states_) {
        out.writeU64(state.hits);
        out.writeU64(state.fires);
        out.writeU64(state.lastFireAggregation);
        out.writeBool(state.active);
    }
    out.writeBool(preferActive_);
    out.writeDouble(epochScale_);
}

bool
SchemeEngine::restoreState(snapshot::Deserializer &in)
{
    const std::uint32_t count = in.readU32();
    if (in.ok() && count != config_.schemes.size()) {
        in.fail("scheme snapshot carries a different scheme count");
        return false;
    }
    for (std::uint32_t i = 0; in.ok() && i < count; ++i) {
        const std::string name = in.readString();
        const std::uint8_t action = in.readU8();
        const std::uint64_t quota = in.readU64();
        const std::uint32_t cooldown = in.readU32();
        const Scheme &scheme = config_.schemes[i];
        if (in.ok() &&
            (name != scheme.name ||
             action != static_cast<std::uint8_t>(scheme.action) ||
             quota != scheme.quota || cooldown != scheme.cooldown)) {
            in.fail("scheme snapshot was taken under a different "
                    "scheme configuration");
            return false;
        }
    }
    const double boost = in.readDouble();
    const double clean_fraction = in.readDouble();
    const double drain_fraction = in.readDouble();
    const double shorten = in.readDouble();
    const double lengthen = in.readDouble();
    if (in.ok() && (boost != config_.writeTriggerBoost ||
                    clean_fraction != config_.preferReadsCleanFraction ||
                    drain_fraction != config_.drainCleanFraction ||
                    shorten != config_.epochShortenScale ||
                    lengthen != config_.epochLengthenScale)) {
        in.fail("scheme snapshot was taken under different scheme "
                "parameters");
        return false;
    }

    std::vector<SchemeState> states(config_.schemes.size());
    for (SchemeState &state : states) {
        state.hits = in.readU64();
        state.fires = in.readU64();
        state.lastFireAggregation = in.readU64();
        state.active = in.readBool();
    }
    const bool prefer = in.readBool();
    const double scale = in.readDouble();
    if (!in.ok())
        return false;

    states_ = std::move(states);
    preferActive_ = prefer;
    epochScale_ = scale;
    // Re-assert the hold levels so the sink matches the restored
    // engine (idempotent when nothing actually changed).
    if (sink_) {
        sink_->setWriteTriggerBoost(
            preferActive_ ? config_.writeTriggerBoost : 0.0);
        sink_->setCleanFraction(
            preferActive_ ? config_.preferReadsCleanFraction : 1.0);
        sink_->setEpochScale(epochScale_);
    }
    return true;
}

std::uint64_t
SchemeEngine::digest() const
{
    snapshot::Fnv1a fnv;
    fnv.addU64(states_.size());
    for (const SchemeState &state : states_) {
        fnv.addU64(state.hits);
        fnv.addU64(state.fires);
        fnv.addU64(state.lastFireAggregation);
        fnv.addU32(state.active ? 1 : 0);
    }
    fnv.addU32(preferActive_ ? 1 : 0);
    fnv.addDouble(epochScale_);
    return fnv.value();
}

} // namespace hdmr::monitor
