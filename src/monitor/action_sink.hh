/**
 * @file
 * The narrow interface through which monitoring becomes control.
 *
 * The monitor subsystem deliberately knows nothing about
 * core::ModeController or core::EpochGuard: a scheme engine fires
 * *abstract* actions into an ActionSink, and the node layer (which
 * already owns both) implements the bridge.  This keeps hdmr_monitor
 * a leaf library (util + snapshot + telemetry only) and makes every
 * action unit-testable against a recording fake.
 *
 * Contract: every method must be safe to call at any aggregation
 * boundary, idempotent when re-applied with the same argument (scheme
 * state is snapshot/restored mid-run and re-asserts its active levels
 * on restore), and must never re-enter the monitor.
 */

#ifndef HDMR_MONITOR_ACTION_SINK_HH
#define HDMR_MONITOR_ACTION_SINK_HH

#include <cstdint>

namespace hdmr::monitor
{

/** Advisory placement class for the bytes a scheme matched. */
enum class PlacementClass : std::uint8_t
{
    kFast = 0, ///< margin-exploited fast modules
    kSpec = 1, ///< at-specification modules
};

/** Where scheme actions land (implemented by the node layer). */
class ActionSink
{
  public:
    virtual ~ActionSink() = default;

    /**
     * Drain the accumulated dirty write backlog now, allowing the
     * drain window `clean_fraction` of the configured discretionary
     * LLC-cleaning budget on top (sized so the whole drain fits the
     * idle window that prompted it).
     */
    virtual void drainWrites(double clean_fraction) = 0;

    /**
     * Additive boost on the write-mode trigger fill while a
     * read-preference scheme is active; 0 restores the configured
     * trigger.  Level-type: re-applying the same boost is a no-op.
     */
    virtual void setWriteTriggerBoost(double boost) = 0;

    /**
     * Scale the SDC epoch length relative to its configured base;
     * 1.0 restores the base length.  Level-type like the boost.
     */
    virtual void setEpochScale(double scale) = 0;

    /**
     * Scale the discretionary LLC-cleaning budget of each write-mode
     * window (the most deferrable write-side work: cleaning stalls
     * reads now to shrink future write batches).  1.0 restores the
     * configured budget.  Level-type like the boost.
     */
    virtual void setCleanFraction(double fraction) = 0;

    /** Re-earn one margin step (bounded by the qualified rate). */
    virtual void promoteMargin() = 0;

    /** Give back one margin step (permanent, like a recal demotion). */
    virtual void demoteMargin() = 0;

    /** Advisory placement-class hint covering `bytes` of footprint. */
    virtual void hintPlacement(PlacementClass cls,
                               std::uint64_t bytes) = 0;
};

} // namespace hdmr::monitor

#endif // HDMR_MONITOR_ACTION_SINK_HH
