/**
 * @file
 * Declarative operation schemes over monitored regions (the DAMOS
 * analogue): policy as data, not code.
 *
 * A scheme is a predicate over a region's size, interval access
 * count, age, write fraction, and the node-wide sample count of the
 * interval, plus an action to take when any region matches.  The
 * engine evaluates every scheme at every aggregation boundary against
 * the closed counts and fires actions through the narrow
 * monitor::ActionSink, with per-scheme quotas (total fire cap) and
 * cooldowns (aggregations between fires) bounding how hard a policy
 * can push.
 *
 * Two action shapes exist:
 *  - *edge* actions fire once per matching aggregation (drain the
 *    write backlog, promote/demote a margin step, placement hints);
 *  - *level* actions hold while any matching region persists (read
 *    preference = write-trigger boost, epoch shorten/lengthen) and
 *    release when nothing matches - re-asserted idempotently after a
 *    snapshot restore.
 *
 * Configs load from a line-oriented text format (parseSchemeConfig):
 *
 *     # comment
 *     set write_trigger_boost=0.08
 *     scheme <name> [size=min:max] [acc=min:max] [age=min:max]
 *                   [wfrac=min:max] [node=min:max]
 *                   action=<name> [quota=N] [cooldown=N]
 *
 * with `*` for an unbounded end.  Parsing follows the repository's
 * untrusted-input contract: a structured util::Status for any
 * malformed input and an output that is never half-filled.
 */

#ifndef HDMR_MONITOR_SCHEME_HH
#define HDMR_MONITOR_SCHEME_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "monitor/action_sink.hh"
#include "monitor/monitor.hh"
#include "util/status.hh"

namespace hdmr::monitor
{

/** Caps on an untrusted scheme-config input. */
constexpr std::size_t kMaxSchemes = 64;
constexpr std::size_t kMaxSchemeNameBytes = 64;
constexpr std::size_t kMaxSchemeConfigBytes = 1 << 20;
constexpr std::size_t kMaxSchemeConfigLineBytes = 4096;

/** What a scheme does when a region matches. */
enum class SchemeAction : std::uint8_t
{
    kStat = 0,       ///< count matches only (accounting)
    kDrainWrites,    ///< drain the dirty write backlog now
    kPreferReads,    ///< hold: boost the write-mode trigger fill
    kEpochShorten,   ///< hold: scale the SDC epoch length down
    kEpochLengthen,  ///< hold: scale the SDC epoch length up
    kPromoteMargin,  ///< re-earn one margin step
    kDemoteMargin,   ///< give back one margin step
    kHintFast,       ///< placement hint: fast modules
    kHintSpec,       ///< placement hint: at-spec modules
};

const char *toString(SchemeAction action);

/** Parse an action name; false when unknown. */
bool schemeActionFromName(std::string_view name, SchemeAction *out);

/** True for actions that hold while matches persist. */
bool isLevelAction(SchemeAction action);

/** Region/interval predicate; all bounds inclusive. */
struct SchemePredicate
{
    std::uint64_t minSizeBytes = 0;
    std::uint64_t maxSizeBytes = ~std::uint64_t(0);
    std::uint64_t minAccesses = 0;
    std::uint64_t maxAccesses = ~std::uint64_t(0);
    std::uint32_t minAge = 0;
    std::uint32_t maxAge = ~std::uint32_t(0);
    double minWriteFraction = 0.0;
    double maxWriteFraction = 1.0;
    /** Bounds on the interval's node-wide inspected-access count. */
    std::uint64_t minNodeSamples = 0;
    std::uint64_t maxNodeSamples = ~std::uint64_t(0);

    bool matches(const Region &region,
                 const AggregationInfo &info) const;
};

/** One declarative operation scheme. */
struct Scheme
{
    std::string name;
    SchemePredicate predicate;
    SchemeAction action = SchemeAction::kStat;
    /** Total fires allowed; 0 = unlimited. */
    std::uint64_t quota = 0;
    /** Aggregations that must pass between fires. */
    std::uint32_t cooldown = 0;
};

/** A full scheme configuration (the parsed config file). */
struct SchemeConfig
{
    std::vector<Scheme> schemes;
    /** Trigger-fill boost a kPreferReads hold applies. */
    double writeTriggerBoost = 0.08;
    /**
     * Cleaning-budget scale a kPreferReads hold applies: while reads
     * are hot, each write-mode window only earns this fraction of its
     * configured discretionary LLC-cleaning budget, deferring the
     * bulk of the cleaning stall to the next quiet-phase drain.
     */
    double preferReadsCleanFraction = 0.1;
    /**
     * Cleaning-budget scale a kDrainWrites fire grants its write-mode
     * entry: the drain flushes the whole dirty backlog, but its
     * discretionary cleaning is sized to the idle window the scheme
     * detected instead of the full configured batch.
     */
    double drainCleanFraction = 0.2;
    /** Epoch-length scale a kEpochShorten hold applies. */
    double epochShortenScale = 0.25;
    /** Epoch-length scale a kEpochLengthen hold applies. */
    double epochLengthenScale = 4.0;

    /**
     * Reject impossible configurations (too many schemes, malformed
     * or duplicate names, inverted predicate bounds, out-of-range
     * boost/scales) with kInvalidArgument naming the offending field;
     * one pass, first offender wins.  SchemeEngine's constructor
     * checkOk()s it.
     */
    util::Status validate() const;
};

/**
 * Parse the text format described in the file header.  On any error
 * returns kInvalidArgument naming the line and leaves `*out`
 * untouched (never half-filled); on success `*out` also passed
 * validate().
 */
util::Status parseSchemeConfig(std::string_view text,
                               SchemeConfig *out);

/**
 * The shipped phase-adaptive policy (also checked in as
 * schemas/schemes/phase_adaptive.schemes; a ctest keeps the copy in
 * sync): re-earn the static guard band while hot read-dominated
 * phases hold, and defer discretionary write-mode work out of those
 * phases.  Deliberately ships no quiet-window drain scheme - see the
 * negative-result note in the text itself.
 */
const char *defaultPhaseAdaptiveSchemes();

/** The engine evaluating schemes at each aggregation boundary. */
class SchemeEngine
{
  public:
    /** Sentinel: scheme has never fired. */
    static constexpr std::uint64_t kNeverFired = ~std::uint64_t(0);

    /** Per-scheme evaluation state (snapshot-serialized). */
    struct SchemeState
    {
        std::uint64_t hits = 0;  ///< region matches
        std::uint64_t fires = 0; ///< actions applied / holds entered
        std::uint64_t lastFireAggregation = kNeverFired;
        bool active = false; ///< level actions: hold in effect
    };

    /** `sink` must outlive the engine; nullptr = evaluate only. */
    SchemeEngine(SchemeConfig config, ActionSink *sink);

    /** Evaluate every scheme against one closed interval. */
    void onAggregation(const std::vector<Region> &regions,
                       const AggregationInfo &info);

    const SchemeConfig &config() const { return config_; }
    const std::vector<SchemeState> &states() const { return states_; }
    bool readPreferenceActive() const { return preferActive_; }
    double epochScale() const { return epochScale_; }
    std::uint64_t totalHits() const;
    std::uint64_t totalFires() const;

    /** Per-scheme hit/fire counters: "<prefix>.<name>.hits"/".fires". */
    void bindTelemetry(telemetry::Registry &registry,
                       const std::string &prefix);

    // ---- Snapshot/resume surface (src/snapshot). ----

    /**
     * Serialize a fingerprint of the scheme list plus every scheme's
     * evaluation state and the engine's hold levels.
     */
    void saveState(snapshot::Serializer &out) const;

    /**
     * Restore into an engine built with the same scheme config; the
     * restored hold levels are re-asserted into the sink (idempotent
     * for an in-run round trip).  Fails the deserializer on a foreign
     * fingerprint.
     */
    bool restoreState(snapshot::Deserializer &in);

    /** FNV-1a digest over the complete mutable state. */
    std::uint64_t digest() const;

  private:
    bool canFire(const Scheme &scheme, const SchemeState &state,
                 std::uint64_t agg_index) const;
    void applyLevels();

    SchemeConfig config_;
    ActionSink *sink_;
    std::vector<SchemeState> states_;
    bool preferActive_ = false;
    double epochScale_ = 1.0;

    struct SchemeTelemetry
    {
        telemetry::Counter *hits = nullptr;
        telemetry::Counter *fires = nullptr;
    };
    std::vector<SchemeTelemetry> tm_;
};

} // namespace hdmr::monitor

#endif // HDMR_MONITOR_SCHEME_HH
