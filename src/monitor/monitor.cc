#include "monitor/monitor.hh"

#include <algorithm>

#include "snapshot/digest.hh"
#include "snapshot/serializer.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace hdmr::monitor
{

namespace
{

constexpr std::uint64_t kLineBytes = 64;

std::uint64_t
absDiff(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : b - a;
}

} // anonymous namespace

util::Status
MonitorConfig::validate() const
{
    if (samplingInterval == 0)
        return util::invalidArgument(
            "MonitorConfig.samplingInterval must be positive");
    if (aggregationInterval < samplingInterval)
        return util::invalidArgument(
            "MonitorConfig.aggregationInterval must be >= "
            "samplingInterval");
    if (regionUpdateInterval < aggregationInterval)
        return util::invalidArgument(
            "MonitorConfig.regionUpdateInterval must be >= "
            "aggregationInterval");
    if (minRegions == 0)
        return util::invalidArgument(
            "MonitorConfig.minRegions must be positive");
    if (maxRegions < minRegions)
        return util::invalidArgument(
            "MonitorConfig.maxRegions must be >= minRegions");
    if (maxRegions > 4096)
        return util::invalidArgument(
            "MonitorConfig.maxRegions must be <= 4096");
    if (!(overheadBudget > 0.0 && overheadBudget <= 1.0))
        return util::invalidArgument(
            "MonitorConfig.overheadBudget must be in (0, 1]");
    if (sampleCheckCost == 0)
        return util::invalidArgument(
            "MonitorConfig.sampleCheckCost must be positive");
    if (!(initialDuty > 0.0 && initialDuty <= 1.0))
        return util::invalidArgument(
            "MonitorConfig.initialDuty must be in (0, 1]");
    if (cores == 0)
        return util::invalidArgument(
            "MonitorConfig.cores must be positive");
    return util::Status();
}

RegionSampler::RegionSampler(MonitorConfig config)
    : config_(config), rng_(config.seed)
{
    util::checkOk(config_.validate());
    windowTicks_ = std::max<Tick>(
        1, static_cast<Tick>(
               config_.initialDuty *
               static_cast<double>(config_.samplingInterval)));
    nextAggregationAt_ = config_.aggregationInterval;
    nextRegionUpdateAt_ = config_.regionUpdateInterval;
}

void
RegionSampler::setAggregationHook(AggregationHook hook)
{
    hook_ = std::move(hook);
}

void
RegionSampler::setAggregationObserver(
    std::function<void(std::uint64_t)> observer)
{
    observer_ = std::move(observer);
}

Tick
RegionSampler::onAccess(std::uint64_t address, bool is_write, Tick now)
{
    if (!config_.enabled)
        return 0;
    // Core-local clocks can run slightly ahead of each other; keep a
    // monotonic cursor so interval boundaries roll exactly once.
    if (now < cursor_)
        now = cursor_;
    else
        cursor_ = now;
    rollIntervals(now);

    ++stats_.totalAccesses;
    if (now % config_.samplingInterval >= windowTicks_)
        return 0; // outside the inspection window: one compare, free

    touchRegion(address & ~(kLineBytes - 1), is_write);
    ++stats_.sampledAccesses;
    ++aggSampled_;
    aggCharged_ += config_.sampleCheckCost;
    stats_.chargedTicks += config_.sampleCheckCost;
    HDMR_TM_INC(tm_.samples);
    return config_.sampleCheckCost;
}

void
RegionSampler::touchRegion(std::uint64_t line, bool is_write)
{
    const std::uint64_t end = line + kLineBytes;
    Region *region = nullptr;
    if (regions_.empty()) {
        Region first;
        first.start = line;
        first.end = end;
        regions_.push_back(std::move(first));
        region = &regions_.front();
    } else if (line < regions_.front().start) {
        regions_.front().start = line;
        region = &regions_.front();
    } else if (line >= regions_.back().end) {
        regions_.back().end = end;
        region = &regions_.back();
    } else {
        // Last region whose start is <= line.  Boundaries are all
        // line-aligned, so extending over a gap cannot overlap the
        // next region.
        auto it = std::upper_bound(
                      regions_.begin(), regions_.end(), line,
                      [](std::uint64_t a, const Region &r) {
                          return a < r.start;
                      }) -
                  1;
        if (line >= it->end)
            it->end = end;
        region = &*it;
    }
    ++region->nrAccesses;
    if (is_write)
        ++region->nrWrites;
}

void
RegionSampler::rollIntervals(Tick now)
{
    while (now >= nextAggregationAt_)
        finishAggregation(nextAggregationAt_);
}

void
RegionSampler::finishAggregation(Tick boundary)
{
    // Close the interval's counts into the histories first; the hook
    // (scheme engine) sees the closed counts before merge/reset.
    for (Region &region : regions_) {
        region.history.record(region.nrAccesses);
        HDMR_TM_RECORD(tm_.regionAccesses, region.nrAccesses);
    }

    AggregationInfo info;
    info.index = stats_.aggregations;
    info.boundary = boundary;
    info.sampledAccesses = aggSampled_;
    info.chargedTicks = aggCharged_;
    if (hook_)
        hook_(regions_, info);

    mergeRegions();

    // Age like DAMON: a region whose access count stayed close to the
    // previous interval's grows older; a shifted count resets it.
    for (Region &region : regions_) {
        const std::uint64_t tolerance = std::max<std::uint64_t>(
            1, (region.nrAccesses + region.lastNrAccesses) / 5);
        if (absDiff(region.nrAccesses, region.lastNrAccesses) <=
            tolerance) {
            ++region.age;
        } else {
            region.age = 0;
        }
        region.lastNrAccesses = region.nrAccesses;
        region.nrAccesses = 0;
        region.nrWrites = 0;
    }

    // Self-enforced overhead budget: compare what the interval charged
    // against what the budget allows across all cores, and adapt the
    // duty window.
    const double allowed =
        config_.overheadBudget *
        static_cast<double>(config_.aggregationInterval) *
        static_cast<double>(config_.cores);
    if (static_cast<double>(aggCharged_) > allowed) {
        windowTicks_ = std::max<Tick>(1, windowTicks_ / 2);
        ++stats_.throttles;
        HDMR_TM_INC(tm_.throttles);
    } else if (static_cast<double>(aggCharged_) * 2.0 < allowed &&
               windowTicks_ < config_.samplingInterval) {
        windowTicks_ = std::min(config_.samplingInterval,
                                windowTicks_ + windowTicks_ / 2 + 1);
        ++stats_.boosts;
    }
    aggSampled_ = 0;
    aggCharged_ = 0;

    ++stats_.aggregations;
    HDMR_TM_INC(tm_.aggregations);
    nextAggregationAt_ += config_.aggregationInterval;

    if (boundary >= nextRegionUpdateAt_) {
        while (boundary >= nextRegionUpdateAt_)
            nextRegionUpdateAt_ += config_.regionUpdateInterval;
        splitRegions();
    }

    HDMR_TM_SET(tm_.regionCount,
                static_cast<double>(regions_.size()));
    HDMR_TM_SET(tm_.windowTicks, static_cast<double>(windowTicks_));

    if (observer_)
        observer_(info.index);
}

std::size_t
RegionSampler::mergePass(std::uint64_t threshold)
{
    std::size_t merged = 0;
    std::size_t i = 0;
    while (i + 1 < regions_.size() &&
           regions_.size() > config_.minRegions) {
        Region &left = regions_[i];
        Region &right = regions_[i + 1];
        if (absDiff(left.nrAccesses, right.nrAccesses) > threshold) {
            ++i;
            continue;
        }
        // Fuse like DAMON's damon_merge_two_regions: extensive counts
        // add, age averages weighted by size, histories merge
        // bin-for-bin.
        const double sz_l = static_cast<double>(left.sizeBytes());
        const double sz_r = static_cast<double>(right.sizeBytes());
        left.age = static_cast<std::uint32_t>(
            (static_cast<double>(left.age) * sz_l +
             static_cast<double>(right.age) * sz_r) /
            (sz_l + sz_r));
        left.end = right.end;
        left.nrAccesses += right.nrAccesses;
        left.nrWrites += right.nrWrites;
        left.lastNrAccesses += right.lastNrAccesses;
        left.history.merge(right.history);
        regions_.erase(regions_.begin() + static_cast<long>(i) + 1);
        ++merged;
    }
    return merged;
}

void
RegionSampler::mergeRegions()
{
    if (regions_.size() <= config_.minRegions)
        return;
    // Start with a tenth of the mean interval count as the similarity
    // threshold (DAMON uses max_nr_accesses / 10) and double it until
    // the region count fits under the cap.
    std::uint64_t total = 0;
    for (const Region &region : regions_)
        total += region.nrAccesses;
    std::uint64_t threshold = std::max<std::uint64_t>(
        1, total / regions_.size() / 10);
    std::size_t merged = mergePass(threshold);
    while (regions_.size() > config_.maxRegions) {
        threshold *= 2;
        merged += mergePass(threshold);
    }
    if (merged > 0) {
        stats_.merges += merged;
        HDMR_TM_ADD(tm_.merges, merged);
    }
}

bool
RegionSampler::splitRegionAt(std::size_t index, unsigned pieces)
{
    Region &region = regions_[index];
    const std::uint64_t lines = region.sizeBytes() / kLineBytes;
    if (lines < 2 || pieces < 2)
        return false;

    // One random line-aligned split point (DAMON splits at a random
    // offset so a hot subrange cannot alias the split grid); the
    // second child starts a fresh history so the per-node merge never
    // double-counts an interval.
    const std::uint64_t cut =
        region.start +
        rng_.uniformInt(1, lines - 1) * kLineBytes;
    Region child;
    child.start = cut;
    child.end = region.end;
    child.age = region.age;
    const double frac =
        static_cast<double>(child.end - child.start) /
        static_cast<double>(region.sizeBytes());
    child.lastNrAccesses = static_cast<std::uint64_t>(
        static_cast<double>(region.lastNrAccesses) * frac);
    region.end = cut;
    region.lastNrAccesses -= child.lastNrAccesses;
    regions_.insert(regions_.begin() + static_cast<long>(index) + 1,
                    std::move(child));
    ++stats_.splits;
    HDMR_TM_INC(tm_.splits);
    if (pieces > 2)
        splitRegionAt(index + 1, pieces - 1);
    return true;
}

void
RegionSampler::splitRegions()
{
    if (regions_.empty())
        return;

    // Grow toward the floor first: always keep at least minRegions
    // (split the largest candidate).
    while (regions_.size() < config_.minRegions) {
        std::size_t largest = 0;
        for (std::size_t i = 1; i < regions_.size(); ++i) {
            if (regions_[i].sizeBytes() >
                regions_[largest].sizeBytes())
                largest = i;
        }
        if (!splitRegionAt(largest, 2))
            break; // nothing splittable left (single-line regions)
    }

    // DAMON's kdamond_split_regions: only split while under half the
    // cap, in two pieces normally, three while the population is very
    // low - leaving headroom for the next merge pass to express
    // behaviour boundaries.
    if (regions_.size() > config_.maxRegions / 2)
        return;
    const unsigned pieces =
        regions_.size() * 3 <= config_.maxRegions ? 3 : 2;
    const std::size_t existing = regions_.size();
    std::size_t i = 0;
    for (std::size_t n = 0; n < existing; ++n) {
        if (regions_.size() + (pieces - 1) > config_.maxRegions)
            break;
        const std::size_t before = regions_.size();
        splitRegionAt(i, pieces);
        i += regions_.size() - before + 1;
    }
}

telemetry::Log2Histogram
RegionSampler::nodeAccessHistogram() const
{
    telemetry::Log2Histogram merged;
    for (const Region &region : regions_)
        merged.merge(region.history);
    return merged;
}

void
RegionSampler::bindTelemetry(telemetry::Registry &registry,
                             const std::string &prefix)
{
    tm_.samples = &registry.counter(prefix + ".samples");
    tm_.aggregations = &registry.counter(prefix + ".aggregations");
    tm_.splits = &registry.counter(prefix + ".splits");
    tm_.merges = &registry.counter(prefix + ".merges");
    tm_.throttles = &registry.counter(prefix + ".throttles");
    tm_.regionCount = &registry.gauge(prefix + ".regions");
    tm_.windowTicks = &registry.gauge(prefix + ".window_ticks");
    tm_.regionAccesses =
        &registry.histogram(prefix + ".region_accesses");
}

namespace
{

void
saveHistogram(snapshot::Serializer &out,
              const telemetry::Log2Histogram &histogram)
{
    for (unsigned b = 0; b < telemetry::Log2Histogram::kBuckets; ++b)
        out.writeU64(histogram.bucketCount(b));
    out.writeU64(histogram.count());
    out.writeU64(histogram.sum());
}

bool
restoreHistogram(snapshot::Deserializer &in,
                 telemetry::Log2Histogram *histogram)
{
    std::uint64_t total = 0;
    for (unsigned b = 0; b < telemetry::Log2Histogram::kBuckets; ++b) {
        const std::uint64_t count = in.readU64();
        histogram->setBucketCount(b, count);
        total += count;
    }
    const std::uint64_t count = in.readU64();
    const std::uint64_t sum = in.readU64();
    if (in.ok() && count != total) {
        in.fail("monitor snapshot carries a histogram whose totals "
                "disagree with its buckets");
        return false;
    }
    histogram->setTotals(count, sum);
    return in.ok();
}

void
digestHistogram(snapshot::Fnv1a &fnv,
                const telemetry::Log2Histogram &histogram)
{
    for (unsigned b = 0; b < telemetry::Log2Histogram::kBuckets; ++b)
        fnv.addU64(histogram.bucketCount(b));
    fnv.addU64(histogram.count());
    fnv.addU64(histogram.sum());
}

} // anonymous namespace

void
RegionSampler::saveState(snapshot::Serializer &out) const
{
    // Configuration fingerprint: a snapshot only restores into a
    // sampler built the same way.
    out.writeU64(config_.samplingInterval);
    out.writeU64(config_.aggregationInterval);
    out.writeU64(config_.regionUpdateInterval);
    out.writeU32(config_.minRegions);
    out.writeU32(config_.maxRegions);
    out.writeDouble(config_.overheadBudget);
    out.writeU64(config_.sampleCheckCost);
    out.writeDouble(config_.initialDuty);
    out.writeU32(config_.cores);
    out.writeU64(config_.seed);

    out.writeU64(cursor_);
    out.writeU64(windowTicks_);
    out.writeU64(nextAggregationAt_);
    out.writeU64(nextRegionUpdateAt_);
    out.writeU64(aggSampled_);
    out.writeU64(aggCharged_);

    const util::RngState rng = rng_.state();
    for (std::uint64_t word : rng.s)
        out.writeU64(word);
    out.writeBool(rng.hasSpareNormal);
    out.writeDouble(rng.spareNormal);

    out.writeU64(stats_.totalAccesses);
    out.writeU64(stats_.sampledAccesses);
    out.writeU64(stats_.aggregations);
    out.writeU64(stats_.splits);
    out.writeU64(stats_.merges);
    out.writeU64(stats_.throttles);
    out.writeU64(stats_.boosts);
    out.writeU64(stats_.chargedTicks);

    out.writeU32(static_cast<std::uint32_t>(regions_.size()));
    for (const Region &region : regions_) {
        out.writeU64(region.start);
        out.writeU64(region.end);
        out.writeU64(region.nrAccesses);
        out.writeU64(region.nrWrites);
        out.writeU64(region.lastNrAccesses);
        out.writeU32(region.age);
        saveHistogram(out, region.history);
    }
}

bool
RegionSampler::restoreState(snapshot::Deserializer &in)
{
    const std::uint64_t sampling = in.readU64();
    const std::uint64_t aggregation = in.readU64();
    const std::uint64_t update = in.readU64();
    const std::uint32_t min_regions = in.readU32();
    const std::uint32_t max_regions = in.readU32();
    const double budget = in.readDouble();
    const std::uint64_t check_cost = in.readU64();
    const double duty = in.readDouble();
    const std::uint32_t cores = in.readU32();
    const std::uint64_t seed = in.readU64();
    if (!in.ok())
        return false;
    if (sampling != config_.samplingInterval ||
        aggregation != config_.aggregationInterval ||
        update != config_.regionUpdateInterval ||
        min_regions != config_.minRegions ||
        max_regions != config_.maxRegions ||
        budget != config_.overheadBudget ||
        check_cost != config_.sampleCheckCost ||
        duty != config_.initialDuty || cores != config_.cores ||
        seed != config_.seed) {
        in.fail("monitor snapshot was taken under a different "
                "monitoring configuration");
        return false;
    }

    const std::uint64_t cursor = in.readU64();
    const std::uint64_t window = in.readU64();
    const std::uint64_t next_agg = in.readU64();
    const std::uint64_t next_update = in.readU64();
    const std::uint64_t agg_sampled = in.readU64();
    const std::uint64_t agg_charged = in.readU64();
    if (in.ok() &&
        (window == 0 || window > config_.samplingInterval)) {
        in.fail("monitor snapshot carries an impossible duty window");
        return false;
    }

    util::RngState rng;
    for (std::uint64_t &word : rng.s)
        word = in.readU64();
    rng.hasSpareNormal = in.readBool();
    rng.spareNormal = in.readDouble();

    MonitorStats stats;
    stats.totalAccesses = in.readU64();
    stats.sampledAccesses = in.readU64();
    stats.aggregations = in.readU64();
    stats.splits = in.readU64();
    stats.merges = in.readU64();
    stats.throttles = in.readU64();
    stats.boosts = in.readU64();
    stats.chargedTicks = in.readU64();

    const std::uint32_t count = in.readU32();
    if (in.ok() && count > config_.maxRegions) {
        in.fail("monitor snapshot carries more regions than the "
                "configuration allows");
        return false;
    }
    std::vector<Region> regions;
    regions.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Region region;
        region.start = in.readU64();
        region.end = in.readU64();
        region.nrAccesses = in.readU64();
        region.nrWrites = in.readU64();
        region.lastNrAccesses = in.readU64();
        region.age = in.readU32();
        if (!restoreHistogram(in, &region.history))
            return false;
        if (region.start >= region.end ||
            region.start % kLineBytes != 0 ||
            region.end % kLineBytes != 0 ||
            (!regions.empty() &&
             region.start < regions.back().end)) {
            in.fail("monitor snapshot carries a malformed region "
                    "list (unsorted, overlapping, or misaligned)");
            return false;
        }
        regions.push_back(std::move(region));
    }
    if (!in.ok())
        return false;

    cursor_ = cursor;
    windowTicks_ = window;
    nextAggregationAt_ = next_agg;
    nextRegionUpdateAt_ = next_update;
    aggSampled_ = agg_sampled;
    aggCharged_ = agg_charged;
    rng_.setState(rng);
    stats_ = stats;
    regions_ = std::move(regions);
    return true;
}

std::uint64_t
RegionSampler::digest() const
{
    snapshot::Fnv1a fnv;
    fnv.addU64(cursor_);
    fnv.addU64(windowTicks_);
    fnv.addU64(nextAggregationAt_);
    fnv.addU64(nextRegionUpdateAt_);
    fnv.addU64(aggSampled_);
    fnv.addU64(aggCharged_);
    const util::RngState rng = rng_.state();
    for (std::uint64_t word : rng.s)
        fnv.addU64(word);
    fnv.addU64(stats_.totalAccesses);
    fnv.addU64(stats_.sampledAccesses);
    fnv.addU64(stats_.aggregations);
    fnv.addU64(stats_.splits);
    fnv.addU64(stats_.merges);
    fnv.addU64(stats_.throttles);
    fnv.addU64(stats_.boosts);
    fnv.addU64(stats_.chargedTicks);
    fnv.addU64(regions_.size());
    for (const Region &region : regions_) {
        fnv.addU64(region.start);
        fnv.addU64(region.end);
        fnv.addU64(region.nrAccesses);
        fnv.addU64(region.nrWrites);
        fnv.addU64(region.lastNrAccesses);
        fnv.addU32(region.age);
        digestHistogram(fnv, region.history);
    }
    return fnv.value();
}

} // namespace hdmr::monitor
