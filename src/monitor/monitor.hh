/**
 * @file
 * DAMON-style bounded-overhead access monitoring for one node.
 *
 * The sampler watches the node's memory-access stream (every L1-level
 * load/store the node simulator sees) and maintains an adaptive set of
 * address *regions*, each carrying a per-aggregation-interval access
 * count, a write count, and an age - exactly the region abstraction
 * Linux's DAMON uses so that monitoring cost is bounded by the region
 * count, never by the footprint.  Two mechanisms keep the abstraction
 * honest:
 *
 *  - *Region update* (split): regions are periodically split at
 *    random line boundaries so differing access behaviour inside one
 *    region can surface in the next aggregation.
 *  - *Merge*: adjacent regions with similar access counts fuse back
 *    (size/age weighted, histograms merged bin-for-bin), with the
 *    similarity threshold doubling until the region count fits under
 *    the configured cap.
 *
 * Cost model and self-enforced budget: the sampler duty-cycles.  Each
 * samplingInterval opens with an inspection window of `windowTicks`
 * (starting at initialDuty x samplingInterval); accesses inside the
 * window are attributed to their region and charged
 * `sampleCheckCost` ticks of modelled overhead, accesses outside cost
 * one compare.  At every aggregation boundary the charged ticks are
 * compared against overheadBudget x aggregationInterval x cores; a
 * blown budget halves the window (throttle), a half-used budget grows
 * it back - so monitoring overhead converges under the budget no
 * matter how hot the access stream runs.
 *
 * All state (regions, duty, RNG, interval cursors) snapshots
 * bit-identically and digests for the replay-divergence trail.
 */

#ifndef HDMR_MONITOR_MONITOR_HH
#define HDMR_MONITOR_MONITOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"
#include "util/rng.hh"
#include "util/status.hh"
#include "util/units.hh"

namespace hdmr::snapshot
{
class Serializer;
class Deserializer;
} // namespace hdmr::snapshot

namespace hdmr::monitor
{

using util::Tick;

/** Sampler parameters (node-simulation time scale: microseconds). */
struct MonitorConfig
{
    /** Master switch; disabled costs nothing and changes nothing. */
    bool enabled = false;
    /** Duty-cycle recurrence of the inspection window. */
    Tick samplingInterval = 2 * util::kTicksPerUs;
    /** Region access counts close at this cadence. */
    Tick aggregationInterval = 20 * util::kTicksPerUs;
    /** Regions are re-split at this cadence. */
    Tick regionUpdateInterval = 60 * util::kTicksPerUs;
    /** Adaptive region-count bounds (DAMON min/max nr_regions). */
    unsigned minRegions = 8;
    unsigned maxRegions = 64;
    /** Fraction of simulated time monitoring may cost (self-enforced). */
    double overheadBudget = 0.02;
    /** Modelled ticks charged per inspected access. */
    Tick sampleCheckCost = 150;
    /** Starting fraction of each samplingInterval spent inspecting. */
    double initialDuty = 0.25;
    /** Cores sharing the access stream (budget normalization). */
    unsigned cores = 1;
    /** Seed of the private split-point stream. */
    std::uint64_t seed = 0xda3017;

    /**
     * Reject impossible configurations (zero/inverted intervals,
     * inverted region bounds, out-of-range budget or duty) with
     * kInvalidArgument naming the offending field; one pass, first
     * offender wins.  RegionSampler's constructor checkOk()s it.
     */
    util::Status validate() const;
};

/** One monitored address region (DAMON damon_region analogue). */
struct Region
{
    std::uint64_t start = 0; ///< first byte (line-aligned)
    std::uint64_t end = 0;   ///< one past the last byte (line-aligned)
    /** Inspected accesses in the current aggregation interval. */
    std::uint64_t nrAccesses = 0;
    /** Inspected writes in the current aggregation interval. */
    std::uint64_t nrWrites = 0;
    /** Closed access count of the previous aggregation interval. */
    std::uint64_t lastNrAccesses = 0;
    /** Consecutive aggregations with a stable access count. */
    std::uint32_t age = 0;
    /** Per-aggregation access-count history (log2 bins). */
    telemetry::Log2Histogram history;

    std::uint64_t sizeBytes() const { return end - start; }

    /** Write share of the interval's inspected accesses; 0 if none. */
    double
    writeFraction() const
    {
        return nrAccesses == 0 ? 0.0
                               : static_cast<double>(nrWrites) /
                                     static_cast<double>(nrAccesses);
    }
};

/** What one closed aggregation interval looked like. */
struct AggregationInfo
{
    /** 0-based index of the interval that just closed. */
    std::uint64_t index = 0;
    /** Absolute tick of the interval's end boundary. */
    Tick boundary = 0;
    /** Inspected accesses attributed during the interval. */
    std::uint64_t sampledAccesses = 0;
    /** Modelled overhead ticks charged during the interval. */
    std::uint64_t chargedTicks = 0;
};

/** Sampler statistics (cumulative). */
struct MonitorStats
{
    std::uint64_t totalAccesses = 0;   ///< every access seen
    std::uint64_t sampledAccesses = 0; ///< inspected (in-window)
    std::uint64_t aggregations = 0;
    std::uint64_t splits = 0;
    std::uint64_t merges = 0;
    std::uint64_t throttles = 0; ///< budget halved the duty window
    std::uint64_t boosts = 0;    ///< spare budget grew it back
    std::uint64_t chargedTicks = 0;
};

/** The adaptive region sampler. */
class RegionSampler
{
  public:
    /**
     * Fires at each aggregation boundary with the interval's *closed*
     * access counts, before regions merge and counts reset - this is
     * where the scheme engine evaluates its predicates.
     */
    using AggregationHook = std::function<void(
        const std::vector<Region> &, const AggregationInfo &)>;

    explicit RegionSampler(MonitorConfig config);

    /**
     * Observe one access.  Returns the modelled check cost (0 outside
     * the inspection window or when disabled) which the caller charges
     * into the access latency, keeping the "overhead" a simulated
     * quantity the budget can be checked against.
     */
    Tick onAccess(std::uint64_t address, bool is_write, Tick now);

    void setAggregationHook(AggregationHook hook);

    /**
     * Fires after an aggregation fully completes (counts reset, duty
     * adapted, regions re-split) - a quiescent point where monitor
     * state may be snapshotted or round-tripped safely.
     */
    void setAggregationObserver(
        std::function<void(std::uint64_t index)> observer);

    const std::vector<Region> &regions() const { return regions_; }
    const MonitorStats &stats() const { return stats_; }
    const MonitorConfig &config() const { return config_; }
    /** Current inspection-window length (duty x samplingInterval). */
    Tick windowTicks() const { return windowTicks_; }

    /**
     * Per-node access-count distribution: every region's history
     * merged bin-for-bin (telemetry::Log2Histogram::merge), no
     * re-binning.
     */
    telemetry::Log2Histogram nodeAccessHistogram() const;

    /**
     * Bind observability metrics under `prefix` ("<prefix>.samples",
     * ".aggregations", ".splits", ".merges", ".throttles", region
     * count and duty gauges, and the per-region access histogram).
     */
    void bindTelemetry(telemetry::Registry &registry,
                       const std::string &prefix);

    // ---- Snapshot/resume surface (src/snapshot). ----

    /**
     * Serialize the complete sampler state: a fingerprint of the
     * configuration, the interval cursors, the adaptive duty window,
     * the split-point RNG, the statistics, and every region including
     * its history histogram.
     */
    void saveState(snapshot::Serializer &out) const;

    /**
     * Restore a captured state into a sampler built with the same
     * configuration.  Fails the deserializer (and returns false) on a
     * foreign configuration fingerprint, malformed regions (unsorted,
     * overlapping, empty), or an impossible duty window.
     */
    bool restoreState(snapshot::Deserializer &in);

    /** FNV-1a digest over the complete mutable state. */
    std::uint64_t digest() const;

  private:
    void rollIntervals(Tick now);
    void finishAggregation(Tick boundary);
    void mergeRegions();
    std::size_t mergePass(std::uint64_t threshold);
    void splitRegions();
    bool splitRegionAt(std::size_t index, unsigned pieces);
    void touchRegion(std::uint64_t line, bool is_write);

    MonitorConfig config_;
    util::Rng rng_;
    std::vector<Region> regions_;

    /** Monotonic time cursor (core-local `now`s can reorder). */
    Tick cursor_ = 0;
    /** Current inspection-window length within each samplingInterval. */
    Tick windowTicks_ = 0;
    Tick nextAggregationAt_ = 0;
    Tick nextRegionUpdateAt_ = 0;
    /** Inspected accesses / charged ticks in the open interval. */
    std::uint64_t aggSampled_ = 0;
    std::uint64_t aggCharged_ = 0;

    MonitorStats stats_;
    AggregationHook hook_;
    std::function<void(std::uint64_t)> observer_;

    /** Registry-owned metric bindings; null until bindTelemetry(). */
    struct Telemetry
    {
        telemetry::Counter *samples = nullptr;
        telemetry::Counter *aggregations = nullptr;
        telemetry::Counter *splits = nullptr;
        telemetry::Counter *merges = nullptr;
        telemetry::Counter *throttles = nullptr;
        telemetry::Gauge *regionCount = nullptr;
        telemetry::Gauge *windowTicks = nullptr;
        telemetry::Log2Histogram *regionAccesses = nullptr;
    };
    Telemetry tm_;
};

} // namespace hdmr::monitor

#endif // HDMR_MONITOR_MONITOR_HH
