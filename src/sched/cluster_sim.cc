#include "sched/cluster_sim.hh"

#include <algorithm>
#include <cmath>

#include "snapshot/serializer.hh"
#include "util/logging.hh"

namespace hdmr::sched
{

// --------------------------------------------------------------------
// Configuration validation
// --------------------------------------------------------------------

util::Status
SpeedupTable::validate() const
{
    if (!std::isfinite(at800) || !(at800 >= 1.0))
        return util::invalidArgument(
            "SpeedupTable.at800 must be a finite speedup >= 1 "
            "(got %g)",
            at800);
    if (!std::isfinite(at600) || !(at600 >= 1.0))
        return util::invalidArgument(
            "SpeedupTable.at600 must be a finite speedup >= 1 "
            "(got %g)",
            at600);
    if (at600 > at800)
        return util::invalidArgument(
            "SpeedupTable.at600 (%g) must not exceed at800 (%g): "
            "group 0 is the faster margin group",
            at600, at800);
    return util::Status{};
}

util::Status
ResiliencePolicy::validate() const
{
    if (!std::isfinite(requeueBackoffBaseSeconds) ||
        !(requeueBackoffBaseSeconds >= 0.0))
        return util::invalidArgument(
            "ResiliencePolicy.requeueBackoffBaseSeconds must be a "
            "finite non-negative duration (got %g)",
            requeueBackoffBaseSeconds);
    if (!std::isfinite(requeueBackoffCapSeconds) ||
        !(requeueBackoffCapSeconds >= requeueBackoffBaseSeconds))
        return util::invalidArgument(
            "ResiliencePolicy.requeueBackoffCapSeconds (%g) must be "
            "finite and at least the base backoff (%g)",
            requeueBackoffCapSeconds, requeueBackoffBaseSeconds);
    if (!std::isfinite(checkpointIntervalSeconds) ||
        !(checkpointIntervalSeconds >= 0.0))
        return util::invalidArgument(
            "ResiliencePolicy.checkpointIntervalSeconds must be a "
            "finite non-negative duration (got %g)",
            checkpointIntervalSeconds);
    if (!std::isfinite(checkpointOverheadFraction) ||
        !(checkpointOverheadFraction >= 0.0) ||
        checkpointOverheadFraction >= 1.0)
        return util::invalidArgument(
            "ResiliencePolicy.checkpointOverheadFraction must be a "
            "finite fraction in [0, 1) (got %g)",
            checkpointOverheadFraction);
    return util::Status{};
}

util::Status
ClusterConfig::validate() const
{
    if (nodes == 0)
        return util::invalidArgument(
            "ClusterConfig.nodes must be at least 1");
    double fraction_sum = 0.0;
    for (std::size_t g = 0; g < kGroups; ++g) {
        const double f = groupFractions[g];
        if (!std::isfinite(f) || !(f >= 0.0) || f > 1.0)
            return util::invalidArgument(
                "ClusterConfig.groupFractions[%zu] must be a finite "
                "fraction in [0, 1] (got %g)",
                g, f);
        fraction_sum += f;
    }
    if (std::abs(fraction_sum - 1.0) > 1e-6)
        return util::invalidArgument(
            "ClusterConfig.groupFractions must sum to 1 (got %g)",
            fraction_sum);
    if (backfillDepth == 0)
        return util::invalidArgument(
            "ClusterConfig.backfillDepth must be at least 1");
    if (!std::isfinite(excursionUeMultiplier) ||
        excursionUeMultiplier < 1.0)
        return util::invalidArgument(
            "ClusterConfig.excursionUeMultiplier must be a finite "
            "value >= 1 (got %g)",
            excursionUeMultiplier);
    for (std::size_t i = 0; i < scheduleOverlay.size(); ++i) {
        const fault::FaultEvent &ev = scheduleOverlay[i];
        if (!std::isfinite(ev.atSeconds) || ev.atSeconds < 0.0)
            return util::invalidArgument(
                "ClusterConfig.scheduleOverlay[%zu].atSeconds must "
                "be finite and >= 0 (got %g)",
                i, ev.atSeconds);
        if (!std::isfinite(ev.durationSeconds) ||
            ev.durationSeconds < 0.0)
            return util::invalidArgument(
                "ClusterConfig.scheduleOverlay[%zu].durationSeconds "
                "must be finite and >= 0 (got %g)",
                i, ev.durationSeconds);
    }
    HDMR_RETURN_IF_ERROR(speedups.validate());
    HDMR_RETURN_IF_ERROR(resilience.validate());
    HDMR_RETURN_IF_ERROR(faults.validate());
    HDMR_RETURN_IF_ERROR(placement.validate());
    HDMR_RETURN_IF_ERROR(criticality.validate());
    return util::Status{};
}

// --------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------

util::CounterSet
ClusterMetrics::counters() const
{
    util::CounterSet set;
    set.add("cluster.jobs_completed",
            static_cast<double>(jobsCompleted));
    set.add("cluster.ue_injected", static_cast<double>(ueInjected));
    set.add("cluster.job_kills", static_cast<double>(jobKills));
    set.add("cluster.requeues", static_cast<double>(requeues));
    set.add("cluster.nodes_failed", static_cast<double>(nodesFailed));
    set.add("cluster.nodes_demoted", static_cast<double>(nodesDemoted));
    set.add("cluster.excursions", static_cast<double>(excursions));
    set.add("cluster.jobs_dropped", static_cast<double>(jobsDropped));
    set.add("cluster.lost_node_seconds", lostNodeSeconds);
    set.add("cluster.checkpoint_overhead_seconds",
            checkpointOverheadSeconds);
    set.add("cluster.tolerant_ues", static_cast<double>(tolerantUes));
    set.add("cluster.critical_ues", static_cast<double>(criticalUes));
    set.add("cluster.jobs_degraded",
            static_cast<double>(jobsDegraded));
    set.add("cluster.pages_degraded",
            static_cast<double>(pagesDegraded));
    set.add("cluster.data_quality_penalty", dataQualityPenalty);
    set.add("cluster.copy_node_seconds", copyNodeSeconds);
    set.add("cluster.dmr_copy_node_seconds", dmrCopyNodeSeconds);
    return set;
}

void
saveMetrics(snapshot::Serializer &out, const ClusterMetrics &m)
{
    out.writeU64(m.jobsCompleted);
    out.writeDouble(m.meanExecSeconds);
    out.writeDouble(m.meanQueueSeconds);
    out.writeDouble(m.meanTurnaroundSeconds);
    out.writeDouble(m.meanNodeUtilization);
    out.writeDouble(m.acceleratedFraction);
    out.writeU64(m.ueInjected);
    out.writeU64(m.jobKills);
    out.writeU64(m.requeues);
    out.writeU64(m.nodesFailed);
    out.writeU64(m.nodesDemoted);
    out.writeU64(m.excursions);
    out.writeU64(m.jobsDropped);
    out.writeDouble(m.lostNodeSeconds);
    out.writeDouble(m.checkpointOverheadSeconds);
    out.writeU64(m.tolerantUes);
    out.writeU64(m.criticalUes);
    out.writeU64(m.jobsDegraded);
    out.writeU64(m.pagesDegraded);
    out.writeDouble(m.dataQualityPenalty);
    out.writeDouble(m.copyNodeSeconds);
    out.writeDouble(m.dmrCopyNodeSeconds);
}

bool
restoreMetrics(snapshot::Deserializer &in, ClusterMetrics *m)
{
    m->jobsCompleted = static_cast<std::size_t>(in.readU64());
    m->meanExecSeconds = in.readDouble();
    m->meanQueueSeconds = in.readDouble();
    m->meanTurnaroundSeconds = in.readDouble();
    m->meanNodeUtilization = in.readDouble();
    m->acceleratedFraction = in.readDouble();
    m->ueInjected = in.readU64();
    m->jobKills = in.readU64();
    m->requeues = in.readU64();
    m->nodesFailed = in.readU64();
    m->nodesDemoted = in.readU64();
    m->excursions = in.readU64();
    m->jobsDropped = in.readU64();
    m->lostNodeSeconds = in.readDouble();
    m->checkpointOverheadSeconds = in.readDouble();
    m->tolerantUes = in.readU64();
    m->criticalUes = in.readU64();
    m->jobsDegraded = in.readU64();
    m->pagesDegraded = in.readU64();
    m->dataQualityPenalty = in.readDouble();
    m->copyNodeSeconds = in.readDouble();
    m->dmrCopyNodeSeconds = in.readDouble();
    return in.ok();
}

bool
metricsIdentical(const ClusterMetrics &a, const ClusterMetrics &b)
{
    return a.jobsCompleted == b.jobsCompleted &&
           a.meanExecSeconds == b.meanExecSeconds &&
           a.meanQueueSeconds == b.meanQueueSeconds &&
           a.meanTurnaroundSeconds == b.meanTurnaroundSeconds &&
           a.meanNodeUtilization == b.meanNodeUtilization &&
           a.acceleratedFraction == b.acceleratedFraction &&
           a.ueInjected == b.ueInjected && a.jobKills == b.jobKills &&
           a.requeues == b.requeues && a.nodesFailed == b.nodesFailed &&
           a.nodesDemoted == b.nodesDemoted &&
           a.excursions == b.excursions &&
           a.jobsDropped == b.jobsDropped &&
           a.lostNodeSeconds == b.lostNodeSeconds &&
           a.checkpointOverheadSeconds ==
               b.checkpointOverheadSeconds &&
           a.tolerantUes == b.tolerantUes &&
           a.criticalUes == b.criticalUes &&
           a.jobsDegraded == b.jobsDegraded &&
           a.pagesDegraded == b.pagesDegraded &&
           a.dataQualityPenalty == b.dataQualityPenalty &&
           a.copyNodeSeconds == b.copyNodeSeconds &&
           a.dmrCopyNodeSeconds == b.dmrCopyNodeSeconds;
}

// --------------------------------------------------------------------
// Heap orderings
// --------------------------------------------------------------------

namespace
{

/** Min-heap comparators: (time, seq) is a strict total order. */
bool
laterCompletion(const double a_time, const std::uint64_t a_seq,
                const double b_time, const std::uint64_t b_seq)
{
    if (a_time != b_time)
        return a_time > b_time;
    return a_seq > b_seq;
}

} // namespace

// --------------------------------------------------------------------
// Construction / capacity
// --------------------------------------------------------------------

ClusterSimulator::ClusterSimulator(ClusterConfig config)
    : config_(config), criticality_(config.criticality),
      rng_(config.seed)
{
    util::checkOk(config_.validate());
    resetCapacity();
}

void
ClusterSimulator::bindTelemetry(telemetry::Registry &registry,
                                const std::string &prefix)
{
    tm_.jobsCompleted = &registry.counter(prefix + ".jobs_completed");
    tm_.ueInjected = &registry.counter(prefix + ".ue_injected");
    tm_.jobKills = &registry.counter(prefix + ".job_kills");
    tm_.requeues = &registry.counter(prefix + ".requeues");
    tm_.jobsDropped = &registry.counter(prefix + ".jobs_dropped");
    tm_.tolerantUes = &registry.counter(prefix + ".tolerant_ues");
    tm_.criticalUes = &registry.counter(prefix + ".critical_ues");
    tm_.jobsDegraded = &registry.counter(prefix + ".jobs_degraded");
    tm_.pagesDegraded =
        &registry.counter(prefix + ".pages_degraded");
    tm_.dataQualityPenalty =
        &registry.gauge(prefix + ".data_quality_penalty");
    tm_.copyNodeSeconds =
        &registry.gauge(prefix + ".copy_node_seconds");
    tm_.nodesFailed = &registry.counter(prefix + ".nodes_failed");
    tm_.nodesDemoted = &registry.counter(prefix + ".nodes_demoted");
    tm_.excursions = &registry.counter(prefix + ".excursions");
    tm_.eventsProcessed =
        &registry.counter(prefix + ".events_processed");
    tm_.queueDepth = &registry.gauge(prefix + ".queue_depth");
    tm_.busyNodeSeconds =
        &registry.gauge(prefix + ".busy_node_seconds");
    tm_.nodeUtilization =
        &registry.gauge(prefix + ".node_utilization");
    tm_.turnaroundSeconds =
        &registry.histogram(prefix + ".turnaround_seconds");
    registry_ = &registry;
}

void
ClusterSimulator::bindTrace(telemetry::TraceRecorder *trace,
                            std::uint32_t tid)
{
    trace_ = trace;
    traceTid_ = tid;
}

void
ClusterSimulator::traceInstant(const char *name, double now) const
{
    if (trace_ != nullptr)
        trace_->instant(name, "sched", now * 1e6, traceTid_);
}

void
ClusterSimulator::resetCapacity()
{
    unsigned assigned = 0;
    for (std::size_t g = 0; g < kGroups; ++g) {
        freePerGroup_[g] = static_cast<unsigned>(
            std::round(config_.groupFractions[g] * config_.nodes));
        assigned += freePerGroup_[g];
    }
    // Fix rounding drift in the largest group.
    if (assigned != config_.nodes) {
        const int drift = static_cast<int>(config_.nodes) -
                          static_cast<int>(assigned);
        freePerGroup_[0] =
            static_cast<unsigned>(static_cast<int>(freePerGroup_[0]) +
                                  drift);
    }
    totalPerGroup_ = freePerGroup_;
    pendingFailures_ = {0, 0, 0};
    pendingDemotions_ = {0, 0, 0};
}

unsigned
ClusterSimulator::totalFree() const
{
    return freePerGroup_[0] + freePerGroup_[1] + freePerGroup_[2];
}

unsigned
ClusterSimulator::capacity() const
{
    return totalPerGroup_[0] + totalPerGroup_[1] + totalPerGroup_[2];
}

std::size_t
ClusterSimulator::groupOfTarget(unsigned target) const
{
    const unsigned cap = capacity();
    if (cap == 0)
        return kGroups;
    unsigned idx = target % cap;
    for (std::size_t g = 0; g < kGroups; ++g) {
        if (idx < totalPerGroup_[g])
            return g;
        idx -= totalPerGroup_[g];
    }
    return kGroups - 1;
}

void
ClusterSimulator::applyClusterFault(const fault::FaultEvent &fault)
{
    if (fault.kind == fault::FaultKind::kTemperatureExcursion) {
        // Fleet-wide hot window: jobs started before hotUntil carry
        // the elevated UE hazard.  Overlapping windows union.
        ++st_.metrics.excursions;
        HDMR_TM_INC(tm_.excursions);
        traceInstant("temperature_excursion", fault.atSeconds);
        st_.hotUntil = std::max(
            st_.hotUntil, fault.atSeconds + fault.durationSeconds);
        return;
    }

    std::size_t g = groupOfTarget(fault.target);
    if (g >= kGroups)
        return; // no surviving nodes left to fault

    switch (fault.kind) {
      case fault::FaultKind::kNodeFailure:
        ++st_.metrics.nodesFailed;
        HDMR_TM_INC(tm_.nodesFailed);
        traceInstant("node_failure", fault.atSeconds);
        if (freePerGroup_[g] > 0) {
            --freePerGroup_[g];
            --totalPerGroup_[g];
        } else {
            // All of the group is busy: the node drops out when its
            // current job releases it.
            ++pendingFailures_[g];
        }
        break;

      case fault::FaultKind::kGroupDemotion:
        if (g == kGroups - 1) {
            // Already in the no-margin group; reclassify the fastest
            // group that still has nodes instead.
            if (totalPerGroup_[0] > 0)
                g = 0;
            else if (totalPerGroup_[1] > 0)
                g = 1;
            else
                return;
        }
        ++st_.metrics.nodesDemoted;
        HDMR_TM_INC(tm_.nodesDemoted);
        traceInstant("group_demotion", fault.atSeconds);
        if (freePerGroup_[g] > 0) {
            --freePerGroup_[g];
            --totalPerGroup_[g];
            ++freePerGroup_[g + 1];
            ++totalPerGroup_[g + 1];
        } else {
            ++pendingDemotions_[g];
        }
        break;

      default:
        break; // node-layer kinds are not delivered here
    }
}

void
ClusterSimulator::drainDeferredFaults()
{
    for (std::size_t g = 0; g < kGroups; ++g) {
        while (pendingFailures_[g] > 0 && freePerGroup_[g] > 0) {
            --pendingFailures_[g];
            --freePerGroup_[g];
            --totalPerGroup_[g];
        }
        while (g + 1 < kGroups && pendingDemotions_[g] > 0 &&
               freePerGroup_[g] > 0) {
            --pendingDemotions_[g];
            --freePerGroup_[g];
            --totalPerGroup_[g];
            ++freePerGroup_[g + 1];
            ++totalPerGroup_[g + 1];
        }
    }
}

bool
ClusterSimulator::allocate(unsigned count,
                           std::array<unsigned, kGroups> &allocated)
{
    allocated = {0, 0, 0};
    if (totalFree() < count)
        return false;

    if (config_.marginAware) {
        // The paper's policy: the fastest group with >= count free
        // nodes takes the whole job; otherwise spill across groups
        // fastest-first.
        for (std::size_t g = 0; g < kGroups; ++g) {
            if (freePerGroup_[g] >= count) {
                freePerGroup_[g] -= count;
                allocated[g] = count;
                return true;
            }
        }
        unsigned remaining = count;
        for (std::size_t g = 0; g < kGroups && remaining > 0; ++g) {
            const unsigned take =
                std::min(freePerGroup_[g], remaining);
            freePerGroup_[g] -= take;
            allocated[g] = take;
            remaining -= take;
        }
        return true;
    }

    // Margin-unaware (Slurm default): nodes come from an undifferen-
    // tiated pool; model it as hypergeometric draws across groups.
    unsigned remaining = count;
    while (remaining > 0) {
        const unsigned free_now = totalFree();
        std::uint64_t pick = rng_.uniformInt(1, free_now);
        for (std::size_t g = 0; g < kGroups; ++g) {
            if (pick <= freePerGroup_[g]) {
                const unsigned take = std::min<unsigned>(
                    remaining, std::max<unsigned>(1, remaining / 4));
                const unsigned granted =
                    std::min(freePerGroup_[g], take);
                freePerGroup_[g] -= granted;
                allocated[g] += granted;
                remaining -= granted;
                break;
            }
            pick -= freePerGroup_[g];
        }
    }
    return true;
}

double
ClusterSimulator::speedupFor(
    const traces::Job &job,
    const std::array<unsigned, kGroups> &allocated,
    double tolerant_fraction)
{
    if (!config_.heteroDmr)
        return 1.0;
    // Under Hetero-DMR a job using >= 50 % memory cannot replicate
    // (no speedup); Het-Reliability only needs the *critical* share
    // to fit beside its copy, so tolerant high-usage jobs qualify.
    if (!config_.placement.marginEligible(job.usageClass,
                                          tolerant_fraction))
        return 1.0;
    // MPI couples the job to its slowest node.
    std::size_t slowest = 0;
    for (std::size_t g = 0; g < kGroups; ++g) {
        if (allocated[g] > 0)
            slowest = g;
    }
    return config_.speedups.forGroup(slowest);
}

// --------------------------------------------------------------------
// Event loop
// --------------------------------------------------------------------

void
ClusterSimulator::initRun(const std::vector<traces::Job> &jobs,
                          double digest_every_seconds)
{
    resetCapacity();
    rng_.seed(config_.seed);
    st_ = RunState{};
    st_.jobs = &jobs;
    st_.jobState.assign(jobs.size(), JobState{});
    st_.trail.epochSeconds = digest_every_seconds;

    // Cluster-scoped campaign events.  Job-killing UEs do not come
    // from this schedule: they use nested per-(job, attempt) hazard
    // draws (FaultCampaign::killTimeSeconds) so fault realizations at
    // a higher intensity are a superset of those at a lower one.
    std::vector<fault::FaultEvent> cluster_faults;
    const auto cluster_scoped = [](const fault::FaultEvent &ev) {
        return ev.kind == fault::FaultKind::kNodeFailure ||
               ev.kind == fault::FaultKind::kGroupDemotion ||
               ev.kind == fault::FaultKind::kTemperatureExcursion;
    };
    if (config_.faults.enabled()) {
        fault::CampaignConfig fc = config_.faults;
        fc.targets = config_.nodes; // rates are per node-hour
        for (const fault::FaultEvent &ev :
             fault::FaultCampaign(fc).schedule()) {
            if (cluster_scoped(ev))
                cluster_faults.push_back(ev);
        }
    }
    // Chaos-harness overlay (drift-driven demotions and fleet-wide
    // hot windows), merged by time; campaign events win ties.
    if (!config_.scheduleOverlay.empty()) {
        for (const fault::FaultEvent &ev : config_.scheduleOverlay) {
            if (cluster_scoped(ev))
                cluster_faults.push_back(ev);
        }
        std::stable_sort(
            cluster_faults.begin(), cluster_faults.end(),
            [](const fault::FaultEvent &a, const fault::FaultEvent &b) {
                return a.atSeconds < b.atSeconds;
            });
    }
    st_.faults = fault::ScheduleCursor(std::move(cluster_faults));
    st_.active = true;
}

void
ClusterSimulator::startJob(std::uint32_t job_index, double now)
{
    const traces::Job &job = (*st_.jobs)[job_index];
    JobState &jst = st_.jobState[job_index];
    if (jst.remainingSeconds < 0.0)
        jst.remainingSeconds = job.runtimeSeconds;
    const unsigned attempt = ++jst.attempts;

    // Margin UEs strike harder while a temperature excursion holds
    // the fleet hot (error rates ~4x at 45 degC); scaling the hazard
    // preserves the nested-realization property (kill times only ever
    // move earlier).
    const double hot_factor =
        now < st_.hotUntil ? config_.excursionUeMultiplier : 1.0;
    const double ue_node_rate = config_.faults.intensity *
                                config_.faults.uncorrectablePerHour *
                                hot_factor / 3600.0;
    const double ckpt_interval =
        config_.resilience.checkpointIntervalSeconds;
    const double ckpt_ovh =
        ckpt_interval > 0.0
            ? config_.resilience.checkpointOverheadFraction
            : 0.0;

    std::array<unsigned, kGroups> allocated;
    const bool ok = allocate(job.nodes, allocated);
    hdmr_assert(ok, "startJob called without room");
    const wl::JobCriticality crit =
        criticality_.jobCriticality(job.id);
    const double speedup =
        speedupFor(job, allocated, crit.tolerantFraction);
    const double exec =
        jst.remainingSeconds / speedup * (1.0 + ckpt_ovh);
    const double est = job.walltimeSeconds / speedup;

    // Will a UE kill this attempt?  Margin UEs only strike jobs
    // actually running fast; the hazard scales with the job's node
    // count.  Under Het-Reliability semantics a strike landing on a
    // tolerant (unreplicated) page is *absorbed*: the page degrades
    // and the attempt keeps running, so we walk the (job, attempt)
    // hazard sequence until a critical page is hit or the attempt
    // outlives the horizon.  Page-class draws are pure hashes of the
    // criticality seed - no run-RNG stream is consumed - so a resumed
    // snapshot replays the identical strike sequence, and the default
    // Hetero-DMR placement (strike probability 0) reproduces the
    // single-draw seed behaviour bit for bit.
    constexpr unsigned kMaxAbsorbedStrikes = 64;
    double kill_after = std::numeric_limits<double>::infinity();
    unsigned tolerant_hits = 0;
    if (ue_node_rate > 0.0 && speedup > 1.0) {
        const double job_rate =
            ue_node_rate * static_cast<double>(job.nodes);
        const double strike_tolerant_p =
            config_.placement.tolerantStrikeProbability(
                crit.tolerantFraction);
        const std::uint64_t strike_scope =
            (static_cast<std::uint64_t>(job.id) << 20) + attempt;
        double strike_at = fault::FaultCampaign::killTimeSeconds(
            config_.faults.seed, job.id, attempt, job_rate);
        while (strike_at < exec && strike_tolerant_p > 0.0 &&
               tolerant_hits < kMaxAbsorbedStrikes &&
               wl::pageIsTolerant(config_.criticality.seed,
                                  strike_scope, tolerant_hits,
                                  strike_tolerant_p)) {
            ++tolerant_hits;
            strike_at += fault::FaultCampaign::killTimeSeconds(
                config_.faults.seed, job.id,
                attempt + (tolerant_hits << 16), job_rate);
        }
        kill_after = strike_at;
    }

    // Degradation bookkeeping: every absorbed strike is a delivered
    // UE that downgraded one tolerant page instead of killing the
    // attempt, each carrying the configured data-quality penalty.
    if (tolerant_hits > 0) {
        st_.metrics.ueInjected += tolerant_hits;
        st_.metrics.tolerantUes += tolerant_hits;
        st_.metrics.pagesDegraded += tolerant_hits;
        st_.metrics.dataQualityPenalty +=
            static_cast<double>(tolerant_hits) *
            config_.placement.degradePenalty;
        HDMR_TM_ADD(tm_.ueInjected, tolerant_hits);
        HDMR_TM_ADD(tm_.tolerantUes, tolerant_hits);
        HDMR_TM_ADD(tm_.pagesDegraded, tolerant_hits);
        HDMR_TM_GAUGE_ADD(tm_.dataQualityPenalty,
                          static_cast<double>(tolerant_hits) *
                              config_.placement.degradePenalty);
        traceInstant("page_degrade", now);
    }

    // Copy-capacity accounting: while the attempt runs fast, its
    // replicated share occupies copy capacity.  The full-replication
    // cost of the same placement is tracked alongside, so
    // 1 - copy/dmrCopy is the capacity this placement reclaims from
    // Hetero-DMR's tax (identically 0 under the default policy).
    if (speedup > 1.0) {
        const double fast_seconds = std::min(kill_after, exec);
        const unsigned usage_class =
            job.usageClass < 3 ? job.usageClass : 2;
        const double footprint =
            fast_seconds * static_cast<double>(job.nodes) *
            config_.placement.usageRepresentative[usage_class];
        const double copy =
            footprint *
            config_.placement.replicatedShare(crit.tolerantFraction);
        st_.metrics.copyNodeSeconds += copy;
        st_.metrics.dmrCopyNodeSeconds += footprint;
        HDMR_TM_GAUGE_ADD(tm_.copyNodeSeconds, copy);
    }

    RunningJob rj;
    rj.jobIndex = job_index;
    rj.allocated = allocated;
    rj.attempt = attempt;
    rj.estimatedEndTime = now + est;
    rj.seq = st_.startSeq++;

    if (kill_after < exec) {
        // Attempt dies mid-run; metrics for the job are deferred to
        // its eventually-successful attempt.
        rj.killed = true;
        rj.endTime = now + kill_after;
        ++st_.metrics.ueInjected;
        ++st_.metrics.criticalUes;
        ++st_.metrics.jobKills;
        HDMR_TM_INC(tm_.ueInjected);
        HDMR_TM_INC(tm_.criticalUes);
        HDMR_TM_INC(tm_.jobKills);
        traceInstant("job_kill", rj.endTime);
        const double useful =
            kill_after / (1.0 + ckpt_ovh) * speedup;
        double saved = 0.0;
        if (ckpt_interval > 0.0) {
            saved = std::floor(useful / ckpt_interval) *
                    ckpt_interval;
        }
        saved = std::min(saved, jst.remainingSeconds);
        jst.remainingSeconds -= saved;
        st_.metrics.lostNodeSeconds +=
            (kill_after - saved / speedup * (1.0 + ckpt_ovh)) *
            static_cast<double>(job.nodes);
        st_.metrics.checkpointOverheadSeconds +=
            kill_after * ckpt_ovh / (1.0 + ckpt_ovh);
        st_.busyNodeSeconds += kill_after * job.nodes;
        st_.spanEnd = std::max(st_.spanEnd, rj.endTime);
    } else {
        rj.endTime = now + exec;
        st_.execSum += exec;
        const double qdelay = now - job.submitSeconds;
        st_.queueSum += qdelay;
        st_.turnaroundSum += qdelay + exec;
        st_.busyNodeSeconds += exec * job.nodes;
        ++st_.metrics.jobsCompleted;
        HDMR_TM_INC(tm_.jobsCompleted);
        HDMR_TM_RECORD(tm_.turnaroundSeconds,
                       static_cast<std::uint64_t>(qdelay + exec));
        if (config_.heteroDmr &&
            config_.placement.marginEligible(job.usageClass,
                                             crit.tolerantFraction)) {
            ++st_.eligible;
            st_.accelerated += speedup > 1.0;
        }
        if (tolerant_hits > 0) {
            ++st_.metrics.jobsDegraded;
            HDMR_TM_INC(tm_.jobsDegraded);
        }
        st_.metrics.checkpointOverheadSeconds +=
            exec * ckpt_ovh / (1.0 + ckpt_ovh);
        st_.spanEnd = std::max(st_.spanEnd, rj.endTime);
    }
    st_.running.push_back(rj);
    st_.completions.push_back(
        Completion{rj.endTime, rj.seq, st_.running.size() - 1});
    std::push_heap(st_.completions.begin(), st_.completions.end(),
                   [](const Completion &a, const Completion &b) {
                       return laterCompletion(a.time, a.seq, b.time,
                                              b.seq);
                   });
}

void
ClusterSimulator::trySchedule(double now)
{
    auto &pending = st_.pending;
    const auto &jobs = *st_.jobs;

    // FCFS head + EASY backfill.  Entries consumed by an earlier
    // backfill pass are nulled in place; skip them.
    while (!pending.empty()) {
        if (pending.front().jobIndex < 0) {
            pending.pop_front();
            continue;
        }
        const traces::Job &head =
            jobs[static_cast<std::size_t>(pending.front().jobIndex)];
        if (head.nodes > capacity()) {
            // Node failures shrank the machine below the job.
            ++st_.metrics.jobsDropped;
            HDMR_TM_INC(tm_.jobsDropped);
            pending.pop_front();
            continue;
        }
        if (head.nodes > totalFree())
            break;
        startJob(static_cast<std::uint32_t>(pending.front().jobIndex),
                 now);
        pending.pop_front();
    }
    if (pending.empty())
        return;

    // Head blocked: compute its reservation ("shadow") time from the
    // running jobs' *estimated* completions.
    const unsigned needed =
        jobs[static_cast<std::size_t>(pending.front().jobIndex)].nodes;
    std::vector<std::pair<double, unsigned>> est_frees;
    est_frees.reserve(st_.running.size());
    for (const RunningJob &rj : st_.running) {
        if (!rj.live)
            continue;
        unsigned nodes = 0;
        for (unsigned n : rj.allocated)
            nodes += n;
        est_frees.emplace_back(rj.estimatedEndTime, nodes);
    }
    std::sort(est_frees.begin(), est_frees.end());
    const unsigned free_now = totalFree();
    double shadow_time = now;
    unsigned accumulating = free_now;
    for (const auto &[when, nodes] : est_frees) {
        accumulating += nodes;
        if (accumulating >= needed) {
            shadow_time = when;
            break;
        }
    }
    // Nodes left over at the shadow time after the head starts.
    const unsigned extra_nodes =
        accumulating >= needed ? accumulating - needed : 0;

    // Backfill: a queued job may jump ahead if it fits now and either
    // finishes before the shadow time or uses few enough nodes to
    // leave the head's reservation intact.
    const std::size_t depth =
        std::min(pending.size(), config_.backfillDepth);
    for (std::size_t i = 1; i < depth; ++i) {
        if (pending[i].jobIndex < 0)
            continue;
        const auto job_index =
            static_cast<std::uint32_t>(pending[i].jobIndex);
        const traces::Job &job = jobs[job_index];
        if (job.nodes > totalFree())
            continue;
        const bool before_shadow =
            now + job.walltimeSeconds <= shadow_time;
        const bool within_extra = job.nodes <= extra_nodes;
        if (before_shadow || within_extra) {
            startJob(job_index, now);
            pending[i].jobIndex = -1; // consumed
        }
    }
    while (!pending.empty() && pending.front().jobIndex < 0)
        pending.pop_front();
}

void
ClusterSimulator::recordDigests(double now)
{
    const double every = st_.trail.epochSeconds;
    if (!(every > 0.0))
        return;
    while (static_cast<double>(st_.digestEpoch + 1) * every <= now) {
        st_.trail.digests.push_back(stateDigest());
        ++st_.digestEpoch;
    }
}

void
ClusterSimulator::emitSnapshot(const RunOptions &options) const
{
    if (!options.snapshotSink)
        return;
    snapshot::Serializer out;
    serializeState(out);
    options.snapshotSink(out.data());
}

ClusterMetrics
ClusterSimulator::finalizeMetrics() const
{
    ClusterMetrics metrics = st_.metrics;
    if (metrics.jobsCompleted > 0) {
        const auto n = static_cast<double>(metrics.jobsCompleted);
        metrics.meanExecSeconds = st_.execSum / n;
        metrics.meanQueueSeconds = st_.queueSum / n;
        metrics.meanTurnaroundSeconds = st_.turnaroundSum / n;
    }
    const double span = std::max(st_.spanEnd, st_.lastEventTime);
    if (span > 0.0) {
        metrics.meanNodeUtilization =
            st_.busyNodeSeconds / (span * config_.nodes);
    }
    if (st_.eligible > 0) {
        metrics.acceleratedFraction =
            static_cast<double>(st_.accelerated) /
            static_cast<double>(st_.eligible);
    }
    // Derived level; written post-digest, so it never perturbs the
    // replay-divergence trail (both a straight-through and a resumed
    // run overwrite it with the same final value).
    HDMR_TM_SET(tm_.nodeUtilization, metrics.meanNodeUtilization);
    return metrics;
}

RunOutcome
ClusterSimulator::runLoop(const RunOptions &options)
{
    hdmr_assert(st_.active, "runLoop without initRun/restoreState");
    const auto &jobs = *st_.jobs;
    const double inf = std::numeric_limits<double>::infinity();

    const double snap_every = options.snapshotEverySeconds;
    double next_snapshot_at =
        snap_every > 0.0
            ? (std::floor(st_.lastEventTime / snap_every) + 1.0) *
                  snap_every
            : inf;

    const auto completion_later = [](const Completion &a,
                                     const Completion &b) {
        return laterCompletion(a.time, a.seq, b.time, b.seq);
    };
    const auto resubmit_later = [](const Resubmit &a,
                                   const Resubmit &b) {
        return laterCompletion(a.time, a.seq, b.time, b.seq);
    };

    bool completed = true;
    bool deadline_hit = false;
    while (st_.nextArrival < jobs.size() || !st_.completions.empty() ||
           !st_.faults.done() || !st_.resubmits.empty()) {
        const double t_arrival =
            st_.nextArrival < jobs.size()
                ? jobs[st_.nextArrival].submitSeconds
                : inf;
        const double t_fault = st_.faults.nextTimeSeconds();
        const double t_resubmit =
            st_.resubmits.empty() ? inf : st_.resubmits.front().time;
        const double t_completion =
            st_.completions.empty() ? inf : st_.completions.front().time;

        // Tie order: faults first (capacity changes are visible to
        // anything scheduled at the same instant), then trace
        // arrivals, then resubmissions, then completions (matching
        // the fault-free arrival-before-completion order).
        enum class Kind
        {
            kFault,
            kArrival,
            kResubmit,
            kCompletion
        } kind;
        double now;
        if (!st_.faults.done() && t_fault <= t_arrival &&
            t_fault <= t_resubmit && t_fault <= t_completion) {
            kind = Kind::kFault;
            now = t_fault;
        } else if (st_.nextArrival < jobs.size() &&
                   t_arrival <= t_resubmit &&
                   t_arrival <= t_completion) {
            kind = Kind::kArrival;
            now = t_arrival;
        } else if (!st_.resubmits.empty() &&
                   t_resubmit <= t_completion) {
            kind = Kind::kResubmit;
            now = t_resubmit;
        } else {
            kind = Kind::kCompletion;
            now = t_completion;
        }

        // Decision-point bookkeeping *before* the event mutates
        // anything: digest epochs the simulation is about to cross,
        // then stop/snapshot checks.  A resumed run re-enters here
        // with the exact pre-event state, so the digest trail and the
        // replay are bit-identical.
        recordDigests(now);
        if (options.deadlineExpired && options.deadlineExpired()) {
            // Deadline early-out: no snapshot, the caller is about to
            // discard this rollout for a degraded answer anyway.
            completed = false;
            deadline_hit = true;
            break;
        }
        if (now >= options.stopAfterSeconds ||
            (options.interrupted && options.interrupted())) {
            emitSnapshot(options);
            completed = false;
            break;
        }
        if (now >= next_snapshot_at) {
            emitSnapshot(options);
            next_snapshot_at =
                (std::floor(now / snap_every) + 1.0) * snap_every;
        }

        switch (kind) {
          case Kind::kFault:
            applyClusterFault(st_.faults.current());
            st_.faults.advance();
            break;

          case Kind::kArrival: {
            const auto job_index =
                static_cast<std::uint32_t>(st_.nextArrival++);
            if (jobs[job_index].nodes > config_.nodes)
                continue; // cannot ever run
            st_.pending.push_back(
                PendingJob{static_cast<std::int64_t>(job_index), now});
            break;
          }

          case Kind::kResubmit: {
            const Resubmit resubmit = st_.resubmits.front();
            std::pop_heap(st_.resubmits.begin(), st_.resubmits.end(),
                          resubmit_later);
            st_.resubmits.pop_back();
            st_.pending.push_back(PendingJob{
                static_cast<std::int64_t>(resubmit.jobIndex),
                resubmit.time});
            break;
          }

          case Kind::kCompletion: {
            const Completion done = st_.completions.front();
            std::pop_heap(st_.completions.begin(),
                          st_.completions.end(), completion_later);
            st_.completions.pop_back();
            RunningJob &rj = st_.running[done.index];
            rj.live = false;
            for (std::size_t g = 0; g < kGroups; ++g)
                freePerGroup_[g] += rj.allocated[g];
            drainDeferredFaults();
            if (rj.killed) {
                // Requeue with capped exponential backoff.
                ++st_.metrics.requeues;
                HDMR_TM_INC(tm_.requeues);
                const double backoff = std::min(
                    config_.resilience.requeueBackoffCapSeconds,
                    config_.resilience.requeueBackoffBaseSeconds *
                        std::pow(2.0, static_cast<double>(
                                          rj.attempt - 1)));
                st_.resubmits.push_back(Resubmit{
                    now + backoff, rj.jobIndex, st_.resubmitSeq++});
                std::push_heap(st_.resubmits.begin(),
                               st_.resubmits.end(), resubmit_later);
            }
            break;
          }
        }
        st_.lastEventTime = now;
        trySchedule(now);
        ++st_.eventsProcessed;
        HDMR_TM_INC(tm_.eventsProcessed);
        HDMR_TM_SET(tm_.queueDepth,
                    static_cast<double>(st_.pending.size()));
        HDMR_TM_SET(tm_.busyNodeSeconds, st_.busyNodeSeconds);
    }

    RunOutcome outcome;
    if (completed) {
        // Terminal digest: the final state both the straight-through
        // and any resumed replay must agree on.
        st_.trail.digests.push_back(stateDigest());
    }
    outcome.metrics = finalizeMetrics();
    outcome.completed = completed;
    outcome.deadlineHit = deadline_hit;
    outcome.simSeconds = st_.lastEventTime;
    outcome.eventsProcessed = st_.eventsProcessed;
    outcome.digests = st_.trail;
    if (completed)
        st_.active = false;
    return outcome;
}

ClusterMetrics
ClusterSimulator::run(const std::vector<traces::Job> &jobs)
{
    return run(jobs, RunOptions{}).metrics;
}

RunOutcome
ClusterSimulator::run(const std::vector<traces::Job> &jobs,
                      const RunOptions &options)
{
    if (!std::isfinite(options.digestEverySeconds) ||
        !(options.digestEverySeconds > 0.0))
        util::fatal("RunOptions.digestEverySeconds must be a finite "
                    "positive duration (got %g)",
                    options.digestEverySeconds);
    if (!(options.snapshotEverySeconds >= 0.0))
        util::fatal("RunOptions.snapshotEverySeconds must be "
                    "non-negative (got %g)",
                    options.snapshotEverySeconds);
    initRun(jobs, options.digestEverySeconds);
    return runLoop(options);
}

RunOutcome
ClusterSimulator::resume(const RunOptions &options)
{
    hdmr_assert(st_.active,
                "resume() without a successful restoreState()");
    return runLoop(options);
}

// --------------------------------------------------------------------
// Digesting and serialization
// --------------------------------------------------------------------

std::uint64_t
ClusterSimulator::configDigest() const
{
    snapshot::Fnv1a hash;
    hash.addU32(config_.nodes);
    for (const double f : config_.groupFractions)
        hash.addDouble(f);
    hash.addU32(config_.heteroDmr ? 1 : 0);
    hash.addU32(config_.marginAware ? 1 : 0);
    hash.addDouble(config_.speedups.at800);
    hash.addDouble(config_.speedups.at600);
    hash.addU64(config_.backfillDepth);
    hash.addU64(config_.seed);
    const fault::CampaignConfig &fc = config_.faults;
    hash.addDouble(fc.intensity);
    hash.addU64(fc.seed);
    hash.addDouble(fc.horizonSeconds);
    hash.addU32(fc.targets);
    hash.addDouble(fc.uncorrectablePerHour);
    hash.addDouble(fc.burstsPerHour);
    hash.addDouble(fc.driftEventsPerHour);
    hash.addDouble(fc.excursionsPerHour);
    hash.addDouble(fc.nodeFailuresPerHour);
    hash.addDouble(fc.demotionsPerHour);
    hash.addDouble(fc.burstErrorsMean);
    hash.addDouble(fc.driftStepMts);
    hash.addDouble(fc.excursionMeanSeconds);
    const ResiliencePolicy &rp = config_.resilience;
    hash.addDouble(rp.requeueBackoffBaseSeconds);
    hash.addDouble(rp.requeueBackoffCapSeconds);
    hash.addDouble(rp.checkpointIntervalSeconds);
    hash.addDouble(rp.checkpointOverheadFraction);
    // Placement + criticality decide which jobs run fast and which
    // UEs degrade instead of kill: part of the campaign identity.
    hash.addU64(config_.placement.digest());
    hash.addU64(config_.criticality.digest());
    // The chaos overlay is part of the campaign realization: a
    // snapshot taken under one drift scenario must not resume under
    // another.
    hash.addDouble(config_.excursionUeMultiplier);
    hash.addU64(config_.scheduleOverlay.size());
    for (const fault::FaultEvent &ev : config_.scheduleOverlay) {
        hash.addDouble(ev.atSeconds);
        hash.addU32(static_cast<std::uint32_t>(ev.kind));
        hash.addU32(ev.target);
        hash.addDouble(ev.magnitude);
        hash.addDouble(ev.durationSeconds);
    }
    return hash.value();
}

std::uint64_t
ClusterSimulator::traceDigest(const std::vector<traces::Job> &jobs)
{
    snapshot::Fnv1a hash;
    hash.addU64(jobs.size());
    for (const traces::Job &job : jobs) {
        hash.addU32(job.id);
        hash.addDouble(job.submitSeconds);
        hash.addU32(job.nodes);
        hash.addDouble(job.runtimeSeconds);
        hash.addDouble(job.walltimeSeconds);
        hash.addU32(job.usageClass);
    }
    return hash.value();
}

std::uint64_t
ClusterSimulator::stateDigest() const
{
    snapshot::Fnv1a hash;
    for (std::size_t g = 0; g < kGroups; ++g) {
        hash.addU32(freePerGroup_[g]);
        hash.addU32(totalPerGroup_[g]);
        hash.addU32(pendingFailures_[g]);
        hash.addU32(pendingDemotions_[g]);
    }
    const util::RngState rng_state = rng_.state();
    for (const std::uint64_t word : rng_state.s)
        hash.addU64(word);
    hash.addU32(rng_state.hasSpareNormal ? 1 : 0);
    hash.addDouble(rng_state.spareNormal);

    hash.addU64(st_.nextArrival);
    hash.addU64(st_.resubmitSeq);
    hash.addU64(st_.startSeq);
    hash.addDouble(st_.hotUntil);
    hash.addU64(st_.faults.index());
    hash.addDouble(st_.execSum);
    hash.addDouble(st_.queueSum);
    hash.addDouble(st_.turnaroundSum);
    hash.addDouble(st_.busyNodeSeconds);
    hash.addU64(st_.eligible);
    hash.addU64(st_.accelerated);
    hash.addDouble(st_.lastEventTime);
    hash.addDouble(st_.spanEnd);
    hash.addU64(st_.eventsProcessed);

    hash.addU64(st_.metrics.jobsCompleted);
    hash.addU64(st_.metrics.ueInjected);
    hash.addU64(st_.metrics.jobKills);
    hash.addU64(st_.metrics.requeues);
    hash.addU64(st_.metrics.nodesFailed);
    hash.addU64(st_.metrics.nodesDemoted);
    hash.addU64(st_.metrics.excursions);
    hash.addU64(st_.metrics.jobsDropped);
    hash.addDouble(st_.metrics.lostNodeSeconds);
    hash.addDouble(st_.metrics.checkpointOverheadSeconds);
    hash.addU64(st_.metrics.tolerantUes);
    hash.addU64(st_.metrics.criticalUes);
    hash.addU64(st_.metrics.jobsDegraded);
    hash.addU64(st_.metrics.pagesDegraded);
    hash.addDouble(st_.metrics.dataQualityPenalty);
    hash.addDouble(st_.metrics.copyNodeSeconds);
    hash.addDouble(st_.metrics.dmrCopyNodeSeconds);

    // Live running jobs in start order (dead slots are not state: a
    // resumed run compacts them away and must hash identically).
    std::uint64_t live = 0;
    for (const RunningJob &rj : st_.running) {
        if (!rj.live)
            continue;
        ++live;
        hash.addU64(rj.seq);
        hash.addU32(rj.jobIndex);
        hash.addDouble(rj.endTime);
        hash.addDouble(rj.estimatedEndTime);
        for (const unsigned n : rj.allocated)
            hash.addU32(n);
        hash.addU32(rj.attempt);
        hash.addU32(rj.killed ? 1 : 0);
    }
    hash.addU64(live);

    // The pending queue verbatim, including consumed backfill slots:
    // they still occupy backfill-depth window positions.
    hash.addU64(st_.pending.size());
    for (const PendingJob &pj : st_.pending) {
        hash.addU64(static_cast<std::uint64_t>(pj.jobIndex));
        hash.addDouble(pj.submit);
    }

    // Resubmits in canonical (time, seq) order; the heap's internal
    // array order is layout-dependent and not state.
    std::vector<Resubmit> resubmits = st_.resubmits;
    std::sort(resubmits.begin(), resubmits.end(),
              [](const Resubmit &a, const Resubmit &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.seq < b.seq;
              });
    hash.addU64(resubmits.size());
    for (const Resubmit &rs : resubmits) {
        hash.addDouble(rs.time);
        hash.addU32(rs.jobIndex);
        hash.addU64(rs.seq);
    }

    hash.addU64(st_.jobState.size());
    for (const JobState &jst : st_.jobState) {
        hash.addU32(jst.attempts);
        hash.addDouble(jst.remainingSeconds);
    }

    // When telemetry is bound, the registry is part of the state a
    // resumed run must reproduce bit-identically.
    if (registry_ != nullptr)
        hash.addU64(registry_->digest());
    return hash.value();
}

void
ClusterSimulator::serializeState(snapshot::Serializer &out) const
{
    out.writeU64(configDigest());
    out.writeU64(traceDigest(*st_.jobs));

    for (std::size_t g = 0; g < kGroups; ++g) {
        out.writeU32(freePerGroup_[g]);
        out.writeU32(totalPerGroup_[g]);
        out.writeU32(pendingFailures_[g]);
        out.writeU32(pendingDemotions_[g]);
    }
    const util::RngState rng_state = rng_.state();
    for (const std::uint64_t word : rng_state.s)
        out.writeU64(word);
    out.writeBool(rng_state.hasSpareNormal);
    out.writeDouble(rng_state.spareNormal);

    out.writeU64(st_.nextArrival);
    out.writeU64(st_.resubmitSeq);
    out.writeU64(st_.startSeq);
    out.writeDouble(st_.hotUntil);
    st_.faults.save(out);
    out.writeDouble(st_.execSum);
    out.writeDouble(st_.queueSum);
    out.writeDouble(st_.turnaroundSum);
    out.writeDouble(st_.busyNodeSeconds);
    out.writeU64(st_.eligible);
    out.writeU64(st_.accelerated);
    out.writeDouble(st_.lastEventTime);
    out.writeDouble(st_.spanEnd);
    out.writeU64(st_.eventsProcessed);
    saveMetrics(out, st_.metrics);

    // Live running jobs only: the completion heap is rebuilt
    // declaratively from these on restore, never serialized.
    std::uint64_t live = 0;
    for (const RunningJob &rj : st_.running)
        live += rj.live ? 1 : 0;
    out.writeU64(live);
    for (const RunningJob &rj : st_.running) {
        if (!rj.live)
            continue;
        out.writeU64(rj.seq);
        out.writeU32(rj.jobIndex);
        out.writeDouble(rj.endTime);
        out.writeDouble(rj.estimatedEndTime);
        for (const unsigned n : rj.allocated)
            out.writeU32(n);
        out.writeU32(rj.attempt);
        out.writeBool(rj.killed);
    }

    out.writeU64(st_.pending.size());
    for (const PendingJob &pj : st_.pending) {
        out.writeI64(pj.jobIndex);
        out.writeDouble(pj.submit);
    }

    std::vector<Resubmit> resubmits = st_.resubmits;
    std::sort(resubmits.begin(), resubmits.end(),
              [](const Resubmit &a, const Resubmit &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.seq < b.seq;
              });
    out.writeU64(resubmits.size());
    for (const Resubmit &rs : resubmits) {
        out.writeDouble(rs.time);
        out.writeU32(rs.jobIndex);
        out.writeU64(rs.seq);
    }

    out.writeU64(st_.jobState.size());
    for (const JobState &jst : st_.jobState) {
        out.writeU32(jst.attempts);
        out.writeDouble(jst.remainingSeconds);
    }

    out.writeU64(st_.digestEpoch);
    st_.trail.save(out);

    // Telemetry section (must match the binding at restore time).
    // Traces are deliberately not serialized: they are observational,
    // carry wall-clock times, and never participate in digests.
    out.writeBool(registry_ != nullptr);
    if (registry_ != nullptr)
        registry_->save(out);
}

util::Status
ClusterSimulator::restoreState(const std::vector<std::uint8_t> &state,
                               const std::vector<traces::Job> &jobs)
{
    const auto reject = [&](util::Status status) {
        // Never leave a half-restored simulator behind.
        st_ = RunState{};
        resetCapacity();
        rng_.seed(config_.seed);
        return status;
    };

    // Re-derive the fresh-run baseline (notably the fault schedule the
    // cursor must be walked along).
    initRun(jobs, /*digest_every_seconds=*/1.0);

    snapshot::Deserializer in(state);
    const std::uint64_t config_digest = in.readU64();
    const std::uint64_t trace_digest = in.readU64();
    if (!in.ok())
        return reject(util::dataLoss("cluster snapshot: %s",
                                     in.error().c_str()));
    if (config_digest != configDigest())
        return reject(util::failedPrecondition(
            "cluster snapshot was taken with a different cluster "
            "configuration; refusing to resume"));
    if (trace_digest != traceDigest(jobs))
        return reject(util::failedPrecondition(
            "cluster snapshot was taken against a different job "
            "trace; refusing to resume"));

    for (std::size_t g = 0; g < kGroups; ++g) {
        freePerGroup_[g] = in.readU32();
        totalPerGroup_[g] = in.readU32();
        pendingFailures_[g] = in.readU32();
        pendingDemotions_[g] = in.readU32();
    }
    util::RngState rng_state;
    for (std::uint64_t &word : rng_state.s)
        word = in.readU64();
    rng_state.hasSpareNormal = in.readBool();
    rng_state.spareNormal = in.readDouble();
    rng_.setState(rng_state);

    st_.nextArrival = static_cast<std::size_t>(in.readU64());
    st_.resubmitSeq = in.readU64();
    st_.startSeq = in.readU64();
    st_.hotUntil = in.readDouble();
    if (!st_.faults.restore(in))
        return reject(util::dataLoss("cluster snapshot: %s",
                                     in.error().c_str()));
    st_.execSum = in.readDouble();
    st_.queueSum = in.readDouble();
    st_.turnaroundSum = in.readDouble();
    st_.busyNodeSeconds = in.readDouble();
    st_.eligible = in.readU64();
    st_.accelerated = in.readU64();
    st_.lastEventTime = in.readDouble();
    st_.spanEnd = in.readDouble();
    st_.eventsProcessed = in.readU64();
    if (!restoreMetrics(in, &st_.metrics))
        return reject(util::dataLoss("cluster snapshot: %s",
                                     in.error().c_str()));

    // Each live running job occupies at least 46 payload bytes; the
    // division-based readCount check cannot be wrapped by a hostile
    // count the way `live * 46 > remaining()` could.
    const std::uint64_t live =
        in.readCount("cluster snapshot running-job list", 46);
    st_.running.clear();
    st_.running.reserve(static_cast<std::size_t>(live));
    st_.completions.clear();
    for (std::uint64_t i = 0; i < live; ++i) {
        RunningJob rj;
        rj.seq = in.readU64();
        rj.jobIndex = in.readU32();
        rj.endTime = in.readDouble();
        rj.estimatedEndTime = in.readDouble();
        for (unsigned &n : rj.allocated)
            n = in.readU32();
        rj.attempt = in.readU32();
        rj.killed = in.readBool();
        rj.live = true;
        if (in.ok() && rj.jobIndex >= jobs.size())
            return reject(util::dataLoss(
                "cluster snapshot: running job references a job "
                "outside the trace"));
        st_.running.push_back(rj);
        st_.completions.push_back(
            Completion{rj.endTime, rj.seq, st_.running.size() - 1});
    }
    std::make_heap(st_.completions.begin(), st_.completions.end(),
                   [](const Completion &a, const Completion &b) {
                       return laterCompletion(a.time, a.seq, b.time,
                                              b.seq);
                   });

    const std::uint64_t pending_count =
        in.readCount("cluster snapshot pending queue", 16);
    st_.pending.clear();
    for (std::uint64_t i = 0; i < pending_count; ++i) {
        PendingJob pj;
        pj.jobIndex = in.readI64();
        pj.submit = in.readDouble();
        if (in.ok() &&
            (pj.jobIndex < -1 ||
             pj.jobIndex >= static_cast<std::int64_t>(jobs.size())))
            return reject(util::dataLoss(
                "cluster snapshot: pending job references a job "
                "outside the trace"));
        st_.pending.push_back(pj);
    }

    const std::uint64_t resubmit_count =
        in.readCount("cluster snapshot resubmit queue", 20);
    st_.resubmits.clear();
    st_.resubmits.reserve(static_cast<std::size_t>(resubmit_count));
    for (std::uint64_t i = 0; i < resubmit_count; ++i) {
        Resubmit rs;
        rs.time = in.readDouble();
        rs.jobIndex = in.readU32();
        rs.seq = in.readU64();
        if (in.ok() && rs.jobIndex >= jobs.size())
            return reject(util::dataLoss(
                "cluster snapshot: resubmit references a job outside "
                "the trace"));
        st_.resubmits.push_back(rs);
    }
    std::make_heap(st_.resubmits.begin(), st_.resubmits.end(),
                   [](const Resubmit &a, const Resubmit &b) {
                       return laterCompletion(a.time, a.seq, b.time,
                                              b.seq);
                   });

    const std::uint64_t job_state_count = in.readU64();
    if (job_state_count != jobs.size())
        return reject(util::dataLoss(
            "cluster snapshot: per-job state table does not match "
            "the trace size"));
    for (JobState &jst : st_.jobState) {
        jst.attempts = in.readU32();
        jst.remainingSeconds = in.readDouble();
    }

    st_.digestEpoch = in.readU64();
    if (!st_.trail.restore(in))
        return reject(util::dataLoss("cluster snapshot: %s",
                                     in.error().c_str()));
    if (!in.ok())
        return reject(util::dataLoss("cluster snapshot: %s",
                                     in.error().c_str()));

    // Telemetry section.  Presence must match the current binding:
    // the registry participates in the digest trail, so resuming a
    // telemetry snapshot without telemetry (or vice versa) could only
    // produce divergence reports.
    const bool saved_telemetry = in.readBool();
    if (!in.ok())
        return reject(util::dataLoss("cluster snapshot: %s",
                                     in.error().c_str()));
    if (saved_telemetry != (registry_ != nullptr)) {
        return reject(util::failedPrecondition(
            saved_telemetry
                ? "cluster snapshot carries telemetry state but no "
                  "telemetry is bound; refusing to resume"
                : "cluster snapshot has no telemetry state but "
                  "telemetry is bound; refusing to resume"));
    }
    if (saved_telemetry && !registry_->restore(in))
        return reject(util::dataLoss("cluster snapshot: %s",
                                     in.error().c_str()));
    if (in.remaining() != 0)
        return reject(util::dataLoss(
            "cluster snapshot: trailing garbage after the state "
            "image"));

    st_.active = true;
    return util::Status{};
}

util::Status
ClusterSimulator::writeStateFile(const std::string &path,
                                 const std::vector<std::uint8_t> &state)
{
    return snapshot::writeSnapshotFile(
        path, snapshot::kClusterStateKind, state);
}

util::Status
ClusterSimulator::restoreFile(const std::string &path,
                              const std::vector<traces::Job> &jobs)
{
    std::vector<std::uint8_t> state;
    HDMR_RETURN_IF_ERROR(snapshot::readSnapshotFile(
        path, snapshot::kClusterStateKind, &state));
    return restoreState(state, jobs);
}

} // namespace hdmr::sched
