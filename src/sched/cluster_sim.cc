#include "sched/cluster_sim.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "util/logging.hh"

namespace hdmr::sched
{

util::CounterSet
ClusterMetrics::counters() const
{
    util::CounterSet set;
    set.add("cluster.jobs_completed",
            static_cast<double>(jobsCompleted));
    set.add("cluster.ue_injected", static_cast<double>(ueInjected));
    set.add("cluster.job_kills", static_cast<double>(jobKills));
    set.add("cluster.requeues", static_cast<double>(requeues));
    set.add("cluster.nodes_failed", static_cast<double>(nodesFailed));
    set.add("cluster.nodes_demoted", static_cast<double>(nodesDemoted));
    set.add("cluster.jobs_dropped", static_cast<double>(jobsDropped));
    set.add("cluster.lost_node_seconds", lostNodeSeconds);
    set.add("cluster.checkpoint_overhead_seconds",
            checkpointOverheadSeconds);
    return set;
}

ClusterSimulator::ClusterSimulator(ClusterConfig config)
    : config_(config), rng_(config.seed)
{
    unsigned assigned = 0;
    for (std::size_t g = 0; g < kGroups; ++g) {
        freePerGroup_[g] = static_cast<unsigned>(
            std::round(config_.groupFractions[g] * config_.nodes));
        assigned += freePerGroup_[g];
    }
    // Fix rounding drift in the largest group.
    if (assigned != config_.nodes) {
        const int drift = static_cast<int>(config_.nodes) -
                          static_cast<int>(assigned);
        freePerGroup_[0] =
            static_cast<unsigned>(static_cast<int>(freePerGroup_[0]) +
                                  drift);
    }
    totalPerGroup_ = freePerGroup_;
}

unsigned
ClusterSimulator::totalFree() const
{
    return freePerGroup_[0] + freePerGroup_[1] + freePerGroup_[2];
}

unsigned
ClusterSimulator::capacity() const
{
    return totalPerGroup_[0] + totalPerGroup_[1] + totalPerGroup_[2];
}

std::size_t
ClusterSimulator::groupOfTarget(unsigned target) const
{
    const unsigned cap = capacity();
    if (cap == 0)
        return kGroups;
    unsigned idx = target % cap;
    for (std::size_t g = 0; g < kGroups; ++g) {
        if (idx < totalPerGroup_[g])
            return g;
        idx -= totalPerGroup_[g];
    }
    return kGroups - 1;
}

void
ClusterSimulator::applyClusterFault(const fault::FaultEvent &fault,
                                    ClusterMetrics &metrics)
{
    std::size_t g = groupOfTarget(fault.target);
    if (g >= kGroups)
        return; // no surviving nodes left to fault

    switch (fault.kind) {
      case fault::FaultKind::kNodeFailure:
        ++metrics.nodesFailed;
        if (freePerGroup_[g] > 0) {
            --freePerGroup_[g];
            --totalPerGroup_[g];
        } else {
            // All of the group is busy: the node drops out when its
            // current job releases it.
            ++pendingFailures_[g];
        }
        break;

      case fault::FaultKind::kGroupDemotion:
        if (g == kGroups - 1) {
            // Already in the no-margin group; reclassify the fastest
            // group that still has nodes instead.
            if (totalPerGroup_[0] > 0)
                g = 0;
            else if (totalPerGroup_[1] > 0)
                g = 1;
            else
                return;
        }
        ++metrics.nodesDemoted;
        if (freePerGroup_[g] > 0) {
            --freePerGroup_[g];
            --totalPerGroup_[g];
            ++freePerGroup_[g + 1];
            ++totalPerGroup_[g + 1];
        } else {
            ++pendingDemotions_[g];
        }
        break;

      default:
        break; // node-layer kinds are not delivered here
    }
}

void
ClusterSimulator::drainDeferredFaults()
{
    for (std::size_t g = 0; g < kGroups; ++g) {
        while (pendingFailures_[g] > 0 && freePerGroup_[g] > 0) {
            --pendingFailures_[g];
            --freePerGroup_[g];
            --totalPerGroup_[g];
        }
        while (g + 1 < kGroups && pendingDemotions_[g] > 0 &&
               freePerGroup_[g] > 0) {
            --pendingDemotions_[g];
            --freePerGroup_[g];
            --totalPerGroup_[g];
            ++freePerGroup_[g + 1];
            ++totalPerGroup_[g + 1];
        }
    }
}

bool
ClusterSimulator::allocate(unsigned count,
                           std::array<unsigned, kGroups> &allocated)
{
    allocated = {0, 0, 0};
    if (totalFree() < count)
        return false;

    if (config_.marginAware) {
        // The paper's policy: the fastest group with >= count free
        // nodes takes the whole job; otherwise spill across groups
        // fastest-first.
        for (std::size_t g = 0; g < kGroups; ++g) {
            if (freePerGroup_[g] >= count) {
                freePerGroup_[g] -= count;
                allocated[g] = count;
                return true;
            }
        }
        unsigned remaining = count;
        for (std::size_t g = 0; g < kGroups && remaining > 0; ++g) {
            const unsigned take =
                std::min(freePerGroup_[g], remaining);
            freePerGroup_[g] -= take;
            allocated[g] = take;
            remaining -= take;
        }
        return true;
    }

    // Margin-unaware (Slurm default): nodes come from an undifferen-
    // tiated pool; model it as hypergeometric draws across groups.
    unsigned remaining = count;
    while (remaining > 0) {
        const unsigned free_now = totalFree();
        std::uint64_t pick = rng_.uniformInt(1, free_now);
        for (std::size_t g = 0; g < kGroups; ++g) {
            if (pick <= freePerGroup_[g]) {
                const unsigned take = std::min<unsigned>(
                    remaining, std::max<unsigned>(1, remaining / 4));
                const unsigned granted =
                    std::min(freePerGroup_[g], take);
                freePerGroup_[g] -= granted;
                allocated[g] += granted;
                remaining -= granted;
                break;
            }
            pick -= freePerGroup_[g];
        }
    }
    return true;
}

double
ClusterSimulator::speedupFor(
    const traces::Job &job,
    const std::array<unsigned, kGroups> &allocated)
{
    if (!config_.heteroDmr)
        return 1.0;
    // Jobs using >= 50 % memory cannot replicate: no speedup.
    if (job.usageClass >= 2)
        return 1.0;
    // MPI couples the job to its slowest node.
    std::size_t slowest = 0;
    for (std::size_t g = 0; g < kGroups; ++g) {
        if (allocated[g] > 0)
            slowest = g;
    }
    return config_.speedups.forGroup(slowest);
}

ClusterMetrics
ClusterSimulator::run(const std::vector<traces::Job> &jobs)
{
    // Event-driven replay: merge arrivals (sorted) with completions,
    // cluster-scoped campaign faults, and requeue resubmissions.  With
    // the campaign disabled the latter two sources are empty and the
    // replay is the fault-free one, bit for bit.
    struct Completion
    {
        double time;
        std::size_t index; ///< into running storage

        bool
        operator>(const Completion &other) const
        {
            return time > other.time;
        }
    };

    struct Resubmit
    {
        double time;
        const traces::Job *job;
        std::uint64_t seq; ///< FIFO among equal times

        bool
        operator>(const Resubmit &other) const
        {
            if (time != other.time)
                return time > other.time;
            return seq > other.seq;
        }
    };

    std::vector<RunningJob> running;
    std::vector<bool> runningLive;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>> completions;
    std::priority_queue<Resubmit, std::vector<Resubmit>,
                        std::greater<>> resubmits;
    std::deque<PendingJob> pending;

    // Per-job resilience state, indexed like `jobs`.
    struct JobState
    {
        unsigned attempts = 0;
        double remainingSeconds = -1.0; ///< set at first start
    };
    std::vector<JobState> state(jobs.size());

    // Cluster-scoped campaign events.  Job-killing UEs do not come
    // from this schedule: they use nested per-(job, attempt) hazard
    // draws (FaultCampaign::killTimeSeconds) so fault realizations at
    // a higher intensity are a superset of those at a lower one.
    std::vector<fault::FaultEvent> clusterFaults;
    if (config_.faults.enabled()) {
        fault::CampaignConfig fc = config_.faults;
        fc.targets = config_.nodes; // rates are per node-hour
        for (const fault::FaultEvent &ev :
             fault::FaultCampaign(fc).schedule()) {
            if (ev.kind == fault::FaultKind::kNodeFailure ||
                ev.kind == fault::FaultKind::kGroupDemotion)
                clusterFaults.push_back(ev);
        }
    }
    const double ue_node_rate = config_.faults.intensity *
                                config_.faults.uncorrectablePerHour /
                                3600.0;
    const double ckpt_interval =
        config_.resilience.checkpointIntervalSeconds;
    const double ckpt_ovh =
        ckpt_interval > 0.0
            ? config_.resilience.checkpointOverheadFraction
            : 0.0;

    ClusterMetrics metrics;
    double exec_sum = 0.0, queue_sum = 0.0, turnaround_sum = 0.0;
    double busy_node_seconds = 0.0;
    std::size_t eligible = 0, accelerated = 0;
    double last_event_time = 0.0;
    double span_end = 0.0;
    std::uint64_t resubmit_seq = 0;

    auto start_job = [&](const traces::Job &job, double now) {
        JobState &st = state[static_cast<std::size_t>(&job -
                                                      jobs.data())];
        if (st.remainingSeconds < 0.0)
            st.remainingSeconds = job.runtimeSeconds;
        const unsigned attempt = ++st.attempts;

        std::array<unsigned, kGroups> allocated;
        const bool ok = allocate(job.nodes, allocated);
        hdmr_assert(ok, "start_job called without room");
        const double speedup = speedupFor(job, allocated);
        const double exec =
            st.remainingSeconds / speedup * (1.0 + ckpt_ovh);
        const double est = job.walltimeSeconds / speedup;

        // Will a UE kill this attempt?  Margin UEs only strike jobs
        // actually running fast; the hazard scales with the job's
        // node count.
        double kill_after = std::numeric_limits<double>::infinity();
        if (ue_node_rate > 0.0 && speedup > 1.0) {
            kill_after = fault::FaultCampaign::killTimeSeconds(
                config_.faults.seed, job.id, attempt,
                ue_node_rate * static_cast<double>(job.nodes));
        }

        RunningJob rj;
        rj.job = &job;
        rj.allocated = allocated;
        rj.attempt = attempt;
        rj.estimatedEndTime = now + est;

        if (kill_after < exec) {
            // Attempt dies mid-run; metrics for the job are deferred
            // to its eventually-successful attempt.
            rj.killed = true;
            rj.endTime = now + kill_after;
            ++metrics.ueInjected;
            ++metrics.jobKills;
            const double useful =
                kill_after / (1.0 + ckpt_ovh) * speedup;
            double saved = 0.0;
            if (ckpt_interval > 0.0) {
                saved = std::floor(useful / ckpt_interval) *
                        ckpt_interval;
            }
            saved = std::min(saved, st.remainingSeconds);
            st.remainingSeconds -= saved;
            metrics.lostNodeSeconds +=
                (kill_after -
                 saved / speedup * (1.0 + ckpt_ovh)) *
                static_cast<double>(job.nodes);
            metrics.checkpointOverheadSeconds +=
                kill_after * ckpt_ovh / (1.0 + ckpt_ovh);
            busy_node_seconds += kill_after * job.nodes;
            span_end = std::max(span_end, rj.endTime);
        } else {
            rj.endTime = now + exec;
            exec_sum += exec;
            const double qdelay = now - job.submitSeconds;
            queue_sum += qdelay;
            turnaround_sum += qdelay + exec;
            busy_node_seconds += exec * job.nodes;
            ++metrics.jobsCompleted;
            if (config_.heteroDmr && job.usageClass < 2) {
                ++eligible;
                accelerated += speedup > 1.0;
            }
            metrics.checkpointOverheadSeconds +=
                exec * ckpt_ovh / (1.0 + ckpt_ovh);
            span_end = std::max(span_end, rj.endTime);
        }
        running.push_back(rj);
        runningLive.push_back(true);
        completions.push({rj.endTime, running.size() - 1});
    };

    auto try_schedule = [&](double now) {
        // FCFS head + EASY backfill.  Entries consumed by an earlier
        // backfill pass are nulled in place; skip them.
        while (!pending.empty()) {
            if (pending.front().job == nullptr) {
                pending.pop_front();
                continue;
            }
            if (pending.front().job->nodes > capacity()) {
                // Node failures shrank the machine below the job.
                ++metrics.jobsDropped;
                pending.pop_front();
                continue;
            }
            if (pending.front().job->nodes > totalFree())
                break;
            start_job(*pending.front().job, now);
            pending.pop_front();
        }
        if (pending.empty())
            return;

        // Head blocked: compute its reservation ("shadow") time from
        // the running jobs' *estimated* completions.
        const unsigned needed = pending.front().job->nodes;
        std::vector<std::pair<double, unsigned>> est_frees;
        est_frees.reserve(running.size());
        for (std::size_t i = 0; i < running.size(); ++i) {
            if (!runningLive[i])
                continue;
            unsigned nodes = 0;
            for (unsigned n : running[i].allocated)
                nodes += n;
            est_frees.emplace_back(running[i].estimatedEndTime, nodes);
        }
        std::sort(est_frees.begin(), est_frees.end());
        unsigned free_now = totalFree();
        double shadow_time = now;
        unsigned accumulating = free_now;
        for (const auto &[when, nodes] : est_frees) {
            accumulating += nodes;
            if (accumulating >= needed) {
                shadow_time = when;
                break;
            }
        }
        // Nodes left over at the shadow time after the head starts.
        const unsigned extra_nodes =
            accumulating >= needed ? accumulating - needed : 0;

        // Backfill: a queued job may jump ahead if it fits now and
        // either finishes before the shadow time or uses few enough
        // nodes to leave the head's reservation intact.
        const std::size_t depth =
            std::min(pending.size(), config_.backfillDepth);
        for (std::size_t i = 1; i < depth; ++i) {
            const traces::Job *job = pending[i].job;
            if (job == nullptr)
                continue;
            if (job->nodes > totalFree())
                continue;
            const bool before_shadow =
                now + job->walltimeSeconds <= shadow_time;
            const bool within_extra = job->nodes <= extra_nodes;
            if (before_shadow || within_extra) {
                start_job(*job, now);
                pending[i].job = nullptr; // consumed
            }
        }
        while (!pending.empty() && pending.front().job == nullptr)
            pending.pop_front();
    };

    const double inf = std::numeric_limits<double>::infinity();
    std::size_t next_arrival = 0;
    std::size_t next_fault = 0;
    while (next_arrival < jobs.size() || !completions.empty() ||
           next_fault < clusterFaults.size() || !resubmits.empty()) {
        const double t_arrival = next_arrival < jobs.size()
                                     ? jobs[next_arrival].submitSeconds
                                     : inf;
        const double t_fault = next_fault < clusterFaults.size()
                                   ? clusterFaults[next_fault].atSeconds
                                   : inf;
        const double t_resubmit =
            resubmits.empty() ? inf : resubmits.top().time;
        const double t_completion =
            completions.empty() ? inf : completions.top().time;

        // Tie order: faults first (capacity changes are visible to
        // anything scheduled at the same instant), then trace
        // arrivals, then resubmissions, then completions (matching
        // the fault-free arrival-before-completion order).
        double now;
        if (next_fault < clusterFaults.size() &&
            t_fault <= t_arrival && t_fault <= t_resubmit &&
            t_fault <= t_completion) {
            now = t_fault;
            applyClusterFault(clusterFaults[next_fault++], metrics);
        } else if (next_arrival < jobs.size() &&
                   t_arrival <= t_resubmit &&
                   t_arrival <= t_completion) {
            const traces::Job &job = jobs[next_arrival++];
            now = t_arrival;
            if (job.nodes > config_.nodes)
                continue; // cannot ever run
            pending.push_back(PendingJob{&job, now});
        } else if (!resubmits.empty() && t_resubmit <= t_completion) {
            const Resubmit resubmit = resubmits.top();
            resubmits.pop();
            now = resubmit.time;
            pending.push_back(PendingJob{resubmit.job, now});
        } else {
            const Completion done = completions.top();
            completions.pop();
            now = done.time;
            RunningJob &rj = running[done.index];
            runningLive[done.index] = false;
            for (std::size_t g = 0; g < kGroups; ++g)
                freePerGroup_[g] += rj.allocated[g];
            drainDeferredFaults();
            if (rj.killed) {
                // Requeue with capped exponential backoff.
                ++metrics.requeues;
                const double backoff = std::min(
                    config_.resilience.requeueBackoffCapSeconds,
                    config_.resilience.requeueBackoffBaseSeconds *
                        std::pow(2.0, static_cast<double>(
                                          rj.attempt - 1)));
                resubmits.push(
                    {now + backoff, rj.job, resubmit_seq++});
            }
        }
        last_event_time = now;
        try_schedule(now);
    }

    if (metrics.jobsCompleted > 0) {
        const auto n = static_cast<double>(metrics.jobsCompleted);
        metrics.meanExecSeconds = exec_sum / n;
        metrics.meanQueueSeconds = queue_sum / n;
        metrics.meanTurnaroundSeconds = turnaround_sum / n;
    }
    const double span = std::max(span_end, last_event_time);
    if (span > 0.0) {
        metrics.meanNodeUtilization =
            busy_node_seconds / (span * config_.nodes);
    }
    if (eligible > 0) {
        metrics.acceleratedFraction =
            static_cast<double>(accelerated) /
            static_cast<double>(eligible);
    }
    return metrics;
}

} // namespace hdmr::sched
