#include "sched/cluster_sim.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "util/logging.hh"

namespace hdmr::sched
{

ClusterSimulator::ClusterSimulator(ClusterConfig config)
    : config_(config), rng_(config.seed)
{
    unsigned assigned = 0;
    for (std::size_t g = 0; g < kGroups; ++g) {
        freePerGroup_[g] = static_cast<unsigned>(
            std::round(config_.groupFractions[g] * config_.nodes));
        assigned += freePerGroup_[g];
    }
    // Fix rounding drift in the largest group.
    if (assigned != config_.nodes) {
        const int drift = static_cast<int>(config_.nodes) -
                          static_cast<int>(assigned);
        freePerGroup_[0] =
            static_cast<unsigned>(static_cast<int>(freePerGroup_[0]) +
                                  drift);
    }
}

unsigned
ClusterSimulator::totalFree() const
{
    return freePerGroup_[0] + freePerGroup_[1] + freePerGroup_[2];
}

bool
ClusterSimulator::allocate(unsigned count,
                           std::array<unsigned, kGroups> &allocated)
{
    allocated = {0, 0, 0};
    if (totalFree() < count)
        return false;

    if (config_.marginAware) {
        // The paper's policy: the fastest group with >= count free
        // nodes takes the whole job; otherwise spill across groups
        // fastest-first.
        for (std::size_t g = 0; g < kGroups; ++g) {
            if (freePerGroup_[g] >= count) {
                freePerGroup_[g] -= count;
                allocated[g] = count;
                return true;
            }
        }
        unsigned remaining = count;
        for (std::size_t g = 0; g < kGroups && remaining > 0; ++g) {
            const unsigned take =
                std::min(freePerGroup_[g], remaining);
            freePerGroup_[g] -= take;
            allocated[g] = take;
            remaining -= take;
        }
        return true;
    }

    // Margin-unaware (Slurm default): nodes come from an undifferen-
    // tiated pool; model it as hypergeometric draws across groups.
    unsigned remaining = count;
    while (remaining > 0) {
        const unsigned free_now = totalFree();
        std::uint64_t pick = rng_.uniformInt(1, free_now);
        for (std::size_t g = 0; g < kGroups; ++g) {
            if (pick <= freePerGroup_[g]) {
                const unsigned take = std::min<unsigned>(
                    remaining, std::max<unsigned>(1, remaining / 4));
                const unsigned granted =
                    std::min(freePerGroup_[g], take);
                freePerGroup_[g] -= granted;
                allocated[g] += granted;
                remaining -= granted;
                break;
            }
            pick -= freePerGroup_[g];
        }
    }
    return true;
}

double
ClusterSimulator::speedupFor(
    const traces::Job &job,
    const std::array<unsigned, kGroups> &allocated)
{
    if (!config_.heteroDmr)
        return 1.0;
    // Jobs using >= 50 % memory cannot replicate: no speedup.
    if (job.usageClass >= 2)
        return 1.0;
    // MPI couples the job to its slowest node.
    std::size_t slowest = 0;
    for (std::size_t g = 0; g < kGroups; ++g) {
        if (allocated[g] > 0)
            slowest = g;
    }
    return config_.speedups.forGroup(slowest);
}

ClusterMetrics
ClusterSimulator::run(const std::vector<traces::Job> &jobs)
{
    // Event-driven replay: merge arrivals (sorted) with completions.
    struct Completion
    {
        double time;
        std::size_t index; ///< into running storage

        bool
        operator>(const Completion &other) const
        {
            return time > other.time;
        }
    };

    std::vector<RunningJob> running;
    std::vector<bool> runningLive;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<>> completions;
    std::deque<PendingJob> pending;

    ClusterMetrics metrics;
    double exec_sum = 0.0, queue_sum = 0.0, turnaround_sum = 0.0;
    double busy_node_seconds = 0.0;
    std::size_t eligible = 0, accelerated = 0;
    double last_event_time = 0.0;
    double span_end = 0.0;

    auto start_job = [&](const traces::Job &job, double now) {
        std::array<unsigned, kGroups> allocated;
        const bool ok = allocate(job.nodes, allocated);
        hdmr_assert(ok, "start_job called without room");
        const double speedup = speedupFor(job, allocated);
        const double exec = job.runtimeSeconds / speedup;
        const double est = job.walltimeSeconds / speedup;

        RunningJob rj;
        rj.endTime = now + exec;
        rj.estimatedEndTime = now + est;
        rj.allocated = allocated;
        running.push_back(rj);
        runningLive.push_back(true);
        completions.push({rj.endTime, running.size() - 1});

        exec_sum += exec;
        const double qdelay = now - job.submitSeconds;
        queue_sum += qdelay;
        turnaround_sum += qdelay + exec;
        busy_node_seconds += exec * job.nodes;
        ++metrics.jobsCompleted;
        if (config_.heteroDmr && job.usageClass < 2) {
            ++eligible;
            accelerated += speedup > 1.0;
        }
        span_end = std::max(span_end, rj.endTime);
    };

    auto try_schedule = [&](double now) {
        // FCFS head + EASY backfill.  Entries consumed by an earlier
        // backfill pass are nulled in place; skip them.
        while (!pending.empty()) {
            if (pending.front().job == nullptr) {
                pending.pop_front();
                continue;
            }
            if (pending.front().job->nodes > totalFree())
                break;
            start_job(*pending.front().job, now);
            pending.pop_front();
        }
        if (pending.empty())
            return;

        // Head blocked: compute its reservation ("shadow") time from
        // the running jobs' *estimated* completions.
        const unsigned needed = pending.front().job->nodes;
        std::vector<std::pair<double, unsigned>> est_frees;
        est_frees.reserve(running.size());
        for (std::size_t i = 0; i < running.size(); ++i) {
            if (!runningLive[i])
                continue;
            unsigned nodes = 0;
            for (unsigned n : running[i].allocated)
                nodes += n;
            est_frees.emplace_back(running[i].estimatedEndTime, nodes);
        }
        std::sort(est_frees.begin(), est_frees.end());
        unsigned free_now = totalFree();
        double shadow_time = now;
        unsigned accumulating = free_now;
        for (const auto &[when, nodes] : est_frees) {
            accumulating += nodes;
            if (accumulating >= needed) {
                shadow_time = when;
                break;
            }
        }
        // Nodes left over at the shadow time after the head starts.
        const unsigned extra_nodes =
            accumulating >= needed ? accumulating - needed : 0;

        // Backfill: a queued job may jump ahead if it fits now and
        // either finishes before the shadow time or uses few enough
        // nodes to leave the head's reservation intact.
        const std::size_t depth =
            std::min(pending.size(), config_.backfillDepth);
        for (std::size_t i = 1; i < depth; ++i) {
            const traces::Job *job = pending[i].job;
            if (job == nullptr)
                continue;
            if (job->nodes > totalFree())
                continue;
            const bool before_shadow =
                now + job->walltimeSeconds <= shadow_time;
            const bool within_extra = job->nodes <= extra_nodes;
            if (before_shadow || within_extra) {
                start_job(*job, now);
                pending[i].job = nullptr; // consumed
            }
        }
        while (!pending.empty() && pending.front().job == nullptr)
            pending.pop_front();
    };

    std::size_t next_arrival = 0;
    while (next_arrival < jobs.size() || !completions.empty()) {
        const bool take_arrival =
            next_arrival < jobs.size() &&
            (completions.empty() ||
             jobs[next_arrival].submitSeconds <= completions.top().time);

        double now;
        if (take_arrival) {
            const traces::Job &job = jobs[next_arrival++];
            now = job.submitSeconds;
            if (job.nodes > config_.nodes)
                continue; // cannot ever run
            pending.push_back(PendingJob{&job, now});
        } else {
            const Completion done = completions.top();
            completions.pop();
            now = done.time;
            RunningJob &rj = running[done.index];
            runningLive[done.index] = false;
            for (std::size_t g = 0; g < kGroups; ++g)
                freePerGroup_[g] += rj.allocated[g];
        }
        last_event_time = now;
        try_schedule(now);
    }

    if (metrics.jobsCompleted > 0) {
        const auto n = static_cast<double>(metrics.jobsCompleted);
        metrics.meanExecSeconds = exec_sum / n;
        metrics.meanQueueSeconds = queue_sum / n;
        metrics.meanTurnaroundSeconds = turnaround_sum / n;
    }
    const double span = std::max(span_end, last_event_time);
    if (span > 0.0) {
        metrics.meanNodeUtilization =
            busy_node_seconds / (span * config_.nodes);
    }
    if (eligible > 0) {
        metrics.acceleratedFraction =
            static_cast<double>(accelerated) /
            static_cast<double>(eligible);
    }
    return metrics;
}

} // namespace hdmr::sched
