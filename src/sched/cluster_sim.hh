/**
 * @file
 * System-wide HPC scheduler simulation (Section IV-C, Fig. 17) - the
 * role Slurmsim plays in the paper.
 *
 * The simulator replays a job trace against a cluster whose nodes are
 * partitioned into memory-frequency-margin groups (Section III-D3)
 * and schedules with FCFS + EASY backfill (Slurm's default behaviour)
 * using either the margin-aware allocation policy (prefer the fastest
 * group that can hold the whole job; the ~30-line Slurm patch) or the
 * default margin-unaware allocation.
 *
 * Job execution times shrink per the node-level Hetero-DMR speedups:
 * a job running entirely on 0.8 GT/s-margin nodes with <50 % memory
 * utilization runs at the measured Hetero-DMR@0.8 speedup, and a job
 * that touches nodes of different margins runs at its *slowest*
 * node's speedup (MPI synchronization).
 *
 * Crash safety / replay auditing (src/snapshot): the event loop keeps
 * its entire state in an explicit RunState, so the simulation can be
 * serialized at any scheduler decision point (between events) and
 * resumed bit-identically.  The pending-event set is never serialized
 * as such - completions are rebuilt declaratively from the surviving
 * running jobs - and a per-epoch FNV-1a digest trail lets a resumed
 * run *prove* bit-identity against the straight-through run.
 */

#ifndef HDMR_SCHED_CLUSTER_SIM_HH
#define HDMR_SCHED_CLUSTER_SIM_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/placement.hh"
#include "fault/campaign.hh"
#include "snapshot/digest.hh"
#include "telemetry/telemetry.hh"
#include "traces/job_trace.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/status.hh"
#include "workloads/criticality.hh"

namespace hdmr::snapshot
{
class Serializer;
class Deserializer;
} // namespace hdmr::snapshot

namespace hdmr::sched
{

/** Node margin groups (index 0: 0.8 GT/s, 1: 0.6 GT/s, 2: none). */
constexpr std::size_t kGroups = 3;

/** Node-level Hetero-DMR speedups measured by the node simulator. */
struct SpeedupTable
{
    /** Speedup on 0.8 GT/s-margin nodes, <50 % memory utilization. */
    double at800 = 1.20;
    /** Speedup on 0.6 GT/s-margin nodes, <50 % memory utilization. */
    double at600 = 1.15;

    double
    forGroup(std::size_t group) const
    {
        return group == 0 ? at800 : (group == 1 ? at600 : 1.0);
    }

    /**
     * Reject NaN, non-positive, or inverted (at600 > at800) speedups
     * with kInvalidArgument naming the offending field.
     */
    util::Status validate() const;
};

/**
 * How the cluster responds to faults.  All members only take effect
 * when the fault campaign is enabled or checkpointing is configured;
 * the defaults leave behaviour identical to a fault-free run.
 */
struct ResiliencePolicy
{
    /** First-requeue backoff after a job-killing UE. */
    double requeueBackoffBaseSeconds = 60.0;
    /** Capped exponential backoff ceiling. */
    double requeueBackoffCapSeconds = 3600.0;
    /**
     * Useful-work seconds between checkpoints; 0 disables.  A killed
     * job restarts from its last completed checkpoint instead of from
     * scratch.
     */
    double checkpointIntervalSeconds = 0.0;
    /** Wall-clock overhead fraction checkpointing adds while running. */
    double checkpointOverheadFraction = 0.0;

    /**
     * Reject NaN, negative durations/fractions, and inconsistent
     * bounds (base backoff above the cap, overhead fraction >= 1)
     * with kInvalidArgument naming the offending field.
     */
    util::Status validate() const;
};

/** Simulation configuration. */
struct ClusterConfig
{
    unsigned nodes = 1490;
    /** Fractions of nodes per margin group (Fig. 11 / Sec. III-D3). */
    std::array<double, kGroups> groupFractions = {0.62, 0.36, 0.02};
    /** Hetero-DMR deployed (scales execution times)? */
    bool heteroDmr = false;
    /** Margin-aware node grouping in the scheduler? */
    bool marginAware = true;
    SpeedupTable speedups;
    /** Limit of queued jobs inspected per backfill pass. */
    std::size_t backfillDepth = 256;
    std::uint64_t seed = 1;

    /**
     * Fault campaign.  Rates are interpreted per *node*-hour (targets
     * is overridden with the node count).  Job-killing UEs come from
     * `uncorrectablePerHour` and hit only jobs actually running fast;
     * `nodeFailuresPerHour` permanently removes nodes;
     * `demotionsPerHour` reclassifies nodes one margin group down.
     * Default intensity 0 reproduces the fault-free simulation
     * bit for bit.
     */
    fault::CampaignConfig faults;
    ResiliencePolicy resilience;

    /**
     * Heterogeneous-reliability placement.  The default (Hetero-DMR)
     * replicates every fast page and kills on any UE - bit-identical
     * to the seed behaviour.  Het-Reliability/Hybrid place tolerant
     * pages unreplicated on the fast modules: high-usage jobs with
     * enough tolerant pages become margin-eligible, and a margin UE
     * striking a tolerant page downgrades the page and continues the
     * job with a recorded data-quality penalty instead of the
     * kill/requeue path.  Both structs fold into configDigest().
     */
    core::PlacementPolicy placement;
    /** Deterministic per-job criticality assignment (page classes
     *  are pure hashes of this config's seed, never the run RNG). */
    wl::CriticalityConfig criticality;

    /**
     * Extra cluster-scoped fault events composed by a chaos harness
     * (e.g. fault::DriftChaosCampaign::clusterSchedule()); merged with
     * the campaign schedule at run start and fingerprinted into
     * configDigest(), so a snapshot taken under one drift realization
     * never resumes under another.  Only kNodeFailure, kGroupDemotion
     * and kTemperatureExcursion events are consumed.  Empty by
     * default: behaviour identical to the seed.
     */
    std::vector<fault::FaultEvent> scheduleOverlay;
    /**
     * UE-hazard multiplier applied to jobs started while a
     * temperature-excursion window is open (Section II-C: ~4x at
     * 45 degC).  Only takes effect when an excursion event actually
     * arrives.
     */
    double excursionUeMultiplier = 4.0;

    /**
     * One-pass validation: group fractions in [0, 1] summing to ~1,
     * positive node count and backfill depth, plus the nested
     * SpeedupTable, ResiliencePolicy, and CampaignConfig checks.
     * Returns kInvalidArgument naming the offending field; the
     * simulator's constructor checkOk()s it (a bad config is a caller
     * bug, not runtime input).
     */
    util::Status validate() const;
};

/** Per-run aggregate metrics (Fig. 17). */
struct ClusterMetrics
{
    std::size_t jobsCompleted = 0;
    double meanExecSeconds = 0.0;
    double meanQueueSeconds = 0.0;
    double meanTurnaroundSeconds = 0.0;
    double meanNodeUtilization = 0.0;
    /** Fraction of Hetero-DMR-eligible jobs that actually sped up. */
    double acceleratedFraction = 0.0;

    // ---- Fault / resilience accounting. ----
    std::uint64_t ueInjected = 0;   ///< job-killing UEs delivered
    std::uint64_t jobKills = 0;     ///< attempts terminated by a UE
    std::uint64_t requeues = 0;     ///< killed jobs resubmitted
    std::uint64_t nodesFailed = 0;  ///< nodes permanently lost
    std::uint64_t nodesDemoted = 0; ///< nodes moved one group down
    std::uint64_t excursions = 0;   ///< temperature windows applied
    std::uint64_t jobsDropped = 0;  ///< jobs no surviving capacity fits
    double lostNodeSeconds = 0.0;   ///< work discarded by kills
    double checkpointOverheadSeconds = 0.0;

    // ---- Heterogeneous-reliability placement accounting. ----
    std::uint64_t tolerantUes = 0;  ///< UEs absorbed by tolerant pages
    std::uint64_t criticalUes = 0;  ///< UEs on critical pages (kills)
    std::uint64_t jobsDegraded = 0; ///< completions carrying degraded pages
    std::uint64_t pagesDegraded = 0; ///< tolerant pages downgraded
    double dataQualityPenalty = 0.0; ///< summed degrade penalties
    /** Node-memory-seconds actually spent holding copies while jobs
     *  ran fast (Hetero-DMR's capacity tax under this placement). */
    double copyNodeSeconds = 0.0;
    /** What full Hetero-DMR would have spent on the same fast
     *  placements; 1 - copyNodeSeconds / dmrCopyNodeSeconds is the
     *  capacity the placement reclaimed from the copy tax. */
    double dmrCopyNodeSeconds = 0.0;

    /** Export into the shared counter vocabulary. */
    util::CounterSet counters() const;
};

/** Serialize/deserialize a metrics block (snapshot payloads). */
void saveMetrics(snapshot::Serializer &out, const ClusterMetrics &m);
bool restoreMetrics(snapshot::Deserializer &in, ClusterMetrics *m);

/** Field-by-field equality (doubles compared exactly). */
bool metricsIdentical(const ClusterMetrics &a, const ClusterMetrics &b);

/** Options for a snapshot/digest-aware run. */
struct RunOptions
{
    /**
     * Simulated seconds between state digests recorded into the
     * divergence trail.  Must be positive; the cadence is captured in
     * snapshots, and a resumed run keeps the cadence it was saved
     * with.
     */
    double digestEverySeconds = 86400.0;
    /**
     * Simulated seconds between periodic snapshot emissions through
     * `snapshotSink`; 0 disables periodic snapshots.
     */
    double snapshotEverySeconds = 0.0;
    /**
     * Receives the serialized simulator state at every snapshot
     * point: periodic emissions, the stopAfterSeconds stop, and
     * interruption.  The bytes restore via restoreState(); callers
     * decide whether to wrap them in a snapshot file or embed them in
     * a larger sweep image.
     */
    std::function<void(const std::vector<std::uint8_t> &state)>
        snapshotSink;
    /**
     * Polled once per event at the scheduler decision point; when it
     * returns true (e.g. a SIGINT/SIGTERM flag), the run emits a
     * final snapshot and returns with completed == false.
     */
    std::function<bool()> interrupted;
    /**
     * Stop (with a final snapshot) at the first decision point at or
     * after this simulated time; +infinity runs to completion.
     */
    double stopAfterSeconds = std::numeric_limits<double>::infinity();
    /**
     * Wall-clock deadline hook for bounded rollouts (src/serve):
     * polled at every scheduler decision point, like `interrupted`,
     * but an expired deadline stops the run *without* serializing a
     * snapshot - a deadline-bounded caller wants the cheapest possible
     * early-out so it can fall back to a degraded answer, not a state
     * image.  The outcome carries deadlineHit = true and partial
     * metrics.  Null (the default) never expires.
     */
    std::function<bool()> deadlineExpired;
};

/** Result of a snapshot-aware run. */
struct RunOutcome
{
    /** Aggregate metrics (partial when completed == false). */
    ClusterMetrics metrics;
    /** False when the run stopped early and emitted a snapshot. */
    bool completed = true;
    /** True when RunOptions::deadlineExpired stopped the run (no
     *  snapshot was emitted; completed is false too). */
    bool deadlineHit = false;
    /** Simulated time reached. */
    double simSeconds = 0.0;
    /** Scheduler events processed (arrivals, completions, faults,
     *  resubmissions) - the numerator of events/sec bench records. */
    std::uint64_t eventsProcessed = 0;
    /** Per-epoch state-digest trail (replay-divergence detection). */
    snapshot::DigestTrail digests;
};

/** The simulator. */
class ClusterSimulator
{
  public:
    explicit ClusterSimulator(ClusterConfig config);

    /** Replay the trace; jobs must be sorted by submit time. */
    ClusterMetrics run(const std::vector<traces::Job> &jobs);

    /** Snapshot/digest-aware replay. */
    RunOutcome run(const std::vector<traces::Job> &jobs,
                   const RunOptions &options);

    /**
     * Load a state image produced by a snapshotSink.  The simulator
     * must have been constructed with the *same* configuration and be
     * given the *same* trace; both are fingerprinted into the image.
     * A digest or telemetry-binding mismatch is rejected with
     * kFailedPrecondition; truncation or corruption with kDataLoss.
     * On any error the simulator is reset to its freshly constructed
     * state, never left half-restored.  On success (kOk), call
     * resume() to continue the run.
     */
    util::Status restoreState(const std::vector<std::uint8_t> &state,
                              const std::vector<traces::Job> &jobs);

    /** Continue a restored run to completion (or the next stop). */
    RunOutcome resume(const RunOptions &options);

    /** Convenience: wrap a state image in a snapshot file. */
    static util::Status
    writeStateFile(const std::string &path,
                   const std::vector<std::uint8_t> &state);

    /** Convenience: restoreState() from a snapshot file. */
    util::Status restoreFile(const std::string &path,
                             const std::vector<traces::Job> &jobs);

    /**
     * Bind observability metrics under `prefix` (e.g. "cluster"):
     * event/outcome counters, queue-depth and utilization gauges, and
     * the turnaround histogram.  The registry must outlive the
     * simulator.  Once bound, the registry's full metric state is
     * folded into stateDigest() and serialized after the digest trail,
     * so snapshots taken with telemetry only resume into a simulator
     * with telemetry bound (and vice versa) - metric state survives
     * --resume-from bit-identically.
     */
    void bindTelemetry(telemetry::Registry &registry,
                       const std::string &prefix);

    /** Emit job-kill / node-fault instants on `trace` track `tid`. */
    void bindTrace(telemetry::TraceRecorder *trace, std::uint32_t tid);

    /** Fingerprint of the full configuration (stored in snapshots). */
    std::uint64_t configDigest() const;

    /** Fingerprint of a job trace (stored in snapshots). */
    static std::uint64_t
    traceDigest(const std::vector<traces::Job> &jobs);

    const ClusterConfig &config() const { return config_; }

  private:
    struct RunningJob
    {
        std::uint32_t jobIndex = 0; ///< into the trace vector
        double endTime = 0.0;
        double estimatedEndTime = 0.0;
        std::array<unsigned, kGroups> allocated = {0, 0, 0};
        unsigned attempt = 1;   ///< 1-based attempt number
        bool killed = false;    ///< this attempt ends in a UE kill
        bool live = true;       ///< not yet completed
        std::uint64_t seq = 0;  ///< start order, total tie-break
    };

    struct PendingJob
    {
        std::int64_t jobIndex = -1; ///< -1: consumed backfill slot
        double submit = 0.0;
    };

    struct Resubmit
    {
        double time = 0.0;
        std::uint32_t jobIndex = 0;
        std::uint64_t seq = 0; ///< FIFO among equal times
    };

    /** Per-job resilience state, indexed like the trace. */
    struct JobState
    {
        unsigned attempts = 0;
        double remainingSeconds = -1.0; ///< set at first start
    };

    /**
     * One expected completion.  (time, seq) is a strict total order,
     * so the pop sequence is independent of heap-internal layout -
     * which is what lets a resumed run rebuild the heap from the
     * surviving running jobs and still pop bit-identically.
     */
    struct Completion
    {
        double time = 0.0;
        std::uint64_t seq = 0;
        std::size_t index = 0; ///< into `running`
    };

    /**
     * The complete event-loop state.  Everything the future of the
     * simulation depends on lives here (or in the group-capacity
     * arrays and RNG below), which is what makes mid-run snapshots
     * and the state digest possible.
     */
    struct RunState
    {
        const std::vector<traces::Job> *jobs = nullptr;
        std::vector<RunningJob> running;
        /** Min-heap keyed (endTime, seq). */
        std::vector<Completion> completions;
        /** Min-heap keyed (time, seq). */
        std::vector<Resubmit> resubmits;
        std::deque<PendingJob> pending;
        std::vector<JobState> jobState;
        fault::ScheduleCursor faults;
        std::size_t nextArrival = 0;
        std::uint64_t resubmitSeq = 0;
        std::uint64_t startSeq = 0;
        /** Simulated time until which the fleet runs hot (the union
         *  of delivered temperature-excursion windows). */
        double hotUntil = 0.0;

        // Metric accumulators.
        double execSum = 0.0;
        double queueSum = 0.0;
        double turnaroundSum = 0.0;
        double busyNodeSeconds = 0.0;
        std::uint64_t eligible = 0;
        std::uint64_t accelerated = 0;
        double lastEventTime = 0.0;
        double spanEnd = 0.0;
        std::uint64_t eventsProcessed = 0;
        ClusterMetrics metrics;

        // Divergence-audit state.
        std::uint64_t digestEpoch = 0; ///< next epoch index to record
        snapshot::DigestTrail trail;

        bool active = false;
    };

    /** Initialise a fresh run over `jobs`. */
    void initRun(const std::vector<traces::Job> &jobs,
                 double digest_every_seconds);

    /** Drive the event loop until completion or a stop. */
    RunOutcome runLoop(const RunOptions &options);

    /** Start one job (or requeued attempt) now. */
    void startJob(std::uint32_t job_index, double now);

    /** FCFS head + EASY backfill pass. */
    void trySchedule(double now);

    /** Record elapsed digest epochs up to (not including) `now`. */
    void recordDigests(double now);

    /** FNV-1a hash of the complete simulation state. */
    std::uint64_t stateDigest() const;

    /** Serialize the complete mid-run state. */
    void serializeState(snapshot::Serializer &out) const;

    /** Emit one snapshot through the sink, if any. */
    void emitSnapshot(const RunOptions &options) const;

    /** Finalize means/utilization into a metrics copy. */
    ClusterMetrics finalizeMetrics() const;

    /** Derive the per-group node counts from the configuration. */
    void resetCapacity();

    /** Nodes free in total. */
    unsigned totalFree() const;

    /** Surviving nodes in total (shrinks with node failures). */
    unsigned capacity() const;

    /** Margin group a campaign node index falls into. */
    std::size_t groupOfTarget(unsigned target) const;

    /** Apply one cluster-scoped fault (failure or demotion). */
    void applyClusterFault(const fault::FaultEvent &fault);

    /** Apply capacity changes deferred while their nodes were busy. */
    void drainDeferredFaults();

    /**
     * Try to allocate `count` nodes under the configured policy.
     * Returns true and fills `allocated` on success.
     */
    bool allocate(unsigned count,
                  std::array<unsigned, kGroups> &allocated);

    /** Effective speedup for a job given its allocation and its
     *  criticality assignment (placement-aware eligibility). */
    double speedupFor(const traces::Job &job,
                      const std::array<unsigned, kGroups> &allocated,
                      double tolerant_fraction);

    /** Bound observability metrics (all null until bindTelemetry). */
    struct Telemetry
    {
        telemetry::Counter *jobsCompleted = nullptr;
        telemetry::Counter *ueInjected = nullptr;
        telemetry::Counter *jobKills = nullptr;
        telemetry::Counter *requeues = nullptr;
        telemetry::Counter *jobsDropped = nullptr;
        telemetry::Counter *tolerantUes = nullptr;
        telemetry::Counter *criticalUes = nullptr;
        telemetry::Counter *jobsDegraded = nullptr;
        telemetry::Counter *pagesDegraded = nullptr;
        telemetry::Gauge *dataQualityPenalty = nullptr;
        telemetry::Gauge *copyNodeSeconds = nullptr;
        telemetry::Counter *nodesFailed = nullptr;
        telemetry::Counter *nodesDemoted = nullptr;
        telemetry::Counter *excursions = nullptr;
        telemetry::Counter *eventsProcessed = nullptr;
        telemetry::Gauge *queueDepth = nullptr;
        telemetry::Gauge *busyNodeSeconds = nullptr;
        telemetry::Gauge *nodeUtilization = nullptr;
        telemetry::Log2Histogram *turnaroundSeconds = nullptr;
    };

    /** Record one instant event on the bound trace, if any. */
    void traceInstant(const char *name, double now) const;

    ClusterConfig config_;
    wl::CriticalityModel criticality_;
    Telemetry tm_;
    telemetry::Registry *registry_ = nullptr;
    telemetry::TraceRecorder *trace_ = nullptr;
    std::uint32_t traceTid_ = 0;
    std::array<unsigned, kGroups> freePerGroup_ = {0, 0, 0};
    std::array<unsigned, kGroups> totalPerGroup_ = {0, 0, 0};
    /** Node failures/demotions waiting for a node of the group to free. */
    std::array<unsigned, kGroups> pendingFailures_ = {0, 0, 0};
    std::array<unsigned, kGroups> pendingDemotions_ = {0, 0, 0};
    util::Rng rng_;
    RunState st_;
};

} // namespace hdmr::sched

#endif // HDMR_SCHED_CLUSTER_SIM_HH
