/**
 * @file
 * System-wide HPC scheduler simulation (Section IV-C, Fig. 17) - the
 * role Slurmsim plays in the paper.
 *
 * The simulator replays a job trace against a cluster whose nodes are
 * partitioned into memory-frequency-margin groups (Section III-D3)
 * and schedules with FCFS + EASY backfill (Slurm's default behaviour)
 * using either the margin-aware allocation policy (prefer the fastest
 * group that can hold the whole job; the ~30-line Slurm patch) or the
 * default margin-unaware allocation.
 *
 * Job execution times shrink per the node-level Hetero-DMR speedups:
 * a job running entirely on 0.8 GT/s-margin nodes with <50 % memory
 * utilization runs at the measured Hetero-DMR@0.8 speedup, and a job
 * that touches nodes of different margins runs at its *slowest*
 * node's speedup (MPI synchronization).
 */

#ifndef HDMR_SCHED_CLUSTER_SIM_HH
#define HDMR_SCHED_CLUSTER_SIM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "fault/campaign.hh"
#include "traces/job_trace.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace hdmr::sched
{

/** Node margin groups (index 0: 0.8 GT/s, 1: 0.6 GT/s, 2: none). */
constexpr std::size_t kGroups = 3;

/** Node-level Hetero-DMR speedups measured by the node simulator. */
struct SpeedupTable
{
    /** Speedup on 0.8 GT/s-margin nodes, <50 % memory utilization. */
    double at800 = 1.20;
    /** Speedup on 0.6 GT/s-margin nodes, <50 % memory utilization. */
    double at600 = 1.15;

    double
    forGroup(std::size_t group) const
    {
        return group == 0 ? at800 : (group == 1 ? at600 : 1.0);
    }
};

/**
 * How the cluster responds to faults.  All members only take effect
 * when the fault campaign is enabled or checkpointing is configured;
 * the defaults leave behaviour identical to a fault-free run.
 */
struct ResiliencePolicy
{
    /** First-requeue backoff after a job-killing UE. */
    double requeueBackoffBaseSeconds = 60.0;
    /** Capped exponential backoff ceiling. */
    double requeueBackoffCapSeconds = 3600.0;
    /**
     * Useful-work seconds between checkpoints; 0 disables.  A killed
     * job restarts from its last completed checkpoint instead of from
     * scratch.
     */
    double checkpointIntervalSeconds = 0.0;
    /** Wall-clock overhead fraction checkpointing adds while running. */
    double checkpointOverheadFraction = 0.0;
};

/** Simulation configuration. */
struct ClusterConfig
{
    unsigned nodes = 1490;
    /** Fractions of nodes per margin group (Fig. 11 / Sec. III-D3). */
    std::array<double, kGroups> groupFractions = {0.62, 0.36, 0.02};
    /** Hetero-DMR deployed (scales execution times)? */
    bool heteroDmr = false;
    /** Margin-aware node grouping in the scheduler? */
    bool marginAware = true;
    SpeedupTable speedups;
    /** Limit of queued jobs inspected per backfill pass. */
    std::size_t backfillDepth = 256;
    std::uint64_t seed = 1;

    /**
     * Fault campaign.  Rates are interpreted per *node*-hour (targets
     * is overridden with the node count).  Job-killing UEs come from
     * `uncorrectablePerHour` and hit only jobs actually running fast;
     * `nodeFailuresPerHour` permanently removes nodes;
     * `demotionsPerHour` reclassifies nodes one margin group down.
     * Default intensity 0 reproduces the fault-free simulation
     * bit for bit.
     */
    fault::CampaignConfig faults;
    ResiliencePolicy resilience;
};

/** Per-run aggregate metrics (Fig. 17). */
struct ClusterMetrics
{
    std::size_t jobsCompleted = 0;
    double meanExecSeconds = 0.0;
    double meanQueueSeconds = 0.0;
    double meanTurnaroundSeconds = 0.0;
    double meanNodeUtilization = 0.0;
    /** Fraction of Hetero-DMR-eligible jobs that actually sped up. */
    double acceleratedFraction = 0.0;

    // ---- Fault / resilience accounting. ----
    std::uint64_t ueInjected = 0;   ///< job-killing UEs delivered
    std::uint64_t jobKills = 0;     ///< attempts terminated by a UE
    std::uint64_t requeues = 0;     ///< killed jobs resubmitted
    std::uint64_t nodesFailed = 0;  ///< nodes permanently lost
    std::uint64_t nodesDemoted = 0; ///< nodes moved one group down
    std::uint64_t jobsDropped = 0;  ///< jobs no surviving capacity fits
    double lostNodeSeconds = 0.0;   ///< work discarded by kills
    double checkpointOverheadSeconds = 0.0;

    /** Export into the shared counter vocabulary. */
    util::CounterSet counters() const;
};

/** The simulator. */
class ClusterSimulator
{
  public:
    explicit ClusterSimulator(ClusterConfig config);

    /** Replay the trace; jobs must be sorted by submit time. */
    ClusterMetrics run(const std::vector<traces::Job> &jobs);

    const ClusterConfig &config() const { return config_; }

  private:
    struct RunningJob
    {
        const traces::Job *job = nullptr;
        double endTime = 0.0;
        double estimatedEndTime = 0.0;
        std::array<unsigned, kGroups> allocated = {0, 0, 0};
        unsigned attempt = 1;   ///< 1-based attempt number
        bool killed = false;    ///< this attempt ends in a UE kill
    };

    struct PendingJob
    {
        const traces::Job *job = nullptr;
        double submit = 0.0;
    };

    /** Nodes free in total. */
    unsigned totalFree() const;

    /** Surviving nodes in total (shrinks with node failures). */
    unsigned capacity() const;

    /** Margin group a campaign node index falls into. */
    std::size_t groupOfTarget(unsigned target) const;

    /** Apply one cluster-scoped fault (failure or demotion). */
    void applyClusterFault(const fault::FaultEvent &fault,
                           ClusterMetrics &metrics);

    /** Apply capacity changes deferred while their nodes were busy. */
    void drainDeferredFaults();

    /**
     * Try to allocate `count` nodes under the configured policy.
     * Returns true and fills `allocated` on success.
     */
    bool allocate(unsigned count,
                  std::array<unsigned, kGroups> &allocated);

    /** Effective speedup for a job given its allocation. */
    double speedupFor(const traces::Job &job,
                      const std::array<unsigned, kGroups> &allocated);

    ClusterConfig config_;
    std::array<unsigned, kGroups> freePerGroup_ = {0, 0, 0};
    std::array<unsigned, kGroups> totalPerGroup_ = {0, 0, 0};
    /** Node failures/demotions waiting for a node of the group to free. */
    std::array<unsigned, kGroups> pendingFailures_ = {0, 0, 0};
    std::array<unsigned, kGroups> pendingDemotions_ = {0, 0, 0};
    util::Rng rng_;
};

} // namespace hdmr::sched

#endif // HDMR_SCHED_CLUSTER_SIM_HH
