#include "margin/test_machine.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::margin
{

TestMachine::TestMachine(TestMachineConfig config, std::uint64_t seed)
    : config_(config), rng_(seed)
{
}

OperatingPoint
TestMachine::operatingPoint(unsigned rate_mts) const
{
    OperatingPoint op;
    op.dataRateMts = rate_mts;
    op.ambientC = config_.ambientC;
    op.voltage = config_.voltage;
    op.latencyMarginsExploited = config_.exploitLatencyMargins;
    op.accessIntensity = 1.0;
    return op;
}

bool
TestMachine::boots(const MemoryModule &module, unsigned rate_mts) const
{
    if (rate_mts > config_.platformCapMts)
        return false;
    return rate_mts <=
           errorModel_.bootableRateAt(module, operatingPoint(rate_mts));
}

StressTestResult
TestMachine::stressTest(const MemoryModule &module, unsigned rate_mts)
{
    StressTestResult result;
    result.booted = boots(module, rate_mts);
    if (!result.booted)
        return result;

    const OperatingPoint op = operatingPoint(rate_mts);
    const double expected_total =
        errorModel_.errorsPerHour(module, op) * config_.stressHours;
    const std::uint64_t total = rng_.poisson(expected_total);
    std::uint64_t uncorrected = 0;
    for (std::uint64_t i = 0; i < total; ++i) {
        uncorrected +=
            rng_.bernoulli(errorModel_.params().uncorrectableFraction);
    }
    result.correctedErrors = total - uncorrected;
    result.uncorrectedErrors = uncorrected;
    return result;
}

MarginMeasurement
TestMachine::characterize(const MemoryModule &module)
{
    MarginMeasurement meas;
    meas.moduleId = module.id;
    meas.specRateMts = module.spec.specRateMts;
    meas.boots = boots(module, module.spec.specRateMts);
    if (!meas.boots)
        return meas;

    unsigned best_error_free = module.spec.specRateMts;
    unsigned best_bootable = module.spec.specRateMts;

    for (unsigned rate = module.spec.specRateMts + config_.stepMts;
         rate <= config_.platformCapMts; rate += config_.stepMts) {
        if (!boots(module, rate))
            break;
        best_bootable = rate;
        const StressTestResult stress = stressTest(module, rate);
        if (stress.totalErrors() == 0)
            best_error_free = rate;
        // Keep climbing even after the first errors: the margin is the
        // *highest* error-free rate, and bootable headroom matters for
        // the Fig. 6 margin-edge methodology.
    }

    meas.measuredMaxRateMts = best_error_free;
    meas.maxBootableRateMts = best_bootable;
    return meas;
}

std::vector<MarginMeasurement>
TestMachine::characterizeFleet(const std::vector<MemoryModule> &fleet)
{
    std::vector<MarginMeasurement> out;
    out.reserve(fleet.size());
    for (const MemoryModule &m : fleet)
        out.push_back(characterize(m));
    return out;
}

MarginMeasurement
TestMachine::characterizeOvervolted(const MemoryModule &module)
{
    TestMachineConfig overvolted = config_;
    overvolted.voltage = 1.35;
    TestMachine machine(overvolted, rng_.next());
    return machine.characterize(module);
}

std::optional<StressTestResult>
TestMachine::stressAtMarginEdge(const MemoryModule &module)
{
    // Find the highest bootable rate under current conditions.
    unsigned edge = 0;
    for (unsigned rate = module.spec.specRateMts + config_.stepMts;
         rate <= config_.platformCapMts; rate += config_.stepMts) {
        if (!boots(module, rate))
            break;
        edge = rate;
    }
    if (edge == 0)
        return std::nullopt;
    return stressTest(module, edge);
}

} // namespace hdmr::margin
