#include "margin/monte_carlo.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::margin
{

void
MarginDistribution::add(unsigned margin_mts)
{
    ++counts_[margin_mts];
    ++total_;
}

double
MarginDistribution::fraction(unsigned margin_mts) const
{
    const auto it = counts_.find(margin_mts);
    if (it == counts_.end() || total_ == 0)
        return 0.0;
    return static_cast<double>(it->second) /
           static_cast<double>(total_);
}

double
MarginDistribution::fractionAtLeast(unsigned margin_mts) const
{
    if (total_ == 0)
        return 0.0;
    std::size_t n = 0;
    for (const auto &[value, count] : counts_) {
        if (value >= margin_mts)
            n += count;
    }
    return static_cast<double>(n) / static_cast<double>(total_);
}

std::vector<unsigned>
MarginDistribution::values() const
{
    std::vector<unsigned> out;
    out.reserve(counts_.size());
    for (const auto &[value, count] : counts_)
        out.push_back(value);
    return out;
}

unsigned
sampleModuleMargin(const MonteCarloConfig &config, util::Rng &rng)
{
    const double raw =
        rng.normal(config.marginMeanMts, config.marginStdevMts);
    if (raw <= 0.0)
        return 0;
    const unsigned quantized =
        static_cast<unsigned>(raw / config.quantStepMts) *
        config.quantStepMts;
    return std::min(quantized, config.marginCapMts);
}

namespace
{

/** Margin of one channel: best (aware) or first (unaware) module. */
unsigned
sampleChannelMargin(const MonteCarloConfig &config, util::Rng &rng)
{
    hdmr_assert(config.modulesPerChannel >= 1);
    unsigned chosen = sampleModuleMargin(config, rng);
    for (unsigned m = 1; m < config.modulesPerChannel; ++m) {
        const unsigned margin = sampleModuleMargin(config, rng);
        if (config.marginAware)
            chosen = std::max(chosen, margin);
        // Margin-unaware selection keeps the first module regardless,
        // but the draws still happen so aware/unaware runs consume the
        // same random stream per channel.
    }
    return chosen;
}

} // anonymous namespace

MarginDistribution
channelMarginDistribution(const MonteCarloConfig &config,
                          std::uint64_t seed)
{
    util::Rng rng(seed);
    MarginDistribution dist;
    for (std::size_t t = 0; t < config.trials; ++t)
        dist.add(sampleChannelMargin(config, rng));
    return dist;
}

MarginDistribution
nodeMarginDistribution(const MonteCarloConfig &config, std::uint64_t seed)
{
    util::Rng rng(seed);
    MarginDistribution dist;
    for (std::size_t t = 0; t < config.trials; ++t) {
        unsigned node_margin = ~0u;
        for (unsigned c = 0; c < config.channelsPerNode; ++c)
            node_margin =
                std::min(node_margin, sampleChannelMargin(config, rng));
        dist.add(node_margin);
    }
    return dist;
}

NodeMarginGroups
nodeMarginGroups(const MonteCarloConfig &config, std::uint64_t seed)
{
    const MarginDistribution dist = nodeMarginDistribution(config, seed);
    NodeMarginGroups groups;
    groups.at800 = dist.fractionAtLeast(800);
    groups.at600 = dist.fractionAtLeast(600) - groups.at800;
    groups.at0 = 1.0 - groups.at800 - groups.at600;
    return groups;
}

} // namespace hdmr::margin
