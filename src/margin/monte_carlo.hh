/**
 * @file
 * Monte-Carlo estimation of channel- and node-level frequency-margin
 * distributions (Section III-D, Fig. 11).
 *
 * Module margins are drawn from a normal distribution fitted to the
 * Fig. 2a measurements of 9-chip/rank modules, quantized to the BIOS
 * step and capped by the platform ceiling.  A channel's margin is that
 * of the module *chosen to run unsafely fast* - the best module under
 * margin-aware selection, an arbitrary (first) module under
 * margin-unaware selection.  A node's margin is the minimum over its
 * channels because channel interleaving makes the slowest channel the
 * bandwidth bottleneck.
 */

#ifndef HDMR_MARGIN_MONTE_CARLO_HH
#define HDMR_MARGIN_MONTE_CARLO_HH

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.hh"

namespace hdmr::margin
{

/** Monte-Carlo experiment configuration. */
struct MonteCarloConfig
{
    double marginMeanMts = 900.0;  ///< fitted to Fig. 2a, 9 chips/rank
    double marginStdevMts = 124.0; ///< measured STDev (Fig. 3b)
    unsigned quantStepMts = 200;   ///< BIOS step
    unsigned marginCapMts = 800;   ///< 4000 MT/s cap - 3200 MT/s spec
    unsigned modulesPerChannel = 2;
    unsigned channelsPerNode = 12;
    std::size_t trials = 200000;
    bool marginAware = true;       ///< pick best vs. first module
};

/** A discrete distribution over quantized margin values (MT/s). */
class MarginDistribution
{
  public:
    /** Record one observation. */
    void add(unsigned margin_mts);

    /** Fraction of observations exactly at `margin_mts`. */
    double fraction(unsigned margin_mts) const;

    /** Fraction of observations >= `margin_mts`. */
    double fractionAtLeast(unsigned margin_mts) const;

    /** All margin values observed, ascending. */
    std::vector<unsigned> values() const;

    std::size_t total() const { return total_; }

  private:
    std::map<unsigned, std::size_t> counts_;
    std::size_t total_ = 0;
};

/** Fractions of nodes per scheduler margin group (Section III-D3). */
struct NodeMarginGroups
{
    double at800 = 0.0; ///< nodes with >= 0.8 GT/s margin
    double at600 = 0.0; ///< nodes with margin in [0.6, 0.8) GT/s
    double at0 = 0.0;   ///< the rest
};

/** Draw one module margin (quantized, capped). */
unsigned sampleModuleMargin(const MonteCarloConfig &config,
                            util::Rng &rng);

/** Distribution of channel-level margins under `config`. */
MarginDistribution channelMarginDistribution(const MonteCarloConfig &config,
                                             std::uint64_t seed);

/** Distribution of node-level margins under `config`. */
MarginDistribution nodeMarginDistribution(const MonteCarloConfig &config,
                                          std::uint64_t seed);

/** The three-group node split the margin-aware scheduler uses. */
NodeMarginGroups nodeMarginGroups(const MonteCarloConfig &config,
                                  std::uint64_t seed);

} // namespace hdmr::margin

#endif // HDMR_MARGIN_MONTE_CARLO_HH
