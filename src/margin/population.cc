#include "margin/population.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace hdmr::margin
{

ModulePopulation::ModulePopulation(std::uint64_t seed,
                                   PopulationModel model)
    : model_(model), rng_(seed)
{
}

MemoryModule
ModulePopulation::sample(const ModuleSpec &spec)
{
    MemoryModule m;
    m.id = nextId_++;
    m.spec = spec;

    double mean, stdev, floor_mts = 0.0;
    if (spec.brand == Brand::kD) {
        mean = model_.brandDMean;
        stdev = model_.brandDStdev;
    } else if (spec.specRateMts <= 2400) {
        mean = model_.majorBrand2400Mean;
        stdev = model_.majorBrand2400Stdev;
    } else if (spec.chipsPerRank <= 9) {
        mean = model_.majorBrand3200NineChipMean;
        stdev = model_.majorBrand3200NineChipStdev;
        floor_mts = model_.majorBrand3200NineChipFloor;
    } else {
        mean = model_.majorBrand3200EighteenChipMean;
        stdev = model_.majorBrand3200EighteenChipStdev;
    }

    const double latent_margin =
        std::max({0.0, floor_mts, rng_.normal(mean, stdev)});
    m.maxStableRateMts =
        spec.specRateMts + static_cast<unsigned>(latent_margin + 0.5);

    const double gap = std::max(model_.bootableGapFloor,
                                rng_.normal(model_.bootableGapMean,
                                            model_.bootableGapStdev));
    m.maxBootableRateMts =
        m.maxStableRateMts + static_cast<unsigned>(gap + 0.5);

    // Clamped so that even the "quietest" module errors reliably within
    // a one-hour stress test one step past its stable rate; Fig. 6 still
    // spans orders of magnitude across modules.
    m.errorIntensity = std::clamp(
        rng_.logNormal(0.0, model_.errorIntensitySigma), 0.3, 500.0);

    // Corner-case behaviours.  The with-latency set is a superset of
    // the frequency-only set, as in the paper (5 of the 9 overlap).
    m.marginDropsWhenHotWithLatency =
        rng_.bernoulli(model_.hotLatencyMarginDropFraction);
    m.marginDropsWhenHot =
        m.marginDropsWhenHotWithLatency &&
        rng_.bernoulli(model_.hotMarginDropFraction /
                       model_.hotLatencyMarginDropFraction);
    m.respondsToOvervolt =
        rng_.bernoulli(model_.overvoltResponseFraction);

    return m;
}

std::vector<MemoryModule>
ModulePopulation::sampleFleet(const ModuleSpec &spec, std::size_t count)
{
    std::vector<MemoryModule> fleet;
    fleet.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        fleet.push_back(sample(spec));
    return fleet;
}

namespace
{

/** Round-robin helper cycling metadata that must not affect margin. */
struct MetadataCycler
{
    unsigned index = 0;

    void
    fill(ModuleSpec &spec)
    {
        static constexpr unsigned kDensities[] = {4, 8, 16};
        static constexpr unsigned kYears[] = {2017, 2018, 2019, 2020};
        static constexpr unsigned kRanks[] = {1, 2, 2, 2};
        spec.chipDensityGbit = kDensities[index % 3];
        spec.mfgYear = kYears[index % 4];
        spec.ranksPerModule = kRanks[index % 4];
        ++index;
    }
};

} // anonymous namespace

std::vector<MemoryModule>
makeStudyFleet(std::uint64_t seed)
{
    ModulePopulation population(seed);
    std::vector<MemoryModule> fleet;
    fleet.reserve(119);
    MetadataCycler cycler;

    struct Group
    {
        Brand brand;
        unsigned count;
        unsigned rate;
        unsigned chips_per_rank;
    };
    // Composition per Section II: per brand, 3200/9-chip modules (44
    // total), 3200/18-chip modules (26 total) and 2400 modules (33
    // total) across A(40)/B(35)/C(28); 16 brand-D modules.
    static constexpr Group kGroups[] = {
        {Brand::kA, 17, 3200, 9},  {Brand::kA, 10, 3200, 18},
        {Brand::kA, 13, 2400, 9},  {Brand::kB, 15, 3200, 9},
        {Brand::kB, 9, 3200, 18},  {Brand::kB, 11, 2400, 18},
        {Brand::kC, 12, 3200, 9},  {Brand::kC, 7, 3200, 18},
        {Brand::kC, 9, 2400, 18},  {Brand::kD, 16, 2666, 18},
    };

    unsigned per_brand_id[4] = {1, 1, 1, 1};
    for (const Group &g : kGroups) {
        for (unsigned i = 0; i < g.count; ++i) {
            ModuleSpec spec;
            spec.brand = g.brand;
            spec.specRateMts = g.rate;
            spec.chipsPerRank = g.chips_per_rank;
            cycler.fill(spec);

            const unsigned brand_index = static_cast<unsigned>(g.brand);
            const unsigned module_number = per_brand_id[brand_index]++;
            // Modules A8-A31 were borrowed from a 3-year-old
            // in-production cluster; a few others are refurbished.
            if (g.brand == Brand::kA && module_number >= 8 &&
                module_number <= 31) {
                spec.condition = Condition::kInProduction3Years;
            } else if (module_number % 11 == 0) {
                spec.condition = Condition::kRefurbished;
            } else {
                spec.condition = Condition::kNew;
            }

            MemoryModule m = population.sample(spec);
            m.id = module_number;
            fleet.push_back(m);
        }
    }

    hdmr_assert(fleet.size() == 119);
    return fleet;
}

} // namespace hdmr::margin
