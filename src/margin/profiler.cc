#include "margin/profiler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::margin
{

MarginProfiler::MarginProfiler(ProfilerConfig config, std::uint64_t seed)
    : config_(config), machine_(config.machine, seed)
{
}

NodeProfile
MarginProfiler::profile(const std::vector<MemoryModule> &modules,
                        util::Tick now)
{
    NodeProfile result;
    result.profiledAt = now;
    result.moduleMarginsMts.reserve(modules.size());
    for (const MemoryModule &module : modules) {
        unsigned margin = machine_.characterize(module).marginMts();
        const unsigned guard = config_.guardBandSteps * config_.stepMts;
        margin = margin > guard ? margin - guard : 0;
        result.moduleMarginsMts.push_back(margin);
    }

    // Pair modules two-per-channel; the channel margin is that of the
    // (margin-aware chosen) Free Module.
    for (std::size_t i = 0; i + 1 < result.moduleMarginsMts.size();
         i += 2) {
        // Margin-aware Free-Module choice: the channel margin is the
        // better module's margin (Section III-D1).
        result.channelMarginsMts.push_back(
            std::max(result.moduleMarginsMts[i],
                     result.moduleMarginsMts[i + 1]));
    }
    // Interleaving couples the node to its slowest channel.
    result.nodeMarginMts =
        result.channelMarginsMts.empty()
            ? (result.moduleMarginsMts.empty()
                   ? 0
                   : result.moduleMarginsMts.front())
            : *std::min_element(result.channelMarginsMts.begin(),
                                result.channelMarginsMts.end());

    current_ = result;
    ++profilesTaken_;
    return result;
}

bool
MarginProfiler::maybeReprofile(const std::vector<MemoryModule> &modules,
                               util::Tick now, bool node_idle)
{
    if (!node_idle)
        return false;
    if (profilesTaken_ > 0 &&
        now - current_.profiledAt < config_.reprofileInterval) {
        return false;
    }
    profile(modules, now);
    return true;
}

} // namespace hdmr::margin
