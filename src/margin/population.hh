/**
 * @file
 * Statistical generator for memory-module fleets.
 *
 * The latent margin distributions below are calibrated so that a
 * simulated re-run of the paper's methodology (margin/test_machine.hh)
 * reproduces the published statistics: brands A-C average 770 MT/s
 * (27 %) of frequency margin, brand D averages 213 MT/s, 9-chip/rank
 * modules show a much tighter spread than 18-chip/rank ones, 2400 MT/s
 * modules show more margin than 3200 MT/s ones (partly a 4000 MT/s
 * platform-cap artifact), and age/ranks/density/date have no effect.
 */

#ifndef HDMR_MARGIN_POPULATION_HH
#define HDMR_MARGIN_POPULATION_HH

#include <cstdint>
#include <vector>

#include "margin/module.hh"
#include "util/rng.hh"

namespace hdmr::margin
{

/** Calibration constants for the latent margin model. */
struct PopulationModel
{
    // Latent (unquantized) frequency margin, normal per class, MT/s.
    double majorBrand2400Mean = 1067.0;
    double majorBrand2400Stdev = 150.0;
    double majorBrand3200NineChipMean = 920.0;
    double majorBrand3200NineChipStdev = 130.0;
    double majorBrand3200NineChipFloor = 600.0;
    double majorBrand3200EighteenChipMean = 870.0;
    double majorBrand3200EighteenChipStdev = 270.0;
    double brandDMean = 310.0;
    double brandDStdev = 130.0;

    // Gap between "error-free" and "still boots", MT/s.
    double bootableGapMean = 350.0;
    double bootableGapStdev = 100.0;
    double bootableGapFloor = 200.0;

    // Per-module error-intensity spread (log-normal sigma).
    double errorIntensitySigma = 2.0;

    // Fractions of modules whose behaviour changes in the corner cases
    // (Section II-C: 5/103 lose margin at 45 degC, 9/103 with latency
    // margins also exploited; 22/27 respond to 1.35 V).
    double hotMarginDropFraction = 5.0 / 103.0;
    double hotLatencyMarginDropFraction = 9.0 / 103.0;
    double overvoltResponseFraction = 22.0 / 27.0;
};

/**
 * Draws MemoryModule instances with latent ground truth from the
 * calibrated model.  Deterministic given the seed.
 */
class ModulePopulation
{
  public:
    explicit ModulePopulation(std::uint64_t seed,
                              PopulationModel model = {});

    /** Sample one module with the given label-visible spec. */
    MemoryModule sample(const ModuleSpec &spec);

    /** Sample a homogeneous fleet of `count` modules. */
    std::vector<MemoryModule> sampleFleet(const ModuleSpec &spec,
                                          std::size_t count);

    const PopulationModel &model() const { return model_; }

  private:
    PopulationModel model_;
    util::Rng rng_;
    unsigned nextId_ = 1;
};

/**
 * Construct the paper's 119-module study fleet: 103 modules across
 * major brands A (40), B (35), C (28) - of which 44 are 3200 MT/s with
 * 9 chips/rank, 26 are 3200 MT/s with 18 chips/rank and 33 are
 * 2400 MT/s - plus 16 brand-D modules.  Modules A8-A31 come from a
 * three-year-old in-production cluster (Fig. 4a).
 */
std::vector<MemoryModule> makeStudyFleet(std::uint64_t seed);

} // namespace hdmr::margin

#endif // HDMR_MARGIN_POPULATION_HH
