#include "margin/study.hh"

#include <map>

#include "util/logging.hh"
#include "util/stats.hh"

namespace hdmr::margin
{

const std::vector<StudyScaleEntry> &
studyScaleTable()
{
    static const std::vector<StudyScaleEntry> table = {
        {"This Paper", "DDR4 RDIMM", "119", "3006", "frequency"},
        {"Prior Work [60]", "DDR3 SO-DIMM", "96", "768", "latency"},
        {"Prior Work [56]", "DDR3 SO-DIMM", "32", "416", "latency"},
        {"Prior Work [47]", "DDR3 SO-DIMM", "30", "240", "latency"},
        {"Prior Work [65]", "LPDDR4", "N/A", "368", "latency"},
        {"Prior Work [62]", "DDR3 SO-DIMM", "34", "248", "latency"},
        {"Prior Work [50]", "DDR3 UDIMM", "8", "64", "voltage"},
    };
    return table;
}

namespace
{

GroupStats
finalize(const std::string &label,
         const std::vector<double> &margins_mts,
         const std::vector<double> &fractions)
{
    GroupStats stats;
    stats.label = label;
    stats.count = margins_mts.size();
    if (margins_mts.empty())
        return stats;

    util::RunningStats mts;
    for (double m : margins_mts)
        mts.add(m);
    stats.meanMarginMts = mts.mean();
    stats.stdevMts = mts.stdev();
    stats.ci99HalfWidthMts = mts.confidenceHalfWidth(0.99);
    stats.minMarginMts = mts.min();
    stats.meanMarginFraction = util::mean(fractions);
    return stats;
}

} // anonymous namespace

std::vector<GroupStats>
groupMargins(const std::vector<MemoryModule> &fleet,
             const std::vector<MarginMeasurement> &measurements,
             const std::function<std::string(const MemoryModule &)> &key)
{
    hdmr_assert(fleet.size() == measurements.size());
    std::map<std::string, std::pair<std::vector<double>,
                                    std::vector<double>>> groups;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        auto &[margins, fractions] = groups[key(fleet[i])];
        margins.push_back(static_cast<double>(measurements[i].marginMts()));
        fractions.push_back(measurements[i].marginFraction());
    }

    std::vector<GroupStats> out;
    out.reserve(groups.size());
    for (const auto &[label, data] : groups)
        out.push_back(finalize(label, data.first, data.second));
    return out;
}

GroupStats
aggregateMargins(const std::vector<MemoryModule> &fleet,
                 const std::vector<MarginMeasurement> &measurements,
                 const std::function<bool(const MemoryModule &)> &pred,
                 const std::string &label)
{
    hdmr_assert(fleet.size() == measurements.size());
    std::vector<double> margins, fractions;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        if (!pred(fleet[i]))
            continue;
        margins.push_back(static_cast<double>(measurements[i].marginMts()));
        fractions.push_back(measurements[i].marginFraction());
    }
    return finalize(label, margins, fractions);
}

} // namespace hdmr::margin
