#include "margin/error_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace hdmr::margin
{

ErrorRateModel::ErrorRateModel(ErrorModelParams params) : params_(params)
{
}

unsigned
ErrorRateModel::stableRateAt(const MemoryModule &module,
                             const OperatingPoint &op) const
{
    unsigned stable = module.maxStableRateMts;

    if (op.voltage > 1.3 && module.respondsToOvervolt)
        stable += params_.stepMts;

    if (op.ambientC >= 45.0) {
        const bool drops = op.latencyMarginsExploited
                               ? module.marginDropsWhenHotWithLatency
                               : module.marginDropsWhenHot;
        if (drops) {
            stable = stable > params_.stepMts ? stable - params_.stepMts
                                              : 0;
        }
    }
    // Exploiting the conservative latency-margin combination at room
    // temperature leaves the frequency margin unchanged (Section II-A).
    return stable;
}

unsigned
ErrorRateModel::bootableRateAt(const MemoryModule &module,
                               const OperatingPoint &op) const
{
    const unsigned stable23 = module.maxStableRateMts;
    const unsigned stable_now = stableRateAt(module, op);
    // The boot ceiling tracks the stable rate's corner-case shifts.
    return module.maxBootableRateMts - (stable23 - std::min(stable23,
                                                            stable_now));
}

double
ErrorRateModel::errorsPerHour(const MemoryModule &module,
                              const OperatingPoint &op) const
{
    const unsigned stable = stableRateAt(module, op);
    if (op.dataRateMts <= stable) {
        // 99.999%+ of accesses correct: essentially silent in a
        // one-hour test.
        return 0.002 * op.accessIntensity;
    }

    const double overshoot_steps =
        static_cast<double>(op.dataRateMts - stable) /
        static_cast<double>(params_.stepMts);

    double rate = params_.baseErrorsPerHour * module.errorIntensity *
                  std::pow(params_.growthPerStep, overshoot_steps - 1.0);

    if (op.latencyMarginsExploited)
        rate *= params_.latencyFactor;

    if (op.ambientC >= 45.0) {
        rate *= op.latencyMarginsExploited ? params_.hotFactorFreqLat
                                           : params_.hotFactorFreq;
    }

    return rate * op.accessIntensity;
}

double
ErrorRateModel::correctedErrorsPerHour(const MemoryModule &module,
                                       const OperatingPoint &op) const
{
    return errorsPerHour(module, op) *
           (1.0 - params_.uncorrectableFraction);
}

double
ErrorRateModel::uncorrectedErrorsPerHour(const MemoryModule &module,
                                         const OperatingPoint &op) const
{
    return errorsPerHour(module, op) * params_.uncorrectableFraction;
}

double
ErrorRateModel::errorProbabilityPerRead(const MemoryModule &module,
                                        const OperatingPoint &op) const
{
    const double hourly = errorsPerHour(module, op);
    return std::min(1.0, hourly / (kStressAccessesPerHour *
                                   op.accessIntensity));
}

ErrorPatternMix
ErrorRateModel::patternMix(const MemoryModule &module,
                           const OperatingPoint &op) const
{
    // Modeling assumption (no published per-pattern breakdown exists):
    // at one overshoot step errors are overwhelmingly narrow - 55%
    // single-bit, 30% single-byte, 13% multi-byte bursts, 2% wide
    // command/address mishaps.  Each further step doubles the wide
    // share (capped at 20%) and grows the burst share 1.5x (capped at
    // 30%), eating proportionally into the narrow classes.
    const unsigned stable = stableRateAt(module, op);
    const double overshoot_steps =
        op.dataRateMts > stable
            ? static_cast<double>(op.dataRateMts - stable) /
                  static_cast<double>(params_.stepMts)
            : 0.0;
    const double extra_steps = std::max(0.0, overshoot_steps - 1.0);

    double wide = std::min(0.20, 0.02 * std::pow(2.0, extra_steps));
    if (op.latencyMarginsExploited)
        wide = std::min(0.20, wide * 2.0);
    const double multi = std::min(0.30, 0.13 * std::pow(1.5, extra_steps));

    const double narrow = 1.0 - wide - multi;
    ErrorPatternMix mix;
    mix.singleBit = narrow * (0.55 / 0.85);
    mix.singleByte = narrow * (0.30 / 0.85);
    mix.multiByte = multi;
    mix.wideBlock = wide;
    return mix;
}

namespace
{

/** The module as it stands after `hour` hours of drift. */
MemoryModule
wornModule(const MemoryModule &module,
           const TimeVaryingConditions &conditions, double hour)
{
    MemoryModule worn = module;
    const double erosion = conditions.erosionMts(hour);
    const unsigned lost = static_cast<unsigned>(
        std::min(erosion, static_cast<double>(worn.maxStableRateMts)));
    worn.maxStableRateMts -= lost;
    worn.maxBootableRateMts -= std::min(worn.maxBootableRateMts, lost);
    return worn;
}

} // namespace

unsigned
ErrorRateModel::stableRateAt(const MemoryModule &module,
                             const TimeVaryingConditions &conditions,
                             double hour) const
{
    return stableRateAt(wornModule(module, conditions, hour),
                        conditions.at(hour));
}

double
ErrorRateModel::errorsPerHourAt(const MemoryModule &module,
                                const TimeVaryingConditions &conditions,
                                double hour) const
{
    return errorsPerHour(wornModule(module, conditions, hour),
                         conditions.at(hour));
}

double
ErrorRateModel::errorProbabilityPerReadAt(
    const MemoryModule &module, const TimeVaryingConditions &conditions,
    double hour) const
{
    return errorProbabilityPerRead(wornModule(module, conditions, hour),
                                   conditions.at(hour));
}

} // namespace hdmr::margin
