#include "margin/module.hh"

#include "util/logging.hh"

namespace hdmr::margin
{

const char *
toString(Brand brand)
{
    switch (brand) {
      case Brand::kA:
        return "A";
      case Brand::kB:
        return "B";
      case Brand::kC:
        return "C";
      case Brand::kD:
        return "D";
    }
    util::panic("unknown brand");
}

const char *
toString(Condition condition)
{
    switch (condition) {
      case Condition::kNew:
        return "new";
      case Condition::kInProduction3Years:
        return "3yr-in-production";
      case Condition::kRefurbished:
        return "refurbished";
    }
    util::panic("unknown condition");
}

std::string
MemoryModule::name() const
{
    return std::string(toString(spec.brand)) + std::to_string(id);
}

} // namespace hdmr::margin
