/**
 * @file
 * Margin profiling (Section III-E, "Determining Margins").
 *
 * Hetero-DMR profiles a node's memory margins at boot and re-profiles
 * periodically when the node is idle (extending REAPER [65] from
 * tREFI to frequency).  Crucially, profiling here is needed only for
 * *performance*: if conditions degrade past the profile (temperature
 * spike, limited profiling time), the safely-operated originals still
 * provide recovery; a stale profile can cost speed, never
 * correctness.
 */

#ifndef HDMR_MARGIN_PROFILER_HH
#define HDMR_MARGIN_PROFILER_HH

#include <cstdint>
#include <vector>

#include "margin/test_machine.hh"
#include "util/units.hh"

namespace hdmr::margin
{

/** Profiler configuration. */
struct ProfilerConfig
{
    /** Re-profile when the node has been idle this long. */
    util::Tick reprofileInterval = 24ull * 3600 * util::kTicksPerSec;
    /** Derate the measured margin by this many steps for safety. */
    unsigned guardBandSteps = 0;
    unsigned stepMts = 200;
    TestMachineConfig machine;
};

/** One node's profiled margin state. */
struct NodeProfile
{
    std::vector<unsigned> moduleMarginsMts; ///< per module
    std::vector<unsigned> channelMarginsMts;
    unsigned nodeMarginMts = 0;
    util::Tick profiledAt = 0;
};

/**
 * Boot-time / idle-time margin profiler for one node.  The node's
 * modules are paired two-per-channel in order.
 */
class MarginProfiler
{
  public:
    MarginProfiler(ProfilerConfig config, std::uint64_t seed);

    /** Full profile of all modules (boot time, or on demand). */
    NodeProfile profile(const std::vector<MemoryModule> &modules,
                        util::Tick now);

    /**
     * Re-profile if the node is idle and the profile is stale;
     * returns true when a new profile was taken.
     */
    bool maybeReprofile(const std::vector<MemoryModule> &modules,
                        util::Tick now, bool node_idle);

    const NodeProfile &current() const { return current_; }
    std::uint64_t profilesTaken() const { return profilesTaken_; }

  private:
    ProfilerConfig config_;
    TestMachine machine_;
    NodeProfile current_;
    std::uint64_t profilesTaken_ = 0;
};

} // namespace hdmr::margin

#endif // HDMR_MARGIN_PROFILER_HH
