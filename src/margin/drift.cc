#include "margin/drift.hh"

#include <algorithm>
#include <cmath>

#include "snapshot/digest.hh"
#include "snapshot/serializer.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace hdmr::margin
{

namespace
{

/** SplitMix64 finalizer: decorrelates (seed, stream-id) pairs. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr double kPi = 3.14159265358979323846;

} // namespace

util::Status
DriftConfig::validate() const
{
    const auto bad = [](double v) { return std::isnan(v) || v < 0.0; };

    if (modules == 0)
        return util::invalidArgument(
            "DriftConfig.modules must be at least 1");
    if (bad(horizonHours))
        return util::invalidArgument(
            "DriftConfig.horizonHours must be >= 0");
    if (bad(agingMtsPerKiloHour))
        return util::invalidArgument(
            "DriftConfig.agingMtsPerKiloHour must be >= 0");
    if (bad(agingSigma))
        return util::invalidArgument(
            "DriftConfig.agingSigma must be >= 0");
    if (std::isnan(agingExponent) || agingExponent <= 0.0)
        return util::invalidArgument(
            "DriftConfig.agingExponent must be > 0");
    if (cohortSize == 0)
        return util::invalidArgument(
            "DriftConfig.cohortSize must be at least 1");
    if (std::isnan(cohortCorrelation) || cohortCorrelation < 0.0 ||
        cohortCorrelation > 1.0) {
        return util::invalidArgument(
            "DriftConfig.cohortCorrelation must lie in [0, 1]");
    }
    if (bad(diurnalAmplitudeC))
        return util::invalidArgument(
            "DriftConfig.diurnalAmplitudeC must be >= 0");
    if (std::isnan(diurnalPeakHour) || diurnalPeakHour < 0.0 ||
        diurnalPeakHour >= 24.0) {
        return util::invalidArgument(
            "DriftConfig.diurnalPeakHour must lie in [0, 24)");
    }
    if (bad(spikesPerKiloHour))
        return util::invalidArgument(
            "DriftConfig.spikesPerKiloHour must be >= 0");
    if (std::isnan(spikeMeanHours) || spikeMeanHours <= 0.0)
        return util::invalidArgument(
            "DriftConfig.spikeMeanHours must be > 0");
    if (std::isnan(spikeErrorMultiplier) || spikeErrorMultiplier < 1.0)
        return util::invalidArgument(
            "DriftConfig.spikeErrorMultiplier must be >= 1");
    return util::Status{};
}

MarginDriftModel::MarginDriftModel(DriftConfig config)
    : config_(config)
{
    util::checkOk(config_.validate());

    agingRates_.assign(config_.modules, 0.0);
    spikes_.assign(config_.modules, {});

    if (config_.agingMtsPerKiloHour > 0.0) {
        // Cohort draws first (one shared normal per cohort), then one
        // private normal per module; each from its own forked stream
        // so fleet size changes never perturb another module's curve.
        const double rho = config_.cohortCorrelation;
        const unsigned cohorts =
            (config_.modules + config_.cohortSize - 1) /
            config_.cohortSize;
        std::vector<double> cohortZ(cohorts, 0.0);
        for (unsigned c = 0; c < cohorts; ++c) {
            util::Rng rng(mix(config_.seed ^
                              (c + 1) * 0x9e3779b97f4a7c15ULL));
            cohortZ[c] = rng.normal();
        }
        for (unsigned m = 0; m < config_.modules; ++m) {
            util::Rng rng(mix(config_.seed ^
                              (m + 1) * 0x100000001b3ULL));
            const double z =
                std::sqrt(rho) * cohortZ[m / config_.cohortSize] +
                std::sqrt(1.0 - rho) * rng.normal();
            // exp(sigma z) around the configured *median* rate: half
            // the fleet ages faster, half slower, cohorts together.
            agingRates_[m] = config_.agingMtsPerKiloHour *
                             std::exp(config_.agingSigma * z);
        }
    }

    if (config_.spikesPerKiloHour > 0.0 && config_.horizonHours > 0.0) {
        const double per_hour = config_.spikesPerKiloHour / 1000.0;
        for (unsigned m = 0; m < config_.modules; ++m) {
            util::Rng rng(mix(config_.seed ^ 0x5b1ce5ULL ^
                              (m + 1) * 0x100000001b3ULL));
            double at = rng.exponential(per_hour);
            while (at < config_.horizonHours) {
                VoltageSpike spike;
                spike.startHour = at;
                spike.durationHours =
                    rng.exponential(1.0 / config_.spikeMeanHours);
                spike.errorMultiplier = config_.spikeErrorMultiplier;
                spikes_[m].push_back(spike);
                at += rng.exponential(per_hour);
            }
        }
    }
}

double
MarginDriftModel::agingRateMtsPerKiloHour(unsigned module) const
{
    return agingRates_.at(module);
}

const std::vector<VoltageSpike> &
MarginDriftModel::spikes(unsigned module) const
{
    return spikes_.at(module);
}

double
MarginDriftModel::erosionMtsAt(unsigned module, double hour) const
{
    if (hour <= 0.0)
        return 0.0;
    return agingRates_.at(module) *
           std::pow(hour / 1000.0, config_.agingExponent);
}

double
MarginDriftModel::ambientDeltaAt(double hour) const
{
    if (config_.diurnalAmplitudeC <= 0.0)
        return 0.0;
    // Sinusoidal load cycle: peaks at diurnalPeakHour every 24 h,
    // touches zero twelve hours later.
    const double phase =
        2.0 * kPi * (hour - config_.diurnalPeakHour) / 24.0;
    return config_.diurnalAmplitudeC * 0.5 * (1.0 + std::cos(phase));
}

double
MarginDriftModel::errorMultiplierAt(unsigned module, double hour) const
{
    double multiplier = 1.0;
    for (const VoltageSpike &spike : spikes_.at(module)) {
        if (spike.startHour > hour)
            break; // sorted by start: nothing later can cover `hour`
        if (spike.covers(hour))
            multiplier *= spike.errorMultiplier;
    }
    return multiplier;
}

DriftSample
MarginDriftModel::sampleAt(unsigned module, double hour) const
{
    DriftSample sample;
    sample.erosionMts = erosionMtsAt(module, hour);
    sample.ambientDeltaC = ambientDeltaAt(hour);
    sample.errorMultiplier = errorMultiplierAt(module, hour);
    return sample;
}

OperatingPoint
MarginDriftModel::operatingPointAt(const OperatingPoint &base,
                                   double hour) const
{
    OperatingPoint op = base;
    op.ambientC += ambientDeltaAt(hour);
    return op;
}

MemoryModule
MarginDriftModel::wornModule(const MemoryModule &module, unsigned index,
                             double hour) const
{
    MemoryModule worn = module;
    const double erosion = erosionMtsAt(index, hour);
    const unsigned lost = static_cast<unsigned>(
        std::min(erosion, static_cast<double>(worn.maxStableRateMts)));
    worn.maxStableRateMts -= lost;
    worn.maxBootableRateMts -= std::min(worn.maxBootableRateMts, lost);
    return worn;
}

unsigned
MarginDriftModel::stableRateAt(const ErrorRateModel &model,
                               const MemoryModule &module,
                               const OperatingPoint &base,
                               unsigned index, double hour) const
{
    return model.stableRateAt(wornModule(module, index, hour),
                              operatingPointAt(base, hour));
}

double
MarginDriftModel::errorsPerHourAt(const ErrorRateModel &model,
                                  const MemoryModule &module,
                                  const OperatingPoint &base,
                                  unsigned index, double hour) const
{
    return model.errorsPerHour(wornModule(module, index, hour),
                               operatingPointAt(base, hour)) *
           errorMultiplierAt(index, hour);
}

double
MarginDriftModel::errorProbabilityPerReadAt(const ErrorRateModel &model,
                                            const MemoryModule &module,
                                            const OperatingPoint &base,
                                            unsigned index,
                                            double hour) const
{
    return std::min(
        1.0, model.errorProbabilityPerRead(
                 wornModule(module, index, hour),
                 operatingPointAt(base, hour)) *
                 errorMultiplierAt(index, hour));
}

std::uint64_t
MarginDriftModel::digest() const
{
    snapshot::Fnv1a hash;
    hash.addU64(config_.seed);
    hash.addU32(config_.modules);
    hash.addDouble(config_.horizonHours);
    hash.addDouble(config_.agingMtsPerKiloHour);
    hash.addDouble(config_.agingSigma);
    hash.addDouble(config_.agingExponent);
    hash.addU32(config_.cohortSize);
    hash.addDouble(config_.cohortCorrelation);
    hash.addDouble(config_.diurnalAmplitudeC);
    hash.addDouble(config_.diurnalPeakHour);
    hash.addDouble(config_.spikesPerKiloHour);
    hash.addDouble(config_.spikeMeanHours);
    hash.addDouble(config_.spikeErrorMultiplier);
    for (double rate : agingRates_)
        hash.addDouble(rate);
    for (const std::vector<VoltageSpike> &schedule : spikes_) {
        hash.addU64(schedule.size());
        for (const VoltageSpike &spike : schedule) {
            hash.addDouble(spike.startHour);
            hash.addDouble(spike.durationHours);
            hash.addDouble(spike.errorMultiplier);
        }
    }
    return hash.value();
}

void
MarginDriftModel::save(snapshot::Serializer &out) const
{
    out.writeU64(digest());
}

bool
MarginDriftModel::restore(snapshot::Deserializer &in)
{
    const std::uint64_t saved = in.readU64();
    if (!in.ok())
        return false;
    if (saved != digest()) {
        in.fail("drift-model snapshot belongs to a different drift "
                "realization (config or seed changed)");
        return false;
    }
    return true;
}

} // namespace hdmr::margin
