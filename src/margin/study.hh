/**
 * @file
 * The paper's characterization study: Table I scale constants and
 * aggregation helpers used to regenerate Figures 2-4 from a simulated
 * re-run of the methodology.
 */

#ifndef HDMR_MARGIN_STUDY_HH
#define HDMR_MARGIN_STUDY_HH

#include <functional>
#include <string>
#include <vector>

#include "margin/module.hh"

namespace hdmr::margin
{

/** One row of Table I (scale of this study vs. prior work). */
struct StudyScaleEntry
{
    const char *work;
    const char *dramType;
    const char *modules;
    const char *chips;
    const char *marginStudied;
};

/** Table I contents. */
const std::vector<StudyScaleEntry> &studyScaleTable();

/** Aggregate margin statistics for one group of modules (Figs. 3-4). */
struct GroupStats
{
    std::string label;
    std::size_t count = 0;
    double meanMarginMts = 0.0;
    double stdevMts = 0.0;
    double ci99HalfWidthMts = 0.0; ///< normal-approx 99 % CI (Fig. 3a)
    double meanMarginFraction = 0.0;
    double minMarginMts = 0.0;
};

/**
 * Group measured margins by an arbitrary key of the module.
 * `measurements[i]` must correspond to `fleet[i]`.
 */
std::vector<GroupStats>
groupMargins(const std::vector<MemoryModule> &fleet,
             const std::vector<MarginMeasurement> &measurements,
             const std::function<std::string(const MemoryModule &)> &key);

/** Overall stats for a subset selected by a predicate. */
GroupStats
aggregateMargins(const std::vector<MemoryModule> &fleet,
                 const std::vector<MarginMeasurement> &measurements,
                 const std::function<bool(const MemoryModule &)> &pred,
                 const std::string &label);

} // namespace hdmr::margin

#endif // HDMR_MARGIN_STUDY_HH
