/**
 * @file
 * Error-rate model for memory operated beyond its specification.
 *
 * Encodes the empirical regularities of Section II-C:
 *  - below a module's latent stable rate, errors are essentially absent
 *    (99.999%+ of accesses correct);
 *  - at/above it, the hourly error rate grows steeply with overshoot
 *    and varies by orders of magnitude across modules (log-normal
 *    intensity);
 *  - 45 degC ambient multiplies the frequency-margin error rate by ~4x
 *    (and the freq+latency rate by ~2x relative to its own 23 degC
 *    rate), and shaves one 200 MT/s step off a small subset of modules;
 *  - most errors are ECC-correctable (CEs), a substantial minority are
 *    not (UEs);
 *  - a fully-populated system sees roughly half the naive per-module
 *    sum because each module is accessed half as often.
 */

#ifndef HDMR_MARGIN_ERROR_MODEL_HH
#define HDMR_MARGIN_ERROR_MODEL_HH

#include <vector>

#include "margin/module.hh"

namespace hdmr::margin
{

/** Conditions a module is operated under. */
struct OperatingPoint
{
    unsigned dataRateMts = 3200;
    double ambientC = 23.0;
    bool latencyMarginsExploited = false;
    double voltage = 1.2;
    /**
     * Relative per-module access intensity; 1.0 = the single-module
     * stress-test setup, 0.5 = two modules sharing a channel.
     */
    double accessIntensity = 1.0;
};

/** One bounded window of elevated ambient temperature. */
struct TemperatureExcursion
{
    double startHour = 0.0;
    double durationHours = 0.0;
    /** Ambient during the window (cooling failure: 45 degC). */
    double ambientC = 45.0;

    bool
    covers(double hour) const
    {
        return hour >= startHour && hour < startHour + durationHours;
    }
};

/**
 * Time-varying operating conditions: a base OperatingPoint plus the
 * two slow processes the fault model injects - monotonic margin drift
 * (aging erodes the latent stable rate) and scheduled temperature
 * excursions.  With zero drift and no excursions, at(h) == base for
 * every h, so the time-varying oracle degenerates to the stateless one.
 */
struct TimeVaryingConditions
{
    OperatingPoint base;
    /** Stable-rate erosion, MT/s per operating hour (aging). */
    double marginDriftMtsPerHour = 0.0;
    std::vector<TemperatureExcursion> excursions;

    /** The operating point in effect `hour` hours into the run. */
    OperatingPoint
    at(double hour) const
    {
        OperatingPoint op = base;
        for (const TemperatureExcursion &window : excursions) {
            if (window.covers(hour) && window.ambientC > op.ambientC)
                op.ambientC = window.ambientC;
        }
        return op;
    }

    /** Accumulated stable-rate erosion after `hour` hours. */
    double
    erosionMts(double hour) const
    {
        return marginDriftMtsPerHour * (hour > 0.0 ? hour : 0.0);
    }
};

/** Model constants (defaults calibrated to Fig. 6). */
struct ErrorModelParams
{
    /** Mean errors/hour one step past the stable rate, unit intensity. */
    double baseErrorsPerHour = 200.0;
    /** Multiplicative growth per additional 200 MT/s of overshoot. */
    double growthPerStep = 30.0;
    /** 45 degC multiplier when exploiting frequency margin only. */
    double hotFactorFreq = 4.0;
    /** 45 degC multiplier when also exploiting latency margins. */
    double hotFactorFreqLat = 2.0;
    /** 23 degC multiplier for adding latency-margin exploitation. */
    double latencyFactor = 2.0;
    /** Fraction of errors the conventional ECC cannot correct. */
    double uncorrectableFraction = 0.3;
    /** Step size used for margin-loss corner cases. */
    unsigned stepMts = 200;
};

/**
 * How the errors of one operating point split across the corruption
 * shapes of ecc::ErrorPattern (Section III: bit flips, whole-IO-pin
 * byte errors, multi-pin bursts, command/address "8B+" mishaps).
 * Fractions sum to 1.
 */
struct ErrorPatternMix
{
    double singleBit = 0.0;
    double singleByte = 0.0;
    double multiByte = 0.0;
    double wideBlock = 0.0;
};

/**
 * Deterministic error-rate oracle.  Stateless; randomness (Poisson
 * sampling of actual counts) lives in the stress-test driver.
 */
class ErrorRateModel
{
  public:
    explicit ErrorRateModel(ErrorModelParams params = {});

    /**
     * Highest data rate at which 99.999%+ of accesses are error-free
     * under the given conditions (ambient/latency corner cases and
     * overvolting applied to the module's latent stable rate).
     */
    unsigned stableRateAt(const MemoryModule &module,
                          const OperatingPoint &op) const;

    /** Highest data rate at which the system boots under `op`. */
    unsigned bootableRateAt(const MemoryModule &module,
                            const OperatingPoint &op) const;

    /** Expected total errors per hour of stress testing at `op`. */
    double errorsPerHour(const MemoryModule &module,
                         const OperatingPoint &op) const;

    /** Expected ECC-corrected errors per hour. */
    double correctedErrorsPerHour(const MemoryModule &module,
                                  const OperatingPoint &op) const;

    /** Expected uncorrected errors per hour. */
    double uncorrectedErrorsPerHour(const MemoryModule &module,
                                    const OperatingPoint &op) const;

    /**
     * Probability that one 64-byte read performed at `op` returns a
     * detectably corrupted block.  Used by the Hetero-DMR node model to
     * drive its correction flow; derived from errorsPerHour() assuming
     * the stress test's access volume.
     */
    double errorProbabilityPerRead(const MemoryModule &module,
                                   const OperatingPoint &op) const;

    /**
     * Corruption-shape mix of the errors at `op`.  Mild overshoot is
     * dominated by single-bit/single-byte (signal-integrity) errors;
     * each additional overshoot step shifts weight toward multi-pin
     * bursts and command/address mishaps, so the dangerous wide-block
     * ("8B+") tail grows with aggressiveness.  Exploiting latency
     * margins stresses command timing and doubles the wide share.
     */
    ErrorPatternMix patternMix(const MemoryModule &module,
                               const OperatingPoint &op) const;

    // ---- Time-varying oracle (fault-campaign conditions). ----
    //
    // Each *At() overload evaluates the stateless oracle against a
    // "worn" copy of the module - its latent stable rate reduced by the
    // drift accumulated up to `hour` - under the operating point in
    // effect at `hour` (excursions applied).  With default conditions
    // these are exactly the stateless results.

    /** Stable rate `hour` hours into a run under drifting conditions. */
    unsigned stableRateAt(const MemoryModule &module,
                          const TimeVaryingConditions &conditions,
                          double hour) const;

    /** Expected errors/hour at time `hour` under drifting conditions. */
    double errorsPerHourAt(const MemoryModule &module,
                           const TimeVaryingConditions &conditions,
                           double hour) const;

    /** Per-read error probability at time `hour`. */
    double errorProbabilityPerReadAt(
        const MemoryModule &module,
        const TimeVaryingConditions &conditions, double hour) const;

    const ErrorModelParams &params() const { return params_; }

    /** Accesses/hour the single-module stress test performs. */
    static constexpr double kStressAccessesPerHour = 1.0e9;

  private:
    ErrorModelParams params_;
};

} // namespace hdmr::margin

#endif // HDMR_MARGIN_ERROR_MODEL_HH
