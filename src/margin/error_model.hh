/**
 * @file
 * Error-rate model for memory operated beyond its specification.
 *
 * Encodes the empirical regularities of Section II-C:
 *  - below a module's latent stable rate, errors are essentially absent
 *    (99.999%+ of accesses correct);
 *  - at/above it, the hourly error rate grows steeply with overshoot
 *    and varies by orders of magnitude across modules (log-normal
 *    intensity);
 *  - 45 degC ambient multiplies the frequency-margin error rate by ~4x
 *    (and the freq+latency rate by ~2x relative to its own 23 degC
 *    rate), and shaves one 200 MT/s step off a small subset of modules;
 *  - most errors are ECC-correctable (CEs), a substantial minority are
 *    not (UEs);
 *  - a fully-populated system sees roughly half the naive per-module
 *    sum because each module is accessed half as often.
 */

#ifndef HDMR_MARGIN_ERROR_MODEL_HH
#define HDMR_MARGIN_ERROR_MODEL_HH

#include "margin/module.hh"

namespace hdmr::margin
{

/** Conditions a module is operated under. */
struct OperatingPoint
{
    unsigned dataRateMts = 3200;
    double ambientC = 23.0;
    bool latencyMarginsExploited = false;
    double voltage = 1.2;
    /**
     * Relative per-module access intensity; 1.0 = the single-module
     * stress-test setup, 0.5 = two modules sharing a channel.
     */
    double accessIntensity = 1.0;
};

/** Model constants (defaults calibrated to Fig. 6). */
struct ErrorModelParams
{
    /** Mean errors/hour one step past the stable rate, unit intensity. */
    double baseErrorsPerHour = 200.0;
    /** Multiplicative growth per additional 200 MT/s of overshoot. */
    double growthPerStep = 30.0;
    /** 45 degC multiplier when exploiting frequency margin only. */
    double hotFactorFreq = 4.0;
    /** 45 degC multiplier when also exploiting latency margins. */
    double hotFactorFreqLat = 2.0;
    /** 23 degC multiplier for adding latency-margin exploitation. */
    double latencyFactor = 2.0;
    /** Fraction of errors the conventional ECC cannot correct. */
    double uncorrectableFraction = 0.3;
    /** Step size used for margin-loss corner cases. */
    unsigned stepMts = 200;
};

/**
 * Deterministic error-rate oracle.  Stateless; randomness (Poisson
 * sampling of actual counts) lives in the stress-test driver.
 */
class ErrorRateModel
{
  public:
    explicit ErrorRateModel(ErrorModelParams params = {});

    /**
     * Highest data rate at which 99.999%+ of accesses are error-free
     * under the given conditions (ambient/latency corner cases and
     * overvolting applied to the module's latent stable rate).
     */
    unsigned stableRateAt(const MemoryModule &module,
                          const OperatingPoint &op) const;

    /** Highest data rate at which the system boots under `op`. */
    unsigned bootableRateAt(const MemoryModule &module,
                            const OperatingPoint &op) const;

    /** Expected total errors per hour of stress testing at `op`. */
    double errorsPerHour(const MemoryModule &module,
                         const OperatingPoint &op) const;

    /** Expected ECC-corrected errors per hour. */
    double correctedErrorsPerHour(const MemoryModule &module,
                                  const OperatingPoint &op) const;

    /** Expected uncorrected errors per hour. */
    double uncorrectedErrorsPerHour(const MemoryModule &module,
                                    const OperatingPoint &op) const;

    /**
     * Probability that one 64-byte read performed at `op` returns a
     * detectably corrupted block.  Used by the Hetero-DMR node model to
     * drive its correction flow; derived from errorsPerHour() assuming
     * the stress test's access volume.
     */
    double errorProbabilityPerRead(const MemoryModule &module,
                                   const OperatingPoint &op) const;

    const ErrorModelParams &params() const { return params_; }

    /** Accesses/hour the single-module stress test performs. */
    static constexpr double kStressAccessesPerHour = 1.0e9;

  private:
    ErrorModelParams params_;
};

} // namespace hdmr::margin

#endif // HDMR_MARGIN_ERROR_MODEL_HH
