/**
 * @file
 * Memory-module descriptors for the frequency-margin study.
 *
 * The paper characterizes 119 physical DDR4 RDIMMs.  Here a module is
 * a statistical object: its *spec* fields are what a buyer sees on the
 * label, and its *latent* fields are the ground truth a test machine
 * can only estimate by sweeping data rates (margin/test_machine.hh).
 * Latent fields are calibrated so the measured population reproduces
 * the paper's Figures 2-4 and 6.
 */

#ifndef HDMR_MARGIN_MODULE_HH
#define HDMR_MARGIN_MODULE_HH

#include <cstdint>
#include <string>

namespace hdmr::margin
{

/**
 * Memory brands in the study.  A-C are the three major DRAM chip
 * manufacturers; D is a small module-only vendor with much lower
 * margins (Fig. 3a), excluded from the rest of the paper.
 */
enum class Brand : std::uint8_t
{
    kA,
    kB,
    kC,
    kD,
};

/** Condition of a module when it entered the study (Fig. 4a). */
enum class Condition : std::uint8_t
{
    kNew,
    kInProduction3Years, ///< pulled from a 3-year-old cluster
    kRefurbished,
};

const char *toString(Brand brand);
const char *toString(Condition condition);

/** Label-visible module parameters. */
struct ModuleSpec
{
    Brand brand = Brand::kA;
    unsigned specRateMts = 3200;    ///< manufacturer-specified data rate
    unsigned chipsPerRank = 9;      ///< 9 (x8+ECC) or 18 (x4+ECC)
    unsigned ranksPerModule = 2;    ///< 1 or 2
    unsigned chipDensityGbit = 8;   ///< 4, 8, or 16
    unsigned mfgYear = 2019;        ///< manufacturing date (Fig. 4d)
    Condition condition = Condition::kNew;

    /** Total DRAM chips on the module. */
    unsigned
    chips() const
    {
        return chipsPerRank * ranksPerModule;
    }
};

/**
 * A module instance: spec plus latent ground truth.
 *
 * `maxStableRateMts` is the highest data rate at which 99.999%+ of
 * accesses are error-free at 23 degC / 1.2 V - i.e. spec rate plus the
 * *frequency margin* the paper measures.  `maxBootableRateMts` is the
 * highest rate at which the system still boots; between the two the
 * module runs but produces errors (the regime Fig. 6 characterizes).
 */
struct MemoryModule
{
    unsigned id = 0;
    ModuleSpec spec;

    // ---- latent ground truth (not directly observable) ----
    unsigned maxStableRateMts = 0;
    unsigned maxBootableRateMts = 0;
    /** Per-module error intensity scale (log-normal across modules). */
    double errorIntensity = 1.0;
    /** Margin shrinks by one step at >= 45 degC ambient (5/103 modules). */
    bool marginDropsWhenHot = false;
    /** Additional shrink when latency margins are also exploited (9/103). */
    bool marginDropsWhenHotWithLatency = false;
    /** Module responds to 1.35 V overvolting with extra margin (22/27). */
    bool respondsToOvervolt = true;

    /** Latent frequency margin in MT/s (unquantized, uncapped). */
    unsigned
    trueMarginMts() const
    {
        return maxStableRateMts - spec.specRateMts;
    }

    /** Short identifier like "A17" used in Fig. 6-style output. */
    std::string name() const;
};

/** Result of characterizing one module on a test machine. */
struct MarginMeasurement
{
    unsigned moduleId = 0;
    unsigned specRateMts = 0;
    unsigned measuredMaxRateMts = 0;  ///< highest error-free tested rate
    unsigned maxBootableRateMts = 0;  ///< highest rate that boots
    bool boots = true;                ///< false: did not boot at all

    /** Measured frequency margin in MT/s. */
    unsigned
    marginMts() const
    {
        return measuredMaxRateMts >= specRateMts
                   ? measuredMaxRateMts - specRateMts
                   : 0;
    }

    /** Margin normalized to the spec rate (the paper's "27%"). */
    double
    marginFraction() const
    {
        return static_cast<double>(marginMts()) /
               static_cast<double>(specRateMts);
    }
};

} // namespace hdmr::margin

#endif // HDMR_MARGIN_MODULE_HH
