/**
 * @file
 * Deterministic, seeded time-varying margin-drift model.
 *
 * The paper measures margins once, at qualification time; a production
 * fleet then watches those margins *move*.  This model generates the
 * three processes that move them, per module, from one seed:
 *
 *  - *Aging*: each module erodes its latent stable rate along a
 *    power-law curve erosion(h) = r_m * (h/1000)^q.  The per-module
 *    rate r_m is log-normal across the fleet, with a configurable
 *    fraction of the log-variance shared within same-brand/same-batch
 *    cohorts, so modules bought together drift together (the
 *    correlated-failure mode AL-DRAM warns about).
 *  - *Diurnal temperature*: a deterministic sinusoidal ambient rise
 *    peaking once per 24 h (machine-room load cycle), shared by every
 *    module in the fleet.
 *  - *Voltage-noise spikes*: per-module Poisson-scheduled transient
 *    windows during which the error rate is multiplied, modelling
 *    supply noise that raises the error floor without eroding margin.
 *
 * All curves are derived from DriftConfig at construction - the model
 * is stateless after that - so snapshot/resume persists only an
 * FNV-1a digest of the realized curves (the ScheduleCursor pattern):
 * a resumed run proves it is re-deriving the *same* drift realization,
 * and a snapshot taken under a different drift config is rejected.
 */

#ifndef HDMR_MARGIN_DRIFT_HH
#define HDMR_MARGIN_DRIFT_HH

#include <cstdint>
#include <vector>

#include "margin/error_model.hh"
#include "margin/module.hh"
#include "util/status.hh"

namespace hdmr::snapshot
{
class Serializer;
class Deserializer;
} // namespace hdmr::snapshot

namespace hdmr::margin
{

/** Parameters of the fleet-wide drift realization. */
struct DriftConfig
{
    std::uint64_t seed = 0xd21f7u;
    /** Fleet size (independent drift streams). */
    unsigned modules = 1;
    /** Spike-schedule horizon; 0 disables voltage-noise spikes. */
    double horizonHours = 0.0;

    // ---- aging ----
    /** Median stable-rate erosion per 1000 operating hours; 0
     *  disables aging entirely (no RNG touched for it). */
    double agingMtsPerKiloHour = 0.0;
    /** Log-normal sigma of the per-module aging rate. */
    double agingSigma = 0.5;
    /** Power-law exponent: erosion(h) = r * (h/1000)^agingExponent. */
    double agingExponent = 1.0;
    /** Modules per same-brand/same-batch cohort (>= 1). */
    unsigned cohortSize = 1;
    /** Fraction of the aging log-variance shared within a cohort. */
    double cohortCorrelation = 0.0;

    // ---- diurnal temperature ----
    /** Peak ambient rise over the base operating point, degC. */
    double diurnalAmplitudeC = 0.0;
    /** Hour-of-day at which the ambient rise peaks. */
    double diurnalPeakHour = 14.0;

    // ---- voltage-noise spikes ----
    /** Poisson spike rate per module per 1000 hours. */
    double spikesPerKiloHour = 0.0;
    /** Mean spike duration (exponential), hours. */
    double spikeMeanHours = 0.25;
    /** Error-rate multiplier while a spike is active. */
    double spikeErrorMultiplier = 4.0;

    /**
     * Reject impossible drift realizations (NaN/negative rates,
     * zero modules, correlation outside [0,1], ...) with
     * kInvalidArgument naming the offending field; one pass, first
     * offender wins.  MarginDriftModel's constructor checkOk()s it.
     */
    util::Status validate() const;

    bool
    enabled() const
    {
        return agingMtsPerKiloHour > 0.0 || diurnalAmplitudeC > 0.0 ||
               (spikesPerKiloHour > 0.0 && horizonHours > 0.0);
    }
};

/** One transient voltage-noise window. */
struct VoltageSpike
{
    double startHour = 0.0;
    double durationHours = 0.0;
    double errorMultiplier = 1.0;

    bool
    covers(double hour) const
    {
        return hour >= startHour && hour < startHour + durationHours;
    }
};

/** The drift conditions in effect for one module at one instant. */
struct DriftSample
{
    /** Accumulated stable-rate erosion, MT/s. */
    double erosionMts = 0.0;
    /** Diurnal ambient rise over the base operating point, degC. */
    double ambientDeltaC = 0.0;
    /** Product of the active voltage-noise multipliers. */
    double errorMultiplier = 1.0;
};

/**
 * The realized drift curves for one fleet.  Construction draws every
 * per-module curve from the seed; evaluation is pure.
 */
class MarginDriftModel
{
  public:
    explicit MarginDriftModel(DriftConfig config);

    const DriftConfig &config() const { return config_; }

    /** Realized aging rate of `module`, MT/s per 1000 h. */
    double agingRateMtsPerKiloHour(unsigned module) const;

    /** Realized spike schedule of `module`, sorted by start time. */
    const std::vector<VoltageSpike> &spikes(unsigned module) const;

    /** Accumulated erosion of `module` after `hour` hours. */
    double erosionMtsAt(unsigned module, double hour) const;

    /** Fleet-wide diurnal ambient rise at `hour`. */
    double ambientDeltaAt(double hour) const;

    /** Voltage-noise error multiplier of `module` at `hour`. */
    double errorMultiplierAt(unsigned module, double hour) const;

    /** All three processes of `module` sampled at `hour`. */
    DriftSample sampleAt(unsigned module, double hour) const;

    // ---- drifted oracle (modulates margin::ErrorRateModel) ----

    /** `base` with the diurnal ambient rise applied at `hour`. */
    OperatingPoint operatingPointAt(const OperatingPoint &base,
                                    double hour) const;

    /** Stable rate of fleet slot `index` at `hour` (erosion applied). */
    unsigned stableRateAt(const ErrorRateModel &model,
                          const MemoryModule &module,
                          const OperatingPoint &base, unsigned index,
                          double hour) const;

    /** Expected errors/hour at `hour`, all three processes applied. */
    double errorsPerHourAt(const ErrorRateModel &model,
                           const MemoryModule &module,
                           const OperatingPoint &base, unsigned index,
                           double hour) const;

    /** Per-read error probability at `hour`, all processes applied. */
    double errorProbabilityPerReadAt(const ErrorRateModel &model,
                                     const MemoryModule &module,
                                     const OperatingPoint &base,
                                     unsigned index, double hour) const;

    /** Order- and content-sensitive digest of the realized curves. */
    std::uint64_t digest() const;

    /** Persist the realization fingerprint (digest only; the curves
     *  re-derive from config). */
    void save(snapshot::Serializer &out) const;

    /**
     * Verify a fingerprint persisted by save() against this model's
     * realization.  Fails the deserializer (and returns false) when
     * the digests disagree: the snapshot belongs to a different drift
     * realization and must not be resumed against this one.
     */
    bool restore(snapshot::Deserializer &in);

  private:
    MemoryModule wornModule(const MemoryModule &module, unsigned index,
                            double hour) const;

    DriftConfig config_;
    /** Realized per-module aging rates, MT/s per 1000 h. */
    std::vector<double> agingRates_;
    /** Realized per-module spike schedules, sorted by start. */
    std::vector<std::vector<VoltageSpike>> spikes_;
};

} // namespace hdmr::margin

#endif // HDMR_MARGIN_DRIFT_HH
