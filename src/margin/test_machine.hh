/**
 * @file
 * A simulated characterization testbench mirroring the paper's setup:
 * an (unlocked) server CPU that can sweep memory data rate in 200 MT/s
 * BIOS steps up to a platform ceiling of 4000 MT/s, run stress tests,
 * count CEs/UEs, heat the chamber to 45 degC, raise VDD to 1.35 V, and
 * apply the conservative latency-margin combination of Table II.
 *
 * The machine observes modules only through boots and stress tests -
 * the latent ground truth in MemoryModule never leaks directly - so
 * measurement artifacts like the 4000 MT/s platform cap emerge the
 * same way they did in the paper.
 */

#ifndef HDMR_MARGIN_TEST_MACHINE_HH
#define HDMR_MARGIN_TEST_MACHINE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "margin/error_model.hh"
#include "margin/module.hh"
#include "util/rng.hh"

namespace hdmr::margin
{

/** Testbench configuration. */
struct TestMachineConfig
{
    unsigned stepMts = 200;         ///< BIOS data-rate step granularity
    unsigned platformCapMts = 4000; ///< system-level ceiling (Sec. II-A)
    double ambientC = 23.0;
    double voltage = 1.2;
    bool exploitLatencyMargins = false;
    double stressHours = 1.0;       ///< stress-test duration per step
};

/** Outcome of one stress test. */
struct StressTestResult
{
    bool booted = false;
    std::uint64_t correctedErrors = 0;
    std::uint64_t uncorrectedErrors = 0;

    std::uint64_t
    totalErrors() const
    {
        return correctedErrors + uncorrectedErrors;
    }
};

/** The paper's conservative all-module latency-margin combination. */
struct LatencyMarginCombination
{
    double trcdReduction = 0.16; ///< tRCD 13.75 ns -> 11.5 ns
    double trpReduction = 0.16;  ///< tRP  13.75 ns -> 11 ns
    double trasReduction = 0.09; ///< tRAS 32.5 ns -> 29.5 ns
    double trefiExtension = 0.92; ///< tREFI 7.8 us -> 15 us
};

/** The simulated testbench. */
class TestMachine
{
  public:
    TestMachine(TestMachineConfig config, std::uint64_t seed);

    /** Would the machine boot this module at the given rate? */
    bool boots(const MemoryModule &module, unsigned rate_mts) const;

    /** Run one stress test (config.stressHours long) at a rate. */
    StressTestResult stressTest(const MemoryModule &module,
                                unsigned rate_mts);

    /**
     * Sweep data rate upward from spec in config steps and report the
     * highest rate at which the stress test sees no errors, i.e. the
     * measured frequency margin (Section II-A methodology).
     */
    MarginMeasurement characterize(const MemoryModule &module);

    /** Characterize a whole fleet. */
    std::vector<MarginMeasurement>
    characterizeFleet(const std::vector<MemoryModule> &fleet);

    /**
     * The 1.35 V experiment of Section II-A: returns the measured max
     * rate at 1.35 V (all other settings unchanged).
     */
    MarginMeasurement characterizeOvervolted(const MemoryModule &module);

    /**
     * Error rate at the module's highest *bootable* data rate - the
     * Fig. 6 methodology.  Returns nullopt if the module fails to boot
     * even at one step above spec (seen for a few modules at 45 degC).
     */
    std::optional<StressTestResult>
    stressAtMarginEdge(const MemoryModule &module);

    const TestMachineConfig &config() const { return config_; }
    const ErrorRateModel &errorModel() const { return errorModel_; }

  private:
    OperatingPoint operatingPoint(unsigned rate_mts) const;

    TestMachineConfig config_;
    ErrorRateModel errorModel_;
    util::Rng rng_;
};

} // namespace hdmr::margin

#endif // HDMR_MARGIN_TEST_MACHINE_HH
