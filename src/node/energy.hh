/**
 * @file
 * System-level (CPU + DRAM) energy model for Fig. 13.
 *
 * Follows the paper's reasoning: CPU idle/static power dominates, so
 * finishing earlier saves the most energy; DRAM contributes ~18 % of
 * system power; writes are ~15 % of traffic so broadcast-write energy
 * overhead stays small; ranks parked in self-refresh burn less
 * background power.  Per-operation energies are in the range of the
 * Micron DDR4 power calculator.
 */

#ifndef HDMR_NODE_ENERGY_HH
#define HDMR_NODE_ENERGY_HH

#include <cstdint>

#include "util/units.hh"

namespace hdmr::node
{

/** Energy-model constants. */
struct EnergyParams
{
    // CPU
    double cpuStaticWattsPerCore = 8.0;  ///< idle/static, per core
    double cpuDynamicNjPerInst = 0.55;   ///< per retired instruction

    // DRAM
    double actPreNj = 18.0;          ///< one ACT+PRE pair
    double burstNj = 12.0;           ///< one 64B RD or WR burst (rank)
    double refreshNj = 350.0;        ///< one all-bank REF
    double rankStandbyWatts = 0.4;   ///< powered-up rank background
    double rankSelfRefreshWatts = 0.1; ///< parked rank background
};

/** Inputs to the energy model (filled by NodeSystem). */
struct EnergyInputs
{
    double execSeconds = 0.0;
    std::uint64_t instructions = 0;
    unsigned cores = 0;
    unsigned totalRanks = 0;
    double rankSelfRefreshSeconds = 0.0; ///< sum over ranks
    std::uint64_t activates = 0;
    std::uint64_t readBursts = 0;
    std::uint64_t writeRankBursts = 0; ///< rank-level (broadcast fans out)
    std::uint64_t refreshes = 0;
};

/** Energy breakdown and the paper's EPI metric. */
struct EnergyBreakdown
{
    double cpuStaticJ = 0.0;
    double cpuDynamicJ = 0.0;
    double dramDynamicJ = 0.0;
    double dramBackgroundJ = 0.0;

    double
    totalJ() const
    {
        return cpuStaticJ + cpuDynamicJ + dramDynamicJ + dramBackgroundJ;
    }

    /** Energy per instruction in nJ. */
    double epiNj = 0.0;
};

/** Evaluate the model. */
EnergyBreakdown computeEnergy(const EnergyInputs &inputs,
                              const EnergyParams &params = {});

} // namespace hdmr::node

#endif // HDMR_NODE_ENERGY_HH
