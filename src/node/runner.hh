/**
 * @file
 * Parallel evaluation runner: executes a grid of independent node
 * simulations across hardware threads.  Every figure/table harness
 * funnels its configurations through here.
 */

#ifndef HDMR_NODE_RUNNER_HH
#define HDMR_NODE_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "node/config.hh"
#include "node/node_system.hh"

namespace hdmr::node
{

namespace detail
{

/**
 * Indexed parallel-for backing runGrid: calls `body(i)` once for every
 * i in [0, count) across `threads` workers (0 picks a host default; 1
 * runs inline on the calling thread).  An exception thrown by any call
 * is rethrown on the calling thread after the pool drains - first
 * failure wins and the remaining workers stop picking up new indices.
 * Exposed so tests can drive the exception path directly.
 */
void parallelFor(std::size_t count, unsigned threads,
                 const std::function<void(std::size_t)> &body);

} // namespace detail

/**
 * Run every configuration and return stats in the same order as
 * `configs`, regardless of thread count or completion order.
 * `threads` = 0 picks a sensible default from the host; 1 runs inline
 * on the calling thread.  An exception thrown by any simulation is
 * rethrown on the calling thread after the pool drains (first failure
 * wins; remaining workers stop picking up new work).
 */
std::vector<NodeStats> runGrid(const std::vector<NodeConfig> &configs,
                               unsigned threads = 0);

} // namespace hdmr::node

#endif // HDMR_NODE_RUNNER_HH
