/**
 * @file
 * Parallel evaluation runner: executes a grid of independent node
 * simulations across hardware threads.  Every figure/table harness
 * funnels its configurations through here.
 */

#ifndef HDMR_NODE_RUNNER_HH
#define HDMR_NODE_RUNNER_HH

#include <vector>

#include "node/config.hh"
#include "node/node_system.hh"

namespace hdmr::node
{

/**
 * Run every configuration and return stats in the same order.
 * `threads` = 0 picks a sensible default from the host.
 */
std::vector<NodeStats> runGrid(const std::vector<NodeConfig> &configs,
                               unsigned threads = 0);

} // namespace hdmr::node

#endif // HDMR_NODE_RUNNER_HH
