#include "node/node_system.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::node
{

using util::Tick;

/**
 * The node-side monitor::ActionSink bridge: scheme actions fan out to
 * every channel's mode controller (the monitor library stays a leaf
 * and never sees core::).  Channel pointers are captured once at
 * construction - the channel set never changes over a node's life.
 */
class NodeActionSink : public monitor::ActionSink
{
  public:
    explicit NodeActionSink(std::vector<core::ModeController *> channels)
        : channels_(std::move(channels))
    {
    }

    void
    drainWrites(double clean_fraction) override
    {
        ++drains_;
        for (core::ModeController *mc : channels_)
            mc->requestWriteDrain(clean_fraction);
    }

    void
    setWriteTriggerBoost(double boost) override
    {
        for (core::ModeController *mc : channels_)
            mc->setWriteTriggerBoost(boost);
    }

    void
    setEpochScale(double scale) override
    {
        for (core::ModeController *mc : channels_)
            mc->setEpochLengthScale(scale);
    }

    void
    setCleanFraction(double fraction) override
    {
        for (core::ModeController *mc : channels_)
            mc->setCleanBudgetScale(fraction);
    }

    void
    promoteMargin() override
    {
        // Deferred: the retiming latches at the channel's next natural
        // mode transition rather than forcing one mid-compute.
        for (core::ModeController *mc : channels_)
            mc->promote(/*immediate=*/false);
    }

    void
    demoteMargin() override
    {
        for (core::ModeController *mc : channels_)
            mc->demote();
    }

    void
    hintPlacement(monitor::PlacementClass cls,
                  std::uint64_t bytes) override
    {
        // Placement is decided fleet-side (sched::); at node level the
        // hint is advisory and only accounted.
        if (cls == monitor::PlacementClass::kFast)
            hintedFastBytes_ += bytes;
        else
            hintedSpecBytes_ += bytes;
    }

    std::uint64_t drains() const { return drains_; }
    std::uint64_t hintedFastBytes() const { return hintedFastBytes_; }
    std::uint64_t hintedSpecBytes() const { return hintedSpecBytes_; }

  private:
    std::vector<core::ModeController *> channels_;
    std::uint64_t drains_ = 0;
    std::uint64_t hintedFastBytes_ = 0;
    std::uint64_t hintedSpecBytes_ = 0;
};

NodeSystem::NodeSystem(NodeConfig config) : config_(std::move(config))
{
    const HierarchyConfig &h = config_.hierarchy;
    const core::ReplicationMode mode = config_.effectiveReplication();
    const core::ChannelPlan plan =
        core::ReplicationManager::planChannel(mode);

    // ---- Mode-controller configuration shared by all channels. ----
    core::ModeControllerConfig mc;
    mc.specSetting = config_.specSetting();
    mc.fastSetting =
        plan.fastReads ? config_.fastSetting() : config_.specSetting();
    mc.plan = plan;
    mc.readErrorProbability = config_.readErrorProbability;
    mc.recoveryFailureProbability = config_.recoveryFailureProbability;
    mc.quarantine = config_.quarantine;
    mc.ladder = config_.ladder;
    mc.cleanLinesPerWriteMode = config_.cleanLinesPerWriteMode;
    mc.frequencyTransitionLatency =
        util::usToTicks(config_.frequencyTransitionUs);

    // Static guard band: operate below the qualified fast rate, one
    // demotion step at a time (error probability scales down the same
    // way a runtime demotion would scale it).  promote() re-earns the
    // band later, never exceeding the qualified rate.
    if (plan.fastReads && config_.marginGuardBandMts > 0 &&
        mc.quarantine.demoteStepMts > 0) {
        mc.qualifiedFastRateMts = mc.fastSetting.dataRateMts;
        const unsigned step = mc.quarantine.demoteStepMts;
        unsigned band = config_.marginGuardBandMts;
        while (band >= step &&
               mc.fastSetting.dataRateMts >=
                   mc.specSetting.dataRateMts + step) {
            mc.fastSetting.dataRateMts -= step;
            mc.readErrorProbability *=
                mc.quarantine.demotionErrorFactor;
            band -= step;
        }
    }

    // ---- Caches. ----
    l1Latency_ = util::mhzToPeriod(config_.core.freqMhz) * 3;
    l2Latency_ = util::mhzToPeriod(config_.core.freqMhz) * 12;
    l3Latency_ = util::nsToTicks(22.0);
    storeCost_ = util::mhzToPeriod(config_.core.freqMhz);

    for (unsigned c = 0; c < h.cores; ++c) {
        cache::CacheConfig l1c;
        l1c.sizeBytes = 64 * 1024;
        l1c.ways = 8;
        l1c.latency = l1Latency_;
        l1_.push_back(std::make_unique<cache::Cache>(l1c));

        cache::CacheConfig l2c;
        l2c.sizeBytes = static_cast<std::uint64_t>(h.l2MiBPerCore *
                                                   1024.0 * 1024.0);
        l2c.ways = 16;
        l2c.latency = l2Latency_;
        l2_.push_back(std::make_unique<cache::Cache>(l2c));

        l1Stride_.emplace_back(4);
        l2Stride_.emplace_back(8);
        l2NextLine_.emplace_back();
    }

    cache::CacheConfig l3c;
    l3c.sizeBytes = static_cast<std::uint64_t>(
        h.l3MiBPerCore * h.cores * 1024.0 * 1024.0);
    l3c.ways = 16;
    l3c.latency = l3Latency_;
    l3_ = std::make_unique<cache::Cache>(l3c);

    // ---- Memory controllers + mode controllers, one per channel. ----
    for (unsigned ch = 0; ch < h.channels; ++ch) {
        auto cc = core::ModeController::buildControllerConfig(
            mc, config_.seed * 131 + ch);
        controllers_.push_back(
            std::make_unique<dram::MemoryController>(events_, cc));

        const unsigned channels = h.channels;
        auto filter = [this, ch, channels](std::uint64_t addr) {
            return (addr / 64) % channels == ch;
        };
        // Desynchronize write-mode triggers across channels so their
        // victim caches do not fill (and stall the node) in lockstep.
        core::ModeControllerConfig mc_ch = mc;
        mc_ch.writeModeTriggerFill =
            mc.writeModeTriggerFill - 0.03 * static_cast<double>(ch);
        // Decorrelate retry-outcome streams across channels (and nodes).
        mc_ch.ladder.seed =
            mc.ladder.seed ^ (config_.seed * 0x9e3779b97f4a7c15ULL + ch);
        modeControllers_.push_back(std::make_unique<core::ModeController>(
            events_, *controllers_.back(), l3_.get(), filter, mc_ch));
    }

    // ---- Access monitoring (disabled: everything stays null and the
    // access paths are bit-identical to the unmonitored node). ----
    if (config_.monitoring.enabled) {
        monitor::MonitorConfig mon = config_.monitoring;
        mon.cores = h.cores; // budget normalization
        sampler_ = std::make_unique<monitor::RegionSampler>(mon);
        sink_ = std::make_unique<NodeActionSink>(modeControllers());
        engine_ = std::make_unique<monitor::SchemeEngine>(
            config_.schemes, sink_.get());
        sampler_->setAggregationHook(
            [this](const std::vector<monitor::Region> &regions,
                   const monitor::AggregationInfo &info) {
                engine_->onAggregation(regions, info);
            });
    }

    // ---- Steady-state initial conditions. ----
    // A short measured window only produces representative eviction
    // (write) traffic if the LLC starts full, the way a long-running
    // job leaves it: prefill it with an aged footprint - a bounded
    // dirty backlog from the store regions (the eviction fodder whose
    // writeback both the baseline and Hetero-DMR must pay) plus clean
    // lines from the read regions.
    prefillCaches();

    // ---- Cores and their workload streams. ----
    // Each core's stream covers warm-up plus the measured window; the
    // warm-up prefix is consumed functionally in run().
    for (unsigned c = 0; c < h.cores; ++c) {
        auto stream = std::make_unique<wl::SyntheticHpcStream>(
            config_.workload, c,
            config_.warmupOpsPerCore + config_.memOpsPerCore,
            config_.seed);
        warming_ = true;
        warmUp(*stream, c, config_.warmupOpsPerCore);
        warming_ = false;
        cores_.push_back(std::make_unique<cpu::Core>(
            events_, c, config_.core, std::move(stream), *this,
            [this](unsigned id) { onCoreDone(id); }));
    }
    coresRunning_ = h.cores;
}

void
NodeSystem::prefillCaches()
{
    const HierarchyConfig &h = config_.hierarchy;
    const std::uint64_t llc_lines = l3_->config().numLines();
    const std::uint64_t per_core = llc_lines / h.cores;

    const std::uint64_t ws_bytes = static_cast<std::uint64_t>(
        config_.workload.workingSetMiB * 1024.0 * 1024.0);
    const std::uint64_t region =
        std::max<std::uint64_t>(ws_bytes / 4, 1 << 20);

    // Dirty lines interleave in age with clean ones, like the
    // footprint a long-running job leaves: roughly one line in
    // sixteen is a not-yet-written-back store line (~write share of
    // traffic).  Under a conventional system dirt survives at every
    // recency depth; under a proactively-cleaning design (Hetero-DMR)
    // the old half of the LLC has already been cleaned in steady
    // state, so its dirt concentrates in the young half.
    const bool cleaning_design =
        core::ReplicationManager::planChannel(
            config_.effectiveReplication())
            .fastReads;
    for (unsigned c = 0; c < h.cores; ++c) {
        const std::uint64_t base =
            (static_cast<std::uint64_t>(c) + 1) << 34;

        std::uint64_t store_k = 0, read_k = 0;
        for (std::uint64_t j = 0; j < per_core; ++j) {
            std::uint64_t addr;
            bool dirty;
            // A proactively-cleaning design has already written back
            // everything old; its LLC starts clean.
            const bool dirty_slot = !cleaning_design && j % 16 == 0;
            if (dirty_slot) {
                addr = base + 3 * region + region - (++store_k) * 64;
                dirty = true;
            } else {
                const unsigned r = static_cast<unsigned>(read_k % 3);
                const std::uint64_t k = read_k / 3;
                ++read_k;
                addr = base + r * region + region - (k + 1) * 64;
                dirty = false;
            }
            l3_->fill(addr & ~63ull, dirty, false);
        }
    }
}

NodeSystem::~NodeSystem() = default;

unsigned
NodeSystem::channelOf(std::uint64_t address) const
{
    return static_cast<unsigned>((address / 64) %
                                 config_.hierarchy.channels);
}

void
NodeSystem::onCoreDone(unsigned)
{
    hdmr_assert(coresRunning_ > 0);
    --coresRunning_;
}

bool
NodeSystem::canAcceptMiss(unsigned)
{
    for (const auto &controller : controllers_) {
        if (controller->readQueueDepth() + 8 >=
            controller->config().readQueueCapacity) {
            return false;
        }
    }
    return true;
}

void
NodeSystem::routeDirtyEviction(std::uint64_t address)
{
    if (warming_)
        return;
    modeControllers_[channelOf(address)]->handleDirtyEviction(address);
}

void
NodeSystem::warmUp(wl::AccessStream &stream, unsigned core_id,
                   std::uint64_t ops)
{
    wl::Op op;
    std::uint64_t consumed = 0;
    while (consumed < ops && stream.next(op)) {
        switch (op.kind) {
          case wl::Op::Kind::kLoad:
            load(core_id, op.address, 0, nullptr);
            ++consumed;
            break;
          case wl::Op::Kind::kStore:
            store(core_id, op.address, 0);
            ++consumed;
            break;
          default:
            break;
        }
    }
}

void
NodeSystem::issueDramRead(unsigned channel, std::uint64_t address,
                          Tick when, bool prefetch,
                          std::function<void(Tick)> on_complete)
{
    if (warming_)
        return;
    dram::MemoryController &controller = *controllers_[channel];
    if (prefetch &&
        controller.readQueueDepth() * 2 >
            controller.config().readQueueCapacity) {
        return; // drop prefetches under load
    }

    // Open an MSHR entry; later demand touches join it.
    const std::uint64_t line = address & ~63ull;
    auto [it, inserted] = inFlight_.try_emplace(line);
    if (!inserted) {
        // Already in flight (demand merge); just add the waiter.
        if (on_complete)
            it->second.waiters.push_back(std::move(on_complete));
        return;
    }
    if (on_complete)
        it->second.waiters.push_back(std::move(on_complete));

    dram::MemRequest req;
    req.address = address;
    req.type = dram::MemRequest::Type::kRead;
    req.arrival = when;
    req.isPrefetch = prefetch;
    req.onComplete = [this, line](util::Tick t) {
        auto node = inFlight_.extract(line);
        if (node.empty())
            return;
        for (auto &waiter : node.mapped().waiters)
            waiter(t);
    };
    controller.enqueueRead(std::move(req));
}

void
NodeSystem::handleL3Fill(std::uint64_t address, bool dirty,
                         bool prefetched, Tick)
{
    const auto result = l3_->fill(address, dirty, prefetched);
    if (result.evictedDirty) {
        routeDirtyEviction(result.victimAddress);
    }
}

void
NodeSystem::installLine(unsigned core_id, std::uint64_t address,
                        bool dirty, Tick now)
{
    // Fill upward: L3, L2, L1.  Dirty victims cascade down a level;
    // from L3 they enter the channel's write path.
    handleL3Fill(address, false, false, now);

    const auto l2r = l2_[core_id]->fill(address, false, false);
    if (l2r.evictedDirty)
        handleL3Fill(l2r.victimAddress, true, false, now);

    const auto l1r = l1_[core_id]->fill(address, dirty, false);
    if (l1r.evictedDirty) {
        const auto spill =
            l2_[core_id]->fill(l1r.victimAddress, true, false);
        if (spill.evictedDirty)
            handleL3Fill(spill.victimAddress, true, false, now);
    }
}

void
NodeSystem::runPrefetchers(unsigned core_id, std::uint64_t address,
                           bool l2_missed, Tick now)
{
    // L1 stride prefetcher fills into L2.
    prefetchScratch_.clear();
    l1Stride_[core_id].observeMiss(address, prefetchScratch_);
    if (l2_missed) {
        // L2 prefetchers fill into L3 (and DRAM when absent).
        l2Stride_[core_id].observeMiss(address, prefetchScratch_);
        l2NextLine_[core_id].observeMiss(address, prefetchScratch_);
    }

    for (const std::uint64_t pf : prefetchScratch_) {
        const std::uint64_t line = pf & ~63ull;
        if (l2_[core_id]->probe(line))
            continue;
        const bool in_l3 = l3_->probe(line);
        const auto l2r = l2_[core_id]->fill(line, false, true);
        if (l2r.evictedDirty)
            handleL3Fill(l2r.victimAddress, true, false, now);
        if (!in_l3) {
            handleL3Fill(line, false, true, now);
            issueDramRead(channelOf(line), line, now, true, nullptr);
        }
    }
}

cpu::CacheOutcome
NodeSystem::load(unsigned core_id, std::uint64_t address, Tick now,
                 std::function<void(Tick)> on_complete)
{
    cpu::CacheOutcome outcome;
    const std::uint64_t line = address & ~63ull;

    // Monitoring observes every post-warm-up access; the modelled
    // check cost rides the cache-hit latency and is subsumed by the
    // DRAM round trip on miss paths.
    const Tick mon = (!warming_ && sampler_)
                         ? sampler_->onAccess(line, false, now)
                         : 0;

    // A line with a DRAM read still in flight (usually a prefetch)
    // is present in the tags but its data has not arrived: the load
    // joins the MSHR entry and waits like a miss.
    if (!warming_) {
        const auto it = inFlight_.find(line);
        if (it != inFlight_.end()) {
            l1_[core_id]->access(line, false); // recency update
            if (on_complete)
                it->second.waiters.push_back(std::move(on_complete));
            // Keep the prefetchers training on the demand stream so
            // coverage extends ahead continuously (streaming).  Done
            // after the waiter registration: issuing prefetches can
            // rehash the MSHR table and invalidate `it`.
            runPrefetchers(core_id, line, true, now);
            outcome.needsDram = true;
            return outcome;
        }
    }

    if (l1_[core_id]->access(line, false).hit) {
        outcome.latency = l1Latency_ + mon;
        return outcome;
    }

    const auto l2r = l2_[core_id]->access(line, false);
    if (l2r.hit) {
        runPrefetchers(core_id, line, false, now);
        outcome.latency = l2Latency_ + mon;
        const auto l1r = l1_[core_id]->fill(line, false, false);
        if (l1r.evictedDirty) {
            const auto spill =
                l2_[core_id]->fill(l1r.victimAddress, true, false);
            if (spill.evictedDirty)
                handleL3Fill(spill.victimAddress, true, false, now);
        }
        return outcome;
    }

    const auto l3r = l3_->access(line, false);
    runPrefetchers(core_id, line, true, now);
    if (l3r.hit) {
        if (l3r.prefetchHit)
            l2NextLine_[core_id].creditUse();
        outcome.latency = l3Latency_ + mon;
        installLine(core_id, line, false, now);
        return outcome;
    }
    if (l3r.evictedDirty)
        routeDirtyEviction(l3r.victimAddress);

    // LLC miss: issue the DRAM read; the line is installed
    // functionally now (MSHR-merge approximation), timing completes
    // through the callback.
    installLine(core_id, line, false, now);
    issueDramRead(channelOf(line), line, now, false,
                  std::move(on_complete));
    outcome.needsDram = true;
    return outcome;
}

Tick
NodeSystem::store(unsigned core_id, std::uint64_t address, Tick now)
{
    const std::uint64_t line = address & ~63ull;

    const Tick mon = (!warming_ && sampler_)
                         ? sampler_->onAccess(line, true, now)
                         : 0;

    if (l1_[core_id]->access(line, true).hit)
        return storeCost_ + mon;

    const auto l2r = l2_[core_id]->access(line, true);
    if (l2r.hit) {
        // Write-allocate into L1.
        const auto l1r = l1_[core_id]->fill(line, true, false);
        if (l1r.evictedDirty) {
            const auto spill =
                l2_[core_id]->fill(l1r.victimAddress, true, false);
            if (spill.evictedDirty)
                handleL3Fill(spill.victimAddress, true, false, now);
        }
        return storeCost_ + mon;
    }

    const auto l3r = l3_->access(line, true);
    if (l3r.evictedDirty)
        routeDirtyEviction(l3r.victimAddress);
    installLine(core_id, line, true, now);
    if (!l3r.hit) {
        // Write-allocate fetch: occupies read bandwidth but does not
        // stall the store (store-buffer semantics).
        issueDramRead(channelOf(line), line, now, false, nullptr);
    }
    return storeCost_ + mon;
}

void
NodeSystem::bindTelemetry(telemetry::Registry &registry,
                          const std::string &prefix)
{
    for (std::size_t ch = 0; ch < controllers_.size(); ++ch) {
        controllers_[ch]->bindTelemetry(
            registry, prefix + ".dram.ch" + std::to_string(ch));
    }
    for (std::size_t ch = 0; ch < modeControllers_.size(); ++ch) {
        modeControllers_[ch]->bindTelemetry(
            registry, prefix + ".mode.ch" + std::to_string(ch));
    }
    for (std::size_t c = 0; c < l1_.size(); ++c) {
        l1_[c]->bindTelemetry(registry,
                              prefix + ".cache.l1.c" + std::to_string(c));
    }
    for (std::size_t c = 0; c < l2_.size(); ++c) {
        l2_[c]->bindTelemetry(registry,
                              prefix + ".cache.l2.c" + std::to_string(c));
    }
    if (l3_)
        l3_->bindTelemetry(registry, prefix + ".cache.l3");
    if (sampler_)
        sampler_->bindTelemetry(registry, prefix + ".monitor");
    if (engine_)
        engine_->bindTelemetry(registry, prefix + ".monitor.scheme");
}

void
NodeSystem::bindTrace(telemetry::TraceRecorder *trace, std::uint32_t tid)
{
    for (auto &controller : controllers_)
        controller->bindTrace(trace, tid);
    for (auto &mc : modeControllers_)
        mc->bindTrace(trace, tid);
}

NodeStats
NodeSystem::collectStats() const
{
    NodeStats stats;
    Tick finish = 0;
    std::uint64_t comm = 0;
    for (const auto &core : cores_) {
        const cpu::CoreStats &cs = core->stats();
        stats.instructions += cs.instructions;
        stats.memOps += cs.loads + cs.stores;
        finish = std::max(finish, cs.finishTick);
        comm += cs.commTicks;
    }
    stats.execSeconds = util::ticksToSeconds(finish);
    stats.commFraction =
        finish == 0 ? 0.0
                    : static_cast<double>(comm) /
                          (static_cast<double>(finish) * cores_.size());

    EnergyInputs energy;
    energy.execSeconds = stats.execSeconds;
    energy.instructions = stats.instructions;
    energy.cores = config_.hierarchy.cores;
    energy.totalRanks = config_.hierarchy.channels *
                        config_.hierarchy.modulesPerChannel *
                        config_.hierarchy.ranksPerModule;

    double bus_busy = 0.0;
    double latency_weight = 0.0;
    for (const auto &controller : controllers_) {
        const dram::ControllerStats &cs = controller->stats();
        stats.dramReads += cs.reads;
        stats.dramDemandReads += cs.reads - cs.prefetchReads;
        stats.dramWrites += cs.writes;
        stats.dramWriteRankOps += cs.writeRankOps;
        stats.rowHits += cs.rowHits;
        stats.rowMissesPlusConflicts += cs.rowMisses + cs.rowConflicts;
        stats.writeModeEntries += cs.writeModeEntries;
        stats.writeModeSeconds += util::ticksToSeconds(cs.writeModeTicks);
        stats.transitionSeconds += util::ticksToSeconds(cs.transitionTicks);
        bus_busy += util::ticksToSeconds(cs.busBusyTicks);
        stats.avgReadLatencyNs +=
            cs.averageReadLatencyNs() *
            static_cast<double>(cs.readLatencySamples);
        latency_weight += static_cast<double>(cs.readLatencySamples);

        energy.activates += cs.activates;
        energy.readBursts += cs.reads;
        energy.writeRankBursts += cs.writeRankOps;
        energy.refreshes += cs.refreshes;
        energy.rankSelfRefreshSeconds +=
            util::ticksToSeconds(cs.selfRefreshRankTicks);
    }
    if (latency_weight > 0.0)
        stats.avgReadLatencyNs /= latency_weight;

    for (const auto &mc : modeControllers_) {
        stats.corrections += mc->stats().corrections;
        stats.uncorrectedErrors += mc->stats().uncorrectedErrors;
        stats.demotions += mc->stats().demotions;
        stats.quarantines += mc->stats().quarantines;
        stats.marginPromotions += mc->stats().recalPromotions;
        stats.ladderRetries += mc->stats().ladderRetries;
        stats.ladderRecoveries += mc->stats().ladderRecoveries;
        stats.budgetDemotions += mc->stats().budgetDemotions;
        stats.cleanedLines += mc->stats().cleanedLines;
    }

    // Bandwidth relative to peak at the *specified* data rate (how
    // Fig. 15 normalizes utilization).
    const double peak =
        util::channelPeakBandwidth(config_.specSetting().dataRateMts) *
        config_.hierarchy.channels;
    const double bytes =
        64.0 * static_cast<double>(stats.dramReads + stats.dramWrites);
    if (stats.execSeconds > 0.0) {
        stats.busUtilization = bytes / (peak * stats.execSeconds);
        stats.readBandwidthGBs = 64.0 *
                                 static_cast<double>(stats.dramReads) /
                                 stats.execSeconds / 1.0e9;
        stats.writeBandwidthGBs =
            64.0 * static_cast<double>(stats.dramWrites) /
            stats.execSeconds / 1.0e9;
    }
    stats.dramAccessesPerInstruction =
        stats.instructions == 0
            ? 0.0
            : static_cast<double>(stats.dramReads + stats.dramWrites) /
                  static_cast<double>(stats.instructions);

    if (sampler_) {
        const monitor::MonitorStats &ms = sampler_->stats();
        stats.monitorSamples = ms.sampledAccesses;
        stats.monitorAggregations = ms.aggregations;
        stats.monitorSplits = ms.splits;
        stats.monitorMerges = ms.merges;
        stats.monitorThrottles = ms.throttles;
        stats.monitorRegions = sampler_->regions().size();
        if (finish > 0) {
            stats.monitorOverheadFraction =
                static_cast<double>(ms.chargedTicks) /
                (static_cast<double>(finish) *
                 static_cast<double>(cores_.size()));
        }
    }
    if (engine_) {
        stats.schemeHits = engine_->totalHits();
        stats.schemeFires = engine_->totalFires();
    }
    if (sink_)
        stats.monitorDrains = sink_->drains();

    stats.energy = computeEnergy(energy);
    return stats;
}

NodeStats
NodeSystem::run()
{
    for (auto &core : cores_)
        core->start(0);

    // Run until every core retires its stream; guard against hangs.
    const Tick limit = 60ull * util::kTicksPerSec;
    while (coresRunning_ > 0 && !events_.empty() &&
           events_.curTick() < limit) {
        events_.runOne();
    }
    hdmr_assert(coresRunning_ == 0,
                "node simulation did not converge (running=%u)",
                coresRunning_);

    // Flush outstanding writes so their bandwidth is accounted.
    for (auto &mc : modeControllers_)
        mc->flush();
    events_.run(events_.curTick() + 200 * util::kTicksPerUs);

    for (auto &controller : controllers_)
        controller->finalizeStats();
    return collectStats();
}

} // namespace hdmr::node
