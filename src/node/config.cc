#include "node/config.hh"

#include "util/logging.hh"

namespace hdmr::node
{

HierarchyConfig
HierarchyConfig::hierarchy1()
{
    HierarchyConfig h;
    h.name = "Hierarchy1";
    h.cores = 8;
    h.l2MiBPerCore = 1.0;
    h.l3MiBPerCore = 3.5;
    h.channels = 1;
    return h;
}

HierarchyConfig
HierarchyConfig::hierarchy2()
{
    HierarchyConfig h;
    h.name = "Hierarchy2";
    h.cores = 16;
    h.l2MiBPerCore = 1.0;
    h.l3MiBPerCore = 1.375; ///< L2+L3 = 2.375 MiB/core
    h.channels = 4;
    return h;
}

const char *
toString(MemorySystemKind kind)
{
    switch (kind) {
      case MemorySystemKind::kCommercialBaseline:
        return "Commercial Baseline";
      case MemorySystemKind::kExploitLatency:
        return "Exploit Latency Margin";
      case MemorySystemKind::kExploitFrequency:
        return "Exploit Frequency Margin";
      case MemorySystemKind::kExploitFreqLat:
        return "Exploit Freq+Lat Margins";
      case MemorySystemKind::kFmr:
        return "FMR";
      case MemorySystemKind::kHeteroDmr:
        return "Hetero-DMR";
      case MemorySystemKind::kHeteroDmrFmr:
        return "Hetero-DMR+FMR";
    }
    util::panic("unknown memory system kind");
}

dram::MemorySetting
NodeConfig::specSetting() const
{
    switch (memorySystem) {
      case MemorySystemKind::kExploitLatency:
        return dram::MemorySetting::exploitLatencyMargin(3200);
      case MemorySystemKind::kExploitFrequency:
        return dram::MemorySetting::exploitFrequencyMargin(3200 +
                                                           nodeMarginMts);
      case MemorySystemKind::kExploitFreqLat:
        return dram::MemorySetting::exploitFreqLatMargins(3200 +
                                                          nodeMarginMts);
      default:
        // Replicating designs always *write* at specification.
        return dram::MemorySetting::manufacturerSpec(3200);
    }
}

dram::MemorySetting
NodeConfig::fastSetting() const
{
    switch (memorySystem) {
      case MemorySystemKind::kHeteroDmr:
      case MemorySystemKind::kHeteroDmrFmr:
        // "Setting to Exploit Freq+Lat Margins" at the node margin.
        return dram::MemorySetting::exploitFreqLatMargins(3200 +
                                                          nodeMarginMts);
      default:
        return specSetting();
    }
}

core::ReplicationMode
NodeConfig::requestedReplication() const
{
    switch (memorySystem) {
      case MemorySystemKind::kFmr:
        return core::ReplicationMode::kFmr;
      case MemorySystemKind::kHeteroDmr:
        return core::ReplicationMode::kHeteroDmr;
      case MemorySystemKind::kHeteroDmrFmr:
        return core::ReplicationMode::kHeteroDmrFmr;
      default:
        return core::ReplicationMode::kNone;
    }
}

core::ReplicationMode
NodeConfig::effectiveReplication() const
{
    return core::ReplicationManager::effectiveMode(requestedReplication(),
                                                   usage);
}

} // namespace hdmr::node
