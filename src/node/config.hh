/**
 * @file
 * Node-level configuration: the two memory hierarchies of Table III,
 * the simulated CPU parameters of Table IV, and the memory-system
 * designs evaluated in Section IV-A.
 */

#ifndef HDMR_NODE_CONFIG_HH
#define HDMR_NODE_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/mode_controller.hh"
#include "core/replication.hh"
#include "cpu/core.hh"
#include "dram/timing.hh"
#include "monitor/monitor.hh"
#include "monitor/scheme.hh"
#include "workloads/hpc_workloads.hh"

namespace hdmr::node
{

/** A memory hierarchy of Table III. */
struct HierarchyConfig
{
    std::string name = "Hierarchy1";
    unsigned cores = 8;
    double l2MiBPerCore = 1.0;
    double l3MiBPerCore = 3.5; ///< L2+L3 = 4.5 MiB/core
    unsigned channels = 1;
    unsigned modulesPerChannel = 2;
    unsigned ranksPerModule = 2;

    /** Hierarchy 1: 8 cores, 4.5 MiB L2+L3 per core, 1 channel. */
    static HierarchyConfig hierarchy1();

    /** Hierarchy 2: 16 cores, 2.375 MiB L2+L3 per core, 4 channels. */
    static HierarchyConfig hierarchy2();
};

/** The memory-system designs compared in Figures 5, 12, 13 and 16. */
enum class MemorySystemKind : std::uint8_t
{
    kCommercialBaseline,   ///< spec setting, no replication
    kExploitLatency,       ///< Table II row 2, no replication (Fig. 5)
    kExploitFrequency,     ///< Table II row 3, no replication (Fig. 5)
    kExploitFreqLat,       ///< Table II row 4, no replication (Fig. 5)
    kFmr,                  ///< free-memory-aware baseline [64]
    kHeteroDmr,            ///< this paper
    kHeteroDmrFmr,         ///< this paper stacked on FMR
};

const char *toString(MemorySystemKind kind);

/** Everything needed to run one node simulation. */
struct NodeConfig
{
    HierarchyConfig hierarchy;
    cpu::CoreConfig core;
    wl::WorkloadParams workload;

    MemorySystemKind memorySystem = MemorySystemKind::kCommercialBaseline;
    /** Node-level frequency margin in MT/s (Hetero-DMR designs). */
    unsigned nodeMarginMts = 800;
    /**
     * Static guard band in MT/s the deployment holds back from the
     * qualified fast rate (the paper's per-module thresholds are
     * provisioned for the worst observed phase, so the shipped
     * operating point sits below what profiling qualified).  Applied
     * in quarantine.demoteStepMts steps; a monitor promote scheme (or
     * recalibration) can re-earn it online.  0 keeps seed behaviour.
     */
    unsigned marginGuardBandMts = 0;
    core::MemoryUsage usage = core::MemoryUsage::kUnder50;

    std::uint64_t memOpsPerCore = 100000;
    /** Functional warm-up memory ops per core before timing starts. */
    std::uint64_t warmupOpsPerCore = 30000;
    std::uint64_t seed = 1;
    /** Per-read detected-error probability when running fast. */
    double readErrorProbability = 1.0e-7;
    /** Probability the recovery read of the original also fails (UE). */
    double recoveryFailureProbability = 0.0;
    /** Quarantine / margin-demotion policy (defaults: disabled). */
    core::QuarantinePolicy quarantine;
    /** Hardened recovery ladder (defaults: disabled, seed behaviour). */
    core::RecoveryLadderConfig ladder;
    /** LLC lines proactively cleaned per write-mode window (III-A1). */
    std::size_t cleanLinesPerWriteMode = 12800;
    /** Frequency-scaling transition latency in microseconds (Fig. 9). */
    double frequencyTransitionUs = 1.0;
    /**
     * DAMON-style access monitoring (defaults: disabled, zero cost,
     * behaviour bit-identical to the seed).  `cores` is overwritten
     * with the hierarchy's core count at construction.
     */
    monitor::MonitorConfig monitoring;
    /** Operation schemes evaluated when monitoring is enabled. */
    monitor::SchemeConfig schemes;

    /**
     * The (spec, fast) settings the design implies.  Raw
     * margin-exploitation settings use the same setting for both.
     */
    dram::MemorySetting specSetting() const;
    dram::MemorySetting fastSetting() const;

    /** The replication mode the design requests. */
    core::ReplicationMode requestedReplication() const;

    /** Does the design replicate/operate fast under current usage? */
    core::ReplicationMode effectiveReplication() const;
};

} // namespace hdmr::node

#endif // HDMR_NODE_CONFIG_HH
