/**
 * @file
 * The single-node simulator: cores + cache hierarchy + per-channel
 * memory controllers + mode controllers, assembled per a NodeConfig.
 *
 * This plays the role gem5 full-system + Ramulator play in the paper
 * (Section IV-A): it runs one benchmark across all cores (one MPI
 * rank per core) and reports execution time, DRAM traffic/bandwidth,
 * energy, and the Hetero-DMR-specific counters the figures need.
 */

#ifndef HDMR_NODE_NODE_SYSTEM_HH
#define HDMR_NODE_NODE_SYSTEM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/prefetcher.hh"
#include "core/mode_controller.hh"
#include "cpu/core.hh"
#include "dram/controller.hh"
#include "monitor/monitor.hh"
#include "monitor/scheme.hh"
#include "node/config.hh"
#include "node/energy.hh"
#include "sim/event_queue.hh"

namespace hdmr::node
{

class NodeActionSink;

/** Results of one node simulation. */
struct NodeStats
{
    double execSeconds = 0.0;
    std::uint64_t instructions = 0;
    std::uint64_t memOps = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramDemandReads = 0;
    std::uint64_t dramWrites = 0;        ///< bus transactions
    std::uint64_t dramWriteRankOps = 0;  ///< rank-level (broadcast)
    std::uint64_t rowHits = 0;
    std::uint64_t rowMissesPlusConflicts = 0;
    std::uint64_t corrections = 0;
    std::uint64_t uncorrectedErrors = 0; ///< recoveries that failed (UEs)
    std::uint64_t demotions = 0;         ///< fast setting lowered a step
    std::uint64_t quarantines = 0;       ///< channels retired to spec
    std::uint64_t marginPromotions = 0;  ///< guard-band steps re-earned
    std::uint64_t ladderRetries = 0;     ///< recovery retry rungs walked
    std::uint64_t ladderRecoveries = 0;  ///< UEs averted by a retry rung
    std::uint64_t budgetDemotions = 0;   ///< error-budget demotions
    std::uint64_t cleanedLines = 0;
    std::uint64_t writeModeEntries = 0;
    double avgReadLatencyNs = 0.0;
    double busUtilization = 0.0;      ///< fraction of peak bandwidth
    double readBandwidthGBs = 0.0;
    double writeBandwidthGBs = 0.0;
    double commFraction = 0.0;        ///< MPI core-hours share
    double writeModeSeconds = 0.0;    ///< summed over channels
    double transitionSeconds = 0.0;   ///< summed over channels
    double dramAccessesPerInstruction = 0.0;
    EnergyBreakdown energy;

    // ---- Access monitoring (zero when monitoring is disabled). ----
    std::uint64_t monitorSamples = 0;      ///< inspected accesses
    std::uint64_t monitorAggregations = 0;
    std::uint64_t monitorSplits = 0;
    std::uint64_t monitorMerges = 0;
    std::uint64_t monitorThrottles = 0;    ///< budget halved the duty
    std::uint64_t monitorRegions = 0;      ///< final region count
    std::uint64_t schemeHits = 0;          ///< region-predicate matches
    std::uint64_t schemeFires = 0;         ///< actions applied
    std::uint64_t monitorDrains = 0;       ///< scheme-requested drains
    /** Charged monitoring ticks / (exec ticks x cores): the modelled
     *  monitoring overhead the budget bounds. */
    double monitorOverheadFraction = 0.0;

    /** Performance metric used throughout (1 / execution time). */
    double
    performance() const
    {
        return execSeconds > 0.0 ? 1.0 / execSeconds : 0.0;
    }
};

/** The node simulator. */
class NodeSystem : public cpu::MemoryInterface
{
  public:
    explicit NodeSystem(NodeConfig config);
    ~NodeSystem() override;

    /** Run the configured benchmark to completion. */
    NodeStats run();

    // cpu::MemoryInterface
    bool canAcceptMiss(unsigned core_id) override;
    cpu::CacheOutcome load(unsigned core_id, std::uint64_t address,
                           util::Tick now,
                           std::function<void(util::Tick)> on_complete)
        override;
    util::Tick store(unsigned core_id, std::uint64_t address,
                     util::Tick now) override;

    const NodeConfig &config() const { return config_; }

    /** The node's event queue (fault-injection wiring). */
    sim::EventQueue &events() { return events_; }

    /**
     * Bind observability metrics for the whole node under `prefix`:
     * fan-out to every memory controller ("<prefix>.dram.ch<i>"),
     * mode controller ("<prefix>.mode.ch<i>"), and cache
     * ("<prefix>.cache.l1.c<i>" / ".l2.c<i>" / ".l3").  The registry
     * must outlive the node.
     */
    void bindTelemetry(telemetry::Registry &registry,
                       const std::string &prefix);

    /** Emit mode-switch/UE/quarantine instants on `trace` track `tid`. */
    void bindTrace(telemetry::TraceRecorder *trace, std::uint32_t tid);

    /**
     * The node's region sampler / scheme engine; nullptr while
     * monitoring is disabled.  Exposed for the monitoring bench and
     * tests (snapshot round-trips, digest trails, region inspection).
     */
    monitor::RegionSampler *regionSampler() { return sampler_.get(); }
    monitor::SchemeEngine *schemeEngine() { return engine_.get(); }

    /** Non-owning views of the per-channel mode controllers. */
    std::vector<core::ModeController *>
    modeControllers()
    {
        std::vector<core::ModeController *> channels;
        channels.reserve(modeControllers_.size());
        for (auto &mc : modeControllers_)
            channels.push_back(mc.get());
        return channels;
    }

  private:
    unsigned channelOf(std::uint64_t address) const;
    void routeDirtyEviction(std::uint64_t address);
    void issueDramRead(unsigned channel, std::uint64_t address,
                       util::Tick when, bool prefetch,
                       std::function<void(util::Tick)> on_complete);
    void installLine(unsigned core_id, std::uint64_t address,
                     bool dirty, util::Tick now);
    void handleL3Fill(std::uint64_t address, bool dirty, bool prefetched,
                      util::Tick now);
    void runPrefetchers(unsigned core_id, std::uint64_t address,
                        bool l2_missed, util::Tick now);
    void onCoreDone(unsigned core_id);
    NodeStats collectStats() const;

    NodeConfig config_;
    sim::EventQueue events_;

    // Memory side.
    std::vector<std::unique_ptr<dram::MemoryController>> controllers_;
    std::vector<std::unique_ptr<core::ModeController>> modeControllers_;

    // Access monitoring (all null while monitoring is disabled).
    std::unique_ptr<NodeActionSink> sink_;
    std::unique_ptr<monitor::RegionSampler> sampler_;
    std::unique_ptr<monitor::SchemeEngine> engine_;

    // Cache hierarchy.
    std::vector<std::unique_ptr<cache::Cache>> l1_; ///< per core
    std::vector<std::unique_ptr<cache::Cache>> l2_; ///< per core
    std::unique_ptr<cache::Cache> l3_;              ///< shared

    // Prefetchers.
    std::vector<cache::StridePrefetcher> l1Stride_;
    std::vector<cache::StridePrefetcher> l2Stride_;
    std::vector<cache::NextLinePrefetcher> l2NextLine_;
    std::vector<std::uint64_t> prefetchScratch_;

    // Cores.
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    unsigned coresRunning_ = 0;
    bool warming_ = false;

    /**
     * MSHR table: lines with a DRAM read in flight (demand or
     * prefetch).  A demand load that touches an in-flight line joins
     * the entry and stalls until the data actually arrives - this is
     * what makes prefetch-covered streams bandwidth-bound instead of
     * free.
     */
    struct InFlightLine
    {
        std::vector<std::function<void(util::Tick)>> waiters;
    };
    std::unordered_map<std::uint64_t, InFlightLine> inFlight_;

    /**
     * Functional cache warm-up (the paper fast-forwards with KVM and
     * warms caches before measuring): plays `ops` stream operations
     * through the cache hierarchy with no timing side effects.
     */
    void warmUp(wl::AccessStream &stream, unsigned core_id,
                std::uint64_t ops);

    /** Fill the LLC with an aged steady-state footprint. */
    void prefillCaches();

    // Cached latencies (ticks).
    util::Tick l1Latency_;
    util::Tick l2Latency_;
    util::Tick l3Latency_;
    util::Tick storeCost_;
};

} // namespace hdmr::node

#endif // HDMR_NODE_NODE_SYSTEM_HH
