#include "node/runner.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace hdmr::node
{

void
detail::parallelFor(std::size_t count, unsigned threads,
                    const std::function<void(std::size_t)> &body)
{
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 4 : hw;
    }
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(std::max<std::size_t>(count, 1)));

    std::atomic<std::size_t> next{0};

    // First exception wins; the others drain their queues and exit.
    // Letting it escape a worker thread would std::terminate the
    // whole process with no usable message.
    std::exception_ptr failure;
    std::mutex failureMutex;
    std::atomic<bool> failed{false};

    auto worker = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            const std::size_t index = next.fetch_add(1);
            if (index >= count)
                return;
            try {
                body(index);
            } catch (...) {
                std::lock_guard<std::mutex> lock(failureMutex);
                if (!failure)
                    failure = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    if (threads <= 1) {
        // Single-threaded: run inline so exceptions propagate with
        // their original stack and no thread machinery in the way.
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }
    if (failure)
        std::rethrow_exception(failure);
}

std::vector<NodeStats>
runGrid(const std::vector<NodeConfig> &configs, unsigned threads)
{
    std::vector<NodeStats> results(configs.size());
    detail::parallelFor(configs.size(), threads,
                        [&](std::size_t index) {
                            NodeSystem system(configs[index]);
                            results[index] = system.run();
                        });
    return results;
}

} // namespace hdmr::node
