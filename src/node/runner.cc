#include "node/runner.hh"

#include <atomic>
#include <thread>

namespace hdmr::node
{

std::vector<NodeStats>
runGrid(const std::vector<NodeConfig> &configs, unsigned threads)
{
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 4 : hw;
    }
    threads = std::min<unsigned>(threads,
                                 std::max<std::size_t>(configs.size(),
                                                       1));

    std::vector<NodeStats> results(configs.size());
    std::atomic<std::size_t> next{0};

    auto worker = [&] {
        while (true) {
            const std::size_t index = next.fetch_add(1);
            if (index >= configs.size())
                return;
            NodeSystem system(configs[index]);
            results[index] = system.run();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &thread : pool)
        thread.join();
    return results;
}

} // namespace hdmr::node
