#include "node/energy.hh"

namespace hdmr::node
{

EnergyBreakdown
computeEnergy(const EnergyInputs &inputs, const EnergyParams &params)
{
    EnergyBreakdown out;

    out.cpuStaticJ = params.cpuStaticWattsPerCore * inputs.cores *
                     inputs.execSeconds;
    out.cpuDynamicJ = params.cpuDynamicNjPerInst * 1.0e-9 *
                      static_cast<double>(inputs.instructions);

    out.dramDynamicJ =
        1.0e-9 *
        (params.actPreNj * static_cast<double>(inputs.activates) +
         params.burstNj * static_cast<double>(inputs.readBursts +
                                              inputs.writeRankBursts) +
         params.refreshNj * static_cast<double>(inputs.refreshes));

    const double standby_rank_seconds =
        static_cast<double>(inputs.totalRanks) * inputs.execSeconds -
        inputs.rankSelfRefreshSeconds;
    out.dramBackgroundJ =
        params.rankStandbyWatts * standby_rank_seconds +
        params.rankSelfRefreshWatts * inputs.rankSelfRefreshSeconds;

    out.epiNj = inputs.instructions == 0
                    ? 0.0
                    : out.totalJ() * 1.0e9 /
                          static_cast<double>(inputs.instructions);
    return out;
}

} // namespace hdmr::node
