#include "ecc/reed_solomon.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::ecc
{

ReedSolomon::ReedSolomon(std::size_t data_symbols,
                         std::size_t parity_symbols)
    : k_(data_symbols), nParity_(parity_symbols)
{
    hdmr_assert(nParity_ >= 2 && nParity_ % 2 == 0);
    hdmr_assert(k_ + nParity_ <= 255,
                "RS codeword over GF(256) limited to 255 symbols");

    // g(x) = prod_{i=1..2t} (x - alpha^i), built up incrementally.
    generator_ = {1};
    for (std::size_t i = 1; i <= nParity_; ++i) {
        const GfElem root = Gf256::expAlpha(static_cast<int>(i));
        std::vector<GfElem> next(generator_.size() + 1, 0);
        for (std::size_t j = 0; j < generator_.size(); ++j) {
            next[j] = Gf256::add(next[j], Gf256::mul(generator_[j], root));
            next[j + 1] = Gf256::add(next[j + 1], generator_[j]);
        }
        generator_ = std::move(next);
    }
    // generator_[d] is the coefficient of x^d; degree 2t, monic.
    std::reverse(generator_.begin(), generator_.end());
    // Now generator_[0] is the x^{2t} coefficient (1), descending order.
}

std::vector<GfElem>
ReedSolomon::encode(const std::vector<GfElem> &data) const
{
    hdmr_assert(data.size() == k_, "encode() expects %zu symbols, got %zu",
                k_, data.size());

    // Polynomial long division of D(x) * x^{2t} by g(x); the remainder
    // is the parity.  Classic LFSR formulation.
    std::vector<GfElem> remainder(nParity_, 0);
    for (GfElem symbol : data) {
        const GfElem feedback = Gf256::add(symbol, remainder.front());
        // Shift left by one symbol.
        for (std::size_t i = 0; i + 1 < nParity_; ++i) {
            remainder[i] = Gf256::add(
                remainder[i + 1],
                Gf256::mul(feedback, generator_[i + 1]));
        }
        remainder[nParity_ - 1] =
            Gf256::mul(feedback, generator_[nParity_]);
    }
    return remainder;
}

std::vector<GfElem>
ReedSolomon::syndromes(const std::vector<GfElem> &codeword) const
{
    hdmr_assert(codeword.size() == codewordSymbols());
    std::vector<GfElem> s(nParity_, 0);
    for (std::size_t j = 0; j < nParity_; ++j) {
        const GfElem root = Gf256::expAlpha(static_cast<int>(j + 1));
        GfElem acc = 0;
        for (GfElem symbol : codeword)
            acc = Gf256::add(Gf256::mul(acc, root), symbol);
        s[j] = acc;
    }
    return s;
}

bool
ReedSolomon::detect(const std::vector<GfElem> &codeword) const
{
    const auto s = syndromes(codeword);
    return std::any_of(s.begin(), s.end(),
                       [](GfElem v) { return v != 0; });
}

DecodeResult
ReedSolomon::correct(std::vector<GfElem> &codeword,
                     std::size_t forbidden_begin,
                     std::size_t forbidden_end) const
{
    DecodeResult result;
    const std::size_t n = codewordSymbols();
    const auto synd = syndromes(codeword);
    if (std::all_of(synd.begin(), synd.end(),
                    [](GfElem v) { return v == 0; })) {
        result.status = DecodeStatus::kClean;
        return result;
    }

    // --- Berlekamp-Massey: synthesize the error locator Lambda(x). ---
    std::vector<GfElem> lambda = {1};
    std::vector<GfElem> prev = {1};
    std::size_t errors = 0; // current LFSR length L
    std::size_t m = 1;      // steps since prev was updated
    GfElem b = 1;           // last non-zero discrepancy

    for (std::size_t i = 0; i < nParity_; ++i) {
        GfElem discrepancy = synd[i];
        for (std::size_t j = 1; j <= errors && j < lambda.size(); ++j) {
            discrepancy = Gf256::add(
                discrepancy, Gf256::mul(lambda[j], synd[i - j]));
        }
        if (discrepancy == 0) {
            ++m;
            continue;
        }
        if (2 * errors <= i) {
            std::vector<GfElem> saved = lambda;
            const GfElem scale = Gf256::div(discrepancy, b);
            if (lambda.size() < prev.size() + m)
                lambda.resize(prev.size() + m, 0);
            for (std::size_t j = 0; j < prev.size(); ++j) {
                lambda[j + m] = Gf256::add(
                    lambda[j + m], Gf256::mul(scale, prev[j]));
            }
            errors = i + 1 - errors;
            prev = std::move(saved);
            b = discrepancy;
            m = 1;
        } else {
            const GfElem scale = Gf256::div(discrepancy, b);
            if (lambda.size() < prev.size() + m)
                lambda.resize(prev.size() + m, 0);
            for (std::size_t j = 0; j < prev.size(); ++j) {
                lambda[j + m] = Gf256::add(
                    lambda[j + m], Gf256::mul(scale, prev[j]));
            }
            ++m;
        }
    }

    // Trim trailing zeros; the locator degree is the error count.
    while (lambda.size() > 1 && lambda.back() == 0)
        lambda.pop_back();
    const std::size_t degree = lambda.size() - 1;

    if (degree == 0 || degree > correctionCapability()) {
        result.status = DecodeStatus::kUncorrectable;
        return result;
    }

    // --- Chien search: find roots of Lambda over codeword positions. ---
    // Codeword index i carries polynomial degree n-1-i; the error
    // locator for that position is X = alpha^{n-1-i}, and Lambda has a
    // root at X^{-1}.
    std::vector<std::size_t> positions;  // codeword indices
    std::vector<GfElem> locators;        // X values
    for (std::size_t i = 0; i < n; ++i) {
        const int deg = static_cast<int>(n - 1 - i);
        const GfElem x_inv = Gf256::expAlpha(-deg);
        GfElem acc = 0;
        for (std::size_t j = lambda.size(); j-- > 0;)
            acc = Gf256::add(Gf256::mul(acc, x_inv), lambda[j]);
        if (acc == 0) {
            positions.push_back(i);
            locators.push_back(Gf256::expAlpha(deg));
        }
    }

    if (positions.size() != degree) {
        // Locator polynomial does not split over valid positions: the
        // error pattern exceeds the code's capability.
        result.status = DecodeStatus::kUncorrectable;
        return result;
    }

    for (std::size_t pos : positions) {
        if (pos >= forbidden_begin && pos < forbidden_end) {
            // A "correction" aimed at a known-correct virtual symbol
            // proves mis-location; refuse to touch the data.
            result.status = DecodeStatus::kDetectedOnly;
            return result;
        }
    }

    // --- Forney: error magnitudes. Omega(x) = S(x)Lambda(x) mod x^2t. --
    std::vector<GfElem> omega(nParity_, 0);
    for (std::size_t i = 0; i < nParity_; ++i) {
        for (std::size_t j = 0; j < lambda.size() && j <= i; ++j) {
            omega[i] = Gf256::add(omega[i],
                                  Gf256::mul(synd[i - j], lambda[j]));
        }
    }

    const std::vector<GfElem> pristine = codeword;
    for (std::size_t e = 0; e < positions.size(); ++e) {
        const GfElem x = locators[e];
        const GfElem x_inv = Gf256::inv(x);

        GfElem omega_val = 0;
        for (std::size_t j = omega.size(); j-- > 0;)
            omega_val = Gf256::add(Gf256::mul(omega_val, x_inv), omega[j]);

        // Lambda'(x) keeps odd-degree terms only.
        GfElem deriv = 0;
        for (std::size_t j = 1; j < lambda.size(); j += 2)
            deriv = Gf256::add(
                deriv, Gf256::mul(lambda[j],
                                  Gf256::pow(x_inv, static_cast<int>(j - 1))));

        if (deriv == 0) {
            codeword = pristine;
            result.status = DecodeStatus::kUncorrectable;
            return result;
        }
        const GfElem magnitude = Gf256::div(omega_val, deriv);
        codeword[positions[e]] =
            Gf256::add(codeword[positions[e]], magnitude);
    }

    // Defensive re-check: a pattern beyond t can decode to a wrong
    // codeword; verifying syndromes catches the cases where it does not
    // land exactly on another codeword.
    if (detect(codeword)) {
        codeword = pristine;
        result.status = DecodeStatus::kUncorrectable;
        return result;
    }

    result.status = DecodeStatus::kCorrected;
    result.correctedPositions = std::move(positions);
    return result;
}

} // namespace hdmr::ecc
