/**
 * @file
 * Error-injection utilities for ECC testing and for modelling the
 * error processes seen when operating memory beyond specification
 * (Section III of the paper: bit flips, whole-IO-pin byte errors,
 * command/address mishaps corrupting many bytes).
 */

#ifndef HDMR_ECC_ERROR_INJECT_HH
#define HDMR_ECC_ERROR_INJECT_HH

#include <cstddef>
#include <cstdint>

#include "ecc/bamboo.hh"
#include "util/rng.hh"

namespace hdmr::ecc
{

/** Kinds of corruption seen when running memory out of spec. */
enum class ErrorPattern
{
    kSingleBit,   ///< one flipped bit (classic transient)
    kSingleByte,  ///< one corrupted byte (x8 IO-pin burst error)
    kMultiByte,   ///< 2-8 corrupted bytes (multi-pin / burst)
    kWideBlock,   ///< >8 corrupted bytes (command/address error, "8B+")
};

/** Inject one flipped bit at (byte_index, bit_index) into the data. */
void flipBit(CodedBlock &coded, std::size_t byte_index,
             std::size_t bit_index);

/** XOR the given byte of the data with a non-zero mask. */
void corruptDataByte(CodedBlock &coded, std::size_t byte_index,
                     std::uint8_t mask);

/** XOR the given parity byte with a non-zero mask. */
void corruptParityByte(CodedBlock &coded, std::size_t byte_index,
                       std::uint8_t mask);

/**
 * Inject a random instance of the given pattern.  Returns the number
 * of distinct (data or parity) bytes touched; every touched byte is
 * guaranteed to actually change.
 */
unsigned injectPattern(CodedBlock &coded, ErrorPattern pattern,
                       util::Rng &rng);

/**
 * Corrupt exactly `count` distinct randomly-chosen bytes across the
 * stored data+parity footprint.  `count` 0 (a zero-error burst) is a
 * no-op that consumes no randomness.
 */
unsigned corruptBytes(CodedBlock &coded, unsigned count, util::Rng &rng);

} // namespace hdmr::ecc

#endif // HDMR_ECC_ERROR_INJECT_HH
