/**
 * @file
 * Bamboo-style whole-block ECC for 64-byte memory blocks (Kim, Sullivan
 * & Erez, HPCA'15, as adopted by Hetero-DMR).
 *
 * All 64 data bytes of a block feed a single Reed-Solomon code with 8
 * parity bytes (one per ECC-chip beat on a x8 RDIMM).  Hetero-DMR adds
 * two twists, both implemented here:
 *
 *  1. Address folding: the 8-byte block address participates in the
 *     encoding as *virtual* symbols that are recomputed (not stored) at
 *     decode time, so a response for the wrong address is detected just
 *     like a data error (cf. resilient die-stacked caches [72]).
 *  2. Detection-only decode: for unsafely-fast copies, decoding stops
 *     after syndrome inspection.  All 8 parity bytes then act as pure
 *     detection budget - any error touching <= 8 symbols is caught with
 *     certainty, and wider (8B+) errors escape with probability 2^-64.
 */

#ifndef HDMR_ECC_BAMBOO_HH
#define HDMR_ECC_BAMBOO_HH

#include <array>
#include <cstdint>

#include "ecc/reed_solomon.hh"

namespace hdmr::ecc
{

/** A 64-byte memory block. */
using Block = std::array<std::uint8_t, 64>;

/** The 8 stored parity bytes of a block. */
using Parity = std::array<std::uint8_t, 8>;

/** A block together with its stored parity, as it lives in DRAM. */
struct CodedBlock
{
    Block data{};
    Parity parity{};
};

/** Outcome of decoding a coded block. */
struct BlockDecodeResult
{
    DecodeStatus status = DecodeStatus::kClean;
    unsigned correctedSymbols = 0;

    bool
    errorDetected() const
    {
        return status != DecodeStatus::kClean;
    }

    bool
    dataTrustworthy() const
    {
        return status == DecodeStatus::kClean ||
               status == DecodeStatus::kCorrected;
    }
};

/**
 * The block codec.  Stateless apart from the RS tables; one instance
 * can serve every channel.
 */
class BambooCodec
{
  public:
    static constexpr std::size_t kDataBytes = 64;
    static constexpr std::size_t kAddressBytes = 8;
    static constexpr std::size_t kParityBytes = 8;

    /** Bytes of a CodedBlock that actually live in DRAM. */
    static constexpr std::size_t kStoredBytes = kDataBytes + kParityBytes;

    BambooCodec();

    /**
     * Encode a block: compute the parity over data + folded address.
     * The same parity works for an original block and its broadcast
     * copy because encoding is unaffected by the detection-only read
     * optimization (Section III-C of the paper).
     */
    CodedBlock encode(const Block &data, std::uint64_t address) const;

    /**
     * Conventional decode (original blocks): detect and correct up to
     * 4 byte errors; mis-located corrections are refused.
     */
    BlockDecodeResult decodeCorrecting(CodedBlock &coded,
                                       std::uint64_t address) const;

    /**
     * Detection-only decode (unsafely-fast copies): report whether any
     * syndrome is non-zero and never modify the block.  This is the
     * "stop ECC decoding after detection" optimization.
     */
    BlockDecodeResult decodeDetectOnly(const CodedBlock &coded,
                                       std::uint64_t address) const;

    /**
     * Probability that an error wider than 8 symbols escapes the
     * detection-only decode: 2^-64 (all 64 recomputed code bits must
     * coincide).  Exposed for the epoch-guard arithmetic.
     */
    static constexpr double
    escapeProbability8BPlus()
    {
        return 1.0 / 18446744073709551616.0; // 2^-64
    }

    /**
     * The underlying RS(80, 72) code.  Exposed read-only so the SDC
     * oracle (src/verify) can reason about the code algebraically -
     * e.g. construct error vectors that are themselves codewords when
     * importance-sampling the silent-escape tail.
     */
    const ReedSolomon &code() const { return rs_; }

    /**
     * Codeword index of stored byte `i` (data bytes first, then parity;
     * the 8 recomputed address symbols in between are never stored and
     * therefore can never be in error).
     */
    static constexpr std::size_t
    storedToCodewordIndex(std::size_t i)
    {
        return i < kDataBytes ? i : i + kAddressBytes;
    }

    /** XOR `mask` into stored byte `i` of a coded block. */
    static void
    xorStoredByte(CodedBlock &coded, std::size_t i, std::uint8_t mask)
    {
        if (i < kDataBytes)
            coded.data[i] ^= mask;
        else
            coded.parity[i - kDataBytes] ^= mask;
    }

  private:
    /** Assemble [data | address | parity] into an RS codeword. */
    std::vector<GfElem> toCodeword(const CodedBlock &coded,
                                   std::uint64_t address) const;

    ReedSolomon rs_;
};

} // namespace hdmr::ecc

#endif // HDMR_ECC_BAMBOO_HH
