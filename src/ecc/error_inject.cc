#include "ecc/error_inject.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"

namespace hdmr::ecc
{

void
flipBit(CodedBlock &coded, std::size_t byte_index, std::size_t bit_index)
{
    hdmr_assert(byte_index < BambooCodec::kDataBytes);
    hdmr_assert(bit_index < 8);
    coded.data[byte_index] ^= static_cast<std::uint8_t>(1u << bit_index);
}

void
corruptDataByte(CodedBlock &coded, std::size_t byte_index,
                std::uint8_t mask)
{
    hdmr_assert(byte_index < BambooCodec::kDataBytes);
    hdmr_assert(mask != 0);
    coded.data[byte_index] ^= mask;
}

void
corruptParityByte(CodedBlock &coded, std::size_t byte_index,
                  std::uint8_t mask)
{
    hdmr_assert(byte_index < BambooCodec::kParityBytes);
    hdmr_assert(mask != 0);
    coded.parity[byte_index] ^= mask;
}

unsigned
corruptBytes(CodedBlock &coded, unsigned count, util::Rng &rng)
{
    constexpr unsigned total =
        BambooCodec::kDataBytes + BambooCodec::kParityBytes;
    // A zero-byte burst is a legitimate degenerate case (a Poisson
    // burst draw of 0 in the fault campaign): no bytes touched, no RNG
    // consumed.
    if (count == 0)
        return 0;
    hdmr_assert(count <= total);

    // Choose `count` distinct byte slots across data+parity.
    std::vector<unsigned> slots(total);
    for (unsigned i = 0; i < total; ++i)
        slots[i] = i;
    for (unsigned i = 0; i < count; ++i) {
        const auto j = static_cast<unsigned>(
            rng.uniformInt(i, total - 1));
        std::swap(slots[i], slots[j]);
    }

    for (unsigned i = 0; i < count; ++i) {
        const auto mask =
            static_cast<std::uint8_t>(rng.uniformInt(1, 255));
        if (slots[i] < BambooCodec::kDataBytes)
            corruptDataByte(coded, slots[i], mask);
        else
            corruptParityByte(coded, slots[i] - BambooCodec::kDataBytes,
                              mask);
    }
    return count;
}

unsigned
injectPattern(CodedBlock &coded, ErrorPattern pattern, util::Rng &rng)
{
    switch (pattern) {
      case ErrorPattern::kSingleBit:
        flipBit(coded, rng.uniformInt(0, BambooCodec::kDataBytes - 1),
                rng.uniformInt(0, 7));
        return 1;
      case ErrorPattern::kSingleByte:
        return corruptBytes(coded, 1, rng);
      case ErrorPattern::kMultiByte:
        return corruptBytes(
            coded, static_cast<unsigned>(rng.uniformInt(2, 8)), rng);
      case ErrorPattern::kWideBlock:
        return corruptBytes(
            coded, static_cast<unsigned>(rng.uniformInt(9, 40)), rng);
    }
    util::panic("unknown error pattern");
}

} // namespace hdmr::ecc
