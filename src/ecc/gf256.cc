#include "ecc/gf256.hh"

#include "util/logging.hh"

namespace hdmr::ecc
{

Gf256::Tables::Tables()
{
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
        exp[i] = static_cast<GfElem>(x);
        log[x] = static_cast<int>(i);
        x <<= 1;
        if (x & 0x100)
            x ^= kPrimitivePoly;
    }
    for (unsigned i = 255; i < 512; ++i)
        exp[i] = exp[i - 255];
    log[0] = -1; // log(0) is undefined; guarded by callers
}

const Gf256::Tables &
Gf256::tables()
{
    static const Tables t;
    return t;
}

GfElem
Gf256::mul(GfElem a, GfElem b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[static_cast<unsigned>(t.log[a] + t.log[b])];
}

GfElem
Gf256::div(GfElem a, GfElem b)
{
    hdmr_assert(b != 0, "GF(256) division by zero");
    if (a == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[static_cast<unsigned>(t.log[a] - t.log[b] + 255)];
}

GfElem
Gf256::inv(GfElem a)
{
    hdmr_assert(a != 0, "GF(256) inverse of zero");
    const Tables &t = tables();
    return t.exp[static_cast<unsigned>(255 - t.log[a])];
}

GfElem
Gf256::expAlpha(int power)
{
    const Tables &t = tables();
    int p = power % 255;
    if (p < 0)
        p += 255;
    return t.exp[static_cast<unsigned>(p)];
}

int
Gf256::logAlpha(GfElem a)
{
    hdmr_assert(a != 0, "GF(256) log of zero");
    return tables().log[a];
}

GfElem
Gf256::pow(GfElem a, int n)
{
    hdmr_assert(n >= 0);
    if (n == 0)
        return 1;
    if (a == 0)
        return 0;
    const Tables &t = tables();
    const long exponent = (static_cast<long>(t.log[a]) * n) % 255;
    return t.exp[static_cast<unsigned>(exponent)];
}

} // namespace hdmr::ecc
