/**
 * @file
 * GF(2^8) arithmetic for Reed-Solomon coding.
 *
 * Field: GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), i.e. the primitive
 * polynomial 0x11D commonly used for RS codes.  Multiplication and
 * inversion go through log/antilog tables built once at startup.
 */

#ifndef HDMR_ECC_GF256_HH
#define HDMR_ECC_GF256_HH

#include <array>
#include <cstdint>

namespace hdmr::ecc
{

/** An element of GF(2^8). */
using GfElem = std::uint8_t;

/** GF(2^8) arithmetic with table-driven multiply/divide/power. */
class Gf256
{
  public:
    static constexpr unsigned kFieldSize = 256;
    static constexpr unsigned kPrimitivePoly = 0x11d;

    /** Addition (= subtraction) is XOR. */
    static GfElem
    add(GfElem a, GfElem b)
    {
        return a ^ b;
    }

    /** Multiply two field elements. */
    static GfElem mul(GfElem a, GfElem b);

    /** Divide a by b; b must be non-zero. */
    static GfElem div(GfElem a, GfElem b);

    /** Multiplicative inverse; a must be non-zero. */
    static GfElem inv(GfElem a);

    /** alpha^power where alpha = 0x02 is the primitive element. */
    static GfElem expAlpha(int power);

    /** Discrete log base alpha; a must be non-zero. */
    static int logAlpha(GfElem a);

    /** a^n for integer n >= 0. */
    static GfElem pow(GfElem a, int n);

  private:
    struct Tables
    {
        std::array<GfElem, 512> exp; // doubled to skip the mod-255
        std::array<int, 256> log;

        Tables();
    };

    static const Tables &tables();
};

} // namespace hdmr::ecc

#endif // HDMR_ECC_GF256_HH
