/**
 * @file
 * Systematic Reed-Solomon codec over GF(2^8).
 *
 * An RS(n, k) code with 2t = n - k parity symbols corrects up to t
 * symbol errors and, when used for detection only, detects up to 2t
 * symbol errors with certainty (any pattern wider than 2t escapes with
 * probability ~2^-64 for 8 parity bytes — exactly the SDC budget the
 * paper's epoch guard reasons about).
 *
 * Decoder: syndrome computation, Berlekamp-Massey locator synthesis,
 * Chien search, Forney magnitudes.  First consecutive root is alpha^1.
 */

#ifndef HDMR_ECC_REED_SOLOMON_HH
#define HDMR_ECC_REED_SOLOMON_HH

#include <cstddef>
#include <vector>

#include "ecc/gf256.hh"

namespace hdmr::ecc
{

/** Result of an RS decode attempt. */
enum class DecodeStatus
{
    kClean,          ///< all syndromes zero: no error detected
    kCorrected,      ///< errors found and corrected in place
    kDetectedOnly,   ///< errors detected; correction suppressed/failed
    kUncorrectable,  ///< errors detected; beyond correction capability
};

/** Outcome details of a decode. */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::kClean;
    /** Corrected symbol positions (codeword indices), if any. */
    std::vector<std::size_t> correctedPositions;

    bool
    errorDetected() const
    {
        return status != DecodeStatus::kClean;
    }
};

/**
 * Reed-Solomon codec.  Codewords are vectors of n bytes laid out as
 * [data(k) | parity(2t)].  The object is immutable after construction
 * and safe to share.
 */
class ReedSolomon
{
  public:
    /**
     * @param data_symbols   k, number of data symbols per codeword
     * @param parity_symbols 2t, number of parity symbols (even)
     */
    ReedSolomon(std::size_t data_symbols, std::size_t parity_symbols);

    std::size_t dataSymbols() const { return k_; }
    std::size_t paritySymbols() const { return nParity_; }
    std::size_t codewordSymbols() const { return k_ + nParity_; }

    /** Max correctable symbol errors, t. */
    std::size_t correctionCapability() const { return nParity_ / 2; }

    /**
     * Compute parity for `data` (size k).  Returns the 2t parity
     * symbols; the full codeword is data followed by parity.
     */
    std::vector<GfElem> encode(const std::vector<GfElem> &data) const;

    /** Syndromes of a full codeword (size n); all-zero means clean. */
    std::vector<GfElem> syndromes(const std::vector<GfElem> &codeword) const;

    /** True iff any syndrome is non-zero. */
    bool detect(const std::vector<GfElem> &codeword) const;

    /**
     * Full decode: detect and correct in place (up to t symbols).
     *
     * A correction landing in [forbidden_begin, forbidden_end) is
     * rejected and the decode reports kDetectedOnly.  This supports
     * virtual (recomputed, never stored) symbols such as the folded
     * block address: those symbols are known-correct by construction,
     * so a locator pointing at them proves the error pattern exceeds
     * the code's capability.
     *
     * @param codeword n symbols, modified on correction
     */
    DecodeResult correct(std::vector<GfElem> &codeword,
                         std::size_t forbidden_begin,
                         std::size_t forbidden_end) const;

    DecodeResult
    correct(std::vector<GfElem> &codeword) const
    {
        return correct(codeword, codewordSymbols(), codewordSymbols());
    }

  private:
    std::size_t k_;
    std::size_t nParity_;
    std::vector<GfElem> generator_; // generator polynomial coefficients
};

} // namespace hdmr::ecc

#endif // HDMR_ECC_REED_SOLOMON_HH
