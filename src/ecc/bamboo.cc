#include "ecc/bamboo.hh"

#include "util/logging.hh"

namespace hdmr::ecc
{

namespace
{

/** Split a 64-bit address into its 8 virtual code symbols. */
std::array<GfElem, BambooCodec::kAddressBytes>
addressSymbols(std::uint64_t address)
{
    std::array<GfElem, BambooCodec::kAddressBytes> sym;
    for (std::size_t i = 0; i < sym.size(); ++i)
        sym[i] = static_cast<GfElem>(address >> (8 * i));
    return sym;
}

} // anonymous namespace

BambooCodec::BambooCodec()
    : rs_(kDataBytes + kAddressBytes, kParityBytes)
{
}

CodedBlock
BambooCodec::encode(const Block &data, std::uint64_t address) const
{
    std::vector<GfElem> message(kDataBytes + kAddressBytes);
    for (std::size_t i = 0; i < kDataBytes; ++i)
        message[i] = data[i];
    const auto addr = addressSymbols(address);
    for (std::size_t i = 0; i < kAddressBytes; ++i)
        message[kDataBytes + i] = addr[i];

    const auto parity = rs_.encode(message);
    hdmr_assert(parity.size() == kParityBytes);

    CodedBlock coded;
    coded.data = data;
    for (std::size_t i = 0; i < kParityBytes; ++i)
        coded.parity[i] = parity[i];
    return coded;
}

std::vector<GfElem>
BambooCodec::toCodeword(const CodedBlock &coded, std::uint64_t address) const
{
    std::vector<GfElem> cw(kDataBytes + kAddressBytes + kParityBytes);
    for (std::size_t i = 0; i < kDataBytes; ++i)
        cw[i] = coded.data[i];
    const auto addr = addressSymbols(address);
    for (std::size_t i = 0; i < kAddressBytes; ++i)
        cw[kDataBytes + i] = addr[i];
    for (std::size_t i = 0; i < kParityBytes; ++i)
        cw[kDataBytes + kAddressBytes + i] = coded.parity[i];
    return cw;
}

BlockDecodeResult
BambooCodec::decodeCorrecting(CodedBlock &coded, std::uint64_t address) const
{
    auto cw = toCodeword(coded, address);
    // The address symbols occupy [kDataBytes, kDataBytes+kAddressBytes);
    // they are recomputed from the request, so any "correction" there
    // is a mis-location and must be refused.
    const auto rs_result =
        rs_.correct(cw, kDataBytes, kDataBytes + kAddressBytes);

    BlockDecodeResult result;
    result.status = rs_result.status;
    result.correctedSymbols =
        static_cast<unsigned>(rs_result.correctedPositions.size());

    if (rs_result.status == DecodeStatus::kCorrected) {
        for (std::size_t i = 0; i < kDataBytes; ++i)
            coded.data[i] = static_cast<std::uint8_t>(cw[i]);
        for (std::size_t i = 0; i < kParityBytes; ++i) {
            coded.parity[i] = static_cast<std::uint8_t>(
                cw[kDataBytes + kAddressBytes + i]);
        }
    }
    return result;
}

BlockDecodeResult
BambooCodec::decodeDetectOnly(const CodedBlock &coded,
                              std::uint64_t address) const
{
    const auto cw = toCodeword(coded, address);
    BlockDecodeResult result;
    result.status = rs_.detect(cw) ? DecodeStatus::kDetectedOnly
                                   : DecodeStatus::kClean;
    return result;
}

} // namespace hdmr::ecc
