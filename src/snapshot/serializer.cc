#include "snapshot/serializer.hh"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

namespace hdmr::snapshot
{

namespace
{

std::array<std::uint32_t, 256>
buildCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = buildCrcTable();
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// --------------------------------------------------------------------
// Serializer
// --------------------------------------------------------------------

void
Serializer::writeBytes(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void
Serializer::writeU8(std::uint8_t value)
{
    buffer_.push_back(value);
}

void
Serializer::writeU16(std::uint16_t value)
{
    for (int i = 0; i < 2; ++i)
        buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
Serializer::writeU32(std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
Serializer::writeU64(std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
Serializer::writeI64(std::int64_t value)
{
    writeU64(static_cast<std::uint64_t>(value));
}

void
Serializer::writeBool(bool value)
{
    writeU8(value ? 1 : 0);
}

void
Serializer::writeDouble(double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    writeU64(bits);
}

void
Serializer::writeString(const std::string &value)
{
    writeU32(static_cast<std::uint32_t>(value.size()));
    writeBytes(value.data(), value.size());
}

void
Serializer::writeBlob(const std::vector<std::uint8_t> &value)
{
    writeU64(value.size());
    writeBytes(value.data(), value.size());
}

// --------------------------------------------------------------------
// Deserializer
// --------------------------------------------------------------------

Deserializer::Deserializer(const std::uint8_t *data, std::size_t size)
    : data_(data), size_(size)
{
}

Deserializer::Deserializer(const std::vector<std::uint8_t> &data)
    : data_(data.data()), size_(data.size())
{
}

bool
Deserializer::take(void *out, std::size_t size)
{
    if (!ok()) {
        std::memset(out, 0, size);
        return false;
    }
    if (size_ - position_ < size) {
        std::memset(out, 0, size);
        fail("truncated payload (wanted " + std::to_string(size) +
             " bytes, " + std::to_string(size_ - position_) + " left)");
        return false;
    }
    std::memcpy(out, data_ + position_, size);
    position_ += size;
    return true;
}

void
Deserializer::fail(const std::string &message)
{
    if (error_.empty())
        error_ = message;
}

util::Status
Deserializer::status() const
{
    if (ok())
        return util::Status{};
    return util::Status(util::StatusCode::kDataLoss, error_);
}

std::uint8_t
Deserializer::readU8()
{
    std::uint8_t byte = 0;
    take(&byte, 1);
    return byte;
}

std::uint16_t
Deserializer::readU16()
{
    std::uint8_t bytes[2] = {};
    take(bytes, sizeof(bytes));
    std::uint16_t value = 0;
    for (int i = 0; i < 2; ++i)
        value = static_cast<std::uint16_t>(
            value | static_cast<std::uint16_t>(bytes[i]) << (8 * i));
    return value;
}

std::uint32_t
Deserializer::readU32()
{
    std::uint8_t bytes[4] = {};
    take(bytes, sizeof(bytes));
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
    return value;
}

std::uint64_t
Deserializer::readU64()
{
    std::uint8_t bytes[8] = {};
    take(bytes, sizeof(bytes));
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    return value;
}

std::int64_t
Deserializer::readI64()
{
    return static_cast<std::int64_t>(readU64());
}

bool
Deserializer::readBool()
{
    const std::uint8_t byte = readU8();
    if (byte > 1)
        fail("malformed bool (byte " + std::to_string(byte) + ")");
    return byte == 1;
}

double
Deserializer::readDouble()
{
    const std::uint64_t bits = readU64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::string
Deserializer::readString()
{
    const std::uint32_t size = readU32();
    if (size > kMaxStringBytes) {
        fail("string length " + std::to_string(size) +
             " exceeds the " + std::to_string(kMaxStringBytes) +
             "-byte cap");
        return {};
    }
    if (size > remaining()) {
        fail("truncated string (length " + std::to_string(size) + ", " +
             std::to_string(remaining()) + " bytes left)");
        return {};
    }
    std::string value(reinterpret_cast<const char *>(data_ + position_),
                      size);
    position_ += size;
    return value;
}

std::vector<std::uint8_t>
Deserializer::readBlob()
{
    const std::uint64_t size = readU64();
    if (size > remaining()) {
        fail("truncated blob (length " + std::to_string(size) + ", " +
             std::to_string(remaining()) + " bytes left)");
        return {};
    }
    std::vector<std::uint8_t> value(
        data_ + position_, data_ + position_ + static_cast<std::size_t>(size));
    position_ += static_cast<std::size_t>(size);
    return value;
}

std::uint64_t
Deserializer::readCount(const char *what, std::uint64_t min_bytes_each)
{
    const std::uint64_t count = readU64();
    if (!ok())
        return 0;
    if (min_bytes_each == 0)
        min_bytes_each = 1;
    if (count > remaining() / min_bytes_each) {
        fail(std::string(what) + " count " + std::to_string(count) +
             " longer than the payload (" +
             std::to_string(remaining()) + " bytes left, >= " +
             std::to_string(min_bytes_each) + " each)");
        return 0;
    }
    return count;
}

// --------------------------------------------------------------------
// File container
// --------------------------------------------------------------------

namespace
{

constexpr std::size_t kHeaderSize = 24; // magic + version + kind + size
constexpr std::size_t kTrailerSize = 4; // CRC-32

/** fsync a directory so a rename inside it is durable. */
bool
syncDirectory(const std::string &dir)
{
    const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                          O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    return synced;
}

} // namespace

util::Status
writeSnapshotFile(const std::string &path, std::uint32_t kind,
                  const std::vector<std::uint8_t> &payload)
{
    Serializer image;
    image.writeBytes(kMagic, sizeof(kMagic));
    image.writeU32(kFormatVersion);
    image.writeU32(kind);
    image.writeU64(payload.size());
    image.writeBytes(payload.data(), payload.size());
    const std::uint32_t crc =
        crc32(image.data().data(), image.data().size());
    image.writeU32(crc);

    // Write to a temporary and rename so an interrupted write can
    // never be mistaken for a snapshot; fsync the data before the
    // rename and the directory after it so neither the bytes nor the
    // rename itself can be lost to a crash.
    const std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr)
        return util::ioError("snapshot %s: cannot open %s for writing",
                             path.c_str(), tmp.c_str());
    const std::size_t written = std::fwrite(
        image.data().data(), 1, image.data().size(), file);
    const bool flushed = std::fflush(file) == 0;
    const bool synced = flushed && ::fsync(fileno(file)) == 0;
    std::fclose(file);
    if (written != image.data().size() || !synced) {
        std::remove(tmp.c_str());
        return util::ioError("snapshot %s: short write to %s",
                             path.c_str(), tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return util::ioError(
            "snapshot %s: cannot rename temporary into place",
            path.c_str());
    }
    const std::string parent =
        std::filesystem::path(path).parent_path().string();
    if (!syncDirectory(parent))
        return util::ioError("snapshot %s: cannot sync directory '%s' "
                             "after rename",
                             path.c_str(),
                             parent.empty() ? "." : parent.c_str());
    return util::Status{};
}

util::Status
parseSnapshotImage(const std::uint8_t *data, std::size_t size,
                   std::uint32_t kind,
                   std::vector<std::uint8_t> *payload,
                   const std::string &name)
{
    if (size > kMaxSnapshotBytes)
        return util::resourceExhausted(
            "snapshot %s: %zu bytes exceeds the %llu-byte image cap",
            name.c_str(), size,
            static_cast<unsigned long long>(kMaxSnapshotBytes));
    if (size < kHeaderSize + kTrailerSize)
        return util::dataLoss(
            "snapshot %s: truncated (%zu bytes, header alone needs "
            "%zu)",
            name.c_str(), size, kHeaderSize + kTrailerSize);
    if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
        return util::dataLoss(
            "snapshot %s: bad magic (not a snapshot file)",
            name.c_str());

    Deserializer header(data + sizeof(kMagic), size - sizeof(kMagic));
    const std::uint32_t version = header.readU32();
    const std::uint32_t file_kind = header.readU32();
    const std::uint64_t payload_size = header.readU64();
    if (version != kFormatVersion)
        return util::failedPrecondition(
            "snapshot %s: format version %u (this build reads version "
            "%u)",
            name.c_str(), version, kFormatVersion);
    if (file_kind != kind)
        return util::failedPrecondition(
            "snapshot %s: payload kind mismatch", name.c_str());
    if (payload_size != size - kHeaderSize - kTrailerSize)
        return util::dataLoss("snapshot %s: truncated or oversized "
                              "payload",
                              name.c_str());

    Deserializer trailer(data + size - kTrailerSize, kTrailerSize);
    const std::uint32_t stored_crc = trailer.readU32();
    const std::uint32_t computed_crc = crc32(data, size - kTrailerSize);
    if (stored_crc != computed_crc)
        return util::dataLoss("snapshot %s: CRC mismatch (corrupted)",
                              name.c_str());

    payload->assign(data + kHeaderSize, data + size - kTrailerSize);
    return util::Status{};
}

util::Status
readSnapshotFile(const std::string &path, std::uint32_t kind,
                 std::vector<std::uint8_t> *payload)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return util::notFound("snapshot %s: cannot open", path.c_str());
    std::vector<std::uint8_t> image;
    std::uint8_t chunk[65536];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
        image.insert(image.end(), chunk, chunk + got);
        if (image.size() > kMaxSnapshotBytes) {
            std::fclose(file);
            return util::resourceExhausted(
                "snapshot %s: exceeds the %llu-byte image cap",
                path.c_str(),
                static_cast<unsigned long long>(kMaxSnapshotBytes));
        }
    }
    const bool read_error = std::ferror(file) != 0;
    std::fclose(file);
    if (read_error)
        return util::ioError("snapshot %s: read error", path.c_str());

    return parseSnapshotImage(image.data(), image.size(), kind, payload,
                              path);
}

} // namespace hdmr::snapshot
