#include "snapshot/keeper.hh"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "snapshot/serializer.hh"
#include "util/logging.hh"

namespace hdmr::snapshot
{

Keeper::Keeper(std::string path, unsigned keep)
    : path_(std::move(path)), keep_(keep)
{
    hdmr_assert(keep_ >= 1, "Keeper must keep at least one generation");
}

std::string
Keeper::generationPath(unsigned g) const
{
    if (g == 0)
        return path_;
    return path_ + "." + std::to_string(g);
}

util::Status
Keeper::save(std::uint32_t kind,
             const std::vector<std::uint8_t> &payload) const
{
    // Shift the survivors up one slot, oldest first, so no rename
    // overwrites a generation that has not been copied onward yet.
    // Renames of missing generations are skipped quietly - early in a
    // run the older slots simply do not exist.
    for (unsigned g = keep_ - 1; g >= 1; --g) {
        const std::string from = generationPath(g - 1);
        const std::string to = generationPath(g);
        std::error_code ec;
        if (!std::filesystem::exists(from, ec) || ec)
            continue;
        if (std::rename(from.c_str(), to.c_str()) != 0)
            return util::ioError(
                "snapshot %s: cannot rotate generation %u -> %u",
                path_.c_str(), g - 1, g);
    }
    return writeSnapshotFile(path_, kind, payload);
}

util::Result<Keeper::Loaded>
Keeper::loadLatestValid(std::uint32_t kind) const
{
    Loaded loaded;
    bool any_exists = false;
    for (unsigned g = 0; g < keep_; ++g) {
        const std::string path = generationPath(g);
        util::Status status =
            readSnapshotFile(path, kind, &loaded.payload);
        if (status.ok()) {
            loaded.generation = g;
            loaded.path = path;
            return loaded;
        }
        std::error_code ec;
        const bool exists = std::filesystem::exists(path, ec) && !ec;
        any_exists |= exists;
        // A missing older slot is normal (short runs never fill the
        // rotation); only real files that fail verification belong in
        // the skip trail the caller logs.
        if (exists || g == 0)
            loaded.skipped.push_back(std::move(status));
    }

    if (!any_exists)
        return util::Status(util::notFound(
            "snapshot %s: no generation exists (tried %u)",
            path_.c_str(), keep_));

    std::string detail;
    for (const util::Status &status : loaded.skipped) {
        if (!detail.empty())
            detail += "; ";
        detail += status.toString();
    }
    return util::Status(util::dataLoss(
        "snapshot %s: no valid generation among %u (%s)", path_.c_str(),
        keep_, detail.c_str()));
}

} // namespace hdmr::snapshot
