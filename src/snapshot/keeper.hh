/**
 * @file
 * Last-good snapshot rotation.
 *
 * A single snapshot file has a single point of failure: if the newest
 * image is corrupted after the fact (disk fault, operator truncation,
 * a crash on a filesystem that reordered the rename), the whole run's
 * restartability is gone.  Keeper keeps the N most recent *verified*
 * generations side by side:
 *
 *     run.snap        newest (generation 0)
 *     run.snap.1      previous
 *     run.snap.2      ...
 *
 * save() rotates older generations up by one rename each (atomic;
 * every generation is always a complete image written by
 * writeSnapshotFile's fsync'd tmp-rename protocol) and installs the
 * new image as generation 0.  loadLatestValid() walks generations
 * newest-first, CRC-verifying each, and returns the first image that
 * checks out together with a structured trail of what was wrong with
 * every generation it had to skip - the hook the resume paths use to
 * log the corruption and continue instead of dying.
 */

#ifndef HDMR_SNAPSHOT_KEEPER_HH
#define HDMR_SNAPSHOT_KEEPER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hh"

namespace hdmr::snapshot
{

/** Rotates N last-good snapshot generations under one base path. */
class Keeper
{
  public:
    /** Default number of generations kept by the bench drivers. */
    static constexpr unsigned kDefaultKeep = 3;

    /**
     * `path` is generation 0; older generations live at
     * `path.1` ... `path.(keep-1)`.  keep == 1 degenerates to the
     * plain single-file behaviour.  keep must be >= 1.
     */
    explicit Keeper(std::string path, unsigned keep = kDefaultKeep);

    const std::string &path() const { return path_; }
    unsigned keep() const { return keep_; }

    /** File name of generation `g` (0 = newest). */
    std::string generationPath(unsigned g) const;

    /**
     * Rotate and write `payload` as the new generation 0.  The
     * rotation renames oldest-first, so a crash at any point leaves
     * every surviving file a complete, verifiable image (at worst a
     * generation is duplicated or missing, never torn).  Returns the
     * first write/rename error; the simulation can continue either
     * way, it just has one fewer safety net.
     */
    util::Status save(std::uint32_t kind,
                      const std::vector<std::uint8_t> &payload) const;

    /** A verified payload plus where it came from. */
    struct Loaded
    {
        std::vector<std::uint8_t> payload;
        /** Generation the payload came from (0 = newest). */
        unsigned generation = 0;
        std::string path;
        /**
         * Structured skip trail: one Status per newer generation that
         * failed verification, in the order tried.  Empty when
         * generation 0 loaded cleanly.
         */
        std::vector<util::Status> skipped;
    };

    /**
     * Walk generations newest-first and return the first whose image
     * verifies (magic, version, kind, CRC).  kNotFound when no
     * generation exists at all; kDataLoss summarizing every attempt
     * when files exist but none verifies.
     */
    util::Result<Loaded> loadLatestValid(std::uint32_t kind) const;

  private:
    std::string path_;
    unsigned keep_;
};

} // namespace hdmr::snapshot

#endif // HDMR_SNAPSHOT_KEEPER_HH
