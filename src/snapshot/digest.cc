#include "snapshot/digest.hh"

#include <cstring>

#include "snapshot/serializer.hh"

namespace hdmr::snapshot
{

void
Fnv1a::addBytes(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        value_ ^= bytes[i];
        value_ *= 0x00000100000001b3ULL;
    }
}

void
Fnv1a::addU32(std::uint32_t value)
{
    std::uint8_t bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
    addBytes(bytes, sizeof(bytes));
}

void
Fnv1a::addU64(std::uint64_t value)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
    addBytes(bytes, sizeof(bytes));
}

void
Fnv1a::addDouble(double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    addU64(bits);
}

void
DigestTrail::save(Serializer &out) const
{
    out.writeDouble(epochSeconds);
    out.writeU64(digests.size());
    for (const std::uint64_t digest : digests)
        out.writeU64(digest);
}

bool
DigestTrail::restore(Deserializer &in)
{
    epochSeconds = in.readDouble();
    const std::uint64_t count = in.readCount("digest trail", 8);
    if (!in.ok())
        return false;
    digests.resize(static_cast<std::size_t>(count));
    for (std::uint64_t &digest : digests)
        digest = in.readU64();
    return in.ok();
}

std::optional<std::size_t>
DigestTrail::firstDivergence(const DigestTrail &a, const DigestTrail &b)
{
    if (a.epochSeconds != b.epochSeconds)
        return 0;
    const std::size_t common = std::min(a.digests.size(),
                                        b.digests.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (a.digests[i] != b.digests[i])
            return i;
    }
    if (a.digests.size() != b.digests.size())
        return common;
    return std::nullopt;
}

} // namespace hdmr::snapshot
