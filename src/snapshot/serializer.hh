/**
 * @file
 * Versioned, checksummed binary serialization for crash-safe
 * snapshot/resume of the long-running simulations.
 *
 * The encoding is deliberately boring: every scalar is written
 * little-endian at fixed width (doubles as their IEEE-754 bit
 * patterns), strings and blobs carry explicit lengths, and there is no
 * pointer or callback serialization anywhere - stateful layers persist
 * plain data and reconstruct their derived structures (heaps, event
 * sets) declaratively on restore.  A snapshot *file* wraps one payload
 * in a magic + format-version header and a CRC-32 trailer; truncated,
 * corrupted, or wrong-version images are rejected with a util::Status
 * that says why, never silently half-loaded and never by killing the
 * process - callers (snapshot::Keeper, the bench resume paths) decide
 * whether to fall back to an older generation or give up.
 *
 * Resource caps: a reader must survive adversarial inputs without
 * unbounded allocation, so every length/count decoded from the image
 * is checked against what the payload could possibly hold *before*
 * anything is allocated (readString, readBlob, readCount), and the
 * file reader refuses images larger than kMaxSnapshotBytes outright.
 */

#ifndef HDMR_SNAPSHOT_SERIALIZER_HH
#define HDMR_SNAPSHOT_SERIALIZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hh"

namespace hdmr::snapshot
{

/** Eight-byte file magic ("HDMRSNAP"). */
inline constexpr char kMagic[8] = {'H', 'D', 'M', 'R',
                                   'S', 'N', 'A', 'P'};

/** Current on-disk format version; bumped on incompatible change. */
inline constexpr std::uint32_t kFormatVersion = 1;

/** Payload kinds (fourcc-style tags) the repository writes. */
inline constexpr std::uint32_t kClusterStateKind = 0x4d495343;  // "CSIM"
inline constexpr std::uint32_t kSweepStateKind = 0x50455753;    // "SWEP"
inline constexpr std::uint32_t kSdcAuditStateKind = 0x41434453; // "SDCA"
inline constexpr std::uint32_t kAdvisorStateKind = 0x53564441;  // "ADVS"

/** Hard ceiling on a snapshot image the file reader will load. */
inline constexpr std::uint64_t kMaxSnapshotBytes = 1ull << 30; // 1 GiB

/** Hard ceiling on one length-prefixed string inside a payload. */
inline constexpr std::uint64_t kMaxStringBytes = 1ull << 20; // 1 MiB

/** CRC-32 (IEEE 802.3, reflected) over a byte range. */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/** Appends little-endian scalars to a growable byte buffer. */
class Serializer
{
  public:
    void writeU8(std::uint8_t value);
    void writeU16(std::uint16_t value);
    void writeU32(std::uint32_t value);
    void writeU64(std::uint64_t value);
    void writeI64(std::int64_t value);
    void writeBool(bool value);
    /** IEEE-754 bit pattern, little-endian. */
    void writeDouble(double value);
    /** u32 length prefix + raw bytes. */
    void writeString(const std::string &value);
    /** u64 length prefix + raw bytes. */
    void writeBlob(const std::vector<std::uint8_t> &value);
    void writeBytes(const void *data, std::size_t size);

    const std::vector<std::uint8_t> &data() const { return buffer_; }

  private:
    std::vector<std::uint8_t> buffer_;
};

/**
 * Bounds-checked reader over a serialized byte range.  The first
 * failed read (underrun or malformed value) latches an error; all
 * subsequent reads return zero values, so callers may decode a whole
 * record and check ok() once at the end.
 */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t size);
    explicit Deserializer(const std::vector<std::uint8_t> &data);

    std::uint8_t readU8();
    std::uint16_t readU16();
    std::uint32_t readU32();
    std::uint64_t readU64();
    std::int64_t readI64();
    /** Rejects encodings other than 0/1 (likely corruption). */
    bool readBool();
    double readDouble();
    /** Latches an error past kMaxStringBytes or the payload end. */
    std::string readString();
    std::vector<std::uint8_t> readBlob();

    /**
     * Read a u64 element count that a decode loop is about to
     * allocate/iterate for, where each element occupies at least
     * `min_bytes_each` (>= 1) payload bytes.  A count no remaining
     * payload could hold latches an error naming `what` - the
     * overflow-proof form of the old `count * size > remaining()`
     * checks, which an adversarial count near 2^64 could wrap past.
     */
    std::uint64_t readCount(const char *what,
                            std::uint64_t min_bytes_each);

    /** Record a semantic validation failure (bad index, mismatch...). */
    void fail(const std::string &message);

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }
    /** kOk when ok(); kDataLoss carrying error() otherwise. */
    util::Status status() const;
    std::size_t remaining() const { return size_ - position_; }

  private:
    bool take(void *out, std::size_t size);

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t position_ = 0;
    std::string error_;
};

/**
 * Write one payload as a snapshot file:
 *
 *     [0)  "HDMRSNAP"            8-byte magic
 *     [8)  format version        u32 LE
 *     [12) payload kind          u32 LE (fourcc)
 *     [16) payload size          u64 LE
 *     [24) payload bytes
 *     [24+n) CRC-32              u32 LE over bytes [0, 24+n)
 *
 * Durability: the image is written to `path + ".tmp"`, fsync'd, and
 * renamed into place, then the parent directory is fsync'd so the
 * rename itself survives a crash (on journalled filesystems a rename
 * without the directory sync can be lost even though the data blocks
 * made it).  A crash mid-write never leaves a half-written file under
 * `path`.  Returns kIoError on any write/sync/rename failure.
 */
util::Status writeSnapshotFile(const std::string &path,
                               std::uint32_t kind,
                               const std::vector<std::uint8_t> &payload);

/**
 * Verify an in-memory snapshot image.  Rejects with kDataLoss
 * (short/truncated image, bad magic, size inconsistency, CRC
 * mismatch), kResourceExhausted (over kMaxSnapshotBytes), or
 * kFailedPrecondition (format-version or payload-kind mismatch).  On
 * success *payload holds the verified bytes.  `name` labels errors
 * (a path, or "<memory>" for fuzzing).
 */
util::Status parseSnapshotImage(const std::uint8_t *data,
                                std::size_t size, std::uint32_t kind,
                                std::vector<std::uint8_t> *payload,
                                const std::string &name = "<memory>");

/**
 * Read and verify a snapshot file: parseSnapshotImage() over the
 * file's bytes, plus kNotFound for a missing file, kIoError for a
 * failed read, and kResourceExhausted past kMaxSnapshotBytes.
 */
util::Status readSnapshotFile(const std::string &path,
                              std::uint32_t kind,
                              std::vector<std::uint8_t> *payload);

} // namespace hdmr::snapshot

#endif // HDMR_SNAPSHOT_SERIALIZER_HH
