/**
 * @file
 * Replay-divergence detection: cheap FNV-1a state digests recorded at
 * fixed simulated-time epochs.
 *
 * The repository's determinism claim ("same seed => bit-identical
 * replay") used to be asserted, never verified.  A DigestTrail makes
 * it checkable: the simulation hashes its complete state at every
 * digest epoch, the trail rides along inside snapshots, and a resumed
 * run can prove bit-identity against the straight-through run.  Any
 * nondeterminism (unordered-container iteration, uninitialized reads)
 * surfaces as a first divergent epoch instead of silently wrong
 * figures.
 */

#ifndef HDMR_SNAPSHOT_DIGEST_HH
#define HDMR_SNAPSHOT_DIGEST_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace hdmr::snapshot
{

class Serializer;
class Deserializer;

/** Streaming 64-bit FNV-1a hash. */
class Fnv1a
{
  public:
    void addBytes(const void *data, std::size_t size);
    void addU32(std::uint32_t value);
    void addU64(std::uint64_t value);
    /** Hashes the IEEE-754 bit pattern (exact, not approximate). */
    void addDouble(double value);

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0xcbf29ce484222325ULL;
};

/** One state digest per elapsed digest epoch of simulated time. */
struct DigestTrail
{
    /** Simulated seconds between digests (fixed for a trail's life). */
    double epochSeconds = 0.0;
    /** digests[k] is the state hash at the end of epoch k. */
    std::vector<std::uint64_t> digests;

    void save(Serializer &out) const;
    bool restore(Deserializer &in);

    /**
     * First epoch at which two trails disagree: differing entry, or
     * the shorter length when one is a strict prefix of the other, or
     * 0 when the cadences differ.  nullopt when the trails are
     * identical.
     */
    static std::optional<std::size_t>
    firstDivergence(const DigestTrail &a, const DigestTrail &b);
};

} // namespace hdmr::snapshot

#endif // HDMR_SNAPSHOT_DIGEST_HH
