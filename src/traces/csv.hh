/**
 * @file
 * Strict CSV field parsing shared by the trace loaders and the bench
 * result caches.
 *
 * Every helper takes a CsvCursor naming the source file and 1-based
 * line, plus the field's name; malformed input - truncated lines,
 * non-numeric text, trailing junk, non-finite numbers, out-of-range
 * values - is rejected with a util::Status whose message has the form
 *
 *     <file>:<line>: field '<name>': <what is wrong>
 *
 * so a corrupt trace or cache points at the exact offending cell
 * instead of silently skewing results.  The helpers return errors
 * rather than fatal()ing so a long-running service can refuse one
 * request's input and keep serving; the CLI loaders wrap them with
 * util::checkOk() to keep the old die-with-message behaviour.
 *
 * Resource caps: readCsvLine() refuses lines beyond kMaxCsvLineBytes,
 * so a malicious "CSV" that is one endless line cannot balloon memory.
 */

#ifndef HDMR_TRACES_CSV_HH
#define HDMR_TRACES_CSV_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.hh"

namespace hdmr::traces
{

/** Hard ceiling on one CSV line the readers will buffer. */
inline constexpr std::size_t kMaxCsvLineBytes = 1 << 16; // 64 KiB

/** Where in which file the current record came from. */
struct CsvCursor
{
    std::string file;
    std::size_t line = 0; ///< 1-based
};

/**
 * getline() with the kMaxCsvLineBytes cap: reads one line into *out
 * and bumps at->line.  Returns false at clean EOF; an over-long line
 * sets *status (kResourceExhausted) and returns false.  `*status` is
 * left OK on success and EOF.
 */
bool readCsvLine(std::istream &in, CsvCursor *at, std::string *out,
                 util::Status *status);

/**
 * Split `text` on commas into exactly `expected_fields` fields;
 * truncated and over-long records are rejected.  Fields are returned
 * verbatim (no quoting support - none of our formats needs it).
 */
util::Status splitCsvLine(const CsvCursor &at, const std::string &text,
                          std::size_t expected_fields,
                          std::vector<std::string> *fields);

/** Parse a finite double; [lo, hi] is inclusive on both ends. */
util::Status parseCsvDouble(const CsvCursor &at, const char *field,
                            const std::string &text, double lo,
                            double hi, double *value);

/** Parse an unsigned integer in [lo, hi]; rejects signs and junk. */
util::Status parseCsvUnsigned(const CsvCursor &at, const char *field,
                              const std::string &text, std::uint64_t lo,
                              std::uint64_t hi, std::uint64_t *value);

} // namespace hdmr::traces

#endif // HDMR_TRACES_CSV_HH
