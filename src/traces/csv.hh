/**
 * @file
 * Strict CSV field parsing shared by the trace loaders and the bench
 * result caches.
 *
 * Every helper takes a CsvCursor naming the source file and 1-based
 * line, plus the field's name; malformed input - truncated lines,
 * non-numeric text, trailing junk, non-finite numbers, out-of-range
 * values - is rejected with a util::fatal() message of the form
 *
 *     <file>:<line>: field '<name>': <what is wrong>
 *
 * so a corrupt trace or cache points at the exact offending cell
 * instead of silently skewing results.
 */

#ifndef HDMR_TRACES_CSV_HH
#define HDMR_TRACES_CSV_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hdmr::traces
{

/** Where in which file the current record came from. */
struct CsvCursor
{
    std::string file;
    std::size_t line = 0; ///< 1-based
};

/**
 * Split `text` on commas into exactly `expected_fields` fields;
 * truncated and over-long records are fatal.  Fields are returned
 * verbatim (no quoting support - none of our formats needs it).
 */
std::vector<std::string> splitCsvLine(const CsvCursor &at,
                                      const std::string &text,
                                      std::size_t expected_fields);

/** Parse a finite double; [lo, hi] is inclusive on both ends. */
double parseCsvDouble(const CsvCursor &at, const char *field,
                      const std::string &text, double lo, double hi);

/** Parse an unsigned integer in [lo, hi]; rejects signs and junk. */
std::uint64_t parseCsvUnsigned(const CsvCursor &at, const char *field,
                               const std::string &text, std::uint64_t lo,
                               std::uint64_t hi);

} // namespace hdmr::traces

#endif // HDMR_TRACES_CSV_HH
