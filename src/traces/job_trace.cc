#include "traces/job_trace.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "traces/csv.hh"
#include "util/logging.hh"

namespace hdmr::traces
{

void
JobTraceModel::validate() const
{
    if (systemNodes == 0)
        util::fatal("JobTraceModel.systemNodes must be at least 1");
    if (!(spanSeconds > 0.0) || !std::isfinite(spanSeconds))
        util::fatal("JobTraceModel.spanSeconds must be a finite "
                    "positive duration (got %g)",
                    spanSeconds);
    if (!(targetUtilization > 0.0) || !std::isfinite(targetUtilization))
        util::fatal("JobTraceModel.targetUtilization must be finite "
                    "and positive (got %g)",
                    targetUtilization);
    if (!(under25Fraction >= 0.0) || !(under25Fraction <= 1.0))
        util::fatal("JobTraceModel.under25Fraction must be in [0, 1] "
                    "(got %g)",
                    under25Fraction);
    if (!(under50Fraction >= 0.0) || !(under50Fraction <= 1.0))
        util::fatal("JobTraceModel.under50Fraction must be in [0, 1] "
                    "(got %g)",
                    under50Fraction);
    if (under25Fraction > under50Fraction)
        util::fatal("JobTraceModel.under25Fraction (%g) must not "
                    "exceed under50Fraction (%g): the classes are "
                    "cumulative",
                    under25Fraction, under50Fraction);
}

GrizzlyTraceGenerator::GrizzlyTraceGenerator(JobTraceModel model,
                                             std::uint64_t seed)
    : model_(model), rng_(seed)
{
    model_.validate();
}

unsigned
GrizzlyTraceGenerator::sampleNodes()
{
    // Node-count mix typical of capacity HPC systems: many small
    // jobs, node-hours dominated by the mid/large ones.
    const double draw = rng_.uniform();
    if (draw < 0.35)
        return 1;
    if (draw < 0.60)
        return static_cast<unsigned>(rng_.uniformInt(2, 8));
    if (draw < 0.85)
        return static_cast<unsigned>(rng_.uniformInt(9, 32));
    if (draw < 0.97)
        return static_cast<unsigned>(rng_.uniformInt(33, 128));
    const unsigned largest =
        std::max(130u, model_.systemNodes / 3);
    return static_cast<unsigned>(rng_.uniformInt(129, largest));
}

double
GrizzlyTraceGenerator::sampleRuntime()
{
    // Log-normal runtimes, median ~1.5 h, capped at 2 days.
    const double runtime = rng_.logNormal(std::log(5400.0), 1.3);
    return std::clamp(runtime, 60.0, 48.0 * 3600.0);
}

std::vector<Job>
GrizzlyTraceGenerator::generate()
{
    // A zero-job model is a legitimate degenerate case (an empty
    // trace); bail out before the load-calibration division below
    // would hit 0/0.
    if (model_.numJobs == 0)
        return {};

    std::vector<Job> jobs(model_.numJobs);

    double node_seconds = 0.0;
    double campaign_start = 0.0;
    unsigned campaign_left = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        Job &job = jobs[i];
        job.id = static_cast<unsigned>(i + 1);
        // Bursty submissions: a third of jobs belong to user
        // "campaigns" (parameter sweeps submitted together), and the
        // background rate follows a day/night cycle - both make the
        // queue behave like a production machine's.
        if (campaign_left > 0) {
            --campaign_left;
            job.submitSeconds =
                campaign_start + rng_.exponential(1.0 / 30.0);
            campaign_start = job.submitSeconds;
        } else {
            double t;
            do {
                t = rng_.uniform(0.0, model_.spanSeconds);
                // Accept-reject against a diurnal intensity profile.
            } while (rng_.uniform() >
                     0.6 + 0.4 * std::sin(t * 2.0 * 3.14159265 /
                                          86400.0));
            job.submitSeconds = t;
            if (rng_.bernoulli(0.05)) {
                campaign_left = static_cast<unsigned>(
                    rng_.uniformInt(5, 60));
                campaign_start = t;
            }
        }
        job.nodes = sampleNodes();
        job.runtimeSeconds = sampleRuntime();
        job.walltimeSeconds = job.runtimeSeconds *
                              rng_.uniform(1.1, 3.0);
        const double usage = rng_.uniform();
        job.usageClass = usage < model_.under25Fraction
                             ? 0
                             : (usage < model_.under50Fraction ? 1 : 2);
        node_seconds += static_cast<double>(job.nodes) *
                        job.runtimeSeconds;
    }

    // Scale runtimes so offered load matches the target utilization.
    const double target = model_.targetUtilization *
                          static_cast<double>(model_.systemNodes) *
                          model_.spanSeconds;
    const double scale = target / node_seconds;
    for (Job &job : jobs) {
        job.runtimeSeconds =
            std::max(60.0, job.runtimeSeconds * scale);
        job.walltimeSeconds =
            std::max(job.runtimeSeconds * 1.05,
                     job.walltimeSeconds * scale);
    }

    std::sort(jobs.begin(), jobs.end(),
              [](const Job &a, const Job &b) {
                  return a.submitSeconds < b.submitSeconds;
              });
    return jobs;
}

double
traceNodeSeconds(const std::vector<Job> &jobs)
{
    double total = 0.0;
    for (const Job &job : jobs)
        total += static_cast<double>(job.nodes) * job.runtimeSeconds;
    return total;
}

std::vector<Job>
loadJobTraceCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("job trace: cannot open '%s'", path.c_str());

    std::vector<Job> jobs;
    CsvCursor at{path, 0};
    std::string line;
    while (std::getline(in, line)) {
        ++at.line;
        if (line.empty() || line[0] == '#')
            continue;

        const auto fields = splitCsvLine(at, line, 6);
        Job job;
        job.id = static_cast<unsigned>(
            parseCsvUnsigned(at, "id", fields[0], 0, ~0u));
        job.submitSeconds = parseCsvDouble(at, "submit_s", fields[1],
                                           0.0, 1.0e12);
        job.nodes = static_cast<unsigned>(
            parseCsvUnsigned(at, "nodes", fields[2], 1, 10'000'000));
        job.runtimeSeconds = parseCsvDouble(at, "runtime_s", fields[3],
                                            0.0, 1.0e12);
        job.walltimeSeconds = parseCsvDouble(at, "walltime_s", fields[4],
                                             0.0, 1.0e12);
        job.usageClass = static_cast<unsigned>(
            parseCsvUnsigned(at, "usage_class", fields[5], 0, 2));
        if (job.walltimeSeconds < job.runtimeSeconds) {
            util::fatal("%s:%zu: field 'walltime_s': %g below the "
                        "job's runtime %g",
                        path.c_str(), at.line, job.walltimeSeconds,
                        job.runtimeSeconds);
        }
        jobs.push_back(job);
    }

    std::sort(jobs.begin(), jobs.end(),
              [](const Job &a, const Job &b) {
                  return a.submitSeconds < b.submitSeconds;
              });
    return jobs;
}

void
writeJobTraceCsv(const std::string &path, const std::vector<Job> &jobs)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        util::fatal("job trace: cannot write '%s'", path.c_str());
    out.precision(17); // round-trip exactly
    out << "# id,submit_s,nodes,runtime_s,walltime_s,usage_class\n";
    for (const Job &job : jobs) {
        out << job.id << ',' << job.submitSeconds << ',' << job.nodes
            << ',' << job.runtimeSeconds << ',' << job.walltimeSeconds
            << ',' << job.usageClass << '\n';
    }
    if (!out)
        util::fatal("job trace: write to '%s' failed", path.c_str());
}

} // namespace hdmr::traces
