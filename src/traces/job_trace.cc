#include "traces/job_trace.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "traces/csv.hh"
#include "util/logging.hh"

namespace hdmr::traces
{

util::Status
JobTraceModel::validate() const
{
    if (systemNodes == 0)
        return util::invalidArgument(
            "JobTraceModel.systemNodes must be at least 1");
    if (!(spanSeconds > 0.0) || !std::isfinite(spanSeconds))
        return util::invalidArgument(
            "JobTraceModel.spanSeconds must be a finite positive "
            "duration (got %g)",
            spanSeconds);
    if (!(targetUtilization > 0.0) || !std::isfinite(targetUtilization))
        return util::invalidArgument(
            "JobTraceModel.targetUtilization must be finite and "
            "positive (got %g)",
            targetUtilization);
    if (!(under25Fraction >= 0.0) || !(under25Fraction <= 1.0))
        return util::invalidArgument(
            "JobTraceModel.under25Fraction must be in [0, 1] (got %g)",
            under25Fraction);
    if (!(under50Fraction >= 0.0) || !(under50Fraction <= 1.0))
        return util::invalidArgument(
            "JobTraceModel.under50Fraction must be in [0, 1] (got %g)",
            under50Fraction);
    if (under25Fraction > under50Fraction)
        return util::invalidArgument(
            "JobTraceModel.under25Fraction (%g) must not exceed "
            "under50Fraction (%g): the classes are cumulative",
            under25Fraction, under50Fraction);
    return util::Status{};
}

GrizzlyTraceGenerator::GrizzlyTraceGenerator(JobTraceModel model,
                                             std::uint64_t seed)
    : model_(model), rng_(seed)
{
    util::checkOk(model_.validate());
}

unsigned
GrizzlyTraceGenerator::sampleNodes()
{
    // Node-count mix typical of capacity HPC systems: many small
    // jobs, node-hours dominated by the mid/large ones.
    const double draw = rng_.uniform();
    if (draw < 0.35)
        return 1;
    if (draw < 0.60)
        return static_cast<unsigned>(rng_.uniformInt(2, 8));
    if (draw < 0.85)
        return static_cast<unsigned>(rng_.uniformInt(9, 32));
    if (draw < 0.97)
        return static_cast<unsigned>(rng_.uniformInt(33, 128));
    const unsigned largest =
        std::max(130u, model_.systemNodes / 3);
    return static_cast<unsigned>(rng_.uniformInt(129, largest));
}

double
GrizzlyTraceGenerator::sampleRuntime()
{
    // Log-normal runtimes, median ~1.5 h, capped at 2 days.
    const double runtime = rng_.logNormal(std::log(5400.0), 1.3);
    return std::clamp(runtime, 60.0, 48.0 * 3600.0);
}

std::vector<Job>
GrizzlyTraceGenerator::generate()
{
    // A zero-job model is a legitimate degenerate case (an empty
    // trace); bail out before the load-calibration division below
    // would hit 0/0.
    if (model_.numJobs == 0)
        return {};

    std::vector<Job> jobs(model_.numJobs);

    double node_seconds = 0.0;
    double campaign_start = 0.0;
    unsigned campaign_left = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        Job &job = jobs[i];
        job.id = static_cast<unsigned>(i + 1);
        // Bursty submissions: a third of jobs belong to user
        // "campaigns" (parameter sweeps submitted together), and the
        // background rate follows a day/night cycle - both make the
        // queue behave like a production machine's.
        if (campaign_left > 0) {
            --campaign_left;
            job.submitSeconds =
                campaign_start + rng_.exponential(1.0 / 30.0);
            campaign_start = job.submitSeconds;
        } else {
            double t;
            do {
                t = rng_.uniform(0.0, model_.spanSeconds);
                // Accept-reject against a diurnal intensity profile.
            } while (rng_.uniform() >
                     0.6 + 0.4 * std::sin(t * 2.0 * 3.14159265 /
                                          86400.0));
            job.submitSeconds = t;
            if (rng_.bernoulli(0.05)) {
                campaign_left = static_cast<unsigned>(
                    rng_.uniformInt(5, 60));
                campaign_start = t;
            }
        }
        job.nodes = sampleNodes();
        job.runtimeSeconds = sampleRuntime();
        job.walltimeSeconds = job.runtimeSeconds *
                              rng_.uniform(1.1, 3.0);
        const double usage = rng_.uniform();
        job.usageClass = usage < model_.under25Fraction
                             ? 0
                             : (usage < model_.under50Fraction ? 1 : 2);
        node_seconds += static_cast<double>(job.nodes) *
                        job.runtimeSeconds;
    }

    // Scale runtimes so offered load matches the target utilization.
    const double target = model_.targetUtilization *
                          static_cast<double>(model_.systemNodes) *
                          model_.spanSeconds;
    const double scale = target / node_seconds;
    for (Job &job : jobs) {
        job.runtimeSeconds =
            std::max(60.0, job.runtimeSeconds * scale);
        job.walltimeSeconds =
            std::max(job.runtimeSeconds * 1.05,
                     job.walltimeSeconds * scale);
    }

    std::sort(jobs.begin(), jobs.end(),
              [](const Job &a, const Job &b) {
                  return a.submitSeconds < b.submitSeconds;
              });
    return jobs;
}

double
traceNodeSeconds(const std::vector<Job> &jobs)
{
    double total = 0.0;
    for (const Job &job : jobs)
        total += static_cast<double>(job.nodes) * job.runtimeSeconds;
    return total;
}

namespace
{

util::Status
loadJobTraceCsvImpl(std::istream &in, const std::string &name,
                    std::vector<Job> *jobs)
{
    jobs->clear();
    CsvCursor at{name, 0};
    util::Status status;
    std::string line;
    std::vector<std::string> fields;
    while (readCsvLine(in, &at, &line, &status)) {
        if (line.empty() || line[0] == '#')
            continue;

        HDMR_RETURN_IF_ERROR(splitCsvLine(at, line, 6, &fields));
        Job job;
        std::uint64_t id = 0, nodes = 0, usage_class = 0;
        HDMR_RETURN_IF_ERROR(
            parseCsvUnsigned(at, "id", fields[0], 0, ~0u, &id));
        HDMR_RETURN_IF_ERROR(parseCsvDouble(at, "submit_s", fields[1],
                                            0.0, 1.0e12,
                                            &job.submitSeconds));
        HDMR_RETURN_IF_ERROR(parseCsvUnsigned(
            at, "nodes", fields[2], 1, 10'000'000, &nodes));
        HDMR_RETURN_IF_ERROR(parseCsvDouble(at, "runtime_s", fields[3],
                                            0.0, 1.0e12,
                                            &job.runtimeSeconds));
        HDMR_RETURN_IF_ERROR(parseCsvDouble(at, "walltime_s", fields[4],
                                            0.0, 1.0e12,
                                            &job.walltimeSeconds));
        HDMR_RETURN_IF_ERROR(parseCsvUnsigned(at, "usage_class",
                                              fields[5], 0, 2,
                                              &usage_class));
        job.id = static_cast<unsigned>(id);
        job.nodes = static_cast<unsigned>(nodes);
        job.usageClass = static_cast<unsigned>(usage_class);
        if (job.walltimeSeconds < job.runtimeSeconds) {
            return util::outOfRange(
                "%s:%zu: field 'walltime_s': %g below the job's "
                "runtime %g",
                name.c_str(), at.line, job.walltimeSeconds,
                job.runtimeSeconds);
        }
        jobs->push_back(job);
    }
    if (!status.ok()) {
        jobs->clear();
        return status;
    }

    std::sort(jobs->begin(), jobs->end(),
              [](const Job &a, const Job &b) {
                  return a.submitSeconds < b.submitSeconds;
              });
    return util::Status{};
}

} // anonymous namespace

util::Status
loadJobTraceCsv(std::istream &in, const std::string &name,
                std::vector<Job> *jobs)
{
    util::Status status = loadJobTraceCsvImpl(in, name, jobs);
    if (!status.ok())
        jobs->clear();
    return status;
}

util::Status
loadJobTraceCsv(const std::string &path, std::vector<Job> *jobs)
{
    std::ifstream in(path);
    if (!in) {
        jobs->clear();
        return util::notFound("job trace: cannot open '%s'",
                              path.c_str());
    }
    return loadJobTraceCsv(in, path, jobs);
}

std::vector<Job>
loadJobTraceCsvOrDie(const std::string &path)
{
    std::vector<Job> jobs;
    util::checkOk(loadJobTraceCsv(path, &jobs));
    return jobs;
}

util::Status
writeJobTraceCsv(const std::string &path, const std::vector<Job> &jobs)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return util::ioError("job trace: cannot write '%s'",
                             path.c_str());
    out.precision(17); // round-trip exactly
    out << "# id,submit_s,nodes,runtime_s,walltime_s,usage_class\n";
    for (const Job &job : jobs) {
        out << job.id << ',' << job.submitSeconds << ',' << job.nodes
            << ',' << job.runtimeSeconds << ',' << job.walltimeSeconds
            << ',' << job.usageClass << '\n';
    }
    if (!out)
        return util::ioError("job trace: write to '%s' failed",
                             path.c_str());
    return util::Status{};
}

} // namespace hdmr::traces
