#include "traces/csv.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace hdmr::traces
{

std::vector<std::string>
splitCsvLine(const CsvCursor &at, const std::string &text,
             std::size_t expected_fields)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = text.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(text.substr(start));
            break;
        }
        fields.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    if (fields.size() != expected_fields) {
        util::fatal("%s:%zu: expected %zu comma-separated fields, got "
                    "%zu (truncated or malformed record)",
                    at.file.c_str(), at.line, expected_fields,
                    fields.size());
    }
    return fields;
}

double
parseCsvDouble(const CsvCursor &at, const char *field,
               const std::string &text, double lo, double hi)
{
    if (text.empty())
        util::fatal("%s:%zu: field '%s': empty", at.file.c_str(),
                    at.line, field);
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
        util::fatal("%s:%zu: field '%s': '%s' is not a number",
                    at.file.c_str(), at.line, field, text.c_str());
    }
    if (!std::isfinite(value)) {
        util::fatal("%s:%zu: field '%s': '%s' is not finite",
                    at.file.c_str(), at.line, field, text.c_str());
    }
    if (value < lo || value > hi) {
        util::fatal("%s:%zu: field '%s': %g out of range [%g, %g]",
                    at.file.c_str(), at.line, field, value, lo, hi);
    }
    return value;
}

std::uint64_t
parseCsvUnsigned(const CsvCursor &at, const char *field,
                 const std::string &text, std::uint64_t lo,
                 std::uint64_t hi)
{
    if (text.empty())
        util::fatal("%s:%zu: field '%s': empty", at.file.c_str(),
                    at.line, field);
    // strtoull silently accepts a sign and wraps; reject anything that
    // is not a plain digit string up front.
    for (const char c : text) {
        if (c < '0' || c > '9') {
            util::fatal("%s:%zu: field '%s': '%s' is not an unsigned "
                        "integer",
                        at.file.c_str(), at.line, field, text.c_str());
        }
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || errno == ERANGE) {
        util::fatal("%s:%zu: field '%s': '%s' does not fit an unsigned "
                    "integer",
                    at.file.c_str(), at.line, field, text.c_str());
    }
    if (value < lo || value > hi) {
        util::fatal("%s:%zu: field '%s': %llu out of range [%llu, %llu]",
                    at.file.c_str(), at.line, field, value,
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi));
    }
    return value;
}

} // namespace hdmr::traces
