#include "traces/csv.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <istream>

namespace hdmr::traces
{

bool
readCsvLine(std::istream &in, CsvCursor *at, std::string *out,
            util::Status *status)
{
    *status = util::Status{};
    out->clear();
    if (!std::getline(in, *out))
        return false;
    ++at->line;
    if (out->size() > kMaxCsvLineBytes) {
        *status = util::resourceExhausted(
            "%s:%zu: line of %zu bytes exceeds the %zu-byte cap",
            at->file.c_str(), at->line, out->size(), kMaxCsvLineBytes);
        return false;
    }
    return true;
}

util::Status
splitCsvLine(const CsvCursor &at, const std::string &text,
             std::size_t expected_fields,
             std::vector<std::string> *fields)
{
    fields->clear();
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = text.find(',', start);
        if (comma == std::string::npos) {
            fields->push_back(text.substr(start));
            break;
        }
        if (fields->size() + 1 == expected_fields) {
            // Already have all but the last field and there is another
            // comma: over-long record; count the rest for the message.
            std::size_t got = fields->size() + 1;
            for (std::size_t i = comma; i < text.size(); ++i)
                got += text[i] == ',';
            return util::dataLoss(
                "%s:%zu: expected %zu comma-separated fields, got %zu "
                "(truncated or malformed record)",
                at.file.c_str(), at.line, expected_fields, got);
        }
        fields->push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    if (fields->size() != expected_fields) {
        return util::dataLoss(
            "%s:%zu: expected %zu comma-separated fields, got %zu "
            "(truncated or malformed record)",
            at.file.c_str(), at.line, expected_fields, fields->size());
    }
    return util::Status{};
}

util::Status
parseCsvDouble(const CsvCursor &at, const char *field,
               const std::string &text, double lo, double hi,
               double *value)
{
    *value = 0.0;
    if (text.empty())
        return util::dataLoss("%s:%zu: field '%s': empty",
                              at.file.c_str(), at.line, field);
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
        return util::dataLoss("%s:%zu: field '%s': '%s' is not a "
                              "number",
                              at.file.c_str(), at.line, field,
                              text.c_str());
    }
    if (!std::isfinite(parsed)) {
        return util::dataLoss("%s:%zu: field '%s': '%s' is not finite",
                              at.file.c_str(), at.line, field,
                              text.c_str());
    }
    if (parsed < lo || parsed > hi) {
        return util::outOfRange(
            "%s:%zu: field '%s': %g out of range [%g, %g]",
            at.file.c_str(), at.line, field, parsed, lo, hi);
    }
    *value = parsed;
    return util::Status{};
}

util::Status
parseCsvUnsigned(const CsvCursor &at, const char *field,
                 const std::string &text, std::uint64_t lo,
                 std::uint64_t hi, std::uint64_t *value)
{
    *value = 0;
    if (text.empty())
        return util::dataLoss("%s:%zu: field '%s': empty",
                              at.file.c_str(), at.line, field);
    // strtoull silently accepts a sign and wraps; reject anything that
    // is not a plain digit string up front.
    for (const char c : text) {
        if (c < '0' || c > '9') {
            return util::dataLoss(
                "%s:%zu: field '%s': '%s' is not an unsigned integer",
                at.file.c_str(), at.line, field, text.c_str());
        }
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size() || errno == ERANGE) {
        return util::dataLoss(
            "%s:%zu: field '%s': '%s' does not fit an unsigned integer",
            at.file.c_str(), at.line, field, text.c_str());
    }
    if (parsed < lo || parsed > hi) {
        return util::outOfRange(
            "%s:%zu: field '%s': %llu out of range [%llu, %llu]",
            at.file.c_str(), at.line, field, parsed,
            static_cast<unsigned long long>(lo),
            static_cast<unsigned long long>(hi));
    }
    *value = parsed;
    return util::Status{};
}

} // namespace hdmr::traces
