#include "traces/memory_usage.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "traces/csv.hh"
#include "util/logging.hh"

namespace hdmr::traces
{

double
JobUsageTrace::peakUtilization() const
{
    double peak = 0.0;
    for (const auto &node : utilization)
        for (double u : node)
            peak = std::max(peak, u);
    return peak;
}

MemoryUsageTraceGenerator::MemoryUsageTraceGenerator(UsageModel model,
                                                     std::uint64_t seed)
    : model_(model), rng_(seed)
{
    hdmr_assert(model_.under25Fraction <= model_.under50Fraction);
}

unsigned
MemoryUsageTraceGenerator::sampleUsageClass()
{
    const double draw = rng_.uniform();
    if (draw < model_.under25Fraction)
        return 0;
    if (draw < model_.under50Fraction)
        return 1;
    return 2;
}

JobUsageTrace
MemoryUsageTraceGenerator::generateJob(unsigned nodes)
{
    JobUsageTrace trace;
    trace.jobId = nextJobId_++;
    trace.nodes = nodes;

    // Draw the job's peak class, then a concrete peak within it; HPC
    // jobs sit at a fairly steady utilization (input decomposition is
    // fixed), so samples fluctuate mildly below the peak.
    const unsigned cls = sampleUsageClass();
    double peak;
    switch (cls) {
      case 0:
        peak = rng_.uniform(0.04, 0.249);
        break;
      case 1:
        peak = rng_.uniform(0.25, 0.499);
        break;
      default:
        peak = rng_.uniform(0.50, 0.97);
        break;
    }

    trace.utilization.resize(nodes);
    for (unsigned n = 0; n < nodes; ++n) {
        // Per-node level slightly below the job peak.
        const double node_level =
            peak * std::clamp(1.0 - std::abs(rng_.normal(
                                        0.0, model_.nodeImbalance)),
                              0.5, 1.0);
        auto &series = trace.utilization[n];
        series.reserve(model_.samplesPerJob);
        for (unsigned s = 0; s < model_.samplesPerJob; ++s) {
            // Ramp up in the first sample (allocation), then steady
            // with small fluctuations, never above the job peak.
            double u = node_level *
                       std::clamp(rng_.normal(0.95, 0.04), 0.6, 1.0);
            if (s == 0)
                u *= rng_.uniform(0.5, 1.0);
            series.push_back(std::clamp(u, 0.0, peak));
        }
    }
    // Ensure the intended peak actually occurs somewhere.
    trace.utilization[rng_.uniformInt(0, nodes - 1)]
                     [rng_.uniformInt(0, model_.samplesPerJob - 1)] =
        peak;
    return trace;
}

std::vector<JobUsageTrace>
MemoryUsageTraceGenerator::generate(std::size_t num_jobs)
{
    std::vector<JobUsageTrace> traces;
    traces.reserve(num_jobs);
    for (std::size_t i = 0; i < num_jobs; ++i) {
        // Node-count mix: mostly small jobs, a tail of large ones.
        const double draw = rng_.uniform();
        unsigned nodes;
        if (draw < 0.40) {
            nodes = 1;
        } else if (draw < 0.70) {
            nodes = static_cast<unsigned>(rng_.uniformInt(2, 8));
        } else if (draw < 0.92) {
            nodes = static_cast<unsigned>(rng_.uniformInt(9, 64));
        } else {
            nodes = static_cast<unsigned>(rng_.uniformInt(65, 512));
        }
        traces.push_back(generateJob(nodes));
    }
    return traces;
}

UsageAnalysis
analyzeUsage(const std::vector<JobUsageTrace> &traces)
{
    UsageAnalysis result;
    result.jobs = traces.size();
    if (traces.empty())
        return result;
    std::size_t under50 = 0, under25 = 0;
    for (const auto &trace : traces) {
        const double peak = trace.peakUtilization();
        under50 += peak < 0.50;
        under25 += peak < 0.25;
    }
    result.fractionUnder50 =
        static_cast<double>(under50) / static_cast<double>(traces.size());
    result.fractionUnder25 =
        static_cast<double>(under25) / static_cast<double>(traces.size());
    return result;
}

namespace
{

/** A finished job must be rectangular: equal samples on every node. */
util::Status
checkRectangular(const CsvCursor &at, const JobUsageTrace &job)
{
    if (job.utilization.empty() || job.utilization.front().empty()) {
        return util::dataLoss("%s:%zu: job %u has no samples",
                              at.file.c_str(), at.line, job.jobId);
    }
    const std::size_t samples = job.utilization.front().size();
    for (std::size_t n = 1; n < job.utilization.size(); ++n) {
        if (job.utilization[n].size() != samples) {
            return util::dataLoss(
                "%s:%zu: job %u is ragged: node %zu has %zu samples, "
                "node 0 has %zu (collector dropped data?)",
                at.file.c_str(), at.line, job.jobId, n,
                job.utilization[n].size(), samples);
        }
    }
    return util::Status{};
}

util::Status
loadUsageTraceCsvImpl(std::istream &in, const std::string &name,
                      std::vector<JobUsageTrace> *traces)
{
    traces->clear();
    JobUsageTrace current;
    bool open = false;

    CsvCursor at{name, 0};
    util::Status status;
    std::string line;
    std::vector<std::string> fields;
    while (readCsvLine(in, &at, &line, &status)) {
        if (line.empty() || line[0] == '#')
            continue;

        HDMR_RETURN_IF_ERROR(splitCsvLine(at, line, 4, &fields));
        std::uint64_t job_id = 0, node = 0, sample = 0;
        double utilization = 0.0;
        HDMR_RETURN_IF_ERROR(
            parseCsvUnsigned(at, "job_id", fields[0], 0, ~0u, &job_id));
        HDMR_RETURN_IF_ERROR(parseCsvUnsigned(at, "node", fields[1], 0,
                                              1'000'000, &node));
        HDMR_RETURN_IF_ERROR(parseCsvUnsigned(
            at, "sample", fields[2], 0, 1'000'000'000, &sample));
        HDMR_RETURN_IF_ERROR(parseCsvDouble(
            at, "utilization", fields[3], 0.0, 1.0, &utilization));

        if (!open || job_id != current.jobId) {
            if (open) {
                HDMR_RETURN_IF_ERROR(checkRectangular(at, current));
                traces->push_back(std::move(current));
            }
            current = JobUsageTrace{};
            current.jobId = static_cast<unsigned>(job_id);
            open = true;
        }

        // Indices must count up in order: node n opens only after
        // node n-1, sample s only as the next sample of its node.
        if (node == current.utilization.size()) {
            current.utilization.emplace_back();
        } else if (node != current.utilization.size() - 1) {
            return util::dataLoss(
                "%s:%zu: field 'node': %zu out of order (job %u is on "
                "node %zu)",
                name.c_str(), at.line,
                static_cast<std::size_t>(node), current.jobId,
                current.utilization.empty()
                    ? std::size_t{0}
                    : current.utilization.size() - 1);
        }
        std::vector<double> &series = current.utilization.back();
        if (sample != series.size()) {
            return util::dataLoss(
                "%s:%zu: field 'sample': %zu out of order (expected "
                "%zu)",
                name.c_str(), at.line,
                static_cast<std::size_t>(sample), series.size());
        }
        series.push_back(utilization);
        current.nodes = static_cast<unsigned>(current.utilization.size());
    }
    HDMR_RETURN_IF_ERROR(status);

    if (open) {
        HDMR_RETURN_IF_ERROR(checkRectangular(at, current));
        traces->push_back(std::move(current));
    }
    return util::Status{};
}

} // namespace

util::Status
loadUsageTraceCsv(std::istream &in, const std::string &name,
                  std::vector<JobUsageTrace> *traces)
{
    util::Status status = loadUsageTraceCsvImpl(in, name, traces);
    if (!status.ok())
        traces->clear();
    return status;
}

util::Status
loadUsageTraceCsv(const std::string &path,
                  std::vector<JobUsageTrace> *traces)
{
    std::ifstream in(path);
    if (!in) {
        traces->clear();
        return util::notFound("usage trace: cannot open '%s'",
                              path.c_str());
    }
    return loadUsageTraceCsv(in, path, traces);
}

std::vector<JobUsageTrace>
loadUsageTraceCsvOrDie(const std::string &path)
{
    std::vector<JobUsageTrace> traces;
    util::checkOk(loadUsageTraceCsv(path, &traces));
    return traces;
}

util::Status
writeUsageTraceCsv(const std::string &path,
                   const std::vector<JobUsageTrace> &traces)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return util::ioError("usage trace: cannot write '%s'",
                             path.c_str());
    out.precision(17); // round-trip exactly
    out << "# job_id,node,sample,utilization\n";
    for (const JobUsageTrace &job : traces) {
        for (std::size_t n = 0; n < job.utilization.size(); ++n) {
            for (std::size_t s = 0; s < job.utilization[n].size(); ++s) {
                out << job.jobId << ',' << n << ',' << s << ','
                    << job.utilization[n][s] << '\n';
            }
        }
    }
    if (!out)
        return util::ioError("usage trace: write to '%s' failed",
                             path.c_str());
    return util::Status{};
}

} // namespace hdmr::traces
