#include "traces/memory_usage.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace hdmr::traces
{

double
JobUsageTrace::peakUtilization() const
{
    double peak = 0.0;
    for (const auto &node : utilization)
        for (double u : node)
            peak = std::max(peak, u);
    return peak;
}

MemoryUsageTraceGenerator::MemoryUsageTraceGenerator(UsageModel model,
                                                     std::uint64_t seed)
    : model_(model), rng_(seed)
{
    hdmr_assert(model_.under25Fraction <= model_.under50Fraction);
}

unsigned
MemoryUsageTraceGenerator::sampleUsageClass()
{
    const double draw = rng_.uniform();
    if (draw < model_.under25Fraction)
        return 0;
    if (draw < model_.under50Fraction)
        return 1;
    return 2;
}

JobUsageTrace
MemoryUsageTraceGenerator::generateJob(unsigned nodes)
{
    JobUsageTrace trace;
    trace.jobId = nextJobId_++;
    trace.nodes = nodes;

    // Draw the job's peak class, then a concrete peak within it; HPC
    // jobs sit at a fairly steady utilization (input decomposition is
    // fixed), so samples fluctuate mildly below the peak.
    const unsigned cls = sampleUsageClass();
    double peak;
    switch (cls) {
      case 0:
        peak = rng_.uniform(0.04, 0.249);
        break;
      case 1:
        peak = rng_.uniform(0.25, 0.499);
        break;
      default:
        peak = rng_.uniform(0.50, 0.97);
        break;
    }

    trace.utilization.resize(nodes);
    for (unsigned n = 0; n < nodes; ++n) {
        // Per-node level slightly below the job peak.
        const double node_level =
            peak * std::clamp(1.0 - std::abs(rng_.normal(
                                        0.0, model_.nodeImbalance)),
                              0.5, 1.0);
        auto &series = trace.utilization[n];
        series.reserve(model_.samplesPerJob);
        for (unsigned s = 0; s < model_.samplesPerJob; ++s) {
            // Ramp up in the first sample (allocation), then steady
            // with small fluctuations, never above the job peak.
            double u = node_level *
                       std::clamp(rng_.normal(0.95, 0.04), 0.6, 1.0);
            if (s == 0)
                u *= rng_.uniform(0.5, 1.0);
            series.push_back(std::clamp(u, 0.0, peak));
        }
    }
    // Ensure the intended peak actually occurs somewhere.
    trace.utilization[rng_.uniformInt(0, nodes - 1)]
                     [rng_.uniformInt(0, model_.samplesPerJob - 1)] =
        peak;
    return trace;
}

std::vector<JobUsageTrace>
MemoryUsageTraceGenerator::generate(std::size_t num_jobs)
{
    std::vector<JobUsageTrace> traces;
    traces.reserve(num_jobs);
    for (std::size_t i = 0; i < num_jobs; ++i) {
        // Node-count mix: mostly small jobs, a tail of large ones.
        const double draw = rng_.uniform();
        unsigned nodes;
        if (draw < 0.40) {
            nodes = 1;
        } else if (draw < 0.70) {
            nodes = static_cast<unsigned>(rng_.uniformInt(2, 8));
        } else if (draw < 0.92) {
            nodes = static_cast<unsigned>(rng_.uniformInt(9, 64));
        } else {
            nodes = static_cast<unsigned>(rng_.uniformInt(65, 512));
        }
        traces.push_back(generateJob(nodes));
    }
    return traces;
}

UsageAnalysis
analyzeUsage(const std::vector<JobUsageTrace> &traces)
{
    UsageAnalysis result;
    result.jobs = traces.size();
    if (traces.empty())
        return result;
    std::size_t under50 = 0, under25 = 0;
    for (const auto &trace : traces) {
        const double peak = trace.peakUtilization();
        under50 += peak < 0.50;
        under25 += peak < 0.25;
    }
    result.fractionUnder50 =
        static_cast<double>(under50) / static_cast<double>(traces.size());
    result.fractionUnder25 =
        static_cast<double>(under25) / static_cast<double>(traces.size());
    return result;
}

} // namespace hdmr::traces
