/**
 * @file
 * Grizzly-style HPC job traces for the system-wide simulation
 * (Section IV-C): ~58K jobs over four months on a 1490-node machine
 * at ~78 % node utilization.
 */

#ifndef HDMR_TRACES_JOB_TRACE_HH
#define HDMR_TRACES_JOB_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "util/status.hh"

namespace hdmr::traces
{

/** One batch job. */
struct Job
{
    unsigned id = 0;
    double submitSeconds = 0.0;
    unsigned nodes = 1;
    double runtimeSeconds = 0.0;   ///< on a conventional system
    double walltimeSeconds = 0.0;  ///< user's (over-)estimate
    /** Peak memory class: 0 => <25 %, 1 => [25,50) %, 2 => >=50 %. */
    unsigned usageClass = 0;
};

/** Trace-generator tuning (defaults approximate Grizzly). */
struct JobTraceModel
{
    std::size_t numJobs = 58000;
    double spanSeconds = 4.0 * 30 * 24 * 3600.0; ///< four months
    unsigned systemNodes = 1490;
    double targetUtilization = 0.78;
    /** Fig. 1 memory-usage class weights. */
    double under25Fraction = 0.55;
    double under50Fraction = 0.80;

    /**
     * Reject degenerate models - zero nodes, zero/NaN span or
     * utilization, usage fractions outside [0, 1] or with
     * under25Fraction > under50Fraction - with kInvalidArgument
     * naming the offending field.  numJobs == 0 is allowed and yields
     * an empty trace.  GrizzlyTraceGenerator's constructor checkOk()s
     * this (a bad model is a caller bug, not runtime input).
     */
    util::Status validate() const;
};

/** Generates a deterministic, load-calibrated job trace. */
class GrizzlyTraceGenerator
{
  public:
    GrizzlyTraceGenerator(JobTraceModel model, std::uint64_t seed);

    /**
     * Generate the full trace, sorted by submit time, with total
     * node-seconds scaled to hit the target utilization.
     */
    std::vector<Job> generate();

    const JobTraceModel &model() const { return model_; }

  private:
    unsigned sampleNodes();
    double sampleRuntime();

    JobTraceModel model_;
    util::Rng rng_;
};

/** Total node-seconds of a trace. */
double traceNodeSeconds(const std::vector<Job> &jobs);

/**
 * Load a job trace from a stream of CSV records with columns
 *
 *     id,submit_s,nodes,runtime_s,walltime_s,usage_class
 *
 * ('#'-prefixed comment lines and blank lines are skipped; jobs are
 * returned sorted by submit time).  Any malformed record - truncated
 * line, non-numeric or non-finite field, zero nodes, negative times,
 * walltime below runtime, usage class above 2, a line past the
 * kMaxCsvLineBytes cap - is rejected with a Status naming the source
 * (`name`), line and field; *jobs is cleared, never half-filled.
 */
util::Status loadJobTraceCsv(std::istream &in, const std::string &name,
                             std::vector<Job> *jobs);

/** Stream loader over a file path (kNotFound when unreadable). */
util::Status loadJobTraceCsv(const std::string &path,
                             std::vector<Job> *jobs);

/** CLI convenience: load or die with the Status message (exit 1). */
std::vector<Job> loadJobTraceCsvOrDie(const std::string &path);

/** Write `jobs` in the loadJobTraceCsv() format. */
util::Status writeJobTraceCsv(const std::string &path,
                              const std::vector<Job> &jobs);

} // namespace hdmr::traces

#endif // HDMR_TRACES_JOB_TRACE_HH
