/**
 * @file
 * Synthetic LANL-style memory-usage traces (Fig. 1).
 *
 * The paper analyzes 3e9 memory measurements over 7e6 machine-hours
 * from LANL's Grizzly system and reports, per job, whether *every*
 * node the job occupies stays below 50 % (resp. 25 %) memory
 * utilization for the job's whole lifetime.  This generator produces
 * per-job, per-node, per-sample utilization series whose job-level
 * maxima reproduce those published fractions; the analyzer recovers
 * them the same way the paper does.
 */

#ifndef HDMR_TRACES_MEMORY_USAGE_HH
#define HDMR_TRACES_MEMORY_USAGE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "util/status.hh"

namespace hdmr::traces
{

/** One job's memory-usage record. */
struct JobUsageTrace
{
    unsigned jobId = 0;
    unsigned nodes = 0;
    /** utilization[n][s]: node n's utilization (0..1) at sample s. */
    std::vector<std::vector<double>> utilization;

    /** Highest utilization over every node and sample. */
    double peakUtilization() const;
};

/** Generator tuning (defaults match Fig. 1 within sampling noise). */
struct UsageModel
{
    /** Fraction of jobs whose peak stays below 25 %. */
    double under25Fraction = 0.55;
    /** Fraction of jobs whose peak stays below 50 % (incl. above). */
    double under50Fraction = 0.80;
    /** Samples per job (hourly measurements). */
    unsigned samplesPerJob = 24;
    /** Node-to-node spread of a job's utilization (relative). */
    double nodeImbalance = 0.10;
};

/** Generates job usage traces. */
class MemoryUsageTraceGenerator
{
  public:
    MemoryUsageTraceGenerator(UsageModel model, std::uint64_t seed);

    /** Generate one job with the given node count. */
    JobUsageTrace generateJob(unsigned nodes);

    /** Generate a fleet of jobs with plausible node counts. */
    std::vector<JobUsageTrace> generate(std::size_t num_jobs);

    /**
     * Draw just the peak-utilization class of a job: 0 for <25 %,
     * 1 for [25,50) %, 2 for >=50 % - the only property the
     * system-wide simulation needs.
     */
    unsigned sampleUsageClass();

    const UsageModel &model() const { return model_; }

  private:
    UsageModel model_;
    util::Rng rng_;
    unsigned nextJobId_ = 1;
};

/** Fig. 1 analysis result. */
struct UsageAnalysis
{
    std::size_t jobs = 0;
    double fractionUnder50 = 0.0;
    double fractionUnder25 = 0.0;
};

/** Analyze traces the way the paper does. */
UsageAnalysis analyzeUsage(const std::vector<JobUsageTrace> &traces);

/**
 * Load usage traces from a stream of per-sample CSV measurements:
 *
 *     job_id,node,sample,utilization
 *
 * ('#'-prefixed comments and blank lines are skipped).  Rows of one
 * job must be grouped; node and sample indices must count up from 0
 * in order, and every node of a job must record the same number of
 * samples (a ragged or shuffled trace means the collector dropped
 * data).  Utilization must be a finite value in [0, 1].  Violations
 * are rejected with a Status naming the source, line and field;
 * *traces is cleared, never half-filled.
 */
util::Status loadUsageTraceCsv(std::istream &in,
                               const std::string &name,
                               std::vector<JobUsageTrace> *traces);

/** Stream loader over a file path (kNotFound when unreadable). */
util::Status loadUsageTraceCsv(const std::string &path,
                               std::vector<JobUsageTrace> *traces);

/** CLI convenience: load or die with the Status message (exit 1). */
std::vector<JobUsageTrace>
loadUsageTraceCsvOrDie(const std::string &path);

/** Write traces in the loadUsageTraceCsv() format. */
util::Status writeUsageTraceCsv(const std::string &path,
                                const std::vector<JobUsageTrace> &traces);

} // namespace hdmr::traces

#endif // HDMR_TRACES_MEMORY_USAGE_HH
