/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Modelled after gem5's event queue: components own long-lived Event
 * objects and (re)schedule them, so steady-state simulation performs no
 * per-event allocation.  Time is integer picoseconds (util::Tick).
 *
 * Determinism: events scheduled for the same tick are processed in the
 * order they were scheduled (FIFO within a tick), so replays are
 * bit-identical.
 */

#ifndef HDMR_SIM_EVENT_QUEUE_HH
#define HDMR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "util/units.hh"

namespace hdmr::sim
{

using util::Tick;

class EventQueue;

/**
 * Base class for all schedulable events.  Derive and implement
 * process().  An Event may be scheduled on at most one queue at a time
 * and must outlive its scheduled occurrence (or be descheduled first).
 */
class Event
{
  public:
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when the event's time arrives. */
    virtual void process() = 0;

    /** Human-readable label for debugging. */
    virtual const char *description() const { return "generic event"; }

    bool scheduled() const { return scheduled_; }

    /** Time this event is scheduled for; valid only while scheduled(). */
    Tick when() const { return when_; }

  protected:
    Event() = default;

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t generation_ = 0; // bumped on deschedule/reschedule
    bool scheduled_ = false;
};

/** An Event that runs a std::function; handy for tests and glue code. */
class CallbackEvent : public Event
{
  public:
    CallbackEvent() = default;
    explicit CallbackEvent(std::function<void()> fn) : fn_(std::move(fn)) {}

    void setCallback(std::function<void()> fn) { fn_ = std::move(fn); }

    void process() override { fn_(); }
    const char *description() const override { return "callback event"; }

  private:
    std::function<void()> fn_;
};

/**
 * gem5-style member-function event: EventWrapper<Foo, &Foo::tick>
 * dispatches to obj->tick() with zero allocation.
 */
template <typename T, void (T::*F)()>
class EventWrapper : public Event
{
  public:
    explicit EventWrapper(T *obj) : obj_(obj) {}

    void process() override { (obj_->*F)(); }
    const char *description() const override { return "member event"; }

  private:
    T *obj_;
};

/**
 * The event queue: a binary min-heap on (when, sequence).  Stale heap
 * entries from deschedule()/reschedule() are skipped lazily using a
 * per-event generation counter.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule ev at absolute time `when` (>= curTick()). */
    void schedule(Event *ev, Tick when);

    /** Schedule ev `delta` ticks from now. */
    void scheduleIn(Event *ev, Tick delta) { schedule(ev, curTick_ + delta); }

    /** Remove ev from the queue; no-op already-unscheduled is an error. */
    void deschedule(Event *ev);

    /** Move an already- or not-yet-scheduled event to a new time. */
    void reschedule(Event *ev, Tick when);

    /** True when no live events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of live (scheduled) events. */
    std::size_t size() const { return liveEvents_; }

    /** Time of the next live event; queue must not be empty. */
    Tick nextTick();

    /** Process exactly one event; returns false if the queue is empty. */
    bool runOne();

    /** Run until the queue empties or simulated time exceeds `limit`. */
    void run(Tick limit = ~Tick(0));

    /** Total events processed since construction. */
    std::uint64_t numProcessed() const { return numProcessed_; }

  private:
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *event;

        bool
        operator>(const HeapEntry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    void pruneStale();

    std::vector<HeapEntry> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numProcessed_ = 0;
    std::size_t liveEvents_ = 0;
};

} // namespace hdmr::sim

#endif // HDMR_SIM_EVENT_QUEUE_HH
