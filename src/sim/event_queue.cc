#include "sim/event_queue.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::sim
{

Event::~Event()
{
    // Deleting a still-scheduled event would leave a dangling pointer in
    // the heap; catching it here turns a heisenbug into a clean panic.
    hdmr_assert(!scheduled_, "event destroyed while scheduled");
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    hdmr_assert(ev != nullptr);
    hdmr_assert(!ev->scheduled_, "event double-scheduled");
    hdmr_assert(when >= curTick_,
                "scheduling into the past (when=%llu cur=%llu)",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(curTick_));
    ev->when_ = when;
    ev->scheduled_ = true;
    heap_.push_back({when, nextSeq_++, ev->generation_, ev});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    ++liveEvents_;
}

void
EventQueue::deschedule(Event *ev)
{
    hdmr_assert(ev != nullptr && ev->scheduled_,
                "descheduling an unscheduled event");
    ev->scheduled_ = false;
    ++ev->generation_; // invalidates the heap entry lazily
    --liveEvents_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::pruneStale()
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.front();
        if (top.event->scheduled_ &&
            top.event->generation_ == top.generation) {
            return;
        }
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        heap_.pop_back();
    }
}

Tick
EventQueue::nextTick()
{
    pruneStale();
    hdmr_assert(!heap_.empty(), "nextTick() on an empty queue");
    return heap_.front().when;
}

bool
EventQueue::runOne()
{
    pruneStale();
    if (heap_.empty())
        return false;

    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    HeapEntry entry = heap_.back();
    heap_.pop_back();

    hdmr_assert(entry.when >= curTick_);
    curTick_ = entry.when;

    Event *ev = entry.event;
    ev->scheduled_ = false;
    ++ev->generation_;
    --liveEvents_;
    ++numProcessed_;
    ev->process();
    return true;
}

void
EventQueue::run(Tick limit)
{
    while (true) {
        pruneStale();
        if (heap_.empty() || heap_.front().when > limit)
            return;
        runOne();
    }
}

} // namespace hdmr::sim
