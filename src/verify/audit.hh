/**
 * @file
 * The end-to-end SDC containment audit.
 *
 * Drives billions of modeled unsafe-fast accesses against a sampled
 * module fleet: clean accesses are accounted analytically in bulk,
 * while every *erroneous* access (a Poisson draw against the
 * margin::ErrorRateModel hourly rate, plus any fault-campaign error
 * bursts) is pushed through the real Bamboo codec and classified by
 * the shadow-memory oracle.  Wide (8B+) errors go through the
 * importance sampler so the 2^-64 silent-escape tail is actually
 * observed, not just assumed.  Detected errors feed each module's
 * core::EpochGuard exactly like production traffic, so the audit also
 * measures how much detected-error pressure the fleet puts on the
 * guard's per-epoch budget.
 *
 * The audit is resumable: its complete mutable state (per-module
 * counters, guards and RNG streams, per-epoch counters, the campaign
 * cursor) round-trips through src/snapshot with a config fingerprint,
 * and a resumed audit finishes bit-identically to an uninterrupted one.
 */

#ifndef HDMR_VERIFY_AUDIT_HH
#define HDMR_VERIFY_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/epoch_guard.hh"
#include "ecc/bamboo.hh"
#include "fault/campaign.hh"
#include "margin/error_model.hh"
#include "margin/module.hh"
#include "telemetry/metrics.hh"
#include "verify/escape_sampler.hh"
#include "verify/sdc_oracle.hh"

namespace hdmr::verify
{

/** Campaign parameters for one audit run. */
struct SdcAuditConfig
{
    std::uint64_t seed = 0x5dc0417u;
    /** Fleet size (modules sampled from the population model). */
    unsigned modules = 4;
    /** Modeled operating hours per module. */
    unsigned hours = 24;
    /** Unsafe-fast accesses modeled per module-hour. */
    double accessesPerHour = margin::ErrorRateModel::kStressAccessesPerHour;
    /** Overshoot past each module's stable rate, in rate steps; this is
     *  what makes the fleet produce errors to classify. */
    unsigned overshootSteps = 2;
    /** Minimum proposal share of wide (8B+) draws among erroneous
     *  accesses (importance sampling of the dangerous tail; the
     *  natural share is used when it is already larger). */
    double wideOversample = 0.25;
    /** Mixture weight of the constructed null-space branch within wide
     *  draws (verify::EscapeSampler lambda). */
    double escapeLambda = 0.5;

    margin::ErrorModelParams errorModel;
    OracleConfig oracle;
    core::EpochGuardConfig epoch;
    /** Optional burst overlay; only kErrorBurst events are consumed
     *  (targets are folded onto modules by index). */
    fault::CampaignConfig bursts;
    /** Optional explicit event overlay (e.g. a DriftChaosCampaign's
     *  kErrorBurst view); only kErrorBurst events are consumed, folded
     *  onto modules exactly like the Poisson bursts.  The overlay is
     *  part of the config fingerprint, so snapshots taken under one
     *  drift realization refuse to resume under another. */
    std::vector<fault::FaultEvent> scheduleOverlay;

    /** Reject impossible campaigns with kInvalidArgument naming the
     *  field; SdcAudit's constructor checkOk()s it. */
    util::Status validate() const;
};

/** Aggregated results of a (possibly still running) audit. */
struct SdcAuditReport
{
    /** Fleet-wide counters (per-module counters merged). */
    OracleCounters total;
    /** Modeled module-hours completed so far. */
    double modeledHours = 0.0;
    /** Detected errors recorded into the epoch guards. */
    std::uint64_t detectedErrors = 0;
    /** Guard trips across the fleet. */
    std::uint64_t guardTrips = 0;
    /** Distinct epochs with at least one classified access. */
    unsigned epochsObserved = 0;

    /** Estimated nominal accesses represented by the audit. */
    double
    modeledAccesses() const
    {
        return total.weightTotal();
    }

    /**
     * Measured P(silent escape | wide error) - the audit's estimate of
     * the quantity BambooCodec::escapeProbability8BPlus() asserts.
     */
    double escapesPerWideError() const;

    /** Measured silent escapes per modeled access. */
    double measuredEscapeRate() const;

    /** MTT-SDC implied by the measured escape rate at this fleet's
     *  access volume, in years; +infinity when no escape weight. */
    double projectedMttSdcYears(double accesses_per_hour) const;

    /**
     * True when the measured per-wide-error escape probability lies
     * within a factor `tolerance` of `expected` (both directions).
     */
    bool escapeConsistentWith(double expected, double tolerance) const;
};

/** The resumable audit engine. */
class SdcAudit
{
  public:
    explicit SdcAudit(const SdcAuditConfig &config);

    /** Process one module-hour; false once the campaign is complete. */
    bool step();

    /** Run the remaining campaign to completion. */
    void run();

    bool done() const { return cursor_ >= totalSteps(); }

    /** Module-hours processed so far. */
    std::uint64_t stepsDone() const { return cursor_; }
    std::uint64_t
    totalSteps() const
    {
        return static_cast<std::uint64_t>(config_.modules) * config_.hours;
    }

    SdcAuditReport report() const;

    /**
     * Publish the audit's fleet-wide classification counts, sampler
     * tallies, and epoch-guard pressure as counters/gauges under
     * `prefix` (e.g. "verify").  Export-time enumeration, not a hot
     * path; values overwrite on repeated calls.
     */
    void publishTelemetry(telemetry::Registry &registry,
                          const std::string &prefix) const;

    const SdcAuditConfig &config() const { return config_; }
    const OracleCounters &moduleCounters(unsigned module) const;
    /** Per-epoch counters, indexed by epoch number. */
    const std::vector<OracleCounters> &epochCounters() const
    {
        return epochs_;
    }
    const core::EpochGuard &moduleGuard(unsigned module) const;

    // ---- snapshot/resume ----

    void saveState(snapshot::Serializer &out) const;
    /** False (with the deserializer failed) on any mismatch. */
    bool restoreState(snapshot::Deserializer &in);

    /** Write a resumable snapshot file (atomic .tmp + rename +
     *  directory fsync); kIoError on any write failure. */
    util::Status saveToFile(const std::string &path) const;
    /** Resume from a snapshot written by saveToFile; the audit must
     *  have been constructed with the same config.  kDataLoss on
     *  corruption, kFailedPrecondition on a config mismatch. */
    util::Status resumeFromFile(const std::string &path);

  private:
    struct ModuleState
    {
        OracleCounters counters;
        core::EpochGuard guard;
        util::Rng rng;

        ModuleState(const core::EpochGuardConfig &epoch, util::Rng stream)
            : guard(epoch), rng(stream)
        {
        }
    };

    void processModuleHour(unsigned module, std::uint64_t hour);
    OracleCounters &epochSlot(std::uint64_t epoch_index);
    std::uint64_t configFingerprint() const;

    SdcAuditConfig config_;
    ecc::BambooCodec codec_;
    margin::ErrorRateModel model_;
    ShadowMemoryOracle oracle_;
    EscapeSampler sampler_;
    std::vector<margin::MemoryModule> fleet_;
    std::vector<ModuleState> modules_;
    std::vector<OracleCounters> epochs_;
    /** burstErrors_[module][hour]: campaign burst errors to overlay. */
    std::vector<std::vector<double>> burstErrors_;
    /** Module-hours completed, time-major (hour outer, module inner). */
    std::uint64_t cursor_ = 0;
};

} // namespace hdmr::verify

#endif // HDMR_VERIFY_AUDIT_HH
