/**
 * @file
 * Importance sampling of the silent-escape tail of the Bamboo code.
 *
 * Detection-only decoding of the RS(80, 72) block code misses an error
 * if and only if the error vector is itself a nonzero codeword - which
 * a uniformly random 8B+ corruption is with probability ~2^-64.  A
 * naive Monte-Carlo audit would therefore never observe an escape; the
 * headline reliability claim would stay an untested formula.
 *
 * This sampler makes escapes observable without touching the decoder:
 * wide (>8 stored bytes) error draws come from a *mixture* proposal -
 * with probability `lambda` the error vector is drawn uniformly from
 * the code's null-space restricted to the chosen support (constructed
 * by solving an 8x8 GF(256) linear system against the real parity-check
 * columns), otherwise from the nominal uniform-nonzero-mask model.
 * Each draw carries the exact likelihood ratio
 *
 *     w(e) = p_nominal(e) / q_mixture(e)
 *
 * so the weighted escape indicator is an unbiased estimator of the
 * *nominal* escape probability: escapes now occur on roughly a lambda
 * fraction of wide draws, each contributing a weight of order 2^-64,
 * and the audit's measured rate can be checked against
 * BambooCodec::escapeProbability8BPlus() with real decoder traffic.
 */

#ifndef HDMR_VERIFY_ESCAPE_SAMPLER_HH
#define HDMR_VERIFY_ESCAPE_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "ecc/bamboo.hh"
#include "util/rng.hh"

namespace hdmr::verify
{

/** One sampled wide-error realization. */
struct WideErrorDraw
{
    /** Stored-byte indices (0..71: 64 data then 8 parity) touched. */
    std::vector<std::uint8_t> slots;
    /** Non-zero XOR mask per touched slot (zeros possible only for
     *  null-space draws whose solved symbols came out zero). */
    std::vector<std::uint8_t> masks;
    /** Likelihood ratio p_nominal / q_proposal for this draw. */
    double importanceWeight = 1.0;
    /** True when the null-space (escape-prone) branch produced it. */
    bool fromNullSpace = false;

    /** Apply the draw to a coded block. */
    void
    applyTo(ecc::CodedBlock &coded) const
    {
        for (std::size_t i = 0; i < slots.size(); ++i)
            ecc::BambooCodec::xorStoredByte(coded, slots[i], masks[i]);
    }

    /** True if at least one mask is non-zero (a real corruption). */
    bool nonZero() const;
};

/** Samples wide error vectors with importance weights. */
class EscapeSampler
{
  public:
    /**
     * @param codec  the codec under audit (provides the RS code)
     * @param lambda mixture weight of the null-space branch in [0, 1)
     */
    EscapeSampler(const ecc::BambooCodec &codec, double lambda);

    /**
     * Draw one wide error touching `width` distinct stored bytes
     * (width must be in (parity symbols, stored bytes]).
     */
    WideErrorDraw sample(unsigned width, util::Rng &rng);

    /**
     * Draw an error vector that is *guaranteed* to be a codeword
     * supported on `width` random stored bytes (up to solved symbols
     * coming out zero).  Used directly by tests that want to confirm
     * the detector really passes constructed escapes through.
     */
    WideErrorDraw sampleNullSpace(unsigned width, util::Rng &rng);

    double lambda() const { return lambda_; }

  private:
    /** Syndrome column of stored byte `slot` (8 GF(256) entries). */
    const std::vector<ecc::GfElem> &column(unsigned slot) const;

    /** Pick `width` distinct stored-byte slots. */
    std::vector<std::uint8_t> pickSupport(unsigned width,
                                          util::Rng &rng) const;

    /**
     * Fill `draw.masks` with a uniform null-space vector on
     * `draw.slots`: free symbols drawn uniformly over GF(256), the
     * last 8 solved from the parity-check system.  Returns false in
     * the (theoretically impossible for an MDS code) event the 8x8
     * system is singular.
     */
    bool solveNullSpace(WideErrorDraw &draw, util::Rng &rng) const;

    /** p_nominal(e)/q(e) for a full-support vector on `width` slots. */
    double weightFullSupport(unsigned width, bool in_null_space) const;

    const ecc::BambooCodec &codec_;
    double lambda_;
    /** columns_[slot][i]: syndrome i of the unit vector at `slot`. */
    std::vector<std::vector<ecc::GfElem>> columns_;
};

} // namespace hdmr::verify

#endif // HDMR_VERIFY_ESCAPE_SAMPLER_HH
