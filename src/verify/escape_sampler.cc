#include "verify/escape_sampler.hh"

#include <cmath>

#include "ecc/gf256.hh"
#include "util/logging.hh"

namespace hdmr::verify
{

using ecc::BambooCodec;
using ecc::Gf256;
using ecc::GfElem;

bool
WideErrorDraw::nonZero() const
{
    for (std::uint8_t mask : masks) {
        if (mask != 0)
            return true;
    }
    return false;
}

EscapeSampler::EscapeSampler(const ecc::BambooCodec &codec, double lambda)
    : codec_(codec), lambda_(lambda)
{
    hdmr_assert(lambda >= 0.0 && lambda < 1.0,
                "null-space mixture weight must be in [0, 1)");

    // Build the parity-check column of every stored byte by pushing a
    // unit vector through the code's own syndrome computation, so the
    // sampler can never drift out of sync with the decoder's
    // polynomial/indexing conventions.
    const ecc::ReedSolomon &rs = codec.code();
    columns_.resize(BambooCodec::kStoredBytes);
    std::vector<GfElem> unit(rs.codewordSymbols(), 0);
    for (unsigned slot = 0; slot < BambooCodec::kStoredBytes; ++slot) {
        const std::size_t cw_index =
            BambooCodec::storedToCodewordIndex(slot);
        unit[cw_index] = 1;
        columns_[slot] = rs.syndromes(unit);
        unit[cw_index] = 0;
    }
}

const std::vector<GfElem> &
EscapeSampler::column(unsigned slot) const
{
    return columns_[slot];
}

std::vector<std::uint8_t>
EscapeSampler::pickSupport(unsigned width, util::Rng &rng) const
{
    constexpr unsigned total = BambooCodec::kStoredBytes;
    hdmr_assert(width > BambooCodec::kParityBytes && width <= total,
                "escape sampling needs a wide (8B+) support");

    // Partial Fisher-Yates over the stored byte indices.
    std::uint8_t slots[total];
    for (unsigned i = 0; i < total; ++i)
        slots[i] = static_cast<std::uint8_t>(i);
    for (unsigned i = 0; i < width; ++i) {
        const auto j =
            static_cast<unsigned>(rng.uniformInt(i, total - 1));
        std::swap(slots[i], slots[j]);
    }
    return std::vector<std::uint8_t>(slots, slots + width);
}

bool
EscapeSampler::solveNullSpace(WideErrorDraw &draw, util::Rng &rng) const
{
    constexpr unsigned p = BambooCodec::kParityBytes;
    const unsigned width = static_cast<unsigned>(draw.slots.size());
    const unsigned free_count = width - p;

    draw.masks.assign(width, 0);

    // Free symbols: uniform over all of GF(256), zeros included - that
    // is exactly the uniform distribution over the null space restricted
    // to the support, which keeps the importance weight a closed form.
    GfElem rhs[p] = {};
    for (unsigned f = 0; f < free_count; ++f) {
        const auto value =
            static_cast<GfElem>(rng.uniformInt(0, 255));
        draw.masks[f] = value;
        if (value == 0)
            continue;
        const auto &col = column(draw.slots[f]);
        for (unsigned i = 0; i < p; ++i)
            rhs[i] = Gf256::add(rhs[i], Gf256::mul(value, col[i]));
    }

    // Solve sum_k x_k * col(solved_k) = rhs over GF(256): Gaussian
    // elimination on the 8x8 system formed by the last 8 support slots.
    // Any 8 parity-check columns of an MDS code are independent, so the
    // system is always uniquely solvable.
    GfElem a[p][p + 1];
    for (unsigned i = 0; i < p; ++i) {
        for (unsigned k = 0; k < p; ++k)
            a[i][k] = column(draw.slots[free_count + k])[i];
        a[i][p] = rhs[i];
    }
    for (unsigned col_i = 0; col_i < p; ++col_i) {
        unsigned pivot = col_i;
        while (pivot < p && a[pivot][col_i] == 0)
            ++pivot;
        if (pivot == p)
            return false; // singular: cannot happen for an MDS code
        if (pivot != col_i) {
            for (unsigned k = 0; k <= p; ++k)
                std::swap(a[col_i][k], a[pivot][k]);
        }
        const GfElem inv_pivot = Gf256::inv(a[col_i][col_i]);
        for (unsigned k = col_i; k <= p; ++k)
            a[col_i][k] = Gf256::mul(a[col_i][k], inv_pivot);
        for (unsigned r = 0; r < p; ++r) {
            if (r == col_i || a[r][col_i] == 0)
                continue;
            const GfElem factor = a[r][col_i];
            for (unsigned k = col_i; k <= p; ++k) {
                a[r][k] = Gf256::add(a[r][k],
                                     Gf256::mul(factor, a[col_i][k]));
            }
        }
    }
    for (unsigned k = 0; k < p; ++k)
        draw.masks[free_count + k] = a[k][p];
    return true;
}

double
EscapeSampler::weightFullSupport(unsigned width, bool in_null_space) const
{
    // p_nominal(e | support) = 255^-w for a full-support vector.
    // q(e | support) = lambda * 256^-(w-8) * [e in null space]
    //                + (1 - lambda) * 255^-w.
    const double p_nom = std::pow(255.0, -static_cast<double>(width));
    double q = (1.0 - lambda_) * p_nom;
    if (in_null_space) {
        q += lambda_ *
             std::pow(256.0,
                      -static_cast<double>(width -
                                           ecc::BambooCodec::kParityBytes));
    }
    return p_nom / q;
}

WideErrorDraw
EscapeSampler::sampleNullSpace(unsigned width, util::Rng &rng)
{
    WideErrorDraw draw;
    draw.slots = pickSupport(width, rng);
    draw.fromNullSpace = true;
    const bool solved = solveNullSpace(draw, rng);
    hdmr_assert(solved, "8x8 GF(256) parity-check system was singular");

    bool full_support = true;
    for (std::uint8_t mask : draw.masks)
        full_support &= mask != 0;
    // Vectors missing part of the chosen support have zero probability
    // under the nominal full-support model; they stay in the sample
    // (they still exercise the decoder) but carry no weight.
    draw.importanceWeight =
        full_support ? weightFullSupport(width, true) : 0.0;
    return draw;
}

WideErrorDraw
EscapeSampler::sample(unsigned width, util::Rng &rng)
{
    if (lambda_ > 0.0 && rng.bernoulli(lambda_))
        return sampleNullSpace(width, rng);

    WideErrorDraw draw;
    draw.slots = pickSupport(width, rng);
    draw.masks.resize(width);
    constexpr unsigned p = BambooCodec::kParityBytes;
    GfElem syndromes[p] = {};
    for (unsigned i = 0; i < width; ++i) {
        const auto mask =
            static_cast<GfElem>(rng.uniformInt(1, 255));
        draw.masks[i] = mask;
        const auto &col = column(draw.slots[i]);
        for (unsigned s = 0; s < p; ++s) {
            syndromes[s] =
                Gf256::add(syndromes[s], Gf256::mul(mask, col[s]));
        }
    }
    // A nominal draw that happens to be a codeword (probability 2^-64)
    // must still be weighted against the full mixture.
    bool in_null_space = true;
    for (unsigned s = 0; s < p; ++s)
        in_null_space &= syndromes[s] == 0;
    draw.fromNullSpace = in_null_space;
    draw.importanceWeight = weightFullSupport(width, in_null_space);
    return draw;
}

} // namespace hdmr::verify
