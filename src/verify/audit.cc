#include "verify/audit.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "margin/population.hh"
#include "snapshot/serializer.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace hdmr::verify
{

namespace
{

/** SplitMix64 finalizer, used to chain the config fingerprint. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
doubleBits(double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

constexpr util::Tick kTicksPerHour = 3600ull * util::kTicksPerSec;

} // namespace

util::Status
SdcAuditConfig::validate() const
{
    if (modules == 0)
        return util::invalidArgument(
            "sdc audit config: modules must be positive");
    if (hours == 0)
        return util::invalidArgument(
            "sdc audit config: hours must be positive");
    if (!std::isfinite(accessesPerHour) || accessesPerHour < 1.0)
        return util::invalidArgument(
            "sdc audit config: accessesPerHour %g must be finite and "
            ">= 1",
            accessesPerHour);
    if (overshootSteps > 16)
        return util::invalidArgument(
            "sdc audit config: overshootSteps %u is past any bootable "
            "rate",
            overshootSteps);
    if (!(wideOversample >= 0.0) || !(wideOversample < 1.0))
        return util::invalidArgument(
            "sdc audit config: wideOversample %g must be in [0, 1)",
            wideOversample);
    if (!(escapeLambda >= 0.0) || !(escapeLambda < 1.0))
        return util::invalidArgument(
            "sdc audit config: escapeLambda %g must be in [0, 1)",
            escapeLambda);
    if (epoch.epochLength == 0)
        return util::invalidArgument(
            "sdc audit config: epoch length must be positive");
    const double epochs =
        static_cast<double>(hours) *
        static_cast<double>(kTicksPerHour) /
        static_cast<double>(epoch.epochLength);
    if (epochs > 1.0e6)
        return util::invalidArgument(
            "sdc audit config: %g epochs over the horizon; shorten "
            "the run or lengthen the epoch",
            epochs);
    HDMR_RETURN_IF_ERROR(oracle.validate());
    HDMR_RETURN_IF_ERROR(bursts.validate());
    for (std::size_t i = 0; i < scheduleOverlay.size(); ++i) {
        const fault::FaultEvent &ev = scheduleOverlay[i];
        if (!std::isfinite(ev.atSeconds) || ev.atSeconds < 0.0)
            return util::invalidArgument(
                "sdc audit config: scheduleOverlay[%zu].atSeconds %g "
                "must be finite and >= 0",
                i, ev.atSeconds);
        if (!std::isfinite(ev.magnitude) || ev.magnitude < 0.0)
            return util::invalidArgument(
                "sdc audit config: scheduleOverlay[%zu].magnitude %g "
                "must be finite and >= 0",
                i, ev.magnitude);
    }
    return util::Status{};
}

double
SdcAuditReport::escapesPerWideError() const
{
    const auto escape = static_cast<unsigned>(AccessClass::kSilentEscape);
    if (total.wideWeight <= 0.0)
        return 0.0;
    // Miscorrection escapes come from the recovery decode, not from
    // the detection-only read the 2^-64 bound is about; take them out
    // of the numerator so the estimator targets the codec's quantity.
    const double detection_escapes = std::max(
        0.0, total.weighted[escape] - total.miscorrectionWeight);
    return detection_escapes / total.wideWeight;
}

double
SdcAuditReport::measuredEscapeRate() const
{
    const auto escape = static_cast<unsigned>(AccessClass::kSilentEscape);
    const double accesses = total.weightTotal();
    if (accesses <= 0.0)
        return 0.0;
    return total.weighted[escape] / accesses;
}

double
SdcAuditReport::projectedMttSdcYears(double accesses_per_hour) const
{
    const double rate = measuredEscapeRate() * accesses_per_hour;
    if (rate <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / (rate * 24.0 * 365.25);
}

bool
SdcAuditReport::escapeConsistentWith(double expected,
                                     double tolerance) const
{
    hdmr_assert(expected > 0.0 && tolerance >= 1.0);
    const double measured = escapesPerWideError();
    return measured >= expected / tolerance &&
           measured <= expected * tolerance;
}

SdcAudit::SdcAudit(const SdcAuditConfig &config)
    : config_(config),
      model_(config.errorModel),
      oracle_(codec_, config.oracle),
      sampler_(codec_, config.escapeLambda)
{
    util::checkOk(config_.validate());

    margin::ModulePopulation population(config_.seed);
    fleet_ = population.sampleFleet(margin::ModuleSpec{}, config_.modules);

    util::Rng master(mix64(config_.seed ^ 0x5dca0d17ULL));
    modules_.reserve(config_.modules);
    for (unsigned m = 0; m < config_.modules; ++m)
        modules_.emplace_back(config_.epoch, master.fork());

    // Expand the burst overlay up front: the schedule is a pure
    // function of the campaign config, so it carries no mutable state
    // into snapshots.
    burstErrors_.assign(config_.modules,
                        std::vector<double>(config_.hours, 0.0));
    auto fold_burst = [this](const fault::FaultEvent &ev) {
        if (ev.kind != fault::FaultKind::kErrorBurst)
            return;
        const unsigned module = ev.target % config_.modules;
        const auto hour =
            static_cast<std::uint64_t>(ev.atSeconds / 3600.0);
        if (hour < config_.hours)
            burstErrors_[module][hour] += ev.magnitude;
    };
    if (config_.bursts.enabled()) {
        fault::FaultCampaign campaign(config_.bursts);
        for (const fault::FaultEvent &ev :
             campaign.schedule(fault::FaultKind::kErrorBurst))
            fold_burst(ev);
    }
    for (const fault::FaultEvent &ev : config_.scheduleOverlay)
        fold_burst(ev);
}

const OracleCounters &
SdcAudit::moduleCounters(unsigned module) const
{
    hdmr_assert(module < modules_.size());
    return modules_[module].counters;
}

const core::EpochGuard &
SdcAudit::moduleGuard(unsigned module) const
{
    hdmr_assert(module < modules_.size());
    return modules_[module].guard;
}

OracleCounters &
SdcAudit::epochSlot(std::uint64_t epoch_index)
{
    if (epochs_.size() <= epoch_index)
        epochs_.resize(epoch_index + 1);
    return epochs_[epoch_index];
}

void
SdcAudit::processModuleHour(unsigned module_index, std::uint64_t hour)
{
    const margin::MemoryModule &module = fleet_[module_index];
    ModuleState &st = modules_[module_index];

    margin::OperatingPoint op;
    op.dataRateMts =
        model_.stableRateAt(module, op) +
        config_.overshootSteps * config_.errorModel.stepMts;

    const double error_probability =
        model_.errorProbabilityPerRead(module, op);
    const auto accesses =
        static_cast<std::uint64_t>(config_.accessesPerHour);

    std::uint64_t errors =
        st.rng.poisson(error_probability * config_.accessesPerHour);
    errors += static_cast<std::uint64_t>(
        std::llround(burstErrors_[module_index][hour]));
    errors = std::min(errors, accesses);

    // Clean accesses never reach the codec: under the per-read error
    // model they are exactly the non-erroneous draws, so they can be
    // accounted analytically in bulk.  This is what lets the audit
    // model billions of accesses while only decoding thousands.
    const util::Tick hour_start = hour * kTicksPerHour;
    st.counters.addBulkClean(accesses - errors);
    epochSlot(hour_start / config_.epoch.epochLength)
        .addBulkClean(accesses - errors);

    if (errors == 0)
        return;

    // Arrival ticks within the hour, sorted so the epoch guard sees a
    // monotonic clock.
    std::vector<util::Tick> ticks(errors);
    for (auto &tick : ticks)
        tick = hour_start + st.rng.uniformInt(0, kTicksPerHour - 1);
    std::sort(ticks.begin(), ticks.end());

    // Proposal over corruption shapes: the natural mix with the wide
    // tail boosted to at least `wideOversample`, undone per draw by a
    // likelihood ratio so weighted counts estimate the nominal campaign.
    const margin::ErrorPatternMix mix = model_.patternMix(module, op);
    const double wide_proposal =
        std::max(mix.wideBlock, config_.wideOversample);
    const double wide_weight = mix.wideBlock / wide_proposal;
    const double narrow_weight =
        (1.0 - mix.wideBlock) / (1.0 - wide_proposal);
    const double narrow_total =
        mix.singleBit + mix.singleByte + mix.multiByte;

    for (const util::Tick tick : ticks) {
        // A fresh 64-byte-aligned block address per access; the oracle
        // derives the ground-truth payload from it deterministically.
        const std::uint64_t address = st.rng.next() & ~0x3fULL;

        ShadowMemoryOracle::Outcome outcome;
        if (st.rng.bernoulli(wide_proposal)) {
            const auto width =
                static_cast<unsigned>(st.rng.uniformInt(9, 40));
            const WideErrorDraw draw = sampler_.sample(width, st.rng);
            outcome = oracle_.classifyWide(address, draw, wide_weight,
                                           st.counters, st.rng);
        } else {
            const double r = st.rng.uniform() * narrow_total;
            const ecc::ErrorPattern pattern =
                r < mix.singleBit ? ecc::ErrorPattern::kSingleBit
                : r < mix.singleBit + mix.singleByte
                    ? ecc::ErrorPattern::kSingleByte
                    : ecc::ErrorPattern::kMultiByte;
            outcome = oracle_.classifyPattern(
                address, pattern, narrow_weight, st.counters, st.rng);
        }

        epochSlot(tick / config_.epoch.epochLength)
            .count(outcome.cls, outcome.weight);

        // Only *detected* errors reach the guard - silent escapes are,
        // by definition, invisible to it.  That asymmetry is exactly
        // what the audit exists to measure.
        if (outcome.cls == AccessClass::kDetectedRecovered ||
            outcome.cls == AccessClass::kDetectedUe) {
            st.guard.recordError(tick);
        }
    }
}

bool
SdcAudit::step()
{
    if (done())
        return false;
    const auto module =
        static_cast<unsigned>(cursor_ % config_.modules);
    const std::uint64_t hour = cursor_ / config_.modules;
    processModuleHour(module, hour);
    ++cursor_;
    return !done();
}

void
SdcAudit::run()
{
    while (!done())
        step();
}

SdcAuditReport
SdcAudit::report() const
{
    SdcAuditReport report;
    for (const ModuleState &st : modules_) {
        report.total.merge(st.counters);
        report.detectedErrors += st.guard.totalErrors();
        report.guardTrips += st.guard.trips();
    }
    report.modeledHours = static_cast<double>(cursor_);
    for (const OracleCounters &epoch : epochs_) {
        if (epoch.rawTotal() > 0)
            ++report.epochsObserved;
    }
    return report;
}

void
SdcAudit::publishTelemetry(telemetry::Registry &registry,
                           const std::string &prefix) const
{
    const SdcAuditReport rep = report();
    for (unsigned cls = 0; cls < kAccessClassCount; ++cls) {
        registry
            .counter(prefix + ".class." +
                     accessClassName(static_cast<AccessClass>(cls)))
            .set(rep.total.raw[cls]);
    }
    registry.counter(prefix + ".unclassified")
        .set(rep.total.unclassified);
    registry.counter(prefix + ".wide_draws").set(rep.total.wideDraws);
    registry.counter(prefix + ".null_space_draws")
        .set(rep.total.nullSpaceDraws);
    registry.counter(prefix + ".retry_attempts")
        .set(rep.total.retryAttempts);
    registry.counter(prefix + ".retried_recoveries")
        .set(rep.total.retriedRecoveries);
    registry.counter(prefix + ".miscorrections")
        .set(rep.total.miscorrections);
    registry.counter(prefix + ".escapes.critical_page")
        .set(rep.total.escapesByPageClass[0]);
    registry.counter(prefix + ".escapes.tolerant_page")
        .set(rep.total.escapesByPageClass[1]);
    registry.counter(prefix + ".detected_errors")
        .set(rep.detectedErrors);
    registry.counter(prefix + ".guard_trips").set(rep.guardTrips);
    registry.gauge(prefix + ".modeled_hours").set(rep.modeledHours);
    registry.gauge(prefix + ".escapes_per_wide_error")
        .set(rep.escapesPerWideError());
}

std::uint64_t
SdcAudit::configFingerprint() const
{
    std::uint64_t fp = 0x53444341u; // "SDCA"
    const std::uint64_t fields[] = {
        config_.seed,
        config_.modules,
        config_.hours,
        doubleBits(config_.accessesPerHour),
        config_.overshootSteps,
        doubleBits(config_.wideOversample),
        doubleBits(config_.escapeLambda),
        doubleBits(config_.errorModel.baseErrorsPerHour),
        doubleBits(config_.errorModel.growthPerStep),
        doubleBits(config_.errorModel.uncorrectableFraction),
        config_.errorModel.stepMts,
        config_.oracle.payloadSeed,
        config_.oracle.retryAttempts,
        doubleBits(config_.oracle.originalErrorProbability),
        doubleBits(config_.oracle.tolerantPageFraction),
        config_.oracle.criticalitySeed,
        config_.epoch.epochLength,
        doubleBits(config_.epoch.mttSdcYears),
        doubleBits(config_.bursts.intensity),
        config_.bursts.seed,
        doubleBits(config_.bursts.burstsPerHour),
        doubleBits(config_.bursts.burstErrorsMean),
        doubleBits(config_.bursts.horizonSeconds),
        config_.bursts.targets,
    };
    for (std::uint64_t field : fields)
        fp = mix64(fp ^ field);
    fp = mix64(fp ^ config_.scheduleOverlay.size());
    for (const fault::FaultEvent &ev : config_.scheduleOverlay) {
        fp = mix64(fp ^ doubleBits(ev.atSeconds));
        fp = mix64(fp ^ static_cast<std::uint64_t>(ev.kind));
        fp = mix64(fp ^ ev.target);
        fp = mix64(fp ^ doubleBits(ev.magnitude));
        fp = mix64(fp ^ doubleBits(ev.durationSeconds));
    }
    return fp;
}

void
SdcAudit::saveState(snapshot::Serializer &out) const
{
    out.writeU64(configFingerprint());
    out.writeU64(cursor_);
    for (const ModuleState &st : modules_) {
        const util::RngState rng = st.rng.state();
        for (std::uint64_t word : rng.s)
            out.writeU64(word);
        out.writeBool(rng.hasSpareNormal);
        out.writeDouble(rng.spareNormal);
        st.counters.save(out);
        st.guard.saveState(out);
    }
    out.writeU32(static_cast<std::uint32_t>(epochs_.size()));
    for (const OracleCounters &epoch : epochs_)
        epoch.save(out);
}

bool
SdcAudit::restoreState(snapshot::Deserializer &in)
{
    const std::uint64_t fp = in.readU64();
    if (in.ok() && fp != configFingerprint()) {
        in.fail("sdc audit snapshot: config fingerprint mismatch "
                "(snapshot belongs to a different campaign)");
        return false;
    }
    const std::uint64_t cursor = in.readU64();
    if (in.ok() && cursor > totalSteps()) {
        in.fail("sdc audit snapshot: cursor past end of campaign");
        return false;
    }
    for (ModuleState &st : modules_) {
        util::RngState rng;
        for (std::uint64_t &word : rng.s)
            word = in.readU64();
        rng.hasSpareNormal = in.readBool();
        rng.spareNormal = in.readDouble();
        st.rng.setState(rng);
        st.counters = OracleCounters{};
        st.counters.restore(in);
        if (!st.guard.restoreState(in))
            return false;
    }
    const std::uint32_t epoch_count = in.readU32();
    if (in.ok() && epoch_count > 1'000'000u) {
        in.fail("sdc audit snapshot: implausible epoch count");
        return false;
    }
    epochs_.assign(epoch_count, OracleCounters{});
    for (OracleCounters &epoch : epochs_)
        epoch.restore(in);
    if (!in.ok())
        return false;
    cursor_ = cursor;
    return true;
}

util::Status
SdcAudit::saveToFile(const std::string &path) const
{
    snapshot::Serializer out;
    saveState(out);
    return snapshot::writeSnapshotFile(path, snapshot::kSdcAuditStateKind,
                                       out.data());
}

util::Status
SdcAudit::resumeFromFile(const std::string &path)
{
    std::vector<std::uint8_t> payload;
    HDMR_RETURN_IF_ERROR(snapshot::readSnapshotFile(
        path, snapshot::kSdcAuditStateKind, &payload));
    snapshot::Deserializer in(payload);
    if (!restoreState(in)) {
        if (!in.ok() &&
            in.error().find("fingerprint mismatch") != std::string::npos)
            return util::failedPrecondition("%s", in.error().c_str());
        return in.ok() ? util::dataLoss(
                             "sdc audit snapshot: state mismatch")
                       : in.status();
    }
    if (in.remaining() != 0)
        return util::dataLoss("sdc audit snapshot: trailing bytes");
    return util::Status{};
}

} // namespace hdmr::verify
