#include "verify/sdc_oracle.hh"

#include <cmath>

#include "snapshot/serializer.hh"
#include "util/logging.hh"
#include "workloads/criticality.hh"

namespace hdmr::verify
{

const char *
accessClassName(AccessClass cls)
{
    switch (cls) {
      case AccessClass::kClean:
        return "clean";
      case AccessClass::kDetectedRecovered:
        return "detected-recovered";
      case AccessClass::kDetectedUe:
        return "detected-ue";
      case AccessClass::kSilentEscape:
        return "silent-escape";
    }
    return "unclassified";
}

void
OracleCounters::count(AccessClass cls, double weight)
{
    const auto idx = static_cast<unsigned>(cls);
    hdmr_assert(idx < kAccessClassCount);
    raw[idx] += 1;
    weighted[idx] += weight;
}

void
OracleCounters::countEscapePageClass(bool tolerant_page, double weight)
{
    const unsigned idx = tolerant_page ? 1 : 0;
    escapesByPageClass[idx] += 1;
    escapeWeightByPageClass[idx] += weight;
}

void
OracleCounters::addBulkClean(std::uint64_t count)
{
    raw[static_cast<unsigned>(AccessClass::kClean)] += count;
    weighted[static_cast<unsigned>(AccessClass::kClean)] +=
        static_cast<double>(count);
}

void
OracleCounters::merge(const OracleCounters &other)
{
    for (unsigned i = 0; i < kAccessClassCount; ++i) {
        raw[i] += other.raw[i];
        weighted[i] += other.weighted[i];
    }
    unclassified += other.unclassified;
    wideDraws += other.wideDraws;
    nullSpaceDraws += other.nullSpaceDraws;
    wideWeight += other.wideWeight;
    retryAttempts += other.retryAttempts;
    retriedRecoveries += other.retriedRecoveries;
    miscorrections += other.miscorrections;
    miscorrectionWeight += other.miscorrectionWeight;
    for (unsigned i = 0; i < 2; ++i) {
        escapesByPageClass[i] += other.escapesByPageClass[i];
        escapeWeightByPageClass[i] += other.escapeWeightByPageClass[i];
    }
}

std::uint64_t
OracleCounters::rawTotal() const
{
    std::uint64_t total = 0;
    for (unsigned i = 0; i < kAccessClassCount; ++i)
        total += raw[i];
    return total;
}

double
OracleCounters::weightTotal() const
{
    double total = 0.0;
    for (unsigned i = 0; i < kAccessClassCount; ++i)
        total += weighted[i];
    return total;
}

void
OracleCounters::save(snapshot::Serializer &out) const
{
    for (unsigned i = 0; i < kAccessClassCount; ++i)
        out.writeU64(raw[i]);
    for (unsigned i = 0; i < kAccessClassCount; ++i)
        out.writeDouble(weighted[i]);
    out.writeU64(unclassified);
    out.writeU64(wideDraws);
    out.writeU64(nullSpaceDraws);
    out.writeDouble(wideWeight);
    out.writeU64(retryAttempts);
    out.writeU64(retriedRecoveries);
    out.writeU64(miscorrections);
    out.writeDouble(miscorrectionWeight);
    for (unsigned i = 0; i < 2; ++i)
        out.writeU64(escapesByPageClass[i]);
    for (unsigned i = 0; i < 2; ++i)
        out.writeDouble(escapeWeightByPageClass[i]);
}

void
OracleCounters::restore(snapshot::Deserializer &in)
{
    for (unsigned i = 0; i < kAccessClassCount; ++i)
        raw[i] = in.readU64();
    for (unsigned i = 0; i < kAccessClassCount; ++i)
        weighted[i] = in.readDouble();
    unclassified = in.readU64();
    wideDraws = in.readU64();
    nullSpaceDraws = in.readU64();
    wideWeight = in.readDouble();
    retryAttempts = in.readU64();
    retriedRecoveries = in.readU64();
    miscorrections = in.readU64();
    miscorrectionWeight = in.readDouble();
    for (unsigned i = 0; i < 2; ++i)
        escapesByPageClass[i] = in.readU64();
    for (unsigned i = 0; i < 2; ++i) {
        escapeWeightByPageClass[i] = in.readDouble();
        if (std::isnan(escapeWeightByPageClass[i]))
            in.fail("oracle counters: non-finite page-class escape "
                    "weight");
    }
    for (unsigned i = 0; i < kAccessClassCount; ++i) {
        if (std::isnan(weighted[i]))
            in.fail("oracle counters: non-finite weighted count");
    }
    if (std::isnan(miscorrectionWeight))
        in.fail("oracle counters: non-finite miscorrection weight");
}

util::Status
OracleConfig::validate() const
{
    if (retryAttempts > 64)
        return util::invalidArgument(
            "oracle config: retryAttempts %u is implausibly large",
            retryAttempts);
    if (!(originalErrorProbability >= 0.0) ||
        !(originalErrorProbability < 1.0)) {
        return util::invalidArgument(
            "oracle config: originalErrorProbability %f must be in "
            "[0, 1)",
            originalErrorProbability);
    }
    if (!(tolerantPageFraction >= 0.0) ||
        !(tolerantPageFraction <= 1.0)) {
        return util::invalidArgument(
            "oracle config: tolerantPageFraction %f must be in "
            "[0, 1]",
            tolerantPageFraction);
    }
    return util::Status{};
}

ShadowMemoryOracle::ShadowMemoryOracle(const ecc::BambooCodec &codec,
                                       const OracleConfig &config)
    : codec_(codec), config_(config)
{
    util::checkOk(config_.validate());
}

namespace
{

/** SplitMix64 finalizer: cheap, well-mixed 64 -> 64 hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

bool
ShadowMemoryOracle::pageTolerant(std::uint64_t address) const
{
    // Page-granular (4 KiB) criticality: the same deterministic draw
    // the placement layer uses, keyed by the page frame so all blocks
    // of a page share a class.
    return wl::pageIsTolerant(config_.criticalitySeed,
                              /*scope=*/0x5dc0ULL, address >> 12,
                              config_.tolerantPageFraction);
}

ecc::Block
ShadowMemoryOracle::payloadFor(std::uint64_t address) const
{
    // The shadow memory is a pure function of (seed, address): the
    // ground truth for any block is recomputable at any point of the
    // campaign, including after snapshot/resume, without storing it.
    ecc::Block block;
    for (std::size_t word = 0; word < block.size() / 8; ++word) {
        std::uint64_t bits =
            mix64(config_.payloadSeed ^ mix64(address + word));
        for (std::size_t b = 0; b < 8; ++b) {
            block[word * 8 + b] =
                static_cast<std::uint8_t>(bits >> (8 * b));
        }
    }
    return block;
}

bool
ShadowMemoryOracle::recoverOnce(std::uint64_t address,
                                const ecc::Block &truth,
                                bool &miscorrected, util::Rng &rng)
{
    // Model one rung of the ladder: re-read the original copy at spec
    // speed and run the full correcting decode.  At spec the original
    // is normally pristine; with probability originalErrorProbability
    // the re-read itself is hit.  Half those hits are transient
    // single-bit/byte upsets the correcting decode absorbs; the other
    // half are module-side bursts past the 4-symbol correction bound
    // (an intermittently weak rank), which is what forces the next
    // rung of the ladder.
    ecc::CodedBlock original = codec_.encode(truth, address);
    if (config_.originalErrorProbability > 0.0 &&
        rng.bernoulli(config_.originalErrorProbability)) {
        if (rng.bernoulli(0.5)) {
            const ecc::ErrorPattern pattern =
                rng.bernoulli(0.5) ? ecc::ErrorPattern::kSingleBit
                                   : ecc::ErrorPattern::kSingleByte;
            ecc::injectPattern(original, pattern, rng);
        } else {
            const auto burst =
                static_cast<unsigned>(rng.uniformInt(5, 8));
            ecc::corruptBytes(original, burst, rng);
        }
    }
    const ecc::BlockDecodeResult result =
        codec_.decodeCorrecting(original, address);
    if (!result.dataTrustworthy())
        return false;
    if (original.data != truth) {
        // The decoder claimed success but delivered the wrong block: a
        // miscorrection.  Only the oracle's ground truth can see this.
        miscorrected = true;
        return false;
    }
    return true;
}

ShadowMemoryOracle::Outcome
ShadowMemoryOracle::classify(std::uint64_t address,
                             ecc::CodedBlock corrupted, double weight,
                             OracleCounters &counters, util::Rng &rng)
{
    const ecc::Block truth = payloadFor(address);
    const ecc::CodedBlock reference = codec_.encode(truth, address);
    const bool differs = corrupted.data != reference.data ||
                         corrupted.parity != reference.parity;

    Outcome outcome;
    outcome.weight = weight;

    // Step 1: the unsafe-fast read path - detection-only decode.
    const ecc::BlockDecodeResult detect =
        codec_.decodeDetectOnly(corrupted, address);

    if (!detect.errorDetected()) {
        // Decoder saw zero syndromes.  Either nothing actually changed
        // (clean) or the error vector was a codeword (silent escape).
        outcome.cls =
            differs ? AccessClass::kSilentEscape : AccessClass::kClean;
        counters.count(outcome.cls, weight);
        if (outcome.cls == AccessClass::kSilentEscape)
            counters.countEscapePageClass(pageTolerant(address),
                                          weight);
        return outcome;
    }

    // Step 2: detected -> walk the recovery ladder.  Rung 0 is the
    // mandatory spec re-read; rungs 1..retryAttempts are the bounded
    // retries core::ModeController performs before escalating to UE.
    bool miscorrected = false;
    for (unsigned attempt = 0; attempt <= config_.retryAttempts;
         ++attempt) {
        if (attempt > 0) {
            ++counters.retryAttempts;
            outcome.attemptsUsed = attempt;
        }
        if (recoverOnce(address, truth, miscorrected, rng)) {
            outcome.cls = AccessClass::kDetectedRecovered;
            counters.count(outcome.cls, weight);
            if (attempt > 0)
                ++counters.retriedRecoveries;
            return outcome;
        }
        if (miscorrected) {
            // The stack would have handed wrong data to the node while
            // reporting a successful correction: an SDC despite
            // detection.  Weighted like any other escape.
            outcome.cls = AccessClass::kSilentEscape;
            counters.count(outcome.cls, weight);
            counters.countEscapePageClass(pageTolerant(address),
                                          weight);
            ++counters.miscorrections;
            counters.miscorrectionWeight += weight;
            return outcome;
        }
    }

    // Step 3: every rung failed - escalate to an uncorrectable error.
    outcome.cls = AccessClass::kDetectedUe;
    counters.count(outcome.cls, weight);
    return outcome;
}

ShadowMemoryOracle::Outcome
ShadowMemoryOracle::classifyPattern(std::uint64_t address,
                                    ecc::ErrorPattern pattern,
                                    double weight,
                                    OracleCounters &counters,
                                    util::Rng &rng)
{
    const ecc::Block truth = payloadFor(address);
    ecc::CodedBlock coded = codec_.encode(truth, address);
    ecc::injectPattern(coded, pattern, rng);
    if (pattern == ecc::ErrorPattern::kWideBlock)
        ++counters.wideDraws;
    return classify(address, coded, weight, counters, rng);
}

ShadowMemoryOracle::Outcome
ShadowMemoryOracle::classifyWide(std::uint64_t address,
                                 const WideErrorDraw &draw,
                                 double weight, OracleCounters &counters,
                                 util::Rng &rng)
{
    const ecc::Block truth = payloadFor(address);
    ecc::CodedBlock coded = codec_.encode(truth, address);
    draw.applyTo(coded);

    ++counters.wideDraws;
    if (draw.fromNullSpace)
        ++counters.nullSpaceDraws;
    const double total_weight = weight * draw.importanceWeight;
    counters.wideWeight += total_weight;
    return classify(address, coded, total_weight, counters, rng);
}

} // namespace hdmr::verify
