/**
 * @file
 * Shadow-memory SDC oracle: ground-truth classification of every
 * unsafe-fast read that the error model says went wrong.
 *
 * The production stack (dram::MemoryController -> core::ModeController)
 * models detection *statistically*: a read error is a Bernoulli draw and
 * the codec never sees real payloads.  That leaves the headline claim -
 * "silent escapes are bounded by 2^-64 per wide error, so MTT-SDC
 * exceeds 10^9 years" - resting on a constant nobody has measured.
 *
 * The oracle closes that loop.  For each modeled erroneous access it
 * carries a known payload end to end through the *real* codec:
 *
 *   1. encode the ground-truth block (derived deterministically from
 *      the access address, i.e. the "shadow memory") with ecc::Bamboo;
 *   2. inject the drawn error pattern with ecc::error_inject, or a
 *      sampled wide-error vector from verify::EscapeSampler;
 *   3. run the detection-only decode the unsafe-fast path uses;
 *   4. on detection, model the hardened recovery ladder (re-read the
 *      original at spec, bounded retries, UE escalation) against the
 *      shadow copy;
 *   5. compare whatever the stack would have delivered against the
 *      ground truth.
 *
 * Every access lands in exactly one class of the taxonomy below; an
 * access the logic cannot place is counted as `unclassified`, and the
 * audit treats any non-zero unclassified count as a failure.
 */

#ifndef HDMR_VERIFY_SDC_ORACLE_HH
#define HDMR_VERIFY_SDC_ORACLE_HH

#include <cstdint>

#include "ecc/bamboo.hh"
#include "ecc/error_inject.hh"
#include "util/status.hh"
#include "verify/escape_sampler.hh"

namespace hdmr::snapshot
{
class Serializer;
class Deserializer;
} // namespace hdmr::snapshot

namespace hdmr::verify
{

/** Exhaustive classification of one unsafe-fast access. */
enum class AccessClass : std::uint8_t
{
    /** No stored byte differed from ground truth. */
    kClean = 0,
    /** Error detected; the recovery ladder delivered correct data. */
    kDetectedRecovered = 1,
    /** Error detected; every ladder rung failed -> reported UE. */
    kDetectedUe = 2,
    /** Delivered data differed from ground truth with no detection
     *  (detection-only decode saw zero syndromes, or a recovery rung
     *  miscorrected) - a silent data corruption. */
    kSilentEscape = 3,
};

inline constexpr unsigned kAccessClassCount = 4;

/** Printable name of an access class. */
const char *accessClassName(AccessClass cls);

/**
 * Per-scope (module, epoch, or campaign-total) oracle counters.
 *
 * Raw counts answer "what did the sampled campaign do"; weighted counts
 * undo the importance sampling and estimate what a *nominal* campaign
 * of the same size would have seen (clean bulk accesses enter with
 * weight 1 each, so `weightTotal()` tracks the modeled access count).
 */
struct OracleCounters
{
    std::uint64_t raw[kAccessClassCount] = {};
    double weighted[kAccessClassCount] = {};
    /** Accesses the classifier could not place; must stay zero. */
    std::uint64_t unclassified = 0;
    /** Wide (8B+) error draws pushed through the sampler. */
    std::uint64_t wideDraws = 0;
    /** Wide draws taken from the constructed null-space branch. */
    std::uint64_t nullSpaceDraws = 0;
    /** Importance-weighted count of wide errors (nominal estimate). */
    double wideWeight = 0.0;
    /** Total ladder retry attempts across detected errors. */
    std::uint64_t retryAttempts = 0;
    /** Recoveries that needed at least one retry rung. */
    std::uint64_t retriedRecoveries = 0;
    /** Escapes caused by a *miscorrecting* recovery decode (subset of
     *  weighted[kSilentEscape]'s raw counterpart). */
    std::uint64_t miscorrections = 0;
    /** Weight those miscorrection escapes carried: subtracting it from
     *  weighted[kSilentEscape] isolates pure *detection* escapes (the
     *  quantity the 2^-64 codec bound is about). */
    double miscorrectionWeight = 0.0;
    /** Silent escapes split by the criticality of the struck page
     *  (index 0: critical, 1: tolerant).  Heterogeneous-reliability
     *  placement only leaves *tolerant* pages exposed to unsafe-fast
     *  errors, so an audit of it must show the critical bucket empty:
     *  a critical-page escape is corrupted state the application
     *  cannot absorb. */
    std::uint64_t escapesByPageClass[2] = {};
    double escapeWeightByPageClass[2] = {};

    void count(AccessClass cls, double weight);

    /** Record the page-class split of one silent escape. */
    void countEscapePageClass(bool tolerant_page, double weight);

    /** Fold `count` analytically-clean accesses in (weight 1 each). */
    void addBulkClean(std::uint64_t count);

    void merge(const OracleCounters &other);

    std::uint64_t rawTotal() const;
    /** Estimated nominal access count represented by this scope. */
    double weightTotal() const;

    void save(snapshot::Serializer &out) const;
    /** Restore from `in`; latches an error in `in` on corruption. */
    void restore(snapshot::Deserializer &in);
};

/** Tuning for the oracle's model of the recovery ladder. */
struct OracleConfig
{
    /** Seed mixed with the address to derive ground-truth payloads. */
    std::uint64_t payloadSeed = 0x0ddba11;
    /** Retry rungs after the first failed spec re-read (ladder depth
     *  beyond the mandatory first attempt). */
    unsigned retryAttempts = 2;
    /** Probability a spec re-read of the original is itself hit by a
     *  (correctable-or-worse) error pattern during recovery. */
    double originalErrorProbability = 0.0;
    /** Fraction of audited pages treated as error-tolerant for the
     *  per-page-class escape split; 0 (the default, matching the
     *  seed) classifies every page critical. */
    double tolerantPageFraction = 0.0;
    /** Seed of the deterministic page-class draw (align with
     *  wl::CriticalityConfig.seed in placement-aware campaigns). */
    std::uint64_t criticalitySeed = 0xc2171ca1u;

    /** kInvalidArgument naming the offending field; checkOk()d at
     *  ShadowMemoryOracle construction. */
    util::Status validate() const;
};

/** Classifies single accesses against ground truth. */
class ShadowMemoryOracle
{
  public:
    /** Outcome of classifying one access. */
    struct Outcome
    {
        AccessClass cls = AccessClass::kClean;
        /** Importance weight the access carries into the counters. */
        double weight = 1.0;
        /** Ladder retries consumed (0 when recovery's first rung or
         *  the detection path settled it). */
        unsigned attemptsUsed = 0;
    };

    ShadowMemoryOracle(const ecc::BambooCodec &codec,
                       const OracleConfig &config);

    /** Ground-truth block contents for `address` (the shadow memory). */
    ecc::Block payloadFor(std::uint64_t address) const;

    /**
     * Classify one erroneous access whose corruption is an
     * ecc::ErrorPattern instance, carrying `weight` from the pattern
     * proposal.  Records into `counters`.
     */
    Outcome classifyPattern(std::uint64_t address,
                            ecc::ErrorPattern pattern, double weight,
                            OracleCounters &counters, util::Rng &rng);

    /**
     * Classify one erroneous access carrying a sampled wide-error
     * draw; the draw's importance weight multiplies `weight`.
     */
    Outcome classifyWide(std::uint64_t address,
                         const WideErrorDraw &draw, double weight,
                         OracleCounters &counters, util::Rng &rng);

    const OracleConfig &config() const { return config_; }

    /** Deterministic page-class draw for an access address. */
    bool pageTolerant(std::uint64_t address) const;

  private:
    Outcome classify(std::uint64_t address, ecc::CodedBlock corrupted,
                     double weight, OracleCounters &counters,
                     util::Rng &rng);

    /** One recovery-ladder rung: spec re-read of the original. */
    bool recoverOnce(std::uint64_t address, const ecc::Block &truth,
                     bool &miscorrected, util::Rng &rng);

    const ecc::BambooCodec &codec_;
    OracleConfig config_;
};

} // namespace hdmr::verify

#endif // HDMR_VERIFY_SDC_ORACLE_HH
