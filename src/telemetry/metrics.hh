/**
 * @file
 * Hierarchical metrics registry: counters, gauges, and log2-bucketed
 * histograms with O(1) hot-path updates.
 *
 * Metric names are dot-separated paths ("dram.ch0.row_hits") so
 * per-channel / per-leg families stay enumerable and sortable for
 * export.  Components *bind* metrics once (Registry hands back a
 * stable pointer; std::map nodes never move) and bump them directly on
 * the hot path - an update is one add on a cached pointer, no lookup,
 * no lock, no allocation.  When telemetry is disabled the binding
 * pointers stay null and the HDMR_TM_* guard macros in telemetry.hh
 * reduce every update site to a single predictable branch.
 *
 * Registration is find-or-create: asking for the same name with the
 * same kind returns the same object (so per-channel wiring can share a
 * rollup counter), while re-using a name with a *different* kind is a
 * collision and fatal()s naming both kinds.
 *
 * Snapshot integration (src/snapshot): a registry serializes every
 * metric by (name, kind, values) and restores into a fresh or
 * already-bound registry, so metric state survives --resume-from
 * bit-identically; digest() folds the full state into one FNV-1a word
 * for the replay-divergence trail.
 */

#ifndef HDMR_TELEMETRY_METRICS_HH
#define HDMR_TELEMETRY_METRICS_HH

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <variant>

namespace hdmr::snapshot
{
class Serializer;
class Deserializer;
} // namespace hdmr::snapshot

namespace hdmr::telemetry
{

/** The three metric shapes the registry knows. */
enum class MetricKind : std::uint8_t
{
    kCounter = 0,
    kGauge = 1,
    kHistogram = 2,
};

/** Printable kind name ("counter" / "gauge" / "histogram"). */
const char *metricKindName(MetricKind kind);

/**
 * Map an arbitrary label onto one metric-name path component:
 * characters outside [A-Za-z0-9_-] (including '.') become '_', and an
 * empty label becomes "unnamed".  Lets bench labels like
 * "Exploit Freq+Lat Margins" key metric families safely.
 */
std::string sanitizeMetricComponent(const std::string &label);

/** Monotonic event count. */
class Counter
{
  public:
    void inc(std::uint64_t delta = 1) { value_ += delta; }
    std::uint64_t value() const { return value_; }

    /** Overwrite (snapshot restore); not for hot-path use. */
    void set(std::uint64_t value) { value_ = value; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-written level (queue depth, utilization, residency ticks). */
class Gauge
{
  public:
    void set(double value) { value_ = value; }
    void add(double delta) { value_ += delta; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Power-of-two-bucketed histogram over the full u64 range.
 *
 * Bucket 0 holds exactly the value 0; bucket b >= 1 holds
 * [2^(b-1), 2^b - 1], so bucket 64 ends at UINT64_MAX and recording is
 * a single std::bit_width (one instruction on any modern target).
 * `sum` accumulates the raw values modulo 2^64 - with tick-sized
 * samples that wraps only after ~10^6 years of simulated time, and the
 * export formats carry it verbatim either way.
 */
class Log2Histogram
{
  public:
    static constexpr unsigned kBuckets = 65;

    void
    record(std::uint64_t value)
    {
        ++counts_[bucketOf(value)];
        ++count_;
        sum_ += value;
    }

    /** Bucket index a value lands in (== std::bit_width). */
    static unsigned
    bucketOf(std::uint64_t value)
    {
        return static_cast<unsigned>(std::bit_width(value));
    }

    /** Smallest value of bucket b. */
    static std::uint64_t bucketLow(unsigned bucket);

    /** Largest value of bucket b (inclusive). */
    static std::uint64_t bucketHigh(unsigned bucket);

    std::uint64_t
    bucketCount(unsigned bucket) const
    {
        return counts_[bucket];
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }

    /** Mean of the recorded values; 0 when empty. */
    double mean() const;

    /**
     * Upper bound of the bucket holding the q-quantile (q clamped to
     * [0, 1]); 0 when empty.  Log2 buckets make this an upper
     * estimate that can overshoot the true quantile by at most 2x -
     * the right resolution for "is p99 bounded?" serving dashboards
     * (p50 = valueAtQuantile(0.5), p99 = valueAtQuantile(0.99)).
     */
    std::uint64_t valueAtQuantile(double q) const;

    /**
     * Fold `other` into this histogram bin-for-bin (no re-binning:
     * both sides share the fixed log2 bucket layout, so the merged
     * counts, totals, and therefore quantile estimates are exactly
     * what one histogram fed both streams would hold).  Lets
     * per-region monitor histories aggregate into a per-node view.
     */
    void merge(const Log2Histogram &other);

    /** Overwrite one bucket (snapshot restore). */
    void setBucketCount(unsigned bucket, std::uint64_t value);
    /** Overwrite the totals (snapshot restore). */
    void setTotals(std::uint64_t count, std::uint64_t sum);

  private:
    std::array<std::uint64_t, kBuckets> counts_ = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

/** One registered metric (name lives in the registry map key). */
using Metric = std::variant<Counter, Gauge, Log2Histogram>;

/** The hierarchical registry. */
class Registry
{
  public:
    /**
     * Find-or-create.  fatal()s when `name` is malformed (empty, too
     * long, characters outside [A-Za-z0-9_.-], or a leading/trailing
     * dot) or already registered with a different kind.  The returned
     * reference stays valid for the registry's lifetime.
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Log2Histogram &histogram(const std::string &name);

    /** Lookup without creation; nullptr when absent. */
    const Metric *find(const std::string &name) const;

    std::size_t size() const { return metrics_.size(); }
    bool empty() const { return metrics_.empty(); }

    /** Name-sorted iteration (std::map order) for the export sinks. */
    const std::map<std::string, Metric> &metrics() const
    {
        return metrics_;
    }

    /** True when `name` is a well-formed metric name. */
    static bool validName(const std::string &name);

    // ---- Snapshot/resume surface (src/snapshot). ----

    /** Serialize every metric as (name, kind, values). */
    void save(snapshot::Serializer &out) const;

    /**
     * Restore a saved image: each saved metric is created (or matched
     * by name) and overwritten with the saved values.  Fails the
     * deserializer and returns false on corrupt images, malformed
     * names, kind mismatches against already-registered metrics, or
     * inconsistent histogram totals; the registry may be partially
     * updated on failure (callers treat a failed restore as fatal).
     */
    bool restore(snapshot::Deserializer &in);

    /** FNV-1a digest over the complete metric state, name-sorted. */
    std::uint64_t digest() const;

  private:
    template <typename T>
    T &getOrCreate(const std::string &name, MetricKind kind);

    std::map<std::string, Metric> metrics_;
};

} // namespace hdmr::telemetry

#endif // HDMR_TELEMETRY_METRICS_HH
