#include "telemetry/sinks.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "telemetry/trace.hh"
#include "traces/csv.hh"
#include "util/logging.hh"

namespace hdmr::telemetry
{

namespace
{

/** Shortest round-trippable decimal for a gauge value. */
std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

bool
atomicWrite(const std::string &path, const std::string &body,
            std::string *error)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "cannot open '" + tmp + "' for writing";
        return false;
    }
    const bool write_ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    const bool close_ok = std::fclose(f) == 0;
    if (!write_ok || !close_ok) {
        if (error != nullptr)
            *error = "write to '" + tmp + "' failed";
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error != nullptr)
            *error = "rename '" + tmp + "' -> '" + path + "' failed";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

void
appendRow(std::string &body, const std::string &name, const char *kind,
          const std::string &field, const std::string &value)
{
    body += name;
    body += ',';
    body += kind;
    body += ',';
    body += field;
    body += ',';
    body += value;
    body += '\n';
}

} // namespace

bool
writeMetricsCsv(const Registry &registry, const std::string &path,
                std::string *error)
{
    std::string body = "# hdmr metrics v1\nname,kind,field,value\n";
    for (const auto &[name, metric] : registry.metrics()) {
        if (const Counter *c = std::get_if<Counter>(&metric)) {
            appendRow(body, name, "counter", "value",
                      std::to_string(c->value()));
        } else if (const Gauge *g = std::get_if<Gauge>(&metric)) {
            appendRow(body, name, "gauge", "value",
                      formatDouble(g->value()));
        } else {
            const auto &h = std::get<Log2Histogram>(metric);
            appendRow(body, name, "histogram", "count",
                      std::to_string(h.count()));
            appendRow(body, name, "histogram", "sum",
                      std::to_string(h.sum()));
            for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b) {
                if (h.bucketCount(b) == 0)
                    continue;
                appendRow(body, name, "histogram",
                          "bucket" + std::to_string(b),
                          std::to_string(h.bucketCount(b)));
            }
        }
    }
    return atomicWrite(path, body, error);
}

util::Status
loadMetricsCsv(Registry &registry, const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        return util::notFound("cannot open '%s'", path.c_str());

    traces::CsvCursor at{path, 0};
    std::string line;
    bool header_seen = false;
    // Histograms arrive as (count, sum, bucket*) rows; totals are
    // applied once the count and sum rows have both been seen, and the
    // bucket rows must reconcile by end of file.
    struct HistogramAccumulator
    {
        Log2Histogram *histogram = nullptr;
        std::uint64_t bucketTotal = 0;
        std::uint64_t declaredCount = 0;
        bool haveCount = false;
        bool haveSum = false;
    };
    std::map<std::string, HistogramAccumulator> accumulators;

    util::Status read_status;
    while (traces::readCsvLine(in, &at, &line, &read_status)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line.front() == '#')
            continue;
        if (!header_seen) {
            if (line != "name,kind,field,value")
                return util::dataLoss(
                    "%s:%zu: not a metrics CSV (bad header '%s')",
                    at.file.c_str(), at.line, line.c_str());
            header_seen = true;
            continue;
        }

        std::vector<std::string> fields;
        HDMR_RETURN_IF_ERROR(
            traces::splitCsvLine(at, line, 4, &fields));
        const std::string &name = fields[0];
        const std::string &kind = fields[1];
        const std::string &field = fields[2];
        const std::string &value = fields[3];
        if (!Registry::validName(name))
            return util::dataLoss(
                "%s:%zu: field 'name': malformed metric name '%s'",
                at.file.c_str(), at.line, name.c_str());

        if (kind == "counter" && field == "value") {
            std::uint64_t count = 0;
            HDMR_RETURN_IF_ERROR(traces::parseCsvUnsigned(
                at, "value", value, 0, UINT64_MAX, &count));
            registry.counter(name).set(count);
        } else if (kind == "gauge" && field == "value") {
            double gauge_value = 0.0;
            HDMR_RETURN_IF_ERROR(traces::parseCsvDouble(
                at, "value", value, -1.0e300, 1.0e300,
                &gauge_value));
            registry.gauge(name).set(gauge_value);
        } else if (kind == "histogram") {
            HistogramAccumulator &acc = accumulators[name];
            if (acc.histogram == nullptr) {
                acc.histogram = &registry.histogram(name);
                for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b)
                    acc.histogram->setBucketCount(b, 0);
                acc.histogram->setTotals(0, 0);
            }
            if (field == "count") {
                HDMR_RETURN_IF_ERROR(traces::parseCsvUnsigned(
                    at, "count", value, 0, UINT64_MAX,
                    &acc.declaredCount));
                acc.haveCount = true;
            } else if (field == "sum") {
                std::uint64_t sum = 0;
                HDMR_RETURN_IF_ERROR(traces::parseCsvUnsigned(
                    at, "sum", value, 0, UINT64_MAX, &sum));
                acc.histogram->setTotals(acc.histogram->count(), sum);
                acc.haveSum = true;
            } else if (field.rfind("bucket", 0) == 0) {
                std::uint64_t bucket = 0;
                HDMR_RETURN_IF_ERROR(traces::parseCsvUnsigned(
                    at, "field", field.substr(6), 0,
                    Log2Histogram::kBuckets - 1, &bucket));
                std::uint64_t bucket_count = 0;
                HDMR_RETURN_IF_ERROR(traces::parseCsvUnsigned(
                    at, "value", value, 1, UINT64_MAX,
                    &bucket_count));
                acc.histogram->setBucketCount(
                    static_cast<unsigned>(bucket), bucket_count);
                acc.bucketTotal += bucket_count;
            } else {
                return util::dataLoss(
                    "%s:%zu: field 'field': unknown histogram field "
                    "'%s'",
                    at.file.c_str(), at.line, field.c_str());
            }
            if (acc.haveCount)
                acc.histogram->setTotals(acc.declaredCount,
                                         acc.histogram->sum());
        } else {
            return util::dataLoss(
                "%s:%zu: field 'kind': unknown metric row '%s,%s'",
                at.file.c_str(), at.line, kind.c_str(),
                field.c_str());
        }
    }
    HDMR_RETURN_IF_ERROR(read_status);

    if (!header_seen)
        return util::dataLoss("%s: not a metrics CSV (missing header)",
                              at.file.c_str());
    for (const auto &[name, acc] : accumulators) {
        if (!acc.haveCount || !acc.haveSum ||
            acc.bucketTotal != acc.declaredCount) {
            return util::dataLoss(
                "%s: histogram '%s' is incomplete or its bucket "
                "counts disagree with its total",
                at.file.c_str(), name.c_str());
        }
    }
    return util::Status{};
}

bool
writeMetricsJson(const Registry &registry, const std::string &path,
                 std::string *error)
{
    std::string body = "{\"schema\":\"hdmr-metrics-v1\",\"metrics\":[";
    bool first = true;
    char buf[96];
    for (const auto &[name, metric] : registry.metrics()) {
        if (!first)
            body += ',';
        first = false;
        body += "\n{\"name\":\"" + jsonEscape(name) + "\",";
        if (const Counter *c = std::get_if<Counter>(&metric)) {
            std::snprintf(buf, sizeof(buf),
                          "\"kind\":\"counter\",\"value\":%" PRIu64 "}",
                          c->value());
            body += buf;
        } else if (const Gauge *g = std::get_if<Gauge>(&metric)) {
            std::snprintf(buf, sizeof(buf),
                          "\"kind\":\"gauge\",\"value\":%.17g}",
                          g->value());
            body += buf;
        } else {
            const auto &h = std::get<Log2Histogram>(metric);
            std::snprintf(buf, sizeof(buf),
                          "\"kind\":\"histogram\",\"count\":%" PRIu64
                          ",\"sum\":%" PRIu64 ",\"buckets\":{",
                          h.count(), h.sum());
            body += buf;
            bool first_bucket = true;
            for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b) {
                if (h.bucketCount(b) == 0)
                    continue;
                std::snprintf(buf, sizeof(buf), "%s\"%u\":%" PRIu64,
                              first_bucket ? "" : ",", b,
                              h.bucketCount(b));
                first_bucket = false;
                body += buf;
            }
            body += "}}";
        }
    }
    body += "\n]}\n";
    return atomicWrite(path, body, error);
}

} // namespace hdmr::telemetry
