/**
 * @file
 * Umbrella header plus the hot-path guard macros.
 *
 * Instrumented layers hold raw pointers to registry-owned metrics,
 * null by default.  With telemetry disabled nothing is ever bound, so
 * every update site costs exactly one well-predicted null check - the
 * discipline behind the "<2% when disabled" overhead budget in
 * DESIGN.md section 12.  Use the macros (not bare pointer derefs) at
 * update sites so the disabled path stays uniform and greppable.
 */

#ifndef HDMR_TELEMETRY_TELEMETRY_HH
#define HDMR_TELEMETRY_TELEMETRY_HH

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

/** Bump a bound Counter* by 1; no-op when unbound. */
#define HDMR_TM_INC(metric)                                             \
    do {                                                                \
        if (metric)                                                     \
            (metric)->inc();                                            \
    } while (0)

/** Bump a bound Counter* by `delta`; no-op when unbound. */
#define HDMR_TM_ADD(metric, delta)                                      \
    do {                                                                \
        if (metric)                                                     \
            (metric)->inc(delta);                                       \
    } while (0)

/** Set a bound Gauge*; no-op when unbound. */
#define HDMR_TM_SET(metric, value)                                      \
    do {                                                                \
        if (metric)                                                     \
            (metric)->set(value);                                       \
    } while (0)

/** Add to a bound Gauge*; no-op when unbound. */
#define HDMR_TM_GAUGE_ADD(metric, delta)                                \
    do {                                                                \
        if (metric)                                                     \
            (metric)->add(delta);                                       \
    } while (0)

/** Record into a bound Log2Histogram*; no-op when unbound. */
#define HDMR_TM_RECORD(metric, value)                                   \
    do {                                                                \
        if (metric)                                                     \
            (metric)->record(value);                                    \
    } while (0)

#endif // HDMR_TELEMETRY_TELEMETRY_HH
