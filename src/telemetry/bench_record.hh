/**
 * @file
 * Perf-trajectory benchmark records: one small JSON file per bench run
 * (`BENCH_<name>.json`) capturing how expensive the run was on this
 * machine - wall seconds, simulated events per wall second, peak RSS,
 * the git SHA built from, and the worker-thread count - so perf
 * regressions across PRs show up as a trajectory instead of anecdotes.
 *
 * The schema is checked into `schemas/bench_record.schema.json` and CI
 * validates every emitted record against it.
 */

#ifndef HDMR_TELEMETRY_BENCH_RECORD_HH
#define HDMR_TELEMETRY_BENCH_RECORD_HH

#include <cstdint>
#include <string>

namespace hdmr::telemetry
{

/** Everything a BENCH_<name>.json record carries. */
struct BenchRecord
{
    /** Bench name; becomes the BENCH_<name>.json file name. */
    std::string bench;
    /** Commit the binary was built from ("unknown" outside a repo). */
    std::string gitSha = "unknown";
    double wallSeconds = 0.0;
    /** Simulated seconds covered by the run (0 for non-DES benches). */
    double simSeconds = 0.0;
    /** Discrete events processed (0 for non-DES benches). */
    std::uint64_t simEvents = 0;
    std::uint64_t peakRssBytes = 0;
    unsigned threads = 1;

    double
    simEventsPerWallSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(simEvents) / wallSeconds
                   : 0.0;
    }
};

/**
 * HEAD commit SHA, resolved by walking `.git` upward from the current
 * directory and reading HEAD / refs / packed-refs directly (no
 * subprocess).  "unknown" when no repository is found.
 */
std::string currentGitSha();

/** Peak resident set size of this process, bytes (getrusage). */
std::uint64_t currentPeakRssBytes();

/** Wall-clock stopwatch started at construction. */
class WallTimer
{
  public:
    WallTimer();
    double seconds() const;

  private:
    std::uint64_t startNs_;
};

/**
 * Write `dir`/BENCH_<bench>.json (creating `dir`, atomic tmp+rename).
 * Returns false and sets *error on failure; *path_out (optional)
 * receives the final path on success.
 */
bool writeBenchRecord(const std::string &dir, const BenchRecord &record,
                      std::string *error,
                      std::string *path_out = nullptr);

} // namespace hdmr::telemetry

#endif // HDMR_TELEMETRY_BENCH_RECORD_HH
