#include "telemetry/bench_record.hh"

#include <sys/resource.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "telemetry/trace.hh"
#include "util/logging.hh"

namespace hdmr::telemetry
{

namespace
{

bool
isHex40(const std::string &text)
{
    if (text.size() != 40)
        return false;
    for (const char c : text) {
        const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!ok)
            return false;
    }
    return true;
}

std::string
readTrimmedLine(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::string line;
    if (!in.is_open() || !std::getline(in, line))
        return std::string();
    while (!line.empty() &&
           (line.back() == '\n' || line.back() == '\r' ||
            line.back() == ' '))
        line.pop_back();
    return line;
}

/** Resolve a "refs/heads/..." name inside `git_dir` to a SHA. */
std::string
resolveRef(const std::filesystem::path &git_dir, const std::string &ref)
{
    std::error_code ec;
    const std::filesystem::path loose = git_dir / ref;
    if (std::filesystem::exists(loose, ec)) {
        const std::string sha = readTrimmedLine(loose);
        if (isHex40(sha))
            return sha;
    }
    std::ifstream packed(git_dir / "packed-refs");
    std::string line;
    while (std::getline(packed, line)) {
        // "<sha> <refname>" records; '#' lines are peel annotations.
        if (line.size() > 41 && line[40] == ' ' &&
            line.compare(41, std::string::npos, ref) == 0) {
            const std::string sha = line.substr(0, 40);
            if (isHex40(sha))
                return sha;
        }
    }
    return std::string();
}

} // namespace

std::string
currentGitSha()
{
    std::error_code ec;
    std::filesystem::path dir = std::filesystem::current_path(ec);
    if (ec)
        return "unknown";
    for (int depth = 0; depth < 16; ++depth) {
        const std::filesystem::path git_dir = dir / ".git";
        if (std::filesystem::is_directory(git_dir, ec)) {
            const std::string head = readTrimmedLine(git_dir / "HEAD");
            if (isHex40(head))
                return head; // detached HEAD
            if (head.rfind("ref: ", 0) == 0) {
                const std::string sha =
                    resolveRef(git_dir, head.substr(5));
                if (!sha.empty())
                    return sha;
            }
            return "unknown";
        }
        const std::filesystem::path parent = dir.parent_path();
        if (parent == dir)
            break;
        dir = parent;
    }
    return "unknown";
}

std::uint64_t
currentPeakRssBytes()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

WallTimer::WallTimer()
    : startNs_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count()))
{
}

double
WallTimer::seconds() const
{
    const auto now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    return static_cast<double>(now - startNs_) * 1.0e-9;
}

bool
writeBenchRecord(const std::string &dir, const BenchRecord &record,
                 std::string *error, std::string *path_out)
{
    if (record.bench.empty()) {
        if (error != nullptr)
            *error = "bench record has no bench name";
        return false;
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        if (error != nullptr)
            *error = "cannot create directory '" + dir +
                     "': " + ec.message();
        return false;
    }

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"schema_version\": 1,\n"
                  "  \"bench\": \"%s\",\n"
                  "  \"git_sha\": \"%s\",\n"
                  "  \"wall_seconds\": %.6f,\n"
                  "  \"sim_seconds\": %.6f,\n"
                  "  \"sim_events\": %" PRIu64 ",\n"
                  "  \"sim_events_per_wall_second\": %.3f,\n"
                  "  \"peak_rss_bytes\": %" PRIu64 ",\n"
                  "  \"threads\": %u\n"
                  "}\n",
                  jsonEscape(record.bench).c_str(),
                  jsonEscape(record.gitSha).c_str(),
                  record.wallSeconds, record.simSeconds,
                  record.simEvents, record.simEventsPerWallSecond(),
                  record.peakRssBytes, record.threads);

    const std::filesystem::path path =
        std::filesystem::path(dir) / ("BENCH_" + record.bench + ".json");
    const std::string tmp = path.string() + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "cannot open '" + tmp + "' for writing";
        return false;
    }
    const bool write_ok = std::fputs(buf, f) >= 0;
    const bool close_ok = std::fclose(f) == 0;
    if (!write_ok || !close_ok ||
        std::rename(tmp.c_str(), path.string().c_str()) != 0) {
        if (error != nullptr)
            *error = "write to '" + path.string() + "' failed";
        std::remove(tmp.c_str());
        return false;
    }
    if (path_out != nullptr)
        *path_out = path.string();
    return true;
}

} // namespace hdmr::telemetry
