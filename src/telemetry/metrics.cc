#include "telemetry/metrics.hh"

#include "snapshot/digest.hh"
#include "snapshot/serializer.hh"
#include "util/logging.hh"

namespace hdmr::telemetry
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::kCounter:
        return "counter";
      case MetricKind::kGauge:
        return "gauge";
      case MetricKind::kHistogram:
        return "histogram";
    }
    return "unknown";
}

std::uint64_t
Log2Histogram::bucketLow(unsigned bucket)
{
    hdmr_assert(bucket < kBuckets);
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

std::uint64_t
Log2Histogram::bucketHigh(unsigned bucket)
{
    hdmr_assert(bucket < kBuckets);
    if (bucket == 0)
        return 0;
    if (bucket == 64)
        return UINT64_MAX;
    return (std::uint64_t{1} << bucket) - 1;
}

double
Log2Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

std::uint64_t
Log2Histogram::valueAtQuantile(double q) const
{
    if (count_ == 0)
        return 0;
    if (!(q > 0.0))
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the quantile sample, 1-based (nearest-rank definition).
    const double scaled = q * static_cast<double>(count_);
    std::uint64_t rank = static_cast<std::uint64_t>(scaled);
    if (static_cast<double>(rank) < scaled || rank == 0)
        ++rank;
    std::uint64_t cumulative = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        cumulative += counts_[b];
        if (cumulative >= rank)
            return bucketHigh(b);
    }
    return bucketHigh(kBuckets - 1);
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    for (unsigned b = 0; b < kBuckets; ++b)
        counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Log2Histogram::setBucketCount(unsigned bucket, std::uint64_t value)
{
    hdmr_assert(bucket < kBuckets);
    counts_[bucket] = value;
}

void
Log2Histogram::setTotals(std::uint64_t count, std::uint64_t sum)
{
    count_ = count;
    sum_ = sum;
}

namespace
{

MetricKind
kindOf(const Metric &metric)
{
    if (std::holds_alternative<Counter>(metric))
        return MetricKind::kCounter;
    if (std::holds_alternative<Gauge>(metric))
        return MetricKind::kGauge;
    return MetricKind::kHistogram;
}

} // namespace

std::string
sanitizeMetricComponent(const std::string &label)
{
    if (label.empty())
        return "unnamed";
    std::string component = label;
    for (char &c : component) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    return component;
}

bool
Registry::validName(const std::string &name)
{
    constexpr std::size_t kMaxNameLength = 200;
    if (name.empty() || name.size() > kMaxNameLength)
        return false;
    if (name.front() == '.' || name.back() == '.')
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == '.' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

template <typename T>
T &
Registry::getOrCreate(const std::string &name, MetricKind kind)
{
    if (!validName(name))
        util::fatal("telemetry: malformed metric name '%s'",
                    name.c_str());
    auto it = metrics_.find(name);
    if (it == metrics_.end())
        it = metrics_.emplace(name, Metric{T{}}).first;
    T *slot = std::get_if<T>(&it->second);
    if (slot == nullptr)
        util::fatal("telemetry: metric '%s' already registered as %s, "
                    "requested %s",
                    name.c_str(), metricKindName(kindOf(it->second)),
                    metricKindName(kind));
    return *slot;
}

Counter &
Registry::counter(const std::string &name)
{
    return getOrCreate<Counter>(name, MetricKind::kCounter);
}

Gauge &
Registry::gauge(const std::string &name)
{
    return getOrCreate<Gauge>(name, MetricKind::kGauge);
}

Log2Histogram &
Registry::histogram(const std::string &name)
{
    return getOrCreate<Log2Histogram>(name, MetricKind::kHistogram);
}

const Metric *
Registry::find(const std::string &name) const
{
    const auto it = metrics_.find(name);
    return it == metrics_.end() ? nullptr : &it->second;
}

void
Registry::save(snapshot::Serializer &out) const
{
    out.writeU64(metrics_.size());
    for (const auto &[name, metric] : metrics_) {
        out.writeString(name);
        out.writeU8(static_cast<std::uint8_t>(kindOf(metric)));
        if (const Counter *c = std::get_if<Counter>(&metric)) {
            out.writeU64(c->value());
        } else if (const Gauge *g = std::get_if<Gauge>(&metric)) {
            out.writeDouble(g->value());
        } else {
            const auto &h = std::get<Log2Histogram>(metric);
            out.writeU64(h.count());
            out.writeU64(h.sum());
            // Sparse bucket encoding: non-zero buckets only.
            std::uint32_t nonzero = 0;
            for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b)
                nonzero += h.bucketCount(b) != 0 ? 1 : 0;
            out.writeU32(nonzero);
            for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b) {
                if (h.bucketCount(b) == 0)
                    continue;
                out.writeU8(static_cast<std::uint8_t>(b));
                out.writeU64(h.bucketCount(b));
            }
        }
    }
}

bool
Registry::restore(snapshot::Deserializer &in)
{
    // Each saved metric is at least name length (4) + kind (1) +
    // payload (8) bytes; anything claiming more entries than could fit
    // in the remaining bytes is corrupt.
    const std::uint64_t count =
        in.readCount("telemetry registry metric list", 13);
    if (!in.ok())
        return false;
    for (std::uint64_t i = 0; i < count && in.ok(); ++i) {
        const std::string name = in.readString();
        const std::uint8_t kind = in.readU8();
        if (!in.ok())
            break;
        if (!validName(name)) {
            in.fail("telemetry registry: malformed metric name '" +
                    name + "'");
            return false;
        }
        auto it = metrics_.find(name);
        switch (static_cast<MetricKind>(kind)) {
          case MetricKind::kCounter: {
            const std::uint64_t value = in.readU64();
            if (it == metrics_.end())
                it = metrics_.emplace(name, Metric{Counter{}}).first;
            Counter *slot = std::get_if<Counter>(&it->second);
            if (slot == nullptr) {
                in.fail("telemetry registry: metric '" + name +
                        "' is a " +
                        metricKindName(kindOf(it->second)) +
                        ", snapshot has a counter");
                return false;
            }
            slot->set(value);
            break;
          }
          case MetricKind::kGauge: {
            const double value = in.readDouble();
            if (it == metrics_.end())
                it = metrics_.emplace(name, Metric{Gauge{}}).first;
            Gauge *slot = std::get_if<Gauge>(&it->second);
            if (slot == nullptr) {
                in.fail("telemetry registry: metric '" + name +
                        "' is a " +
                        metricKindName(kindOf(it->second)) +
                        ", snapshot has a gauge");
                return false;
            }
            slot->set(value);
            break;
          }
          case MetricKind::kHistogram: {
            const std::uint64_t total = in.readU64();
            const std::uint64_t sum = in.readU64();
            const std::uint32_t nonzero = in.readU32();
            if (nonzero > Log2Histogram::kBuckets) {
                in.fail("telemetry registry: histogram '" + name +
                        "' claims more buckets than exist");
                return false;
            }
            if (it == metrics_.end())
                it = metrics_.emplace(name, Metric{Log2Histogram{}})
                         .first;
            Log2Histogram *slot =
                std::get_if<Log2Histogram>(&it->second);
            if (slot == nullptr) {
                in.fail("telemetry registry: metric '" + name +
                        "' is a " +
                        metricKindName(kindOf(it->second)) +
                        ", snapshot has a histogram");
                return false;
            }
            for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b)
                slot->setBucketCount(b, 0);
            std::uint64_t bucket_total = 0;
            int last_bucket = -1;
            for (std::uint32_t j = 0; j < nonzero && in.ok(); ++j) {
                const std::uint8_t bucket = in.readU8();
                const std::uint64_t value = in.readU64();
                if (bucket >= Log2Histogram::kBuckets ||
                    static_cast<int>(bucket) <= last_bucket ||
                    value == 0) {
                    in.fail("telemetry registry: histogram '" + name +
                            "' has a corrupt bucket record");
                    return false;
                }
                last_bucket = bucket;
                slot->setBucketCount(bucket, value);
                bucket_total += value;
            }
            if (in.ok() && bucket_total != total) {
                in.fail("telemetry registry: histogram '" + name +
                        "' bucket counts disagree with its total");
                return false;
            }
            slot->setTotals(total, sum);
            break;
          }
          default:
            in.fail("telemetry registry: unknown metric kind");
            return false;
        }
    }
    return in.ok();
}

std::uint64_t
Registry::digest() const
{
    snapshot::Fnv1a fnv;
    fnv.addU64(metrics_.size());
    for (const auto &[name, metric] : metrics_) {
        fnv.addBytes(name.data(), name.size());
        fnv.addU64(static_cast<std::uint64_t>(kindOf(metric)));
        if (const Counter *c = std::get_if<Counter>(&metric)) {
            fnv.addU64(c->value());
        } else if (const Gauge *g = std::get_if<Gauge>(&metric)) {
            fnv.addDouble(g->value());
        } else {
            const auto &h = std::get<Log2Histogram>(metric);
            fnv.addU64(h.count());
            fnv.addU64(h.sum());
            for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b)
                fnv.addU64(h.bucketCount(b));
        }
    }
    return fnv.value();
}

} // namespace hdmr::telemetry
