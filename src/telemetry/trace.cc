#include "telemetry/trace.hh"

#include <cinttypes>
#include <cstdio>

#include "util/logging.hh"

namespace hdmr::telemetry
{

TraceRecorder::TraceRecorder(std::size_t max_events)
    : maxEvents_(max_events), epoch_(std::chrono::steady_clock::now())
{
}

double
TraceRecorder::wallMicrosNow() const
{
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double, std::micro>(elapsed).count();
}

void
TraceRecorder::push(TraceEvent event)
{
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(event));
}

void
TraceRecorder::beginSpan(const std::string &name,
                         const std::string &category, double sim_micros,
                         std::uint32_t tid)
{
    // The nesting stack is maintained even for dropped events, so a
    // capped trace still end-checks correctly.
    open_[tid].push_back(name);
    push({TraceEvent::Phase::kBegin, tid, name, category, sim_micros,
          wallMicrosNow()});
}

void
TraceRecorder::endSpan(double sim_micros, std::uint32_t tid,
                       const std::string &name)
{
    auto it = open_.find(tid);
    if (it == open_.end() || it->second.empty())
        util::panic("telemetry: endSpan('%s') on track %u with no open "
                    "span",
                    name.c_str(), tid);
    const std::string innermost = std::move(it->second.back());
    it->second.pop_back();
    if (!name.empty() && name != innermost)
        util::panic("telemetry: endSpan('%s') on track %u but the "
                    "innermost open span is '%s' (misnested spans)",
                    name.c_str(), tid, innermost.c_str());
    push({TraceEvent::Phase::kEnd, tid, innermost, std::string(),
          sim_micros, wallMicrosNow()});
}

void
TraceRecorder::instant(const std::string &name,
                       const std::string &category, double sim_micros,
                       std::uint32_t tid)
{
    push({TraceEvent::Phase::kInstant, tid, name, category, sim_micros,
          wallMicrosNow()});
}

void
TraceRecorder::setThreadName(std::uint32_t tid, const std::string &name)
{
    threadNames_[tid] = name;
}

std::size_t
TraceRecorder::openSpans(std::uint32_t tid) const
{
    const auto it = open_.find(tid);
    return it == open_.end() ? 0 : it->second.size();
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
TraceRecorder::writeChromeTrace(const std::string &path,
                                std::string *error) const
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "cannot open '" + tmp + "' for writing";
        return false;
    }

    std::fprintf(f, "{\"displayTimeUnit\":\"ms\","
                    "\"otherData\":{\"clock\":\"simulated_microseconds\","
                    "\"dropped_events\":%" PRIu64 "},"
                    "\"traceEvents\":[",
                 dropped_);
    bool first = true;
    const auto sep = [&first, f]() {
        if (!first)
            std::fputc(',', f);
        first = false;
        std::fputc('\n', f);
    };
    for (const auto &[tid, name] : threadNames_) {
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                     "\"name\":\"thread_name\",\"args\":{\"name\":"
                     "\"%s\"}}",
                     tid, jsonEscape(name).c_str());
    }
    for (const TraceEvent &ev : events_) {
        sep();
        switch (ev.phase) {
          case TraceEvent::Phase::kBegin:
            std::fprintf(f,
                         "{\"ph\":\"B\",\"pid\":1,\"tid\":%u,"
                         "\"ts\":%.3f,\"name\":\"%s\",\"cat\":\"%s\","
                         "\"args\":{\"wall_us\":%.1f}}",
                         ev.tid, ev.simMicros,
                         jsonEscape(ev.name).c_str(),
                         jsonEscape(ev.category).c_str(),
                         ev.wallMicros);
            break;
          case TraceEvent::Phase::kEnd:
            std::fprintf(f,
                         "{\"ph\":\"E\",\"pid\":1,\"tid\":%u,"
                         "\"ts\":%.3f,\"args\":{\"wall_us\":%.1f}}",
                         ev.tid, ev.simMicros, ev.wallMicros);
            break;
          case TraceEvent::Phase::kInstant:
            std::fprintf(f,
                         "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,"
                         "\"ts\":%.3f,\"name\":\"%s\",\"cat\":\"%s\","
                         "\"s\":\"t\",\"args\":{\"wall_us\":%.1f}}",
                         ev.tid, ev.simMicros,
                         jsonEscape(ev.name).c_str(),
                         jsonEscape(ev.category).c_str(),
                         ev.wallMicros);
            break;
        }
    }
    std::fprintf(f, "\n]}\n");

    const bool write_ok = std::ferror(f) == 0;
    const bool close_ok = std::fclose(f) == 0;
    if (!write_ok || !close_ok) {
        if (error != nullptr)
            *error = "write to '" + tmp + "' failed";
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error != nullptr)
            *error = "rename '" + tmp + "' -> '" + path + "' failed";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace hdmr::telemetry
