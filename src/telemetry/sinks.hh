/**
 * @file
 * Export sinks for the metrics registry: strict CSV and JSON.
 *
 * The CSV format is one row per scalar metric field,
 *
 *     # hdmr metrics v1
 *     name,kind,field,value
 *     dram.row_hits,counter,value,123456
 *     sched.turnaround_seconds,histogram,count,1743
 *     sched.turnaround_seconds,histogram,sum,52873
 *     sched.turnaround_seconds,histogram,bucket12,40
 *     ...
 *
 * with histograms expanded to their totals plus every non-zero bucket.
 * The loader reuses the strict src/traces/csv helpers, so a corrupt
 * metrics file is rejected with a <file>:<line>: message naming the
 * offending cell, exactly like the trace loaders.
 *
 * The JSON sink writes the same data as one self-describing object for
 * downstream tooling; there is no JSON loader (CSV is the round-trip
 * format).
 */

#ifndef HDMR_TELEMETRY_SINKS_HH
#define HDMR_TELEMETRY_SINKS_HH

#include <string>

#include "telemetry/metrics.hh"
#include "util/status.hh"

namespace hdmr::telemetry
{

/** Write every metric, name-sorted.  False + *error on I/O failure. */
bool writeMetricsCsv(const Registry &registry, const std::string &path,
                     std::string *error);

/**
 * Load a metrics CSV into `registry` (find-or-create per name,
 * overwriting values).  kNotFound when the file cannot be opened;
 * malformed content is kDataLoss with file:line context naming the
 * offending cell.  On error the registry may hold metrics from the
 * rows already parsed - reload into a fresh Registry to recover.
 */
util::Status loadMetricsCsv(Registry &registry,
                            const std::string &path);

/** Write every metric as one JSON object.  False + *error on I/O. */
bool writeMetricsJson(const Registry &registry, const std::string &path,
                      std::string *error);

} // namespace hdmr::telemetry

#endif // HDMR_TELEMETRY_SINKS_HH
