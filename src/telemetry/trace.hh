/**
 * @file
 * Scoped tracing spans over *simulated* time, exported as Chrome
 * trace-event JSON.
 *
 * Every event carries two clocks: `ts` is simulated microseconds (so
 * Perfetto's timeline shows the simulation's own time axis), and each
 * begin/instant event additionally records the wall-clock microseconds
 * since the recorder was constructed in its args, so hot legs of a
 * sweep are visible as dense wall-time per sim-time regions.  Spans
 * are strictly nested per track (tid): ending a span that is not the
 * innermost open one on its track - or ending with none open - is a
 * bug in the instrumented layer and panics immediately rather than
 * producing a silently garbled trace.
 *
 * The recorder is observational: it is deliberately NOT part of the
 * snapshot/digest state (wall times differ across runs by design), so
 * a resumed run's trace simply starts at the resume point.
 *
 * Output is the Chrome trace-event "JSON object format" - an object
 * with a `traceEvents` array of B/E/i phase records - which both
 * chrome://tracing and ui.perfetto.dev load directly.
 */

#ifndef HDMR_TELEMETRY_TRACE_HH
#define HDMR_TELEMETRY_TRACE_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hdmr::telemetry
{

/** One recorded trace event. */
struct TraceEvent
{
    enum class Phase : std::uint8_t
    {
        kBegin,   ///< "B"
        kEnd,     ///< "E"
        kInstant, ///< "i" (thread-scoped)
    };

    Phase phase = Phase::kInstant;
    /** Track the event renders on (one per leg / component). */
    std::uint32_t tid = 0;
    std::string name;
    std::string category;
    /** Simulated time, microseconds (the trace's `ts`). */
    double simMicros = 0.0;
    /** Wall time since recorder construction, microseconds. */
    double wallMicros = 0.0;
};

/** Records spans/instants and writes them as Chrome trace JSON. */
class TraceRecorder
{
  public:
    /** Default event cap; past it events are counted, not stored. */
    static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

    explicit TraceRecorder(std::size_t max_events = kDefaultMaxEvents);

    /** Open a span on track `tid` at simulated time `sim_micros`. */
    void beginSpan(const std::string &name, const std::string &category,
                   double sim_micros, std::uint32_t tid = 0);

    /**
     * Close the innermost open span on track `tid`.  panics when the
     * track has no open span, or when `name` is non-empty and does not
     * match the innermost span (misnesting).
     */
    void endSpan(double sim_micros, std::uint32_t tid = 0,
                 const std::string &name = std::string());

    /** Record a thread-scoped instant event ("i" phase). */
    void instant(const std::string &name, const std::string &category,
                 double sim_micros, std::uint32_t tid = 0);

    /** Label a track; emitted as thread_name metadata. */
    void setThreadName(std::uint32_t tid, const std::string &name);

    /** Open spans currently on track `tid`. */
    std::size_t openSpans(std::uint32_t tid = 0) const;

    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events discarded because the cap was reached. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Write the Chrome trace-event JSON file.  Open spans are written
     * as-is (viewers auto-close them at the end of the trace).
     * Returns false and sets *error on I/O failure.
     */
    bool writeChromeTrace(const std::string &path,
                          std::string *error) const;

  private:
    void push(TraceEvent event);
    double wallMicrosNow() const;

    std::vector<TraceEvent> events_;
    /** Per-track stack of open span names (misnesting detection). */
    std::map<std::uint32_t, std::vector<std::string>> open_;
    std::map<std::uint32_t, std::string> threadNames_;
    std::size_t maxEvents_;
    std::uint64_t dropped_ = 0;
    std::chrono::steady_clock::time_point epoch_;
};

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &text);

} // namespace hdmr::telemetry

#endif // HDMR_TELEMETRY_TRACE_HH
