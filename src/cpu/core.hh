/**
 * @file
 * Trace-driven out-of-order core model (Table IV: 3.1 GHz, 4-wide,
 * 224-entry ROB).
 *
 * Interval-style timing: compute bursts retire at the issue width;
 * loads that miss the LLC become asynchronous DRAM reads tracked in a
 * miss window.  The core keeps running ahead until either the MSHR
 * budget is exhausted or the oldest incomplete miss falls outside the
 * ROB window - the two mechanisms that make DRAM latency and
 * bandwidth matter.  Stores retire through the write path without
 * blocking.  MPI communication phases idle the core for an absolute
 * duration, so memory speedups are Amdahl-limited like on the real
 * machine.
 */

#ifndef HDMR_CPU_CORE_HH
#define HDMR_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "sim/event_queue.hh"
#include "workloads/stream.hh"

namespace hdmr::cpu
{

using util::Tick;

/** Core microarchitecture parameters. */
struct CoreConfig
{
    double freqMhz = 3100.0;
    unsigned issueWidth = 4;
    unsigned robSize = 224;
    unsigned maxOutstandingMisses = 16;
    /** Local-time batching quantum (limits event-queue pressure). */
    Tick batchQuantum = 64000;
};

/** Result of a cache-hierarchy load probe. */
struct CacheOutcome
{
    Tick latency = 0;   ///< hit latency; ignored when needsDram
    bool needsDram = false;
};

/**
 * The node-side memory interface a core talks to.  Implemented by
 * node::NodeSystem, which owns the cache hierarchy and the memory
 * controllers.
 */
class MemoryInterface
{
  public:
    virtual ~MemoryInterface() = default;

    /** Backpressure probe: can this core start another LLC miss? */
    virtual bool canAcceptMiss(unsigned core_id) = 0;

    /**
     * Perform a load at time `now`.  If the access misses the LLC the
     * implementation issues the DRAM read and later invokes
     * `on_complete` with the fill tick; otherwise the returned
     * outcome's latency applies.
     */
    virtual CacheOutcome load(unsigned core_id, std::uint64_t address,
                              Tick now,
                              std::function<void(Tick)> on_complete) = 0;

    /** Perform a store at time `now`; returns the core-visible cost. */
    virtual Tick store(unsigned core_id, std::uint64_t address,
                       Tick now) = 0;
};

/** Per-core statistics. */
struct CoreStats
{
    std::uint64_t instructions = 0; ///< compute + memory instructions
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t llcMisses = 0;
    Tick commTicks = 0;
    Tick finishTick = 0;
    bool finished = false;
};

/** The core. */
class Core
{
  public:
    Core(sim::EventQueue &events, unsigned id, CoreConfig config,
         std::unique_ptr<wl::AccessStream> stream,
         MemoryInterface &memory, std::function<void(unsigned)> on_done);

    ~Core();

    /** Begin execution at the given tick. */
    void start(Tick when);

    const CoreStats &stats() const { return stats_; }
    unsigned id() const { return id_; }

  private:
    struct Miss
    {
        std::uint64_t instPosition;
        bool complete = false;
    };

    void process();
    void onMissComplete(std::size_t miss_index, Tick when);
    bool blocked() const;
    void finish();

    sim::EventQueue &events_;
    unsigned id_;
    CoreConfig config_;
    Tick cyclePeriod_;
    std::unique_ptr<wl::AccessStream> stream_;
    MemoryInterface &memory_;
    std::function<void(unsigned)> onDone_;

    Tick now_ = 0;              ///< core-local time (>= curTick)
    std::uint64_t instIssued_ = 0;
    std::deque<Miss> window_;   ///< outstanding LLC misses, FIFO
    std::uint64_t missesRetired_ = 0;
    bool hasPendingOp_ = false;
    wl::Op pendingOp_;
    bool waitingForMiss_ = false;
    bool done_ = false;

    sim::EventWrapper<Core, &Core::process> processEvent_;
    CoreStats stats_;
};

} // namespace hdmr::cpu

#endif // HDMR_CPU_CORE_HH
