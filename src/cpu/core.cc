#include "cpu/core.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::cpu
{

Core::Core(sim::EventQueue &events, unsigned id, CoreConfig config,
           std::unique_ptr<wl::AccessStream> stream,
           MemoryInterface &memory, std::function<void(unsigned)> on_done)
    : events_(events), id_(id), config_(config),
      cyclePeriod_(util::mhzToPeriod(config.freqMhz)),
      stream_(std::move(stream)), memory_(memory),
      onDone_(std::move(on_done)), processEvent_(this)
{
    hdmr_assert(config_.issueWidth >= 1);
    hdmr_assert(config_.robSize >= 1);
}

Core::~Core()
{
    if (processEvent_.scheduled())
        events_.deschedule(&processEvent_);
}

void
Core::start(Tick when)
{
    events_.schedule(&processEvent_, when);
}

bool
Core::blocked() const
{
    if (window_.size() >= config_.maxOutstandingMisses)
        return true;
    if (!window_.empty() &&
        instIssued_ - window_.front().instPosition >=
            config_.robSize) {
        return true;
    }
    return false;
}

void
Core::finish()
{
    done_ = true;
    stats_.finished = true;
    stats_.finishTick = now_;
    if (onDone_)
        onDone_(id_);
}

void
Core::onMissComplete(std::size_t miss_index, Tick when)
{
    // miss_index is a monotonically increasing sequence number; the
    // front of the window carries the oldest live index.
    const std::uint64_t front_index = missesRetired_;
    hdmr_assert(miss_index >= front_index &&
                miss_index - front_index < window_.size(),
                "completion for unknown miss");
    window_[miss_index - front_index].complete = true;

    if (waitingForMiss_ && !done_) {
        waitingForMiss_ = false;
        events_.schedule(&processEvent_, std::max(now_, when));
    }
}

void
Core::process()
{
    if (done_)
        return;
    const Tick start = events_.curTick();
    now_ = std::max(now_, start);

    while (true) {
        // Retire completed misses in order.
        while (!window_.empty() && window_.front().complete) {
            window_.pop_front();
            ++missesRetired_;
        }
        if (blocked()) {
            waitingForMiss_ = true;
            return;
        }

        if (!hasPendingOp_) {
            if (!stream_->next(pendingOp_)) {
                if (window_.empty()) {
                    finish();
                } else {
                    waitingForMiss_ = true;
                }
                return;
            }
            hasPendingOp_ = true;
        }

        switch (pendingOp_.kind) {
          case wl::Op::Kind::kCompute: {
            const std::uint64_t cycles =
                (pendingOp_.count + config_.issueWidth - 1) /
                config_.issueWidth;
            now_ += cycles * cyclePeriod_;
            instIssued_ += pendingOp_.count;
            stats_.instructions += pendingOp_.count;
            hasPendingOp_ = false;
            break;
          }

          case wl::Op::Kind::kLoad: {
            if (!memory_.canAcceptMiss(id_)) {
                // Read queue full downstream: retry shortly.
                events_.reschedule(&processEvent_, now_ + 10000);
                return;
            }
            const std::uint64_t miss_index =
                missesRetired_ + window_.size();
            const CacheOutcome outcome = memory_.load(
                id_, pendingOp_.address, now_,
                [this, miss_index](Tick when) {
                    onMissComplete(miss_index, when);
                });
            ++instIssued_;
            ++stats_.instructions;
            ++stats_.loads;
            if (outcome.needsDram) {
                window_.push_back(Miss{instIssued_, false});
                ++stats_.llcMisses;
            } else {
                now_ += outcome.latency;
            }
            hasPendingOp_ = false;
            break;
          }

          case wl::Op::Kind::kStore: {
            const Tick cost =
                memory_.store(id_, pendingOp_.address, now_);
            now_ += cost;
            ++instIssued_;
            ++stats_.instructions;
            ++stats_.stores;
            hasPendingOp_ = false;
            break;
          }

          case wl::Op::Kind::kComm:
            now_ += pendingOp_.duration;
            stats_.commTicks += pendingOp_.duration;
            hasPendingOp_ = false;
            break;
        }

        if (now_ - start > config_.batchQuantum) {
            events_.schedule(&processEvent_, now_);
            return;
        }
    }
}

} // namespace hdmr::cpu
