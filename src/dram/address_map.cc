#include "dram/address_map.hh"

#include "util/logging.hh"

namespace hdmr::dram
{

unsigned
AddressMap::log2ceil(unsigned value)
{
    unsigned bits = 0;
    while ((1u << bits) < value)
        ++bits;
    return bits;
}

AddressMap::AddressMap(AddressMapConfig config) : config_(config)
{
    hdmr_assert(config_.channels >= 1);
    hdmr_assert(config_.ranksPerChannel >= 1);
    hdmr_assert((config_.banksPerRank & (config_.banksPerRank - 1)) == 0,
                "banks per rank must be a power of two");
    channelBits_ = log2ceil(config_.channels);
    rankBits_ = log2ceil(config_.ranksPerChannel);
    bankBits_ = log2ceil(config_.banksPerRank);
    columnBits_ = log2ceil(config_.columnsPerRow);
    lineBits_ = log2ceil(config_.lineBytes);
}

DramCoord
AddressMap::decode(std::uint64_t address) const
{
    std::uint64_t bits = address >> lineBits_;
    DramCoord coord;

    coord.channel = static_cast<unsigned>(bits % config_.channels);
    bits >>= channelBits_;

    coord.column =
        static_cast<unsigned>(bits & (config_.columnsPerRow - 1));
    bits >>= columnBits_;

    const unsigned raw_bank =
        static_cast<unsigned>(bits & (config_.banksPerRank - 1));
    bits >>= bankBits_;

    coord.rank = static_cast<unsigned>(bits % config_.ranksPerChannel);
    bits >>= rankBits_;

    coord.row = bits;

    // Skylake-style XOR folding of the low row bits into the bank.
    coord.bank = (raw_bank ^ static_cast<unsigned>(coord.row)) &
                 (config_.banksPerRank - 1);
    return coord;
}

} // namespace hdmr::dram
