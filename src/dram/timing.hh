/**
 * @file
 * DDR4 timing parameters and the four memory settings of Table II.
 *
 * A MemorySetting captures the label-level knobs the paper sweeps
 * (data rate plus the tRCD/tRP/tRAS/tREFI latency set); DramTiming is
 * the tick-resolution timing package the controller actually consumes,
 * derived from a setting.
 */

#ifndef HDMR_DRAM_TIMING_HH
#define HDMR_DRAM_TIMING_HH

#include <string>

#include "util/units.hh"

namespace hdmr::dram
{

using util::Tick;

/**
 * Label-level memory operating setting (Table II).  Latencies in ns,
 * tREFI in us, data rate in MT/s.
 */
struct MemorySetting
{
    std::string name = "Manufacturer-specified";
    unsigned dataRateMts = 3200;
    double trcdNs = 13.75;
    double trpNs = 13.75;
    double trasNs = 32.5;
    double trefiUs = 7.8;

    /** Manufacturer-specified setting (row 1 of Table II). */
    static MemorySetting manufacturerSpec(unsigned rate_mts = 3200);

    /** Setting to exploit latency margin (row 2). */
    static MemorySetting exploitLatencyMargin(unsigned rate_mts = 3200);

    /** Setting to exploit frequency margin (row 3). */
    static MemorySetting exploitFrequencyMargin(unsigned fast_rate = 4000);

    /** Setting to exploit frequency + latency margins (row 4). */
    static MemorySetting exploitFreqLatMargins(unsigned fast_rate = 4000);
};

/**
 * Controller-facing timing package, all in ticks, derived from a
 * MemorySetting.  Parameters not in Table II use DDR4-3200 datasheet
 * values; clock-granular parameters (burst, tCCD, write recovery at
 * the pins) scale with the data rate.
 */
struct DramTiming
{
    unsigned dataRateMts = 3200;
    Tick tCK = 625;      ///< bus clock period
    Tick tBURST = 2500;  ///< 64B transfer, BL8 = 4 clocks
    Tick tRCD = 13750;   ///< activate to read/write
    Tick tRP = 13750;    ///< precharge
    Tick tRAS = 32500;   ///< activate to precharge
    Tick tCAS = 13750;   ///< read command to first data
    Tick tCWD = 11250;   ///< write command to first data
    Tick tWR = 15000;    ///< write recovery (end of write to precharge)
    Tick tWTR = 7500;    ///< write-to-read turnaround (same rank)
    Tick tRTW = 7500;    ///< read-to-write bus turnaround
    Tick tRTP = 7500;    ///< read to precharge
    Tick tRRD = 5000;    ///< activate to activate, different banks
    Tick tCCD = 2500;    ///< column command to column command
    Tick tREFI = 7800000; ///< refresh interval per rank
    Tick tRFC = 350000;  ///< refresh cycle time
    Tick tXS = 1200000;  ///< self-refresh exit to first valid command

    /** Build the tick-level package from a label-level setting. */
    static DramTiming fromSetting(const MemorySetting &setting);
};

} // namespace hdmr::dram

#endif // HDMR_DRAM_TIMING_HH
