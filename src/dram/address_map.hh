/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 *
 * Bit layout (low to high): 64B line offset | channel | column | bank |
 * rank | row, with the bank index XOR-folded with the low row bits the
 * way Intel Skylake does (DRAMA [67]); the XOR spreads sequential rows
 * across banks and reduces row-buffer conflicts for strided streams.
 */

#ifndef HDMR_DRAM_ADDRESS_MAP_HH
#define HDMR_DRAM_ADDRESS_MAP_HH

#include <cstdint>

namespace hdmr::dram
{

/** Geometry of the mapped memory system. */
struct AddressMapConfig
{
    unsigned channels = 1;
    unsigned ranksPerChannel = 4;  ///< ranks addressable by software
    unsigned banksPerRank = 16;
    unsigned columnsPerRow = 128;  ///< 64B lines per 8KB row
    unsigned lineBytes = 64;
};

/** Decoded DRAM coordinates of one 64B line. */
struct DramCoord
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    unsigned column = 0;
};

/** The mapping function. */
class AddressMap
{
  public:
    explicit AddressMap(AddressMapConfig config);

    DramCoord decode(std::uint64_t address) const;

    const AddressMapConfig &config() const { return config_; }

  private:
    static unsigned log2ceil(unsigned value);

    AddressMapConfig config_;
    unsigned channelBits_;
    unsigned rankBits_;
    unsigned bankBits_;
    unsigned columnBits_;
    unsigned lineBits_;
};

} // namespace hdmr::dram

#endif // HDMR_DRAM_ADDRESS_MAP_HH
