#include "dram/timing.hh"

#include "util/logging.hh"

namespace hdmr::dram
{

MemorySetting
MemorySetting::manufacturerSpec(unsigned rate_mts)
{
    MemorySetting s;
    s.name = "Manufacturer-specified";
    s.dataRateMts = rate_mts;
    return s;
}

MemorySetting
MemorySetting::exploitLatencyMargin(unsigned rate_mts)
{
    MemorySetting s;
    s.name = "Exploit Latency Margin";
    s.dataRateMts = rate_mts;
    s.trcdNs = 11.5;
    s.trpNs = 11.0;
    s.trasNs = 29.5;
    s.trefiUs = 15.0;
    return s;
}

MemorySetting
MemorySetting::exploitFrequencyMargin(unsigned fast_rate)
{
    MemorySetting s;
    s.name = "Exploit Frequency Margin";
    s.dataRateMts = fast_rate;
    return s;
}

MemorySetting
MemorySetting::exploitFreqLatMargins(unsigned fast_rate)
{
    MemorySetting s = exploitLatencyMargin(fast_rate);
    s.name = "Exploit Freq+Lat Margins";
    return s;
}

DramTiming
DramTiming::fromSetting(const MemorySetting &setting)
{
    using util::dataRateToTck;
    using util::nsToTicks;

    hdmr_assert(setting.dataRateMts >= 800 && setting.dataRateMts <= 6400,
                "implausible data rate %u MT/s", setting.dataRateMts);

    DramTiming t;
    t.dataRateMts = setting.dataRateMts;
    t.tCK = dataRateToTck(setting.dataRateMts);
    t.tBURST = 4 * t.tCK; // BL8: 8 beats, 2 beats/clock
    t.tCCD = 4 * t.tCK;

    t.tRCD = nsToTicks(setting.trcdNs);
    t.tRP = nsToTicks(setting.trpNs);
    t.tRAS = nsToTicks(setting.trasNs);
    t.tREFI = nsToTicks(setting.trefiUs * 1000.0);

    // CAS latency stays at the JEDEC value: the paper's latency-margin
    // setting tunes only tRCD/tRP/tRAS/tREFI (Table II), not CL.
    t.tCAS = nsToTicks(13.75);
    t.tCWD = t.tCAS > 2 * t.tCK ? t.tCAS - 2 * t.tCK : t.tCAS;

    t.tWR = nsToTicks(15.0);
    t.tWTR = nsToTicks(7.5);
    t.tRTW = nsToTicks(7.5);
    t.tRTP = nsToTicks(7.5);
    t.tRRD = nsToTicks(2.5);
    t.tRFC = nsToTicks(350.0);
    t.tXS = nsToTicks(1200.0);
    return t;
}

} // namespace hdmr::dram
