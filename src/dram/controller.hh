/**
 * @file
 * Per-channel DDR4 memory controller (Table IV parameters).
 *
 * Features: FR-FCFS scheduling with an age-based starvation guard
 * ("bank fairness"), hybrid open/closed page policy with a 200-cycle
 * timeout, separate read (256) and write (128) queues with write-drain
 * watermarks, per-rank refresh, rank self-refresh parking, a shared
 * data bus, rank-candidate read selection and broadcast writes (for
 * FMR/Hetero-DMR replication), swappable read-mode/write-mode timing
 * packages with a configurable mode-switch latency (Hetero-DMR's 1 us
 * frequency transition), and read error injection with a recovery
 * penalty (Hetero-DMR's slow-down/read-original/overwrite flow).
 *
 * The command model is transaction-level: a request's ACT/PRE/CAS
 * sequence is collapsed into a latency computed from bank/rank/bus
 * state, in the spirit of a simplified Ramulator.
 */

#ifndef HDMR_DRAM_CONTROLLER_HH
#define HDMR_DRAM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "dram/address_map.hh"
#include "dram/request.hh"
#include "dram/timing.hh"
#include "sim/event_queue.hh"
#include "telemetry/telemetry.hh"
#include "util/rng.hh"

namespace hdmr::dram
{

/** Channel operating mode. */
enum class ChannelMode : std::uint8_t
{
    kRead,            ///< serving reads (HDMR: unsafely fast)
    kWrite,           ///< draining writes (HDMR: at specification)
    kTransition,      ///< switching modes / scaling frequency
};

/** A small set of candidate/broadcast ranks. */
struct RankSet
{
    std::uint8_t count = 0;
    std::uint8_t ranks[4] = {0, 0, 0, 0};

    static RankSet
    single(unsigned rank)
    {
        RankSet s;
        s.count = 1;
        s.ranks[0] = static_cast<std::uint8_t>(rank);
        return s;
    }

    void
    add(unsigned rank)
    {
        ranks[count++] = static_cast<std::uint8_t>(rank);
    }
};

/**
 * Rank selection policy: given the decoded home rank of a block,
 * which ranks may serve a read (any one of them; the scheduler picks
 * the fastest) and which ranks a write must broadcast to (all of
 * them, in one bus transaction).  Identity by default; FMR and
 * Hetero-DMR install replication-aware policies.
 */
struct RankPolicy
{
    std::function<RankSet(unsigned home_rank)> readCandidates;
    std::function<RankSet(unsigned home_rank)> writeTargets;
};

/** Controller configuration. */
struct ControllerConfig
{
    DramTiming readModeTiming;   ///< timing while in read mode
    DramTiming writeModeTiming;  ///< timing while in write mode
    unsigned ranksPerChannel = 4; ///< physical ranks on the channel
    /**
     * Ranks the address map spreads software data over.  4 in a
     * conventional system; 2 when replication has compacted software
     * data into one module and freed the other (FMR / Hetero-DMR).
     */
    unsigned addressRanks = 4;
    unsigned banksPerRank = 16;
    std::size_t readQueueCapacity = 256;
    std::size_t writeQueueCapacity = 128;
    std::size_t writeDrainHigh = 112; ///< enter write mode at/above
    std::size_t writeDrainLow = 16;   ///< leave write mode at/below
    util::Tick enterWriteModeLatency = 7500; ///< read->write switch
    util::Tick exitWriteModeLatency = 7500;  ///< write->read switch
    util::Tick pagePolicyTimeout = 200000;   ///< hybrid open-page window
    util::Tick starvationThreshold = 2000000; ///< FR-FCFS age guard
    bool refreshEnabled = true;
    /** Ranks parked in self-refresh (not accessible, self-managed). */
    std::uint32_t selfRefreshRankMask = 0;
    /** Probability a read in read mode returns a detected error. */
    double readErrorProbability = 0.0;
    /** Channel-blocking penalty of the error-correction flow. */
    util::Tick errorRecoveryLatency = 2200000; ///< ~2.2 us
    /**
     * Probability that the recovery flow *also* fails (the slowed-down
     * read of the original returns corrupt data): the detected error
     * becomes an uncorrectable error surfaced through the
     * onUncorrectableError hook instead of being silently absorbed as
     * recovery latency.
     */
    double recoveryFailureProbability = 0.0;
    std::uint64_t seed = 1;
};

/** Aggregate controller statistics. */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;          ///< write bus transactions
    std::uint64_t writeRankOps = 0;    ///< rank-level write ops (energy)
    std::uint64_t prefetchReads = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t activates = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t readErrors = 0;      ///< injected detected errors
    std::uint64_t uncorrectableErrors = 0; ///< failed recoveries (UEs)
    std::uint64_t writeModeEntries = 0;
    util::Tick busBusyTicks = 0;
    util::Tick writeModeTicks = 0;
    util::Tick transitionTicks = 0;
    /** Rank-time spent in self-refresh (sum over ranks), for energy. */
    util::Tick selfRefreshRankTicks = 0;
    util::Tick readLatencySum = 0;     ///< queue+service, reads only
    std::uint64_t readLatencySamples = 0;

    double
    averageReadLatencyNs() const
    {
        return readLatencySamples == 0
                   ? 0.0
                   : util::ticksToNs(readLatencySum) /
                         static_cast<double>(readLatencySamples);
    }
};

/** Hooks the Hetero-DMR mode controller installs. */
struct ControllerHooks
{
    /** Called when a write-mode drain completes (back in read mode). */
    std::function<void()> onWriteModeExit;
    /** Called right after entering write mode (e.g. clean the LLC). */
    std::function<void()> onWriteModeEnter;
    /** Called for every injected read error (epoch accounting). */
    std::function<void()> onReadError;
    /**
     * Called when the recovery read of the original also fails: the
     * data is lost as far as this channel is concerned and upstream
     * (mode controller, node, cluster) must degrade gracefully.
     */
    std::function<void()> onUncorrectableError;
    /**
     * While in write mode with queue space, the controller asks
     * upstream for more writes (victim-cache drain, LLC cleaning).
     * Returns the number of writes actually enqueued; 0 ends the
     * drain.  May call enqueueWrite() up to `space` times.
     */
    std::function<std::size_t(std::size_t space)> refillWrites;
};

/**
 * One memory channel.  Requests arrive via enqueueRead()/
 * enqueueWrite(); reads complete through their callback.
 */
class MemoryController
{
  public:
    MemoryController(sim::EventQueue &events, ControllerConfig config);

    ~MemoryController();

    /** True when the read queue cannot take another request. */
    bool readQueueFull() const;

    /** True when the write queue cannot take another request. */
    bool writeQueueFull() const;

    /** Submit a read; the request's callback fires on completion. */
    void enqueueRead(MemRequest request);

    /**
     * Submit a write.  `rankMask` selects the broadcast targets; the
     * transaction occupies the bus once regardless of fan-out.
     */
    void enqueueWrite(MemRequest request);

    /** Queue depths (for backpressure decisions upstream). */
    std::size_t readQueueDepth() const { return readQueue_.size(); }
    std::size_t writeQueueDepth() const { return writeQueue_.size(); }

    ChannelMode mode() const { return mode_; }

    /**
     * Re-program the controller's timing/mode parameters.  Takes
     * effect at the next mode transition (the Hetero-DMR controller
     * uses this to set fast read-mode timing once replication is up).
     */
    void reconfigure(const ControllerConfig &config);

    /** Install Hetero-DMR hooks. */
    void setHooks(ControllerHooks hooks) { hooks_ = std::move(hooks); }

    /** Install a replication-aware rank policy (FMR / Hetero-DMR). */
    void setRankPolicy(RankPolicy policy);

    /** Remove any installed rank policy (back to identity). */
    void clearRankPolicy();

    /** Park/unpark ranks in self-refresh (read-mode originals). */
    void setSelfRefreshMask(std::uint32_t mask);

    /** Force a write-mode entry as soon as possible. */
    void requestWriteMode();

    const ControllerStats &stats() const { return stats_; }
    const ControllerConfig &config() const { return config_; }

    /**
     * Bind observability metrics under `prefix` (e.g. "dram.ch0"):
     * row hits/misses/conflicts, per-mode access counts, error
     * counters, mode-switch count, and the mode-switch latency
     * histogram.  Unbound (the default), every update site is one
     * null check.
     */
    void bindTelemetry(telemetry::Registry &registry,
                       const std::string &prefix);

    /** Emit mode-switch instants onto `trace` track `tid`. */
    void bindTrace(telemetry::TraceRecorder *trace, std::uint32_t tid);

    /** Close out time-integrated statistics at the end of a run. */
    void finalizeStats();

    /** Decode helper shared with upstream components. */
    static unsigned bankIndex(const DramCoord &coord,
                              unsigned banks_per_rank);

  private:
    struct BankState
    {
        std::int64_t openRow = -1;    ///< -1: closed
        util::Tick cmdReadyAt = 0;    ///< earliest next column/ACT cmd
        util::Tick activatedAt = 0;   ///< for tRAS accounting
        util::Tick lastUseAt = 0;     ///< for the page-policy timeout
    };

    struct QueuedRequest
    {
        MemRequest request;
        DramCoord coord;
    };

    const DramTiming &activeTiming() const;
    BankState &bank(unsigned rank, unsigned bank_index);

    /** Apply the page-policy timeout lazily to a bank. */
    void agePagePolicy(BankState &bank_state, util::Tick now);

    /** Outcome of planning one column access against a bank. */
    struct AccessPlan
    {
        util::Tick dataStart = 0; ///< first data beat on the bus
        util::Tick actAt = 0;     ///< when the ACT issues (if any)
        bool rowHit = false;
        bool needsActivate = false;
    };

    /** Plan the earliest access to `row` in a bank (no state change). */
    AccessPlan planAccess(const BankState &bank_state, unsigned rank,
                          std::uint64_t row, util::Tick now,
                          bool is_write) const;

    /** Commit a planned access: update bank/rank/bus state. */
    void commitAccess(BankState &bank_state, unsigned rank,
                      std::uint64_t row, const AccessPlan &plan,
                      bool is_write);

    RankSet readCandidatesFor(unsigned home_rank) const;
    RankSet writeTargetsFor(unsigned home_rank) const;

    void scheduleTryIssue(util::Tick when);
    void tryIssue();
    void maybeRefresh(util::Tick now);
    void beginTransition(ChannelMode target);
    void finishTransition();
    bool issueRead(std::size_t queue_index);
    bool issueWrite(std::size_t queue_index);
    void recordCompletion(util::Tick when, MemRequest &&request);
    void processCompletions();

    struct Pick
    {
        std::size_t index = static_cast<std::size_t>(-1);
        util::Tick plannedStart = 0;

        bool
        valid() const
        {
            return index != static_cast<std::size_t>(-1);
        }
    };

    /** Pick the FR-FCFS winner in a queue. */
    Pick pickFrFcfs(const std::deque<QueuedRequest> &queue,
                    util::Tick now);

    sim::EventQueue &events_;
    ControllerConfig config_;
    ControllerConfig pendingConfig_;
    bool reconfigurePending_ = false;

    AddressMapConfig mapConfig_;
    AddressMap map_;

    std::deque<QueuedRequest> readQueue_;
    std::deque<QueuedRequest> writeQueue_;
    std::vector<BankState> banks_;
    std::vector<util::Tick> rankBlockedUntil_;
    std::vector<util::Tick> nextRefreshAt_;
    std::vector<util::Tick> lastActivateAt_;

    ChannelMode mode_ = ChannelMode::kRead;
    ChannelMode transitionTarget_ = ChannelMode::kRead;
    util::Tick transitionEndsAt_ = 0;
    util::Tick busFreeAt_ = 0;
    util::Tick writeModeEnteredAt_ = 0;
    util::Tick lastMaskChangeAt_ = 0;
    bool writeModeRequested_ = false;

    std::map<util::Tick, std::vector<MemRequest>> completions_;

    sim::EventWrapper<MemoryController, &MemoryController::tryIssue>
        tryIssueEvent_;
    sim::EventWrapper<MemoryController,
                      &MemoryController::processCompletions>
        completionEvent_;

    ControllerHooks hooks_;
    RankPolicy rankPolicy_;
    ControllerStats stats_;
    util::Rng rng_;

    /** Registry-owned metric bindings; null until bindTelemetry(). */
    struct Telemetry
    {
        telemetry::Counter *rowHits = nullptr;
        telemetry::Counter *rowMisses = nullptr;
        telemetry::Counter *rowConflicts = nullptr;
        telemetry::Counter *reads = nullptr;
        telemetry::Counter *writes = nullptr;
        telemetry::Counter *readModeAccesses = nullptr;
        telemetry::Counter *writeModeAccesses = nullptr;
        telemetry::Counter *readErrors = nullptr;
        telemetry::Counter *uncorrectableErrors = nullptr;
        telemetry::Counter *modeSwitches = nullptr;
        telemetry::Log2Histogram *modeSwitchLatencyNs = nullptr;
        telemetry::Gauge *writeModeSeconds = nullptr;
        telemetry::Gauge *transitionSeconds = nullptr;
    };
    Telemetry tm_;
    telemetry::TraceRecorder *trace_ = nullptr;
    std::uint32_t traceTid_ = 0;

    /** FR-FCFS only inspects the head of the queue up to this depth. */
    static constexpr std::size_t kSchedulerWindow = 64;

    /**
     * Command-issue lookahead: the controller commits transactions
     * whose data phase starts within this horizon, which lets ACTs to
     * different banks overlap in-flight bursts (bank-level
     * parallelism) without committing the whole queue at once.
     */
    static constexpr util::Tick kIssueHorizon = 40000; // 40 ns

    /** Max transactions committed per scheduler invocation. */
    static constexpr unsigned kIssuesPerEvent = 8;
};

} // namespace hdmr::dram

#endif // HDMR_DRAM_CONTROLLER_HH
