#include "dram/controller.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::dram
{

using util::Tick;

MemoryController::MemoryController(sim::EventQueue &events,
                                   ControllerConfig config)
    : events_(events), config_(config), pendingConfig_(config),
      mapConfig_(), map_(AddressMapConfig{1, config.addressRanks,
                                          config.banksPerRank, 128, 64}),
      tryIssueEvent_(this), completionEvent_(this), rng_(config.seed)
{
    hdmr_assert(config_.ranksPerChannel >= 1 &&
                config_.ranksPerChannel <= 32);
    hdmr_assert(config_.addressRanks >= 1 &&
                config_.addressRanks <= config_.ranksPerChannel);
    banks_.resize(config_.ranksPerChannel * config_.banksPerRank);
    rankBlockedUntil_.assign(config_.ranksPerChannel, 0);
    lastActivateAt_.assign(config_.ranksPerChannel, 0);
    // Stagger per-rank refreshes so the whole channel never stalls
    // at once (real controllers do the same).
    nextRefreshAt_.resize(config_.ranksPerChannel);
    for (unsigned r = 0; r < config_.ranksPerChannel; ++r) {
        nextRefreshAt_[r] = config_.readModeTiming.tREFI * (r + 1) /
                            config_.ranksPerChannel;
    }
}

MemoryController::~MemoryController()
{
    if (tryIssueEvent_.scheduled())
        events_.deschedule(&tryIssueEvent_);
    if (completionEvent_.scheduled())
        events_.deschedule(&completionEvent_);
}

const DramTiming &
MemoryController::activeTiming() const
{
    return mode_ == ChannelMode::kWrite ? config_.writeModeTiming
                                        : config_.readModeTiming;
}

MemoryController::BankState &
MemoryController::bank(unsigned rank, unsigned bank_index)
{
    return banks_[rank * config_.banksPerRank + bank_index];
}

bool
MemoryController::readQueueFull() const
{
    return readQueue_.size() >= config_.readQueueCapacity;
}

bool
MemoryController::writeQueueFull() const
{
    return writeQueue_.size() >= config_.writeQueueCapacity;
}

void
MemoryController::enqueueRead(MemRequest request)
{
    hdmr_assert(!readQueueFull(), "read queue overflow");
    QueuedRequest qr;
    qr.coord = map_.decode(request.address);
    qr.request = std::move(request);
    readQueue_.push_back(std::move(qr));
    scheduleTryIssue(std::max(events_.curTick(),
                              readQueue_.back().request.arrival));
}

void
MemoryController::enqueueWrite(MemRequest request)
{
    hdmr_assert(!writeQueueFull(), "write queue overflow");
    QueuedRequest qr;
    qr.coord = map_.decode(request.address);
    qr.request = std::move(request);
    writeQueue_.push_back(std::move(qr));
    scheduleTryIssue(std::max(events_.curTick(),
                              writeQueue_.back().request.arrival));
}

void
MemoryController::reconfigure(const ControllerConfig &config)
{
    pendingConfig_ = config;
    reconfigurePending_ = true;
    // The geometry must stay fixed; only timing/policy knobs may move.
    hdmr_assert(config.ranksPerChannel == config_.ranksPerChannel);
    hdmr_assert(config.banksPerRank == config_.banksPerRank);
    if (config.addressRanks != config_.addressRanks) {
        map_ = AddressMap(AddressMapConfig{1, config.addressRanks,
                                           config.banksPerRank, 128, 64});
    }
    scheduleTryIssue(events_.curTick());
}

void
MemoryController::setRankPolicy(RankPolicy policy)
{
    rankPolicy_ = std::move(policy);
}

void
MemoryController::clearRankPolicy()
{
    rankPolicy_ = RankPolicy{};
}

void
MemoryController::finalizeStats()
{
    const Tick now = events_.curTick();
    stats_.selfRefreshRankTicks +=
        static_cast<util::Tick>(
            __builtin_popcount(config_.selfRefreshRankMask)) *
        (now - lastMaskChangeAt_);
    lastMaskChangeAt_ = now;
    if (mode_ == ChannelMode::kWrite) {
        stats_.writeModeTicks += now - writeModeEnteredAt_;
        writeModeEnteredAt_ = now;
    }
    HDMR_TM_SET(tm_.writeModeSeconds,
                util::ticksToSeconds(stats_.writeModeTicks));
    HDMR_TM_SET(tm_.transitionSeconds,
                util::ticksToSeconds(stats_.transitionTicks));
}

void
MemoryController::bindTelemetry(telemetry::Registry &registry,
                                const std::string &prefix)
{
    tm_.rowHits = &registry.counter(prefix + ".row_hits");
    tm_.rowMisses = &registry.counter(prefix + ".row_misses");
    tm_.rowConflicts = &registry.counter(prefix + ".row_conflicts");
    tm_.reads = &registry.counter(prefix + ".reads");
    tm_.writes = &registry.counter(prefix + ".writes");
    tm_.readModeAccesses =
        &registry.counter(prefix + ".read_mode_accesses");
    tm_.writeModeAccesses =
        &registry.counter(prefix + ".write_mode_accesses");
    tm_.readErrors = &registry.counter(prefix + ".read_errors");
    tm_.uncorrectableErrors =
        &registry.counter(prefix + ".uncorrectable_errors");
    tm_.modeSwitches = &registry.counter(prefix + ".mode_switches");
    tm_.modeSwitchLatencyNs =
        &registry.histogram(prefix + ".mode_switch_latency_ns");
    tm_.writeModeSeconds =
        &registry.gauge(prefix + ".write_mode_seconds");
    tm_.transitionSeconds =
        &registry.gauge(prefix + ".transition_seconds");
}

void
MemoryController::bindTrace(telemetry::TraceRecorder *trace,
                            std::uint32_t tid)
{
    trace_ = trace;
    traceTid_ = tid;
}

void
MemoryController::setSelfRefreshMask(std::uint32_t mask)
{
    const Tick now_tick = events_.curTick();
    stats_.selfRefreshRankTicks +=
        static_cast<util::Tick>(
            __builtin_popcount(config_.selfRefreshRankMask)) *
        (now_tick - lastMaskChangeAt_);
    lastMaskChangeAt_ = now_tick;

    const std::uint32_t woken = config_.selfRefreshRankMask & ~mask;
    config_.selfRefreshRankMask = mask;
    pendingConfig_.selfRefreshRankMask = mask;
    const Tick now = events_.curTick();
    for (unsigned r = 0; r < config_.ranksPerChannel; ++r) {
        if (woken & (1u << r)) {
            // Self-refresh exit time before the rank is usable again.
            rankBlockedUntil_[r] =
                std::max(rankBlockedUntil_[r],
                         now + config_.readModeTiming.tXS);
            nextRefreshAt_[r] = now + config_.readModeTiming.tREFI;
            for (unsigned b = 0; b < config_.banksPerRank; ++b)
                bank(r, b).openRow = -1;
        }
    }
}

void
MemoryController::requestWriteMode()
{
    writeModeRequested_ = true;
    scheduleTryIssue(events_.curTick());
}

RankSet
MemoryController::readCandidatesFor(unsigned home_rank) const
{
    if (rankPolicy_.readCandidates)
        return rankPolicy_.readCandidates(home_rank);
    return RankSet::single(home_rank);
}

RankSet
MemoryController::writeTargetsFor(unsigned home_rank) const
{
    if (rankPolicy_.writeTargets)
        return rankPolicy_.writeTargets(home_rank);
    return RankSet::single(home_rank);
}

void
MemoryController::agePagePolicy(BankState &bank_state, Tick now)
{
    // Hybrid page policy: a row left untouched past the timeout is
    // precharged in the background.  Model it lazily: when the bank is
    // next considered, fold the elapsed precharge in.
    if (bank_state.openRow < 0)
        return;
    const Tick deadline =
        bank_state.lastUseAt + config_.pagePolicyTimeout;
    if (now > deadline) {
        bank_state.openRow = -1;
        bank_state.cmdReadyAt = std::max(bank_state.cmdReadyAt,
                                         deadline + activeTiming().tRP);
    }
}

MemoryController::AccessPlan
MemoryController::planAccess(const BankState &bank_state, unsigned rank,
                             std::uint64_t row, Tick now,
                             bool is_write) const
{
    const DramTiming &t = activeTiming();
    const Tick cas = is_write ? t.tCWD : t.tCAS;
    Tick base = std::max({now, bank_state.cmdReadyAt,
                          rankBlockedUntil_[rank]});
    AccessPlan plan;

    Tick cmd_at;
    if (bank_state.openRow == static_cast<std::int64_t>(row)) {
        // Row hit: column commands pipeline at tCCD, so back-to-back
        // hits are bus-limited, not latency-limited.
        plan.rowHit = true;
        cmd_at = base;
    } else if (bank_state.openRow < 0) {
        plan.needsActivate = true;
        base = std::max(base, lastActivateAt_[rank] + t.tRRD);
        plan.actAt = base;
        cmd_at = base + t.tRCD;
    } else {
        // Row conflict.  FR-FCFS controllers with a visible queue
        // precharge a conflicting row speculatively as soon as the
        // bank idles (tRTP after the last read, tRAS after the ACT),
        // so tRP overlaps the idle gap instead of serializing behind
        // the new request.
        plan.needsActivate = true;
        const Tick pre_done =
            std::max(bank_state.activatedAt + t.tRAS,
                     bank_state.lastUseAt + t.tRTP) +
            t.tRP;
        base = std::max(base, pre_done);
        base = std::max(base, lastActivateAt_[rank] + t.tRRD);
        plan.actAt = base;
        cmd_at = plan.actAt + t.tRCD;
    }

    plan.dataStart = std::max(cmd_at + cas, busFreeAt_);
    return plan;
}

void
MemoryController::commitAccess(BankState &bank_state, unsigned rank,
                               std::uint64_t row, const AccessPlan &plan,
                               bool is_write)
{
    const DramTiming &t = activeTiming();
    const Tick cas = is_write ? t.tCWD : t.tCAS;
    const Tick cmd_at = plan.dataStart - cas;
    if (plan.needsActivate) {
        ++stats_.activates;
        bank_state.activatedAt = plan.actAt;
        lastActivateAt_[rank] =
            std::max(lastActivateAt_[rank], plan.actAt);
    }
    bank_state.openRow = static_cast<std::int64_t>(row);
    bank_state.lastUseAt = plan.dataStart;
    // Next column command to this bank may issue one tCCD later; tWR
    // (write to precharge) is folded into the row-conflict path via
    // activatedAt + tRAS, which dominates it at these parameters.
    bank_state.cmdReadyAt = cmd_at + t.tCCD;
}

void
MemoryController::scheduleTryIssue(Tick when)
{
    if (!tryIssueEvent_.scheduled()) {
        events_.schedule(&tryIssueEvent_, std::max(when,
                                                   events_.curTick()));
    } else if (tryIssueEvent_.when() > when) {
        events_.reschedule(&tryIssueEvent_,
                           std::max(when, events_.curTick()));
    }
}

void
MemoryController::maybeRefresh(Tick now)
{
    if (!config_.refreshEnabled)
        return;
    const DramTiming &t = activeTiming();
    for (unsigned r = 0; r < config_.ranksPerChannel; ++r) {
        if (config_.selfRefreshRankMask & (1u << r))
            continue; // refreshes internally
        if (now < nextRefreshAt_[r])
            continue;
        // Catch up on refreshes that elapsed while the channel was
        // idle (count them for energy) but block the rank only once.
        while (nextRefreshAt_[r] + t.tREFI <= now) {
            ++stats_.refreshes;
            nextRefreshAt_[r] += t.tREFI;
        }
        ++stats_.refreshes;
        Tick start = std::max(now, rankBlockedUntil_[r]);
        rankBlockedUntil_[r] = start + t.tRFC;
        for (unsigned b = 0; b < config_.banksPerRank; ++b) {
            BankState &bs = bank(r, b);
            bs.openRow = -1;
            bs.cmdReadyAt = std::max(bs.cmdReadyAt, rankBlockedUntil_[r]);
        }
        nextRefreshAt_[r] += t.tREFI;
    }
}

void
MemoryController::beginTransition(ChannelMode target)
{
    hdmr_assert(mode_ != ChannelMode::kTransition);
    const Tick latency = target == ChannelMode::kWrite
                             ? config_.enterWriteModeLatency
                             : config_.exitWriteModeLatency;
    if (mode_ == ChannelMode::kWrite) {
        stats_.writeModeTicks += events_.curTick() - writeModeEnteredAt_;
    }
    mode_ = ChannelMode::kTransition;
    transitionTarget_ = target;
    transitionEndsAt_ = events_.curTick() + latency;
    stats_.transitionTicks += latency;
    HDMR_TM_INC(tm_.modeSwitches);
    HDMR_TM_RECORD(tm_.modeSwitchLatencyNs,
                   static_cast<std::uint64_t>(util::ticksToNs(latency)));
    if (trace_ != nullptr) {
        trace_->instant(target == ChannelMode::kWrite
                            ? "mode_switch.to_write"
                            : "mode_switch.to_read",
                        "dram",
                        util::ticksToNs(events_.curTick()) / 1000.0,
                        traceTid_);
    }
    // Entering write mode: wake any self-refresh-parked ranks *now* so
    // the tXS exit time overlaps the frequency-scaling transition
    // (Figs. 9-10 sequence the clock change and the self-refresh exit
    // together) instead of serializing after it.
    if (target == ChannelMode::kWrite && config_.selfRefreshRankMask)
        setSelfRefreshMask(0);
    scheduleTryIssue(transitionEndsAt_);
}

void
MemoryController::finishTransition()
{
    mode_ = transitionTarget_;
    busFreeAt_ = std::max(busFreeAt_, events_.curTick());
    if (reconfigurePending_) {
        const std::uint32_t live_mask = config_.selfRefreshRankMask;
        config_ = pendingConfig_;
        config_.selfRefreshRankMask = live_mask;
        reconfigurePending_ = false;
    }
    if (mode_ == ChannelMode::kWrite) {
        ++stats_.writeModeEntries;
        writeModeEnteredAt_ = events_.curTick();
        writeModeRequested_ = false;
        if (hooks_.onWriteModeEnter)
            hooks_.onWriteModeEnter();
    } else {
        if (hooks_.onWriteModeExit)
            hooks_.onWriteModeExit();
    }
}

MemoryController::Pick
MemoryController::pickFrFcfs(const std::deque<QueuedRequest> &queue,
                             Tick now)
{
    Pick pick;
    if (queue.empty())
        return pick;

    const std::size_t window = std::min(queue.size(), kSchedulerWindow);
    const bool is_write_queue = &queue == &writeQueue_;

    // Age-based starvation guard (the "bank fairness" knob): once the
    // oldest *read* has waited too long, it goes first regardless.
    // Writes are posted, so their service order never starves a core.
    const bool starving = !is_write_queue &&
                          now - queue.front().request.arrival >
                              config_.starvationThreshold;

    bool best_hit = false;
    Tick best_start = ~Tick(0);

    for (std::size_t i = 0; i < window; ++i) {
        const QueuedRequest &qr = queue[i];
        const RankSet candidates =
            is_write_queue ? writeTargetsFor(qr.coord.rank)
                           : readCandidatesFor(qr.coord.rank);
        for (std::uint8_t c = 0; c < candidates.count; ++c) {
            const unsigned rank = candidates.ranks[c];
            BankState &bs = bank(rank, qr.coord.bank);
            agePagePolicy(bs, now);
            const AccessPlan plan =
                planAccess(bs, rank, qr.coord.row, now, is_write_queue);
            const bool better =
                (plan.rowHit && !best_hit) ||
                (plan.rowHit == best_hit && plan.dataStart < best_start);
            if (better) {
                pick.index = i;
                best_hit = plan.rowHit;
                best_start = plan.dataStart;
            }
            if (is_write_queue)
                break; // broadcast writes have no rank choice
        }
        if (starving)
            break; // only consider the oldest request
    }
    pick.plannedStart = best_start;
    return pick;
}

bool
MemoryController::issueRead(std::size_t queue_index)
{
    QueuedRequest qr = std::move(readQueue_[queue_index]);
    readQueue_.erase(readQueue_.begin() +
                     static_cast<std::ptrdiff_t>(queue_index));
    const Tick now = events_.curTick();
    const DramTiming &t = activeTiming();

    // Choose the best candidate rank for this read.
    const RankSet candidates = readCandidatesFor(qr.coord.rank);
    hdmr_assert(candidates.count >= 1);
    unsigned best_rank = candidates.ranks[0];
    AccessPlan best_plan;
    bool first = true;
    for (std::uint8_t c = 0; c < candidates.count; ++c) {
        const unsigned rank = candidates.ranks[c];
        hdmr_assert((config_.selfRefreshRankMask & (1u << rank)) == 0,
                    "read targeting a self-refreshing rank %u", rank);
        BankState &bs = bank(rank, qr.coord.bank);
        agePagePolicy(bs, now);
        const AccessPlan plan =
            planAccess(bs, rank, qr.coord.row, now, false);
        if (first || plan.dataStart < best_plan.dataStart ||
            (plan.rowHit && !best_plan.rowHit &&
             plan.dataStart <= best_plan.dataStart)) {
            best_plan = plan;
            best_rank = rank;
            first = false;
        }
    }

    BankState &bs = bank(best_rank, qr.coord.bank);
    if (best_plan.rowHit) {
        ++stats_.rowHits;
        HDMR_TM_INC(tm_.rowHits);
    } else if (bs.openRow < 0) {
        ++stats_.rowMisses;
        HDMR_TM_INC(tm_.rowMisses);
    } else {
        ++stats_.rowConflicts;
        HDMR_TM_INC(tm_.rowConflicts);
    }

    commitAccess(bs, best_rank, qr.coord.row, best_plan, false);

    Tick complete = best_plan.dataStart + t.tBURST;
    busFreeAt_ = best_plan.dataStart + t.tBURST;
    stats_.busBusyTicks += t.tBURST;

    // Error injection: reads in (unsafely fast) read mode may return a
    // detected-corrupt block; recovery blocks the channel while the
    // frequency is scaled down, the original is read, and the copy is
    // overwritten (Fig. 8c).
    if (config_.readErrorProbability > 0.0 &&
        rng_.bernoulli(config_.readErrorProbability)) {
        ++stats_.readErrors;
        HDMR_TM_INC(tm_.readErrors);
        if (hooks_.onReadError)
            hooks_.onReadError();
        complete += config_.errorRecoveryLatency;
        busFreeAt_ += config_.errorRecoveryLatency;
        // The recovery flow slowed the channel down and re-read the
        // original; with margin assumptions violated (drift, heat),
        // that read may itself be corrupt - an uncorrectable error.
        if (config_.recoveryFailureProbability > 0.0 &&
            rng_.bernoulli(config_.recoveryFailureProbability)) {
            ++stats_.uncorrectableErrors;
            HDMR_TM_INC(tm_.uncorrectableErrors);
            if (trace_ != nullptr) {
                trace_->instant(
                    "uncorrectable_error", "dram",
                    util::ticksToNs(events_.curTick()) / 1000.0,
                    traceTid_);
            }
            if (hooks_.onUncorrectableError)
                hooks_.onUncorrectableError();
        }
    }

    ++stats_.reads;
    HDMR_TM_INC(tm_.reads);
    HDMR_TM_INC(mode_ == ChannelMode::kWrite ? tm_.writeModeAccesses
                                             : tm_.readModeAccesses);
    if (qr.request.isPrefetch)
        ++stats_.prefetchReads;
    stats_.readLatencySum += complete - qr.request.arrival;
    ++stats_.readLatencySamples;

    recordCompletion(complete, std::move(qr.request));
    scheduleTryIssue(best_plan.dataStart);
    return true;
}

bool
MemoryController::issueWrite(std::size_t queue_index)
{
    QueuedRequest qr = std::move(writeQueue_[queue_index]);
    writeQueue_.erase(writeQueue_.begin() +
                      static_cast<std::ptrdiff_t>(queue_index));
    const Tick now = events_.curTick();
    const DramTiming &t = activeTiming();

    // A broadcast write sends one command/data transaction that every
    // target rank latches simultaneously (FMR's broadcasting design),
    // so the start time obeys the *max* of the rank constraints but
    // the bus is used once.
    const RankSet targets = writeTargetsFor(qr.coord.rank);
    hdmr_assert(targets.count >= 1);
    AccessPlan merged;
    bool any_hit = true;
    for (std::uint8_t c = 0; c < targets.count; ++c) {
        const unsigned rank = targets.ranks[c];
        hdmr_assert((config_.selfRefreshRankMask & (1u << rank)) == 0,
                    "write targeting a self-refreshing rank %u", rank);
        BankState &bs = bank(rank, qr.coord.bank);
        agePagePolicy(bs, now);
        const AccessPlan plan =
            planAccess(bs, rank, qr.coord.row, now, true);
        merged.dataStart = std::max(merged.dataStart, plan.dataStart);
        merged.needsActivate |= plan.needsActivate;
        any_hit &= plan.rowHit;
    }
    merged.rowHit = any_hit;

    if (merged.rowHit) {
        ++stats_.rowHits;
        HDMR_TM_INC(tm_.rowHits);
    } else {
        ++stats_.rowMisses;
        HDMR_TM_INC(tm_.rowMisses);
    }

    for (std::uint8_t c = 0; c < targets.count; ++c) {
        const unsigned rank = targets.ranks[c];
        BankState &bs = bank(rank, qr.coord.bank);
        // Re-plan per rank to classify activates, then force the
        // merged start so every rank commits the same transaction.
        AccessPlan plan = planAccess(bs, rank, qr.coord.row, now, true);
        plan.dataStart = merged.dataStart;
        commitAccess(bs, rank, qr.coord.row, plan, true);
    }

    busFreeAt_ = merged.dataStart + t.tBURST;
    stats_.busBusyTicks += t.tBURST;
    ++stats_.writes;
    HDMR_TM_INC(tm_.writes);
    HDMR_TM_INC(mode_ == ChannelMode::kWrite ? tm_.writeModeAccesses
                                             : tm_.readModeAccesses);
    stats_.writeRankOps += targets.count;

    if (qr.request.onComplete)
        recordCompletion(merged.dataStart + t.tBURST,
                         std::move(qr.request));
    scheduleTryIssue(merged.dataStart);
    return true;
}

void
MemoryController::recordCompletion(Tick when, MemRequest &&request)
{
    completions_[when].push_back(std::move(request));
    const Tick first = completions_.begin()->first;
    if (!completionEvent_.scheduled()) {
        events_.schedule(&completionEvent_, first);
    } else if (completionEvent_.when() > first) {
        events_.reschedule(&completionEvent_, first);
    }
}

void
MemoryController::processCompletions()
{
    const Tick now = events_.curTick();
    while (!completions_.empty() && completions_.begin()->first <= now) {
        auto node = completions_.extract(completions_.begin());
        for (MemRequest &req : node.mapped()) {
            if (req.onComplete)
                req.onComplete(now);
        }
    }
    if (!completions_.empty())
        events_.schedule(&completionEvent_, completions_.begin()->first);
}

void
MemoryController::tryIssue()
{
    const Tick now = events_.curTick();

    if (mode_ == ChannelMode::kTransition) {
        if (now >= transitionEndsAt_) {
            finishTransition();
        } else {
            scheduleTryIssue(transitionEndsAt_);
            return;
        }
    }

    maybeRefresh(now);

    if (mode_ == ChannelMode::kRead) {
        const bool pressure =
            writeQueue_.size() >= config_.writeDrainHigh ||
            (readQueue_.empty() && writeQueue_.size() >=
                 std::max<std::size_t>(1, config_.writeDrainHigh / 4));
        if (writeModeRequested_ || pressure) {
            beginTransition(ChannelMode::kWrite);
            return;
        }
        for (unsigned n = 0; n < kIssuesPerEvent; ++n) {
            const Pick pick = pickFrFcfs(readQueue_, now);
            if (!pick.valid())
                return;
            if (pick.plannedStart > now + kIssueHorizon) {
                // Too early to commit: revisit near the start time so
                // later arrivals can still be reordered ahead of it.
                scheduleTryIssue(pick.plannedStart - kIssueHorizon);
                return;
            }
            issueRead(pick.index);
        }
        if (!readQueue_.empty())
            scheduleTryIssue(now + 1000);
        return;
    }

    // Write mode: keep the queue topped up from upstream drains.
    if (hooks_.refillWrites && !writeQueueFull()) {
        hooks_.refillWrites(config_.writeQueueCapacity -
                            writeQueue_.size());
    }
    if (writeQueue_.size() <= config_.writeDrainLow) {
        const bool more =
            hooks_.refillWrites &&
            hooks_.refillWrites(config_.writeQueueCapacity -
                                writeQueue_.size()) > 0;
        if (!more && writeQueue_.empty()) {
            beginTransition(ChannelMode::kRead);
            return;
        }
        if (!more && writeQueue_.size() <= config_.writeDrainLow &&
            !readQueue_.empty()) {
            // Enough drained and reads are waiting: switch back.
            beginTransition(ChannelMode::kRead);
            return;
        }
    }
    for (unsigned n = 0; n < kIssuesPerEvent; ++n) {
        const Pick pick = pickFrFcfs(writeQueue_, now);
        if (!pick.valid())
            break;
        if (pick.plannedStart > now + kIssueHorizon) {
            scheduleTryIssue(pick.plannedStart - kIssueHorizon);
            return;
        }
        issueWrite(pick.index);
    }
    if (!writeQueue_.empty() ||
        (hooks_.refillWrites && mode_ == ChannelMode::kWrite)) {
        scheduleTryIssue(now + 1000);
    }
}

unsigned
MemoryController::bankIndex(const DramCoord &coord,
                            unsigned banks_per_rank)
{
    return coord.rank * banks_per_rank + coord.bank;
}

} // namespace hdmr::dram
