/**
 * @file
 * Memory request type shared by the memory controller, the cache
 * hierarchy, and the Hetero-DMR mode controller.
 */

#ifndef HDMR_DRAM_REQUEST_HH
#define HDMR_DRAM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "util/units.hh"

namespace hdmr::dram
{

using util::Tick;

/** A 64-byte block request to the memory system. */
struct MemRequest
{
    enum class Type : std::uint8_t
    {
        kRead,
        kWrite,
    };

    std::uint64_t address = 0;
    Type type = Type::kRead;
    Tick arrival = 0;
    unsigned coreId = 0;
    bool isPrefetch = false;

    /**
     * Ranks allowed to serve the request, as a bitmask over the ranks
     * of the owning channel.  Hetero-DMR's read mode restricts reads to
     * the Free Module's ranks; a broadcast write targets all ranks of
     * both the original and the copy in one bus transaction.
     */
    std::uint32_t rankMask = ~0u;

    /** Completion callback (reads); invoked with the completion tick. */
    std::function<void(Tick)> onComplete;
};

} // namespace hdmr::dram

#endif // HDMR_DRAM_REQUEST_HH
