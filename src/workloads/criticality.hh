/**
 * @file
 * Per-job memory-criticality model for heterogeneous-reliability
 * placement (Luo et al., "Heterogeneous-Reliability Memory").
 *
 * The paper's Hetero-DMR buys safety for *every* page with a full
 * copy; HRM's observation is that large application footprints are
 * error-tolerant at the application level (iterative solvers absorb
 * perturbations, Monte-Carlo estimates average them out), so only the
 * *critical* pages (control structures, indices, communication
 * buffers) actually need the copy.  This model assigns every trace
 * job an application class and a tolerant-page fraction - both pure
 * seeded hashes of the job id, so the assignment is a deterministic
 * function of (config, job) with no RNG stream consumed: the same
 * seed always produces the identical page-class map, which is what
 * lets the cluster simulator, the SDC audit, and a resumed snapshot
 * all agree on which page a UE struck.
 */

#ifndef HDMR_WORKLOADS_CRITICALITY_HH
#define HDMR_WORKLOADS_CRITICALITY_HH

#include <array>
#include <cstdint>

#include "util/status.hh"

namespace hdmr::wl
{

/** Application classes by memory-error tolerance. */
inline constexpr unsigned kAppClassCount = 3;

/** Printable name of an application class. */
const char *appClassName(unsigned app_class);

/** Tuning of the deterministic criticality assignment. */
struct CriticalityConfig
{
    /** Seed of every per-job and per-page hash draw. */
    std::uint64_t seed = 0xc2171ca1u;
    /**
     * Job-population mix across the application classes
     * (0: iterative solvers - HPCG/AMG-like, most pages tolerant;
     *  1: sampling/analytics - Graph500/Quicksilver-like;
     *  2: control-heavy - Linpack/LULESH-like, mostly critical).
     * Must be finite, non-negative, and sum to ~1.
     */
    std::array<double, kAppClassCount> classWeights = {0.40, 0.35,
                                                       0.25};
    /** Mean tolerant-page fraction per application class. */
    std::array<double, kAppClassCount> tolerantMean = {0.75, 0.55,
                                                       0.20};
    /** Uniform half-width jitter around the class mean (per job). */
    double tolerantJitter = 0.10;

    /**
     * One-pass validation; returns kInvalidArgument naming the
     * offending field.  CriticalityModel's constructor checkOk()s it.
     */
    util::Status validate() const;

    /** SplitMix64-chained fingerprint of every field. */
    std::uint64_t digest() const;
};

/** The criticality assignment of one job. */
struct JobCriticality
{
    unsigned appClass = 0;
    /** Fraction of the job's pages that are error-tolerant. */
    double tolerantFraction = 0.0;
};

/**
 * Deterministic page-class draw shared by the placement layer and the
 * SDC audit: true when page `page` of the scope identified by
 * (seed, scope) is error-tolerant at `tolerant_fraction`.  A pure
 * function - no RNG stream is consumed - so every consumer (and every
 * resumed snapshot) sees the identical page-class map.
 */
bool pageIsTolerant(std::uint64_t seed, std::uint64_t scope,
                    std::uint64_t page, double tolerant_fraction);

/** Assigns application classes and page-class maps to jobs. */
class CriticalityModel
{
  public:
    /** Validates `config` (fatal on rejection). */
    explicit CriticalityModel(const CriticalityConfig &config);

    /** The (pure-hash) criticality assignment of job `job_id`. */
    JobCriticality jobCriticality(std::uint32_t job_id) const;

    /** Page-class draw under job `job_id`'s own scope. */
    bool pageTolerant(std::uint32_t job_id, std::uint64_t page,
                      double tolerant_fraction) const;

    const CriticalityConfig &config() const { return config_; }

  private:
    CriticalityConfig config_;
};

} // namespace hdmr::wl

#endif // HDMR_WORKLOADS_CRITICALITY_HH
