/**
 * @file
 * The instruction-segment stream interface between workload models
 * and the core model.  A stream yields compute bursts, loads, stores,
 * and MPI communication phases; the core turns them into time.
 */

#ifndef HDMR_WORKLOADS_STREAM_HH
#define HDMR_WORKLOADS_STREAM_HH

#include <cstdint>

#include "util/units.hh"

namespace hdmr::wl
{

/** One unit of work handed to the core. */
struct Op
{
    enum class Kind : std::uint8_t
    {
        kCompute, ///< `count` ALU/FP instructions
        kLoad,    ///< one load instruction at `address`
        kStore,   ///< one store instruction at `address`
        kComm,    ///< MPI communication phase of `duration` ticks
    };

    Kind kind = Kind::kCompute;
    std::uint32_t count = 0;
    std::uint64_t address = 0;
    util::Tick duration = 0;
};

/** A finite stream of ops; one instance per simulated core/rank. */
class AccessStream
{
  public:
    virtual ~AccessStream() = default;

    /** Produce the next op; false when the stream is exhausted. */
    virtual bool next(Op &op) = 0;
};

} // namespace hdmr::wl

#endif // HDMR_WORKLOADS_STREAM_HH
