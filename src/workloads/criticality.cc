#include "workloads/criticality.hh"

#include <cmath>

#include "util/logging.hh"

namespace hdmr::wl
{

namespace
{

/** SplitMix64 finalizer: cheap, well-mixed 64 -> 64 hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Map a hash to a uniform double in [0, 1). */
double
unitUniform(std::uint64_t hash)
{
    return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

} // namespace

const char *
appClassName(unsigned app_class)
{
    switch (app_class) {
      case 0:
        return "solver";
      case 1:
        return "analytics";
      case 2:
        return "control";
      default:
        return "unknown";
    }
}

util::Status
CriticalityConfig::validate() const
{
    double weight_sum = 0.0;
    for (unsigned c = 0; c < kAppClassCount; ++c) {
        const double w = classWeights[c];
        if (!std::isfinite(w) || !(w >= 0.0) || w > 1.0)
            return util::invalidArgument(
                "CriticalityConfig.classWeights[%u] must be a finite "
                "fraction in [0, 1] (got %g)",
                c, w);
        weight_sum += w;
        const double mean = tolerantMean[c];
        if (!std::isfinite(mean) || !(mean >= 0.0) || mean > 1.0)
            return util::invalidArgument(
                "CriticalityConfig.tolerantMean[%u] must be a finite "
                "fraction in [0, 1] (got %g)",
                c, mean);
    }
    if (std::abs(weight_sum - 1.0) > 1e-6)
        return util::invalidArgument(
            "CriticalityConfig.classWeights must sum to 1 (got %g)",
            weight_sum);
    if (!std::isfinite(tolerantJitter) || !(tolerantJitter >= 0.0) ||
        tolerantJitter > 0.5)
        return util::invalidArgument(
            "CriticalityConfig.tolerantJitter must be a finite "
            "half-width in [0, 0.5] (got %g)",
            tolerantJitter);
    return util::Status{};
}

std::uint64_t
CriticalityConfig::digest() const
{
    const auto double_bits = [](double value) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(value));
        __builtin_memcpy(&bits, &value, sizeof(bits));
        return bits;
    };
    std::uint64_t fp = mix64(0xc217u ^ seed);
    for (unsigned c = 0; c < kAppClassCount; ++c) {
        fp = mix64(fp ^ double_bits(classWeights[c]));
        fp = mix64(fp ^ double_bits(tolerantMean[c]));
    }
    return mix64(fp ^ double_bits(tolerantJitter));
}

bool
pageIsTolerant(std::uint64_t seed, std::uint64_t scope,
               std::uint64_t page, double tolerant_fraction)
{
    if (!(tolerant_fraction > 0.0))
        return false;
    if (tolerant_fraction >= 1.0)
        return true;
    const std::uint64_t draw =
        mix64(seed ^ mix64(scope ^ 0x7a9eULL) ^ mix64(page));
    return unitUniform(draw) < tolerant_fraction;
}

CriticalityModel::CriticalityModel(const CriticalityConfig &config)
    : config_(config)
{
    util::checkOk(config_.validate());
}

JobCriticality
CriticalityModel::jobCriticality(std::uint32_t job_id) const
{
    JobCriticality crit;

    // Class draw: invert the cumulative class-weight distribution.
    const double class_u = unitUniform(
        mix64(config_.seed ^ mix64(job_id ^ 0xc1a55ULL)));
    double cumulative = 0.0;
    crit.appClass = kAppClassCount - 1;
    for (unsigned c = 0; c < kAppClassCount; ++c) {
        cumulative += config_.classWeights[c];
        if (class_u < cumulative) {
            crit.appClass = c;
            break;
        }
    }

    // Fraction draw: the class mean jittered per job, clamped to a
    // valid fraction.
    const double jitter_u = unitUniform(
        mix64(config_.seed ^ mix64(job_id ^ 0xf2acULL)));
    const double fraction =
        config_.tolerantMean[crit.appClass] +
        (jitter_u * 2.0 - 1.0) * config_.tolerantJitter;
    crit.tolerantFraction = std::min(1.0, std::max(0.0, fraction));
    return crit;
}

bool
CriticalityModel::pageTolerant(std::uint32_t job_id,
                               std::uint64_t page,
                               double tolerant_fraction) const
{
    return pageIsTolerant(config_.seed, job_id, page,
                          tolerant_fraction);
}

} // namespace hdmr::wl
