/**
 * @file
 * Synthetic models of the paper's six HPC benchmark suites (Section
 * II-B): Linpack, HPCG, Graph500, CORAL-2 (AMG, Quicksilver, Pennant,
 * Nekbone), LULESH and NPB (BT/CG/FT/LU/MG/SP).
 *
 * Each benchmark is a parameterized address/compute stream whose
 * fingerprints are calibrated against the paper's observables: the
 * Fig. 15 DRAM bandwidth utilizations and read/write mix (~15 %
 * writes), Graph500's latency-bound random access, HPCG/AMG's
 * bandwidth-boundness, and ~13 % of core-hours in MPI communication
 * under Memory Hierarchy 1.  Every simulated core runs one MPI rank
 * (SPMD) over a private working set, with periodic communication
 * phases whose absolute duration does not shrink when memory gets
 * faster - which is what makes speedups Amdahl-limited, as on the
 * real machine.
 */

#ifndef HDMR_WORKLOADS_HPC_WORKLOADS_HH
#define HDMR_WORKLOADS_HPC_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "workloads/stream.hh"

namespace hdmr::wl
{

/** Tuning knobs of one synthetic benchmark. */
struct WorkloadParams
{
    std::string name;
    std::string suite;
    /** Mean compute instructions between memory instructions. */
    double computePerMemOp = 10.0;
    /** Fraction of memory instructions that are stores. */
    double writeFraction = 0.15;
    /** Per-rank working set in MiB. */
    double workingSetMiB = 64.0;
    /** Access-pattern mix; the remainder is uniform-random. */
    double seqFraction = 0.6;
    double stridedFraction = 0.2;
    unsigned strideBytes = 512;
    /** Target fraction of baseline time in MPI communication. */
    double mpiFraction = 0.13;
    /** Rough baseline ns per memory op, used to size comm phases. */
    double estimatedNsPerMemOp = 6.0;

    /**
     * Phase-heavy write behaviour: every `writeBurstPeriodOps` memory
     * ops open a burst window of `writeBurstDuty` x the period during
     * which the store share jumps to `writeBurstFraction`; outside the
     * window it drops so the long-run mean stays `writeFraction`.
     * Models checkpoint/output phases (the mix adaptive monitoring
     * exploits).  0 disables bursts - the stream is then bit-identical
     * to one generated without these knobs.
     */
    std::uint64_t writeBurstPeriodOps = 0;
    double writeBurstDuty = 0.2;
    double writeBurstFraction = 0.6;
    /**
     * Checkpoint-wait phase: when a write burst closes, the rank sits
     * in a comm phase this long (the barrier / IO-completion wait that
     * follows writing a checkpoint).  Because bursts are indexed on
     * the op count, all ranks close bursts at the same op index, so
     * these waits roughly align across the node - the genuinely idle
     * windows quiet-phase operation schemes exploit.  0 disables the
     * wait; the op stream is then bit-identical to one generated
     * without it (comm ops consume no RNG draws).
     */
    double checkpointWaitUs = 0.0;
};

/** The synthetic benchmark stream for one rank. */
class SyntheticHpcStream : public AccessStream
{
  public:
    /**
     * @param params     benchmark tuning
     * @param rank       MPI rank / core id (address-space isolation)
     * @param mem_ops    stream length in memory operations
     * @param seed       RNG seed (combined with rank)
     */
    SyntheticHpcStream(const WorkloadParams &params, unsigned rank,
                       std::uint64_t mem_ops, std::uint64_t seed);

    bool next(Op &op) override;

    const WorkloadParams &params() const { return params_; }

  private:
    enum class Phase : std::uint8_t
    {
        kCompute,
        kMemory,
        kComm,
    };

    std::uint64_t generateAddress(bool is_store);

    WorkloadParams params_;
    util::Rng rng_;
    std::uint64_t remainingOps_;
    std::uint64_t base_;       ///< rank-private address-space base
    std::uint64_t regionSize_; ///< bytes per array region
    std::uint64_t seqCursor_ = 0;
    std::uint64_t strideCursor_ = 0;
    std::uint64_t storeCursor_ = 0;
    std::uint64_t opsSinceComm_ = 0;
    std::uint64_t memOpsEmitted_ = 0;
    bool inBurstWindow_ = false;
    std::uint64_t opsPerIteration_;
    util::Tick commDuration_;
    Phase phase_ = Phase::kCompute;

    static constexpr unsigned kRegions = 4;
};

/** All benchmarks of the study, grouped by suite. */
const std::vector<WorkloadParams> &benchmarkCatalog();

/** Catalog entries belonging to one suite. */
std::vector<WorkloadParams> benchmarksInSuite(const std::string &suite);

/** The six suite names in the paper's order. */
const std::vector<std::string> &suiteNames();

/** Look up one benchmark by name; fatals on a typo. */
const WorkloadParams &benchmarkByName(const std::string &name);

} // namespace hdmr::wl

#endif // HDMR_WORKLOADS_HPC_WORKLOADS_HH
