#include "workloads/hpc_workloads.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::wl
{

SyntheticHpcStream::SyntheticHpcStream(const WorkloadParams &params,
                                       unsigned rank,
                                       std::uint64_t mem_ops,
                                       std::uint64_t seed)
    : params_(params), rng_(seed * 0x9e3779b97f4a7c15ULL + rank + 1),
      remainingOps_(mem_ops),
      base_((static_cast<std::uint64_t>(rank) + 1) << 34),
      opsPerIteration_(5000)
{
    const std::uint64_t ws_bytes = static_cast<std::uint64_t>(
        params_.workingSetMiB * 1024.0 * 1024.0);
    regionSize_ = std::max<std::uint64_t>(ws_bytes / kRegions, 1 << 20);

    // Size the communication phase so that, at the estimated baseline
    // speed, comm time / total time ~= mpiFraction.  The duration is
    // absolute: faster memory shrinks compute but not communication.
    const double iter_ns = static_cast<double>(opsPerIteration_) *
                           params_.estimatedNsPerMemOp;
    const double comm_ns = iter_ns * params_.mpiFraction /
                           (1.0 - params_.mpiFraction);
    commDuration_ = util::nsToTicks(comm_ns);
}

std::uint64_t
SyntheticHpcStream::generateAddress(bool is_store)
{
    if (is_store) {
        // Streaming stores into a dedicated output region, 16 B apart
        // (vectorized output: a line fills in four stores, which puts
        // the DRAM write share near the paper's ~15 % of traffic).
        storeCursor_ = (storeCursor_ + 16) % regionSize_;
        return base_ + 3 * regionSize_ + storeCursor_;
    }

    const double draw = rng_.uniform();
    if (draw < params_.seqFraction) {
        // Sequential 8-byte walk over region 0 (cache/prefetch
        // friendly; one line miss per eight accesses).
        seqCursor_ = (seqCursor_ + 8) % regionSize_;
        return base_ + seqCursor_;
    }
    if (draw < params_.seqFraction + params_.stridedFraction) {
        // Strided walk over region 1 (misses every access; the stride
        // prefetcher can cover it).
        strideCursor_ =
            (strideCursor_ + params_.strideBytes) % regionSize_;
        return base_ + regionSize_ + strideCursor_;
    }
    // Random line in region 2 (graph/sparse-index behaviour).
    const std::uint64_t lines = regionSize_ / 64;
    const std::uint64_t line = rng_.uniformInt(0, lines - 1);
    return base_ + 2 * regionSize_ + line * 64 +
           8 * rng_.uniformInt(0, 7);
}

bool
SyntheticHpcStream::next(Op &op)
{
    if (remainingOps_ == 0 && phase_ != Phase::kComm)
        return false;

    switch (phase_) {
      case Phase::kCompute:
        op.kind = Op::Kind::kCompute;
        op.count = static_cast<std::uint32_t>(
            rng_.poisson(params_.computePerMemOp));
        phase_ = Phase::kMemory;
        return true;

      case Phase::kMemory: {
        // Phase-heavy write bursts: modulate the store share inside /
        // outside the burst window while keeping the long-run mean at
        // writeFraction.  One bernoulli draw per op either way, so the
        // RNG stream - and therefore every address - is unchanged when
        // the knob is off.
        double wf = params_.writeFraction;
        if (params_.writeBurstPeriodOps > 0) {
            const std::uint64_t phase_ops =
                memOpsEmitted_ % params_.writeBurstPeriodOps;
            const bool in_burst =
                static_cast<double>(phase_ops) <
                params_.writeBurstDuty *
                    static_cast<double>(params_.writeBurstPeriodOps);
            // Burst just closed: the rank waits out the checkpoint
            // barrier before computing on.  Emitted before the next
            // memory op and without touching the RNG, so the access
            // stream is unchanged whether or not the wait is enabled.
            if (inBurstWindow_ && !in_burst &&
                params_.checkpointWaitUs > 0.0) {
                inBurstWindow_ = false;
                op.kind = Op::Kind::kComm;
                op.duration =
                    util::usToTicks(params_.checkpointWaitUs);
                return true;
            }
            inBurstWindow_ = in_burst;
            const double duty = params_.writeBurstDuty;
            wf = in_burst
                     ? params_.writeBurstFraction
                     : std::max(0.0, (params_.writeFraction -
                                      duty * params_.writeBurstFraction) /
                                         (1.0 - duty));
        }
        const bool is_store = rng_.bernoulli(wf);
        op.kind = is_store ? Op::Kind::kStore : Op::Kind::kLoad;
        op.address = generateAddress(is_store);
        --remainingOps_;
        ++opsSinceComm_;
        ++memOpsEmitted_;
        phase_ = (opsSinceComm_ >= opsPerIteration_ ||
                  remainingOps_ == 0)
                     ? Phase::kComm
                     : Phase::kCompute;
        return true;
      }

      case Phase::kComm:
        op.kind = Op::Kind::kComm;
        op.duration = commDuration_;
        opsSinceComm_ = 0;
        phase_ = Phase::kCompute;
        return true;
    }
    util::panic("unreachable workload phase");
}

namespace
{

WorkloadParams
make(const char *name, const char *suite, double cpm, double wf,
     double ws_mib, double seq, double strided, unsigned stride,
     double mpi, double est_ns)
{
    WorkloadParams p;
    p.name = name;
    p.suite = suite;
    p.computePerMemOp = cpm;
    p.writeFraction = wf;
    p.workingSetMiB = ws_mib;
    p.seqFraction = seq;
    p.stridedFraction = strided;
    p.strideBytes = stride;
    p.mpiFraction = mpi;
    p.estimatedNsPerMemOp = est_ns;
    return p;
}

} // anonymous namespace

const std::vector<WorkloadParams> &
benchmarkCatalog()
{
    static const std::vector<WorkloadParams> catalog = {
        // name        suite       cpm   wf   wsMiB  seq  strd stride mpi  ns/op
        make("linpack", "Linpack", 42.0, 0.12, 48.0, 0.85, 0.10, 512, 0.10, 6.0),
        make("hpcg", "HPCG", 10.0, 0.12, 96.0, 0.70, 0.15, 128, 0.12, 4.5),
        make("bfs", "Graph500", 15.0, 0.08, 128.0, 0.10, 0.00, 512, 0.18, 16.0),
        make("amg", "CORAL2", 12.0, 0.15, 80.0, 0.65, 0.15, 256, 0.14, 5.0),
        make("quicksilver", "CORAL2", 27.0, 0.12, 64.0, 0.35, 0.15, 384, 0.12, 8.0),
        make("pennant", "CORAL2", 22.0, 0.15, 64.0, 0.60, 0.20, 256, 0.12, 6.0),
        make("nekbone", "CORAL2", 36.0, 0.12, 48.0, 0.80, 0.10, 512, 0.12, 6.0),
        make("lulesh", "LULESH", 24.0, 0.18, 64.0, 0.60, 0.25, 320, 0.14, 6.0),
        make("bt", "NPB", 32.0, 0.20, 56.0, 0.75, 0.15, 512, 0.10, 6.0),
        make("cg", "NPB", 12.0, 0.10, 96.0, 0.45, 0.10, 256, 0.14, 7.0),
        make("ft", "NPB", 18.0, 0.22, 80.0, 0.75, 0.20, 4096, 0.16, 6.0),
        make("lu", "NPB", 26.0, 0.18, 56.0, 0.70, 0.15, 512, 0.12, 6.0),
        make("mg", "NPB", 14.0, 0.15, 96.0, 0.70, 0.25, 1024, 0.13, 5.5),
        make("sp", "NPB", 28.0, 0.20, 64.0, 0.75, 0.15, 512, 0.11, 6.0),
    };
    return catalog;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> suites = {
        "Linpack", "HPCG", "Graph500", "CORAL2", "LULESH", "NPB",
    };
    return suites;
}

std::vector<WorkloadParams>
benchmarksInSuite(const std::string &suite)
{
    std::vector<WorkloadParams> out;
    for (const auto &p : benchmarkCatalog())
        if (p.suite == suite)
            out.push_back(p);
    return out;
}

const WorkloadParams &
benchmarkByName(const std::string &name)
{
    for (const auto &p : benchmarkCatalog())
        if (p.name == name)
            return p;
    util::fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace hdmr::wl
