#include "core/placement.hh"

#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace hdmr::core
{

namespace
{

/** SplitMix64 finalizer, used to chain the policy fingerprint. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
doubleBits(double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

} // namespace

const char *
toString(PlacementMode mode)
{
    switch (mode) {
      case PlacementMode::kHeteroDmr:
        return "hetero-dmr";
      case PlacementMode::kHetReliability:
        return "het-reliability";
      case PlacementMode::kHybrid:
        return "hybrid";
    }
    return "unknown";
}

util::Status
PlacementPolicy::validate() const
{
    if (mode != PlacementMode::kHeteroDmr &&
        mode != PlacementMode::kHetReliability &&
        mode != PlacementMode::kHybrid)
        return util::invalidArgument(
            "PlacementPolicy.mode %u is not a known placement mode",
            static_cast<unsigned>(mode));
    if (!std::isfinite(hybridTolerantThreshold) ||
        !(hybridTolerantThreshold >= 0.0) ||
        hybridTolerantThreshold > 1.0)
        return util::invalidArgument(
            "PlacementPolicy.hybridTolerantThreshold must be a "
            "finite fraction in [0, 1] (got %g)",
            hybridTolerantThreshold);
    if (!std::isfinite(degradePenalty) || !(degradePenalty >= 0.0))
        return util::invalidArgument(
            "PlacementPolicy.degradePenalty must be finite and >= 0 "
            "(got %g)",
            degradePenalty);
    double previous = 0.0;
    for (std::size_t u = 0; u < usageRepresentative.size(); ++u) {
        const double rep = usageRepresentative[u];
        if (!std::isfinite(rep) || !(rep > 0.0) || rep > 1.0)
            return util::invalidArgument(
                "PlacementPolicy.usageRepresentative[%zu] must be a "
                "finite utilization in (0, 1] (got %g)",
                u, rep);
        if (rep < previous)
            return util::invalidArgument(
                "PlacementPolicy.usageRepresentative[%zu] (%g) must "
                "not decrease: usage classes are ordered",
                u, rep);
        previous = rep;
    }
    return util::Status{};
}

bool
PlacementPolicy::unreplicatedTolerant(double tolerant_fraction) const
{
    switch (mode) {
      case PlacementMode::kHeteroDmr:
        return false;
      case PlacementMode::kHetReliability:
        return tolerant_fraction > 0.0;
      case PlacementMode::kHybrid:
        return tolerant_fraction >= hybridTolerantThreshold &&
               tolerant_fraction > 0.0;
    }
    return false;
}

double
PlacementPolicy::replicatedShare(double tolerant_fraction) const
{
    return unreplicatedTolerant(tolerant_fraction)
               ? 1.0 - tolerant_fraction
               : 1.0;
}

bool
PlacementPolicy::marginEligible(unsigned usage_class,
                                double tolerant_fraction) const
{
    if (!unreplicatedTolerant(tolerant_fraction)) {
        // Full Hetero-DMR: the whole footprint needs a copy, so only
        // the <50 % usage classes replicate (Section IV-A).
        return usage_class < 2;
    }
    // HRM: only the critical share needs the copy; the free half of
    // the module pair must hold it.
    const unsigned clamped = usage_class < 3 ? usage_class : 2;
    return usageRepresentative[clamped] *
               replicatedShare(tolerant_fraction) <
           0.5;
}

double
PlacementPolicy::tolerantStrikeProbability(
    double tolerant_fraction) const
{
    if (!unreplicatedTolerant(tolerant_fraction))
        return 0.0;
    // Margin UEs strike pages uniformly; under HRM the tolerant share
    // of the footprint is exactly the unprotected share.
    return std::min(1.0, std::max(0.0, tolerant_fraction));
}

UeOutcome
PlacementPolicy::outcomeFor(bool tolerant_page) const
{
    if (tolerant_page && mode != PlacementMode::kHeteroDmr)
        return UeOutcome::kDegradeContinue;
    return UeOutcome::kKillRequeue;
}

std::uint64_t
PlacementPolicy::digest() const
{
    std::uint64_t fp = mix64(0x914c ^ static_cast<unsigned>(mode));
    fp = mix64(fp ^ doubleBits(hybridTolerantThreshold));
    fp = mix64(fp ^ doubleBits(degradePenalty));
    for (const double rep : usageRepresentative)
        fp = mix64(fp ^ doubleBits(rep));
    return fp;
}

} // namespace hdmr::core
