/**
 * @file
 * The Hetero-DMR per-channel mode controller (Sections III-A, III-C,
 * III-E), which also serves as the generic write path for the
 * baseline designs.
 *
 * It owns the channel's 128 KB victim write-back cache, routes LLC
 * dirty evictions into it, triggers write-mode entry when the victim
 * cache fills, refills the (small) write buffer during write mode -
 * including Hetero-DMR's proactive cleaning of up to 12,800
 * least-recently-used dirty LLC lines per window - and manages the
 * heterogeneous operation itself: unsafely fast read-mode timing,
 * specification write-mode timing, 1 us JEDEC-compliant frequency
 * transitions (Figs. 9/10), self-refresh parking of the original
 * ranks during read mode (Fig. 8b), detected-error recovery costing,
 * and the SDC epoch guard.
 */

#ifndef HDMR_CORE_MODE_CONTROLLER_HH
#define HDMR_CORE_MODE_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "cache/cache.hh"
#include "cache/writeback_cache.hh"
#include "core/epoch_guard.hh"
#include "core/replication.hh"
#include "dram/controller.hh"
#include "sim/event_queue.hh"

namespace hdmr::core
{

/** Mode-controller configuration. */
struct ModeControllerConfig
{
    /** Write-mode (always-safe) operating setting. */
    dram::MemorySetting specSetting;
    /** Read-mode setting; equals specSetting for non-Hetero designs. */
    dram::MemorySetting fastSetting;
    /** Channel replication plan. */
    ChannelPlan plan;
    /**
     * Latency of scaling channel frequency down or up (Figs. 9/10);
     * applied as the read<->write mode switch cost when the plan runs
     * fast reads.  Non-fast designs use the plain bus-turnaround.
     */
    util::Tick frequencyTransitionLatency = util::usToTicks(1.0);
    /** Plain bus turnaround for non-fast designs. */
    util::Tick busTurnaround = 7500;
    /** LLC lines proactively cleaned per write-mode window. */
    std::size_t cleanLinesPerWriteMode = 12800;
    /** Probability a fast read returns a detected-corrupt block. */
    double readErrorProbability = 0.0;
    /** Cost of the slow-down/read-original/overwrite recovery flow. */
    util::Tick errorRecoveryLatency = 2200000;
    /** Victim write-back cache geometry. */
    cache::WritebackCacheConfig writebackCacheConfig;
    /** Epoch-guard parameters. */
    EpochGuardConfig epochConfig;
    /** Victim-cache fill fraction that triggers write mode. */
    double writeModeTriggerFill = 0.9;
};

/** Mode-controller statistics. */
struct ModeControllerStats
{
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t cleanedLines = 0;
    std::uint64_t corrections = 0; ///< detected errors recovered
    std::uint64_t epochTrips = 0;
    std::uint64_t fastDisabledTicks = 0;
};

/** The per-channel mode controller / write path. */
class ModeController
{
  public:
    /**
     * @param events         simulation event queue
     * @param controller     the channel's memory controller
     * @param llc            the shared LLC (for proactive cleaning);
     *                       may be nullptr to disable cleaning
     * @param channel_filter true for addresses mapped to this channel
     * @param config         see above
     */
    ModeController(sim::EventQueue &events,
                   dram::MemoryController &controller,
                   cache::Cache *llc,
                   std::function<bool(std::uint64_t)> channel_filter,
                   ModeControllerConfig config);

    ~ModeController();

    /** Route one LLC dirty eviction into the write path. */
    void handleDirtyEviction(std::uint64_t address);

    /** Flush everything (end of run): force a final drain. */
    void flush();

    const ModeControllerStats &stats() const { return stats_; }
    const cache::WritebackCache &writebackCache() const { return wbCache_; }
    const EpochGuard &epochGuard() const { return guard_; }
    bool fastOperationEnabled() const { return fastEnabled_; }

    /** The controller configuration this mode controller installs. */
    static dram::ControllerConfig
    buildControllerConfig(const ModeControllerConfig &config,
                          std::uint64_t seed);

  private:
    std::size_t refillWrites(std::size_t space);
    void onWriteModeEnter();
    void onWriteModeExit();
    void onReadError();
    void disableFastOperation();
    void reenableFastOperation();
    void enqueueWriteNow(std::uint64_t address);

    sim::EventQueue &events_;
    dram::MemoryController &controller_;
    cache::Cache *llc_;
    std::function<bool(std::uint64_t)> channelFilter_;
    ModeControllerConfig config_;

    cache::WritebackCache wbCache_;
    std::deque<std::uint64_t> overflow_; ///< victim-cache spill
    std::size_t cleanBudget_ = 0;
    bool fastEnabled_ = false;
    util::Tick fastDisabledAt_ = 0;

    sim::CallbackEvent reenableEvent_;
    EpochGuard guard_;
    ModeControllerStats stats_;
};

} // namespace hdmr::core

#endif // HDMR_CORE_MODE_CONTROLLER_HH
