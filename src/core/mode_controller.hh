/**
 * @file
 * The Hetero-DMR per-channel mode controller (Sections III-A, III-C,
 * III-E), which also serves as the generic write path for the
 * baseline designs.
 *
 * It owns the channel's 128 KB victim write-back cache, routes LLC
 * dirty evictions into it, triggers write-mode entry when the victim
 * cache fills, refills the (small) write buffer during write mode -
 * including Hetero-DMR's proactive cleaning of up to 12,800
 * least-recently-used dirty LLC lines per window - and manages the
 * heterogeneous operation itself: unsafely fast read-mode timing,
 * specification write-mode timing, 1 us JEDEC-compliant frequency
 * transitions (Figs. 9/10), self-refresh parking of the original
 * ranks during read mode (Fig. 8b), detected-error recovery costing,
 * and the SDC epoch guard.
 */

#ifndef HDMR_CORE_MODE_CONTROLLER_HH
#define HDMR_CORE_MODE_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "cache/cache.hh"
#include "cache/writeback_cache.hh"
#include "core/epoch_guard.hh"
#include "core/replication.hh"
#include "dram/controller.hh"
#include "sim/event_queue.hh"
#include "util/rng.hh"
#include "util/status.hh"

namespace hdmr::core
{

/**
 * Module-quarantine / margin-demotion policy (fault-tolerance layer).
 *
 * A channel whose margin assumption turns out to be wrong - evidenced
 * by repeated recovery events or by the SDC epoch guard tripping in
 * consecutive epochs - is *demoted*: its fast setting is permanently
 * lowered one 200 MT/s step (with a modelled re-profiling downtime),
 * and once the fast setting reaches specification the channel is
 * *quarantined*: it never runs fast again.  Both triggers default to
 * disabled (0), in which case behaviour is identical to the seed.
 */
struct QuarantinePolicy
{
    /** Demote after this many recovery/UE events; 0 disables. */
    unsigned demoteAfterRecoveries = 0;
    /** Demote after this many consecutive tripped epochs; 0 disables. */
    unsigned demoteAfterTripStreak = 0;
    /** Fast-setting reduction per demotion. */
    unsigned demoteStepMts = 200;
    /**
     * Error-probability scale per demotion step: one step less
     * overshoot divides the error rate by roughly the margin model's
     * per-step growth factor (ErrorModelParams::growthPerStep).
     */
    double demotionErrorFactor = 1.0 / 30.0;
    /** Error-probability growth per 200 MT/s of margin *drift*. */
    double driftErrorGrowthPerStep = 30.0;
    /** Error probability a drifting but previously clean channel gets. */
    double driftFloorErrorProbability = 1.0e-8;
    /** Downtime modelling the re-profiling sweep after a demotion. */
    util::Tick reprofileDowntime = 100 * util::kTicksPerUs;
};

/**
 * The hardened recovery ladder (robustness layer over Section III-C's
 * recovery flow).
 *
 * The baseline recovery path is one rung: slow to specification, read
 * the original, overwrite the copy.  When that read *also* fails the
 * seed escalated straight to an uncorrectable error.  The ladder adds
 * bounded retries with exponential backoff - each retry re-reads the
 * original at specification, so the channel is held at spec for the
 * backoff window - and an explicit sliding-window error budget: a
 * channel whose *detected*-error arrivals exceed the budget gets fed
 * into the existing demotion/quarantine policy even if no single epoch
 * trips the SDC guard.  All knobs default to disabled (0), in which
 * case behaviour is bit-identical to the seed.
 */
struct RecoveryLadderConfig
{
    /** Retry rungs after the first failed recovery; 0 = escalate
     *  immediately (seed behaviour). */
    unsigned retryAttempts = 0;
    /** Probability an individual retry read also fails. */
    double retryFailureProbability = 0.5;
    /** Channel-at-spec window paid by the first retry. */
    util::Tick retryBackoff = 2200000;
    /** Backoff growth per further retry (exponential backoff). */
    double backoffFactor = 2.0;
    /** Seed of the ladder's private retry-outcome stream. */
    std::uint64_t seed = 0x1adde5u;
    /** Sliding error-budget window; 0 disables the budget. */
    util::Tick errorBudgetWindow = 0;
    /** Detected errors tolerated inside the window before the channel
     *  is demoted; only meaningful with a non-zero window. */
    std::uint64_t errorBudgetLimit = 0;
};

/**
 * Online guard-band recalibration policy (margin-drift resilience
 * layer).
 *
 * A channel's profiled margin is only as good as the day it was
 * measured; aging, temperature and voltage noise all move it.  The
 * recalibration loop watches the channel's *observed* detected-error
 * rate over fixed windows and walks the guard band after the evidence:
 * a channel persistently above its error budget is demoted one step
 * (through the existing quarantine policy), and a previously demoted
 * channel persistently below it earns a re-qualification probe that
 * can promote it one step back toward its qualified rate.  Hysteresis
 * (consecutive out-of-band windows required before acting, strict
 * threshold comparisons, and a promote band well below the demote
 * band) keeps an error rate oscillating at a threshold from flapping
 * the operating point.  `windowTicks = 0` disables the whole loop -
 * no events are scheduled and behaviour is bit-identical to the seed.
 */
struct RecalibrationPolicy
{
    /** Observation-window length; 0 disables recalibration. */
    util::Tick windowTicks = 0;
    /** Detected errors per window the margin classification budgets. */
    double targetErrorsPerWindow = 4.0;
    /** Demote evidence: observed > target * demoteBand (strict). */
    double demoteBand = 2.0;
    /** Promote evidence: observed < target * promoteBand (strict). */
    double promoteBand = 0.25;
    /** Consecutive out-of-band windows required before acting. */
    unsigned hysteresisWindows = 2;
    /** Downtime of one re-qualification probe sweep (channel held at
     *  specification while the candidate step is swept). */
    util::Tick probeDowntime = 100 * util::kTicksPerUs;
    /** Probability a probe finds the candidate step still unstable. */
    double probeFailureProbability = 0.0;
    /** Consecutive recalibration demotions (with no in-band window
     *  between them) after which drift is judged to be outrunning
     *  recalibration and the channel is escalated straight into
     *  quarantine.  0 disables escalation. */
    unsigned escalateAfterDemotions = 0;
    /** Seed of the private probe-outcome stream. */
    std::uint64_t seed = 0x2eca1u;

    /**
     * Reject impossible policies (NaN/negative budgets, inverted
     * hysteresis bands, zero hysteresis depth, out-of-range probe
     * probability) with kInvalidArgument naming the offending field;
     * one pass, first offender wins.  ModeController's constructor
     * checkOk()s it.
     */
    util::Status validate() const;
};

/** Mode-controller configuration. */
struct ModeControllerConfig
{
    /** Write-mode (always-safe) operating setting. */
    dram::MemorySetting specSetting;
    /** Read-mode setting; equals specSetting for non-Hetero designs. */
    dram::MemorySetting fastSetting;
    /**
     * Data rate the module qualified at during profiling; 0 means the
     * fastSetting rate.  When fastSetting starts below this - a static
     * guard band held back at deployment - promote() can re-earn the
     * difference in demoteStepMts steps at runtime (monitor scheme or
     * recalibration evidence), up to this rate and never beyond it.
     */
    unsigned qualifiedFastRateMts = 0;
    /** Channel replication plan. */
    ChannelPlan plan;
    /**
     * Latency of scaling channel frequency down or up (Figs. 9/10);
     * applied as the read<->write mode switch cost when the plan runs
     * fast reads.  Non-fast designs use the plain bus-turnaround.
     */
    util::Tick frequencyTransitionLatency = util::usToTicks(1.0);
    /** Plain bus turnaround for non-fast designs. */
    util::Tick busTurnaround = 7500;
    /** LLC lines proactively cleaned per write-mode window. */
    std::size_t cleanLinesPerWriteMode = 12800;
    /** Probability a fast read returns a detected-corrupt block. */
    double readErrorProbability = 0.0;
    /** Cost of the slow-down/read-original/overwrite recovery flow. */
    util::Tick errorRecoveryLatency = 2200000;
    /** Probability the recovery read of the original also fails (UE). */
    double recoveryFailureProbability = 0.0;
    /** Quarantine / margin-demotion policy. */
    QuarantinePolicy quarantine;
    /** Hardened recovery ladder (retries + error budget). */
    RecoveryLadderConfig ladder;
    /** Online guard-band recalibration loop. */
    RecalibrationPolicy recalibration;
    /** Victim write-back cache geometry. */
    cache::WritebackCacheConfig writebackCacheConfig;
    /** Epoch-guard parameters. */
    EpochGuardConfig epochConfig;
    /** Victim-cache fill fraction that triggers write mode. */
    double writeModeTriggerFill = 0.9;
};

/** Mode-controller statistics. */
struct ModeControllerStats
{
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t cleanedLines = 0;
    std::uint64_t corrections = 0; ///< detected errors recovered
    std::uint64_t uncorrectedErrors = 0; ///< recoveries that failed (UEs)
    std::uint64_t epochTrips = 0;
    std::uint64_t fastDisabledTicks = 0;
    std::uint64_t demotions = 0;     ///< fast setting permanently lowered
    std::uint64_t quarantines = 0;   ///< demoted all the way to spec
    std::uint64_t marginDriftMts = 0; ///< injected drift absorbed
    util::Tick reprofileTicks = 0;   ///< modelled re-profiling downtime
    std::uint64_t ladderRetries = 0; ///< retry rungs walked
    std::uint64_t ladderRecoveries = 0; ///< UEs averted by a retry rung
    util::Tick ladderRetryTicks = 0; ///< channel-at-spec backoff paid
    std::uint64_t budgetDemotions = 0; ///< demotions by the error budget
    std::uint64_t recalWindows = 0;  ///< observation windows evaluated
    std::uint64_t recalDemotions = 0; ///< demotions by recalibration
    std::uint64_t recalPromotions = 0; ///< guard-band steps re-earned
    std::uint64_t recalProbeFailures = 0; ///< probes finding instability
    std::uint64_t recalEscalations = 0; ///< drift outran recalibration
    util::Tick probeTicks = 0;       ///< re-qualification downtime paid
};

/** The per-channel mode controller / write path. */
class ModeController
{
  public:
    /**
     * @param events         simulation event queue
     * @param controller     the channel's memory controller
     * @param llc            the shared LLC (for proactive cleaning);
     *                       may be nullptr to disable cleaning
     * @param channel_filter true for addresses mapped to this channel
     * @param config         see above
     */
    ModeController(sim::EventQueue &events,
                   dram::MemoryController &controller,
                   cache::Cache *llc,
                   std::function<bool(std::uint64_t)> channel_filter,
                   ModeControllerConfig config);

    ~ModeController();

    /** Route one LLC dirty eviction into the write path. */
    void handleDirtyEviction(std::uint64_t address);

    /** Flush everything (end of run): force a final drain. */
    void flush();

    // ---- Monitoring surface (monitor::ActionSink bridge). ----

    /**
     * Drain the accumulated write backlog now (a monitor scheme judged
     * the moment cheap - e.g. the node went quiet).  Requests write
     * mode only when there is anything to write.  The entry this
     * request arms earns `clean_scale` of the configured discretionary
     * cleaning budget instead of the ambient setCleanBudgetScale()
     * level, so a scheme can size the drain's cleaning to the idle
     * window it detected rather than the full configured batch.
     */
    void requestWriteDrain(double clean_scale = 1.0);

    /**
     * Additive boost on the write-mode trigger fill (clamped so the
     * effective trigger stays below 1): while a read-preference scheme
     * holds, the victim cache must fill `boost` further before an
     * eviction trickle can force a write-mode entry.  0 restores the
     * configured trigger; re-applying the current boost is a no-op.
     */
    void setWriteTriggerBoost(double boost);

    /**
     * Scale the SDC epoch length relative to its configured base
     * (guard threshold rescales with it, preserving the MTT-SDC
     * target); 1.0 restores the base length.  Idempotent like the
     * boost.
     */
    void setEpochLengthScale(double scale);

    /**
     * Scale the discretionary LLC-cleaning budget each write-mode
     * window earns (the most deferrable write-side work: cleaning
     * extends the stall now to shrink future batches); clamped to
     * [0, 1], 1.0 restores the configured budget.  Idempotent like
     * the boost.
     */
    void setCleanBudgetScale(double scale);

    /** Trigger boost currently in effect. */
    double writeTriggerBoost() const { return triggerBoost_; }

    /** Cleaning-budget scale currently in effect. */
    double cleanBudgetScale() const { return cleanScale_; }

    const ModeControllerStats &stats() const { return stats_; }
    const cache::WritebackCache &writebackCache() const { return wbCache_; }
    const EpochGuard &epochGuard() const { return guard_; }
    bool fastOperationEnabled() const { return fastEnabled_; }
    bool quarantined() const { return quarantined_; }
    /** Current (possibly demoted) fast-setting data rate. */
    unsigned fastRateMts() const { return config_.fastSetting.dataRateMts; }

    /** Handler for uncorrectable errors (job kill at the node layer). */
    void
    setUncorrectableHandler(std::function<void()> handler)
    {
        onUncorrectable_ = std::move(handler);
    }

    // ---- Fault-injection surface (fault::NodeFaultInjector). ----

    /**
     * Deliver a burst of detected errors (an intermittent module
     * episode): each error is charged to the recovery flow and the SDC
     * epoch guard exactly like an organically detected one.  Ignored
     * while the channel is not running fast (no fast reads, no fast
     * read errors).
     */
    void injectDetectedErrors(std::uint64_t count);

    /** Deliver one uncorrectable error directly. */
    void injectUncorrectable();

    /**
     * Erode the channel's margin by `mts`: the same fast setting now
     * overshoots the (drifted) stable rate, so the error probability
     * grows per the margin model's per-step factor.
     */
    void applyMarginDrift(unsigned mts);

    /**
     * Scale the fast-read error probability by `factor` (45 degC
     * temperature excursion: ~4x; 1.0 restores nominal conditions).
     */
    void setAmbientErrorMultiplier(double factor);

    /** Demote one step now (external policy decision). */
    void demote();

    /**
     * Promote one step back toward the qualified fast rate after a
     * successful re-qualification probe (external policy decision; the
     * recalibration loop calls this internally).  No-op when the
     * channel is quarantined or already at its qualified rate.
     *
     * With `immediate` the new operating point takes effect now by
     * forcing a mode transition (the recalibration probe already paid
     * for a quiesce).  Without it the retiming latches at the next
     * natural mode transition - the right choice for opportunistic
     * monitor-driven promotion, where forcing a transition mid-compute
     * would cost more than the earned margin returns.
     */
    void promote(bool immediate = true);

    /** The fast rate the channel was originally qualified at. */
    unsigned qualifiedFastRateMts() const { return qualifiedFastRateMts_; }

    /** Detected errors observed in the current recalibration window. */
    std::uint64_t recalWindowErrors() const { return windowErrors_; }

    /**
     * Bind observability metrics under `prefix` (e.g. "mode.ch0"):
     * recovery-ladder rung counts, correction/UE counters, the
     * demotion/quarantine policy counters, and the fast-operation
     * residency gauge.  Unbound, each update is one null check.
     */
    void bindTelemetry(telemetry::Registry &registry,
                       const std::string &prefix);

    /** Emit UE-escalation/demotion/quarantine instants on `trace`. */
    void bindTrace(telemetry::TraceRecorder *trace, std::uint32_t tid);

    /** The controller configuration this mode controller installs. */
    static dram::ControllerConfig
    buildControllerConfig(const ModeControllerConfig &config,
                          std::uint64_t seed);

    // ---- Snapshot/resume surface (src/snapshot). ----

    /**
     * Serialize the controller's durable quarantine/demotion state:
     * the (possibly demoted) fast setting, error probabilities, the
     * trip-streak and recovery counters, the epoch guard, and the
     * statistics block.  Transient write-path state (victim cache
     * contents, pending write-mode events) is deliberately *not*
     * serialized: snapshots are taken at quiescent points and the
     * write path refills organically after resume.
     */
    void saveState(snapshot::Serializer &out) const;

    /**
     * Restore a captured state into a freshly constructed controller
     * (same configuration, before simulation resumes).  Re-applies
     * the demoted operating point (or the permanent quarantine) to the
     * memory controller.  Fails the deserializer and returns false on
     * corrupt or incompatible images.
     */
    bool restoreState(snapshot::Deserializer &in);

  private:
    std::size_t refillWrites(std::size_t space);
    void onWriteModeEnter();
    void onWriteModeExit();
    void onReadError();
    void onUncorrectableError();
    void countRecoveryEvent();
    /** Sliding-window error budget; true when it demoted the channel. */
    bool chargeErrorBudget(util::Tick now);
    /** Evaluate one recalibration window and reschedule the next. */
    void onRecalibrationWindow();
    /** Schedule the next window boundary strictly after `now`. */
    void scheduleRecalWindow(util::Tick now);
    /** Pay the probe downtime and maybe promote; resets the streak. */
    void runPromotionProbe();
    /** Record detection-to-action latency; closes the drift span. */
    void recordRecalAction(const char *action);
    /** Walk the retry rungs; true when a retry recovered the data. */
    bool walkRetryLadder();
    void disableFastOperation();
    void reenableFastOperation();
    void enqueueWriteNow(std::uint64_t address);

    /** config_ with transient (ambient) adjustments applied. */
    ModeControllerConfig activeConfig() const;

    /**
     * Drop to specification until `resume_at` (or forever when
     * `permanent`); extends but never shortens a pending suspension.
     */
    void suspendFastOperation(util::Tick resume_at, bool permanent);

    /** Push the current active config into the memory controller. */
    void applyReconfiguration();

    sim::EventQueue &events_;
    dram::MemoryController &controller_;
    cache::Cache *llc_;
    std::function<bool(std::uint64_t)> channelFilter_;
    ModeControllerConfig config_;

    cache::WritebackCache wbCache_;
    std::deque<std::uint64_t> overflow_; ///< victim-cache spill
    std::size_t cleanBudget_ = 0;
    bool fastEnabled_ = false;
    bool quarantined_ = false;
    /** Monitor-asserted additive write-trigger boost (0 = none). */
    double triggerBoost_ = 0.0;
    /** Monitor-asserted cleaning-budget scale (1 = full budget). */
    double cleanScale_ = 1.0;
    /**
     * One-shot cleaning scale armed by requestWriteDrain() for the
     * write-mode entry it triggers; negative means no drain pending
     * and the ambient cleanScale_ applies.
     */
    double drainCleanScale_ = -1.0;
    util::Tick fastDisabledAt_ = 0;
    double ambientMultiplier_ = 1.0;
    std::uint64_t recoveryEventsSinceDemotion_ = 0;
    std::uint64_t lastTripEpoch_ = ~std::uint64_t(0);
    unsigned tripStreak_ = 0;
    std::function<void()> onUncorrectable_;
    /** Private stream deciding retry-rung outcomes. */
    util::Rng ladderRng_;
    /** Detected-error arrival ticks inside the budget window. */
    std::deque<util::Tick> budgetWindow_;

    // ---- Online recalibration state (all snapshot-serialized). ----

    /** Sentinel: no drift suspicion pending. */
    static constexpr util::Tick kNoDriftSuspected = ~util::Tick(0);
    /** Private stream deciding re-qualification probe outcomes. */
    util::Rng recalRng_;
    /** Detected errors observed since the current window opened. */
    std::uint64_t windowErrors_ = 0;
    /** Consecutive windows above the demote band. */
    unsigned demoteStreak_ = 0;
    /** Consecutive windows below the promote band. */
    unsigned promoteStreak_ = 0;
    /** Consecutive recalibration demotions with no in-band window. */
    unsigned recalDemotionRun_ = 0;
    /** First out-of-band window of the pending streak (latency t0). */
    util::Tick driftSuspectedAt_ = kNoDriftSuspected;
    /** Construction-time fast rate: the promotion ceiling. */
    unsigned qualifiedFastRateMts_ = 0;
    /** True while a drift trace span is open (trace-only, transient). */
    bool driftSpanOpen_ = false;
    sim::CallbackEvent recalEvent_;

    sim::CallbackEvent reenableEvent_;
    EpochGuard guard_;
    ModeControllerStats stats_;

    /** Registry-owned metric bindings; null until bindTelemetry(). */
    struct Telemetry
    {
        telemetry::Counter *corrections = nullptr;
        telemetry::Counter *uncorrectedErrors = nullptr;
        telemetry::Counter *epochTrips = nullptr;
        telemetry::Counter *demotions = nullptr;
        telemetry::Counter *quarantines = nullptr;
        telemetry::Counter *ladderRetries = nullptr;
        telemetry::Counter *ladderRecoveries = nullptr;
        telemetry::Counter *budgetDemotions = nullptr;
        telemetry::Counter *recalDemotions = nullptr;
        telemetry::Counter *recalPromotions = nullptr;
        telemetry::Gauge *fastDisabledSeconds = nullptr;
        telemetry::Gauge *marginHeadroomMts = nullptr;
        telemetry::Log2Histogram *recalLatencyUs = nullptr;
    };
    Telemetry tm_;
    telemetry::TraceRecorder *trace_ = nullptr;
    std::uint32_t traceTid_ = 0;

    /** Trace instant at the current simulated time. */
    void traceInstant(const char *name);
};

} // namespace hdmr::core

#endif // HDMR_CORE_MODE_CONTROLLER_HH
