#include "core/mode_controller.hh"

#include <algorithm>
#include <cmath>

#include "snapshot/serializer.hh"
#include "util/logging.hh"

namespace hdmr::core
{

using util::Tick;

util::Status
RecalibrationPolicy::validate() const
{
    if (std::isnan(targetErrorsPerWindow) || targetErrorsPerWindow < 0.0)
        return util::invalidArgument(
            "RecalibrationPolicy.targetErrorsPerWindow must be >= 0");
    if (std::isnan(demoteBand) || demoteBand <= 0.0)
        return util::invalidArgument(
            "RecalibrationPolicy.demoteBand must be > 0");
    if (std::isnan(promoteBand) || promoteBand < 0.0)
        return util::invalidArgument(
            "RecalibrationPolicy.promoteBand must be >= 0");
    if (promoteBand >= demoteBand)
        return util::invalidArgument(
            "RecalibrationPolicy.promoteBand must lie below "
            "demoteBand (the hysteresis dead band)");
    if (hysteresisWindows == 0)
        return util::invalidArgument(
            "RecalibrationPolicy.hysteresisWindows must be at least 1");
    if (std::isnan(probeFailureProbability) ||
        probeFailureProbability < 0.0 || probeFailureProbability > 1.0) {
        return util::invalidArgument(
            "RecalibrationPolicy.probeFailureProbability must lie in "
            "[0, 1]");
    }
    return util::Status{};
}

dram::ControllerConfig
ModeController::buildControllerConfig(const ModeControllerConfig &config,
                                      std::uint64_t seed)
{
    dram::ControllerConfig cc;
    cc.readModeTiming = dram::DramTiming::fromSetting(config.fastSetting);
    cc.writeModeTiming =
        dram::DramTiming::fromSetting(config.specSetting);
    cc.ranksPerChannel = 4;
    cc.addressRanks = config.plan.addressRanks;
    const Tick switch_cost = config.plan.fastReads
                                 ? config.frequencyTransitionLatency
                                 : config.busTurnaround;
    cc.enterWriteModeLatency = switch_cost;
    cc.exitWriteModeLatency = switch_cost;
    cc.selfRefreshRankMask = config.plan.selfRefreshMask;
    cc.readErrorProbability =
        config.plan.fastReads ? config.readErrorProbability : 0.0;
    cc.recoveryFailureProbability =
        config.plan.fastReads ? config.recoveryFailureProbability : 0.0;
    cc.errorRecoveryLatency = config.errorRecoveryLatency;
    // Hetero-DMR drains its whole batch once it pays the transition.
    cc.writeDrainLow = config.plan.fastReads ? 0 : 16;
    cc.seed = seed;
    return cc;
}

ModeController::ModeController(
    sim::EventQueue &events, dram::MemoryController &controller,
    cache::Cache *llc,
    std::function<bool(std::uint64_t)> channel_filter,
    ModeControllerConfig config)
    : events_(events), controller_(controller), llc_(llc),
      channelFilter_(std::move(channel_filter)), config_(config),
      wbCache_(config.writebackCacheConfig),
      ladderRng_(config.ladder.seed), recalRng_(config.recalibration.seed),
      guard_(config.epochConfig)
{
    util::checkOk(config_.recalibration.validate());
    fastEnabled_ = config_.plan.fastReads;
    qualifiedFastRateMts_ = std::max(config_.qualifiedFastRateMts,
                                     config_.fastSetting.dataRateMts);

    dram::ControllerHooks hooks;
    hooks.refillWrites = [this](std::size_t space) {
        return refillWrites(space);
    };
    hooks.onWriteModeEnter = [this] { onWriteModeEnter(); };
    hooks.onWriteModeExit = [this] { onWriteModeExit(); };
    hooks.onReadError = [this] { onReadError(); };
    hooks.onUncorrectableError = [this] { onUncorrectableError(); };
    controller_.setHooks(std::move(hooks));

    if (config_.plan.rankPolicy.readCandidates ||
        config_.plan.rankPolicy.writeTargets) {
        controller_.setRankPolicy(config_.plan.rankPolicy);
    }
    controller_.setSelfRefreshMask(config_.plan.selfRefreshMask);

    reenableEvent_.setCallback([this] { reenableFastOperation(); });
    recalEvent_.setCallback([this] { onRecalibrationWindow(); });
    if (config_.recalibration.windowTicks > 0 && config_.plan.fastReads)
        scheduleRecalWindow(events_.curTick());
}

ModeController::~ModeController()
{
    if (reenableEvent_.scheduled())
        events_.deschedule(&reenableEvent_);
    if (recalEvent_.scheduled())
        events_.deschedule(&recalEvent_);
}

void
ModeController::enqueueWriteNow(std::uint64_t address)
{
    dram::MemRequest req;
    req.address = address;
    req.type = dram::MemRequest::Type::kWrite;
    req.arrival = events_.curTick();
    controller_.enqueueWrite(std::move(req));
}

void
ModeController::handleDirtyEviction(std::uint64_t address)
{
    ++stats_.dirtyEvictions;

    // In write mode the write buffer takes evictions directly while it
    // has room; everything else parks in the victim cache.
    if (controller_.mode() == dram::ChannelMode::kWrite &&
        !controller_.writeQueueFull()) {
        enqueueWriteNow(address);
        return;
    }
    if (!wbCache_.insert(address)) {
        // Set conflict: spill; this is the "write buffer otherwise"
        // path of Section III-E, modelled as an overflow list that
        // urgently forces a drain.
        overflow_.push_back(address);
    }

    const double trigger = std::min(
        0.999, config_.writeModeTriggerFill + triggerBoost_);
    const bool pressure =
        static_cast<double>(wbCache_.occupancy()) >
            trigger * static_cast<double>(wbCache_.capacity()) ||
        overflow_.size() > 64;
    if (pressure)
        controller_.requestWriteMode();
}

void
ModeController::requestWriteDrain(double clean_scale)
{
    if (wbCache_.empty() && overflow_.empty())
        return;
    if (!(clean_scale >= 0.0))
        clean_scale = 1.0;
    drainCleanScale_ = std::min(1.0, clean_scale);
    controller_.requestWriteMode();
}

void
ModeController::setWriteTriggerBoost(double boost)
{
    if (boost < 0.0)
        boost = 0.0;
    triggerBoost_ = boost;
}

void
ModeController::setCleanBudgetScale(double scale)
{
    if (!(scale >= 0.0))
        scale = 1.0;
    cleanScale_ = std::min(1.0, scale);
}

void
ModeController::setEpochLengthScale(double scale)
{
    if (!(scale > 0.0))
        scale = 1.0;
    const double scaled =
        static_cast<double>(guard_.baseEpochLength()) * scale;
    guard_.setEpochLength(static_cast<Tick>(scaled),
                          events_.curTick());
}

std::size_t
ModeController::refillWrites(std::size_t space)
{
    std::size_t pushed = 0;

    while (pushed < space && !overflow_.empty()) {
        enqueueWriteNow(overflow_.front());
        overflow_.pop_front();
        ++pushed;
    }
    while (pushed < space) {
        const auto addr = wbCache_.pop();
        if (!addr)
            break;
        enqueueWriteNow(*addr);
        ++pushed;
    }
    if (pushed < space && cleanBudget_ > 0 && llc_ != nullptr) {
        const std::size_t want =
            std::min(space - pushed, cleanBudget_);
        // Only clean lines already near eviction (the LRU-most ways):
        // cleaning then *advances* writebacks that were about to
        // happen instead of adding traffic, which is what keeps the
        // Fig. 14 overhead near zero.
        const unsigned lru_depth =
            std::max(1u, llc_->config().ways / 4);
        const std::size_t cleaned = llc_->cleanLruDirtyLines(
            want, channelFilter_,
            [this, &pushed](std::uint64_t addr) {
                enqueueWriteNow(addr);
                ++pushed;
            },
            lru_depth);
        cleanBudget_ -= cleaned;
        stats_.cleanedLines += cleaned;
        if (cleaned == 0)
            cleanBudget_ = 0; // nothing dirty left on this channel
    }
    return pushed;
}

void
ModeController::onWriteModeEnter()
{
    if (config_.plan.fastReads) {
        // Wake the original ranks out of self-refresh so the broadcast
        // writes can update original + copy together (Fig. 8a).
        controller_.setSelfRefreshMask(0);
        // The monitor's prefer-reads hold caps the discretionary
        // cleaning this window may do; with no hold asserted the
        // scale is 1 and the window earns the full configured budget.
        // A pending monitor drain overrides the ambient scale for
        // this one entry so its cleaning fits the idle window that
        // prompted the drain.
        const double scale =
            drainCleanScale_ >= 0.0 ? drainCleanScale_ : cleanScale_;
        cleanBudget_ = static_cast<std::size_t>(
            static_cast<double>(config_.cleanLinesPerWriteMode) * scale);
    }
    drainCleanScale_ = -1.0;
}

void
ModeController::onWriteModeExit()
{
    if (config_.plan.fastReads && fastEnabled_) {
        // Back to read mode: park the originals again (Fig. 8b).
        controller_.setSelfRefreshMask(config_.plan.selfRefreshMask);
    }
    cleanBudget_ = 0;
}

ModeControllerConfig
ModeController::activeConfig() const
{
    ModeControllerConfig active = config_;
    active.readErrorProbability = std::min(
        1.0, active.readErrorProbability * ambientMultiplier_);
    return active;
}

void
ModeController::applyReconfiguration()
{
    controller_.reconfigure(buildControllerConfig(activeConfig(), 1));
    controller_.setSelfRefreshMask(config_.plan.selfRefreshMask);
    // Reconfiguration latches at a mode transition; force one so the
    // new operating point takes effect now, not at the next drain.
    controller_.requestWriteMode();
}

void
ModeController::countRecoveryEvent()
{
    ++recoveryEventsSinceDemotion_;
    const unsigned k = config_.quarantine.demoteAfterRecoveries;
    if (k > 0 && recoveryEventsSinceDemotion_ >= k)
        demote();
}

bool
ModeController::chargeErrorBudget(Tick now)
{
    const RecoveryLadderConfig &ladder = config_.ladder;
    if (ladder.errorBudgetWindow == 0)
        return false;

    budgetWindow_.push_back(now);
    const Tick horizon =
        now > ladder.errorBudgetWindow ? now - ladder.errorBudgetWindow
                                       : 0;
    while (!budgetWindow_.empty() && budgetWindow_.front() < horizon)
        budgetWindow_.pop_front();

    if (budgetWindow_.size() <= ladder.errorBudgetLimit)
        return false;
    // Budget blown: this channel is producing detected errors faster
    // than its margin classification allows, even if no single epoch
    // trips the SDC guard.  Feed the demotion policy and restart the
    // window so one burst cannot demote the channel repeatedly.
    budgetWindow_.clear();
    ++stats_.budgetDemotions;
    HDMR_TM_INC(tm_.budgetDemotions);
    demote();
    return true;
}

void
ModeController::scheduleRecalWindow(Tick now)
{
    const Tick window = config_.recalibration.windowTicks;
    // Windows close at deterministic multiples of the window length,
    // so a resumed controller re-derives the same boundary sequence a
    // straight-through run walks.
    const Tick next = (now / window + 1) * window;
    events_.reschedule(&recalEvent_, next);
}

void
ModeController::recordRecalAction(const char *action)
{
    if (driftSuspectedAt_ != kNoDriftSuspected) {
        const Tick latency = events_.curTick() - driftSuspectedAt_;
        HDMR_TM_RECORD(tm_.recalLatencyUs,
                       static_cast<std::uint64_t>(
                           util::ticksToNs(latency) / 1000.0));
        driftSuspectedAt_ = kNoDriftSuspected;
    }
    if (driftSpanOpen_) {
        trace_->endSpan(util::ticksToNs(events_.curTick()) / 1000.0,
                        traceTid_);
        driftSpanOpen_ = false;
    }
    traceInstant(action);
}

void
ModeController::runPromotionProbe()
{
    const RecalibrationPolicy &recal = config_.recalibration;
    // The probe sweeps the candidate step offline: the channel runs at
    // specification for the probe window whatever the outcome.
    stats_.probeTicks += recal.probeDowntime;
    if (!quarantined_) {
        suspendFastOperation(events_.curTick() + recal.probeDowntime,
                             /*permanent=*/false);
    }
    if (recalRng_.bernoulli(recal.probeFailureProbability)) {
        ++stats_.recalProbeFailures;
        traceInstant("recal_probe_failed");
        return;
    }
    recordRecalAction("recal_promotion");
    promote();
}

void
ModeController::onRecalibrationWindow()
{
    const RecalibrationPolicy &recal = config_.recalibration;
    ++stats_.recalWindows;
    const double observed = static_cast<double>(windowErrors_);
    windowErrors_ = 0;
    HDMR_TM_SET(tm_.marginHeadroomMts,
                static_cast<double>(config_.fastSetting.dataRateMts -
                                    config_.specSetting.dataRateMts));

    if (quarantined_) {
        scheduleRecalWindow(events_.curTick());
        return;
    }

    const double budget = recal.targetErrorsPerWindow;
    if (observed > budget * recal.demoteBand) {
        promoteStreak_ = 0;
        if (++demoteStreak_ == 1) {
            driftSuspectedAt_ = events_.curTick();
            if (trace_ != nullptr && !driftSpanOpen_) {
                trace_->beginSpan(
                    "margin_drift", "mode",
                    util::ticksToNs(events_.curTick()) / 1000.0,
                    traceTid_);
                driftSpanOpen_ = true;
            }
        }
        if (demoteStreak_ >= recal.hysteresisWindows) {
            demoteStreak_ = 0;
            ++stats_.recalDemotions;
            HDMR_TM_INC(tm_.recalDemotions);
            recordRecalAction("recal_demotion");
            demote();
            if (recal.escalateAfterDemotions > 0 &&
                ++recalDemotionRun_ >= recal.escalateAfterDemotions) {
                // Drift is outrunning recalibration: one step per
                // hysteresis period cannot catch a margin collapsing
                // faster than that.  Hand the channel to the
                // quarantine ladder for good.
                ++stats_.recalEscalations;
                traceInstant("recal_escalation");
                while (!quarantined_)
                    demote();
                recalDemotionRun_ = 0;
            }
        }
    } else if (observed < budget * recal.promoteBand &&
               config_.plan.fastReads &&
               config_.fastSetting.dataRateMts < qualifiedFastRateMts_) {
        demoteStreak_ = 0;
        recalDemotionRun_ = 0;
        if (++promoteStreak_ == 1)
            driftSuspectedAt_ = events_.curTick();
        if (promoteStreak_ >= recal.hysteresisWindows) {
            promoteStreak_ = 0;
            runPromotionProbe();
        }
    } else {
        // In-band (including exactly *at* either threshold): the
        // hysteresis state resets and any pending suspicion is
        // withdrawn - this is what keeps a rate oscillating at a
        // threshold from flapping the operating point.
        demoteStreak_ = 0;
        promoteStreak_ = 0;
        recalDemotionRun_ = 0;
        driftSuspectedAt_ = kNoDriftSuspected;
        if (driftSpanOpen_) {
            trace_->endSpan(
                util::ticksToNs(events_.curTick()) / 1000.0, traceTid_);
            driftSpanOpen_ = false;
        }
    }
    scheduleRecalWindow(events_.curTick());
}

void
ModeController::bindTelemetry(telemetry::Registry &registry,
                              const std::string &prefix)
{
    tm_.corrections = &registry.counter(prefix + ".corrections");
    tm_.uncorrectedErrors =
        &registry.counter(prefix + ".uncorrected_errors");
    tm_.epochTrips = &registry.counter(prefix + ".epoch_trips");
    tm_.demotions = &registry.counter(prefix + ".demotions");
    tm_.quarantines = &registry.counter(prefix + ".quarantines");
    tm_.ladderRetries = &registry.counter(prefix + ".ladder_retries");
    tm_.ladderRecoveries =
        &registry.counter(prefix + ".ladder_recoveries");
    tm_.budgetDemotions =
        &registry.counter(prefix + ".budget_demotions");
    tm_.recalDemotions =
        &registry.counter(prefix + ".recal_demotions");
    tm_.recalPromotions =
        &registry.counter(prefix + ".recal_promotions");
    tm_.fastDisabledSeconds =
        &registry.gauge(prefix + ".fast_disabled_seconds");
    tm_.marginHeadroomMts =
        &registry.gauge(prefix + ".margin_headroom_mts");
    tm_.recalLatencyUs =
        &registry.histogram(prefix + ".recal_latency_us");
}

void
ModeController::bindTrace(telemetry::TraceRecorder *trace,
                          std::uint32_t tid)
{
    trace_ = trace;
    traceTid_ = tid;
}

void
ModeController::traceInstant(const char *name)
{
    if (trace_ != nullptr) {
        trace_->instant(name, "mode",
                        util::ticksToNs(events_.curTick()) / 1000.0,
                        traceTid_);
    }
}

void
ModeController::onReadError()
{
    ++stats_.corrections;
    ++windowErrors_;
    HDMR_TM_INC(tm_.corrections);
    if (guard_.recordError(events_.curTick()))
        disableFastOperation();
    chargeErrorBudget(events_.curTick());
    countRecoveryEvent();
}

bool
ModeController::walkRetryLadder()
{
    const RecoveryLadderConfig &ladder = config_.ladder;
    Tick backoff = ladder.retryBackoff;
    for (unsigned attempt = 1; attempt <= ladder.retryAttempts;
         ++attempt) {
        ++stats_.ladderRetries;
        HDMR_TM_INC(tm_.ladderRetries);
        stats_.ladderRetryTicks += backoff;
        // A retry re-reads the original at specification: hold the
        // channel at spec for the backoff window (extends any pending
        // suspension; never shortens one).
        if (!quarantined_) {
            suspendFastOperation(events_.curTick() + backoff,
                                 /*permanent=*/false);
        }
        if (!ladderRng_.bernoulli(ladder.retryFailureProbability)) {
            ++stats_.ladderRecoveries;
            HDMR_TM_INC(tm_.ladderRecoveries);
            return true;
        }
        backoff = static_cast<Tick>(static_cast<double>(backoff) *
                                    ladder.backoffFactor);
    }
    return false;
}

void
ModeController::onUncorrectableError()
{
    // The first recovery rung (modelled inside the memory controller)
    // failed.  Walk the bounded retry rungs before escalating: only
    // when the original cannot be read back after every attempt does
    // the error become uncorrectable.
    if (walkRetryLadder()) {
        countRecoveryEvent();
        return;
    }
    ++stats_.uncorrectedErrors;
    HDMR_TM_INC(tm_.uncorrectedErrors);
    traceInstant("ue_escalation");
    if (onUncorrectable_)
        onUncorrectable_();
    countRecoveryEvent();
}

void
ModeController::injectDetectedErrors(std::uint64_t count)
{
    if (!fastEnabled_)
        return; // at specification: no fast reads, no fast-read errors
    for (std::uint64_t i = 0; i < count && fastEnabled_; ++i)
        onReadError();
}

void
ModeController::injectUncorrectable()
{
    onUncorrectableError();
}

void
ModeController::applyMarginDrift(unsigned mts)
{
    if (!config_.plan.fastReads || quarantined_ || mts == 0)
        return;
    stats_.marginDriftMts += mts;
    const double steps =
        static_cast<double>(mts) /
        static_cast<double>(config_.quarantine.demoteStepMts);
    const double floor = config_.quarantine.driftFloorErrorProbability;
    config_.readErrorProbability =
        std::min(1.0, std::max(config_.readErrorProbability, floor) *
                          std::pow(
                              config_.quarantine.driftErrorGrowthPerStep,
                              steps));
    if (fastEnabled_)
        applyReconfiguration();
}

void
ModeController::setAmbientErrorMultiplier(double factor)
{
    if (!config_.plan.fastReads || quarantined_)
        return;
    ambientMultiplier_ = factor;
    if (fastEnabled_)
        applyReconfiguration();
}

void
ModeController::demote()
{
    if (quarantined_ || !config_.plan.fastReads)
        return;
    ++stats_.demotions;
    HDMR_TM_INC(tm_.demotions);
    traceInstant("demotion");
    recoveryEventsSinceDemotion_ = 0;

    const unsigned spec = config_.specSetting.dataRateMts;
    const unsigned step = config_.quarantine.demoteStepMts;
    if (config_.fastSetting.dataRateMts <= spec + step) {
        // Out of exploitable margin: permanent quarantine at spec.
        ++stats_.quarantines;
        HDMR_TM_INC(tm_.quarantines);
        traceInstant("quarantine");
        config_.fastSetting = config_.specSetting;
        config_.readErrorProbability = 0.0;
        suspendFastOperation(0, /*permanent=*/true);
        return;
    }
    config_.fastSetting.dataRateMts -= step;
    // One step less overshoot: errors shrink by the margin model's
    // per-step growth factor.
    config_.readErrorProbability *=
        config_.quarantine.demotionErrorFactor;
    stats_.reprofileTicks += config_.quarantine.reprofileDowntime;
    suspendFastOperation(events_.curTick() +
                             config_.quarantine.reprofileDowntime,
                         /*permanent=*/false);
}

void
ModeController::promote(bool immediate)
{
    if (quarantined_ || !config_.plan.fastReads ||
        config_.fastSetting.dataRateMts >= qualifiedFastRateMts_)
        return;
    ++stats_.recalPromotions;
    HDMR_TM_INC(tm_.recalPromotions);
    const unsigned step = config_.quarantine.demoteStepMts;
    config_.fastSetting.dataRateMts =
        std::min(qualifiedFastRateMts_,
                 config_.fastSetting.dataRateMts + step);
    // One step more overshoot: the demotion error scaling reverses.
    config_.readErrorProbability =
        std::min(1.0, config_.readErrorProbability /
                          config_.quarantine.demotionErrorFactor);
    if (fastEnabled_) {
        if (immediate) {
            applyReconfiguration();
        } else {
            // Retiming needs a bus quiescence; the controller latches
            // a pending reconfiguration at its next mode transition,
            // so the promoted rate arrives with the next drain or
            // pressure flush for free instead of stealing one now.
            controller_.reconfigure(
                buildControllerConfig(activeConfig(), 1));
        }
    }
}

void
ModeController::suspendFastOperation(Tick resume_at, bool permanent)
{
    if (permanent)
        quarantined_ = true;

    if (fastEnabled_) {
        fastEnabled_ = false;
        fastDisabledAt_ = events_.curTick();

        // Fall back to specification: same timing in both modes, no
        // error injection, originals active.
        ModeControllerConfig safe = config_;
        safe.fastSetting = config_.specSetting;
        safe.readErrorProbability = 0.0;
        safe.recoveryFailureProbability = 0.0;
        safe.plan.fastReads = false;
        safe.plan.selfRefreshMask = 0;
        controller_.reconfigure(buildControllerConfig(safe, 1));
        controller_.setSelfRefreshMask(0);
        // Force a mode transition so the slow-down happens
        // immediately, not at the next write drain.
        controller_.requestWriteMode();
    }

    if (quarantined_) {
        if (reenableEvent_.scheduled())
            events_.deschedule(&reenableEvent_);
        return;
    }
    // Extend, never shorten, a pending suspension.
    if (!reenableEvent_.scheduled() || reenableEvent_.when() < resume_at)
        events_.reschedule(&reenableEvent_, resume_at);
}

void
ModeController::disableFastOperation()
{
    if (!fastEnabled_)
        return;
    ++stats_.epochTrips;
    HDMR_TM_INC(tm_.epochTrips);
    traceInstant("epoch_trip");

    // Trip-streak accounting for the quarantine policy: consecutive
    // tripped epochs mean the channel's profiled margin is wrong, not
    // merely unlucky.
    const std::uint64_t epoch =
        events_.curTick() / config_.epochConfig.epochLength;
    tripStreak_ =
        (lastTripEpoch_ != ~std::uint64_t(0) &&
         epoch == lastTripEpoch_ + 1)
            ? tripStreak_ + 1
            : 1;
    lastTripEpoch_ = epoch;

    suspendFastOperation(guard_.epochEnd(events_.curTick()),
                         /*permanent=*/false);

    const unsigned streak_limit = config_.quarantine.demoteAfterTripStreak;
    if (streak_limit > 0 && tripStreak_ >= streak_limit) {
        tripStreak_ = 0;
        demote();
    }
}

void
ModeController::reenableFastOperation()
{
    if (fastEnabled_ || !config_.plan.fastReads || quarantined_)
        return;
    fastEnabled_ = true;
    stats_.fastDisabledTicks += events_.curTick() - fastDisabledAt_;
    HDMR_TM_SET(tm_.fastDisabledSeconds,
                util::ticksToSeconds(stats_.fastDisabledTicks));
    controller_.reconfigure(buildControllerConfig(activeConfig(), 1));
    controller_.setSelfRefreshMask(config_.plan.selfRefreshMask);
}

void
ModeController::flush()
{
    if (!wbCache_.empty() || !overflow_.empty())
        controller_.requestWriteMode();
}

void
ModeController::saveState(snapshot::Serializer &out) const
{
    out.writeU32(config_.specSetting.dataRateMts);
    out.writeU32(config_.fastSetting.dataRateMts);
    out.writeDouble(config_.readErrorProbability);
    out.writeBool(quarantined_);
    out.writeBool(fastEnabled_);
    out.writeDouble(ambientMultiplier_);
    out.writeU64(recoveryEventsSinceDemotion_);
    out.writeU64(lastTripEpoch_);
    out.writeU32(tripStreak_);
    guard_.saveState(out);

    out.writeU64(stats_.dirtyEvictions);
    out.writeU64(stats_.cleanedLines);
    out.writeU64(stats_.corrections);
    out.writeU64(stats_.uncorrectedErrors);
    out.writeU64(stats_.epochTrips);
    out.writeU64(stats_.fastDisabledTicks);
    out.writeU64(stats_.demotions);
    out.writeU64(stats_.quarantines);
    out.writeU64(stats_.marginDriftMts);
    out.writeU64(stats_.reprofileTicks);

    // Recovery-ladder state: the private retry stream, the sliding
    // error-budget window, and the ladder statistics.
    const util::RngState rng = ladderRng_.state();
    for (std::uint64_t word : rng.s)
        out.writeU64(word);
    out.writeBool(rng.hasSpareNormal);
    out.writeDouble(rng.spareNormal);
    out.writeU32(static_cast<std::uint32_t>(budgetWindow_.size()));
    for (Tick tick : budgetWindow_)
        out.writeU64(tick);
    out.writeU64(stats_.ladderRetries);
    out.writeU64(stats_.ladderRecoveries);
    out.writeU64(stats_.ladderRetryTicks);
    out.writeU64(stats_.budgetDemotions);

    // Recalibration state: the window observation, hysteresis streaks,
    // the private probe stream, and the recalibration statistics.
    out.writeU64(windowErrors_);
    out.writeU32(demoteStreak_);
    out.writeU32(promoteStreak_);
    out.writeU32(recalDemotionRun_);
    out.writeU64(driftSuspectedAt_);
    out.writeU32(qualifiedFastRateMts_);
    const util::RngState recal_rng = recalRng_.state();
    for (std::uint64_t word : recal_rng.s)
        out.writeU64(word);
    out.writeBool(recal_rng.hasSpareNormal);
    out.writeDouble(recal_rng.spareNormal);
    out.writeU64(stats_.recalWindows);
    out.writeU64(stats_.recalDemotions);
    out.writeU64(stats_.recalPromotions);
    out.writeU64(stats_.recalProbeFailures);
    out.writeU64(stats_.recalEscalations);
    out.writeU64(stats_.probeTicks);

    // Monitor-asserted control levels (the epoch-length level lives in
    // the guard's own record above).
    out.writeDouble(triggerBoost_);
    out.writeDouble(cleanScale_);
    out.writeDouble(drainCleanScale_);
}

bool
ModeController::restoreState(snapshot::Deserializer &in)
{
    const std::uint32_t spec_rate = in.readU32();
    const std::uint32_t fast_rate = in.readU32();
    const double read_error = in.readDouble();
    const bool quarantined = in.readBool();
    const bool fast_enabled = in.readBool();
    const double ambient = in.readDouble();
    const std::uint64_t recoveries = in.readU64();
    const std::uint64_t last_trip_epoch = in.readU64();
    const std::uint32_t trip_streak = in.readU32();
    if (!in.ok())
        return false;
    if (spec_rate != config_.specSetting.dataRateMts) {
        in.fail("mode-controller snapshot was taken under a different "
                "specification setting");
        return false;
    }
    if (fast_rate > config_.fastSetting.dataRateMts ||
        fast_rate < config_.specSetting.dataRateMts) {
        in.fail("mode-controller snapshot carries an impossible fast "
                "setting (demotions only ever move toward spec)");
        return false;
    }
    if (!(read_error >= 0.0 && read_error <= 1.0)) {
        in.fail("mode-controller snapshot carries an out-of-range read "
                "error probability");
        return false;
    }

    config_.fastSetting.dataRateMts = fast_rate;
    config_.readErrorProbability = read_error;
    quarantined_ = quarantined;
    ambientMultiplier_ = ambient;
    recoveryEventsSinceDemotion_ = recoveries;
    lastTripEpoch_ = last_trip_epoch;
    tripStreak_ = trip_streak;
    if (!guard_.restoreState(in))
        return false;

    stats_.dirtyEvictions = in.readU64();
    stats_.cleanedLines = in.readU64();
    stats_.corrections = in.readU64();
    stats_.uncorrectedErrors = in.readU64();
    stats_.epochTrips = in.readU64();
    stats_.fastDisabledTicks = in.readU64();
    stats_.demotions = in.readU64();
    stats_.quarantines = in.readU64();
    stats_.marginDriftMts = in.readU64();
    stats_.reprofileTicks = in.readU64();

    util::RngState rng;
    for (std::uint64_t &word : rng.s)
        word = in.readU64();
    rng.hasSpareNormal = in.readBool();
    rng.spareNormal = in.readDouble();
    const std::uint32_t window_size = in.readU32();
    if (in.ok() &&
        window_size > config_.ladder.errorBudgetLimit + 1) {
        in.fail("mode-controller snapshot carries an error-budget "
                "window larger than the budget allows");
        return false;
    }
    budgetWindow_.clear();
    for (std::uint32_t i = 0; i < window_size; ++i)
        budgetWindow_.push_back(in.readU64());
    stats_.ladderRetries = in.readU64();
    stats_.ladderRecoveries = in.readU64();
    stats_.ladderRetryTicks = in.readU64();
    stats_.budgetDemotions = in.readU64();

    const std::uint64_t window_errors = in.readU64();
    const std::uint32_t demote_streak = in.readU32();
    const std::uint32_t promote_streak = in.readU32();
    const std::uint32_t recal_run = in.readU32();
    const std::uint64_t drift_suspected_at = in.readU64();
    const std::uint32_t qualified_rate = in.readU32();
    util::RngState recal_rng;
    for (std::uint64_t &word : recal_rng.s)
        word = in.readU64();
    recal_rng.hasSpareNormal = in.readBool();
    recal_rng.spareNormal = in.readDouble();
    if (in.ok() && qualified_rate != qualifiedFastRateMts_) {
        in.fail("mode-controller snapshot was qualified at a different "
                "fast rate");
        return false;
    }
    windowErrors_ = window_errors;
    demoteStreak_ = demote_streak;
    promoteStreak_ = promote_streak;
    recalDemotionRun_ = recal_run;
    driftSuspectedAt_ = drift_suspected_at;
    stats_.recalWindows = in.readU64();
    stats_.recalDemotions = in.readU64();
    stats_.recalPromotions = in.readU64();
    stats_.recalProbeFailures = in.readU64();
    stats_.recalEscalations = in.readU64();
    stats_.probeTicks = in.readU64();
    const double trigger_boost = in.readDouble();
    if (in.ok() && !(trigger_boost >= 0.0 && trigger_boost < 1.0)) {
        in.fail("mode-controller snapshot carries an out-of-range "
                "write-trigger boost");
        return false;
    }
    const double clean_scale = in.readDouble();
    if (in.ok() && !(clean_scale >= 0.0 && clean_scale <= 1.0)) {
        in.fail("mode-controller snapshot carries an out-of-range "
                "cleaning-budget scale");
        return false;
    }
    const double drain_scale = in.readDouble();
    if (in.ok() &&
        !(drain_scale == -1.0 ||
          (drain_scale >= 0.0 && drain_scale <= 1.0))) {
        in.fail("mode-controller snapshot carries an out-of-range "
                "pending drain cleaning scale");
        return false;
    }
    if (!in.ok())
        return false;
    triggerBoost_ = trigger_boost;
    cleanScale_ = clean_scale;
    drainCleanScale_ = drain_scale;
    ladderRng_.setState(rng);
    recalRng_.setState(recal_rng);

    // The window boundaries are deterministic multiples of the window
    // length, so the next boundary re-derives from the current time.
    if (config_.recalibration.windowTicks > 0 && config_.plan.fastReads)
        scheduleRecalWindow(events_.curTick());

    // Re-apply the restored operating point.
    if (quarantined_) {
        config_.fastSetting = config_.specSetting;
        config_.readErrorProbability = 0.0;
        suspendFastOperation(0, /*permanent=*/true);
    } else if (config_.plan.fastReads) {
        if (fast_enabled) {
            applyReconfiguration();
        } else {
            // fastEnabled_ is still true from construction, so the
            // suspension path actually installs the safe config; fast
            // operation resumes at the next epoch boundary.
            suspendFastOperation(guard_.epochEnd(events_.curTick()),
                                 /*permanent=*/false);
        }
    }
    return true;
}

} // namespace hdmr::core
