#include "core/mode_controller.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::core
{

using util::Tick;

dram::ControllerConfig
ModeController::buildControllerConfig(const ModeControllerConfig &config,
                                      std::uint64_t seed)
{
    dram::ControllerConfig cc;
    cc.readModeTiming = dram::DramTiming::fromSetting(config.fastSetting);
    cc.writeModeTiming =
        dram::DramTiming::fromSetting(config.specSetting);
    cc.ranksPerChannel = 4;
    cc.addressRanks = config.plan.addressRanks;
    const Tick switch_cost = config.plan.fastReads
                                 ? config.frequencyTransitionLatency
                                 : config.busTurnaround;
    cc.enterWriteModeLatency = switch_cost;
    cc.exitWriteModeLatency = switch_cost;
    cc.selfRefreshRankMask = config.plan.selfRefreshMask;
    cc.readErrorProbability =
        config.plan.fastReads ? config.readErrorProbability : 0.0;
    cc.errorRecoveryLatency = config.errorRecoveryLatency;
    // Hetero-DMR drains its whole batch once it pays the transition.
    cc.writeDrainLow = config.plan.fastReads ? 0 : 16;
    cc.seed = seed;
    return cc;
}

ModeController::ModeController(
    sim::EventQueue &events, dram::MemoryController &controller,
    cache::Cache *llc,
    std::function<bool(std::uint64_t)> channel_filter,
    ModeControllerConfig config)
    : events_(events), controller_(controller), llc_(llc),
      channelFilter_(std::move(channel_filter)), config_(config),
      wbCache_(config.writebackCacheConfig), guard_(config.epochConfig)
{
    fastEnabled_ = config_.plan.fastReads;

    dram::ControllerHooks hooks;
    hooks.refillWrites = [this](std::size_t space) {
        return refillWrites(space);
    };
    hooks.onWriteModeEnter = [this] { onWriteModeEnter(); };
    hooks.onWriteModeExit = [this] { onWriteModeExit(); };
    hooks.onReadError = [this] { onReadError(); };
    controller_.setHooks(std::move(hooks));

    if (config_.plan.rankPolicy.readCandidates ||
        config_.plan.rankPolicy.writeTargets) {
        controller_.setRankPolicy(config_.plan.rankPolicy);
    }
    controller_.setSelfRefreshMask(config_.plan.selfRefreshMask);

    reenableEvent_.setCallback([this] { reenableFastOperation(); });
}

ModeController::~ModeController()
{
    if (reenableEvent_.scheduled())
        events_.deschedule(&reenableEvent_);
}

void
ModeController::enqueueWriteNow(std::uint64_t address)
{
    dram::MemRequest req;
    req.address = address;
    req.type = dram::MemRequest::Type::kWrite;
    req.arrival = events_.curTick();
    controller_.enqueueWrite(std::move(req));
}

void
ModeController::handleDirtyEviction(std::uint64_t address)
{
    ++stats_.dirtyEvictions;

    // In write mode the write buffer takes evictions directly while it
    // has room; everything else parks in the victim cache.
    if (controller_.mode() == dram::ChannelMode::kWrite &&
        !controller_.writeQueueFull()) {
        enqueueWriteNow(address);
        return;
    }
    if (!wbCache_.insert(address)) {
        // Set conflict: spill; this is the "write buffer otherwise"
        // path of Section III-E, modelled as an overflow list that
        // urgently forces a drain.
        overflow_.push_back(address);
    }

    const bool pressure =
        static_cast<double>(wbCache_.occupancy()) >
            config_.writeModeTriggerFill *
                static_cast<double>(wbCache_.capacity()) ||
        overflow_.size() > 64;
    if (pressure)
        controller_.requestWriteMode();
}

std::size_t
ModeController::refillWrites(std::size_t space)
{
    std::size_t pushed = 0;

    while (pushed < space && !overflow_.empty()) {
        enqueueWriteNow(overflow_.front());
        overflow_.pop_front();
        ++pushed;
    }
    while (pushed < space) {
        const auto addr = wbCache_.pop();
        if (!addr)
            break;
        enqueueWriteNow(*addr);
        ++pushed;
    }
    if (pushed < space && cleanBudget_ > 0 && llc_ != nullptr) {
        const std::size_t want =
            std::min(space - pushed, cleanBudget_);
        // Only clean lines already near eviction (the LRU-most ways):
        // cleaning then *advances* writebacks that were about to
        // happen instead of adding traffic, which is what keeps the
        // Fig. 14 overhead near zero.
        const unsigned lru_depth =
            std::max(1u, llc_->config().ways / 4);
        const std::size_t cleaned = llc_->cleanLruDirtyLines(
            want, channelFilter_,
            [this, &pushed](std::uint64_t addr) {
                enqueueWriteNow(addr);
                ++pushed;
            },
            lru_depth);
        cleanBudget_ -= cleaned;
        stats_.cleanedLines += cleaned;
        if (cleaned == 0)
            cleanBudget_ = 0; // nothing dirty left on this channel
    }
    return pushed;
}

void
ModeController::onWriteModeEnter()
{
    if (config_.plan.fastReads) {
        // Wake the original ranks out of self-refresh so the broadcast
        // writes can update original + copy together (Fig. 8a).
        controller_.setSelfRefreshMask(0);
        cleanBudget_ = config_.cleanLinesPerWriteMode;
    }
}

void
ModeController::onWriteModeExit()
{
    if (config_.plan.fastReads && fastEnabled_) {
        // Back to read mode: park the originals again (Fig. 8b).
        controller_.setSelfRefreshMask(config_.plan.selfRefreshMask);
    }
    cleanBudget_ = 0;
}

void
ModeController::onReadError()
{
    ++stats_.corrections;
    if (guard_.recordError(events_.curTick()))
        disableFastOperation();
}

void
ModeController::disableFastOperation()
{
    if (!fastEnabled_)
        return;
    fastEnabled_ = false;
    fastDisabledAt_ = events_.curTick();
    ++stats_.epochTrips;

    // Fall back to specification for the rest of the epoch: same
    // timing in both modes, no error injection, originals active.
    ModeControllerConfig safe = config_;
    safe.fastSetting = config_.specSetting;
    safe.readErrorProbability = 0.0;
    safe.plan.fastReads = false;
    safe.plan.selfRefreshMask = 0;
    controller_.reconfigure(buildControllerConfig(safe, 1));
    controller_.setSelfRefreshMask(0);
    // Reconfiguration latches at a mode transition; force one now so
    // the slow-down happens immediately, not at the next write drain.
    controller_.requestWriteMode();

    const Tick epoch_end = guard_.epochEnd(events_.curTick());
    events_.reschedule(&reenableEvent_, epoch_end);
}

void
ModeController::reenableFastOperation()
{
    if (fastEnabled_ || !config_.plan.fastReads)
        return;
    fastEnabled_ = true;
    stats_.fastDisabledTicks += events_.curTick() - fastDisabledAt_;
    controller_.reconfigure(buildControllerConfig(config_, 1));
    controller_.setSelfRefreshMask(config_.plan.selfRefreshMask);
}

void
ModeController::flush()
{
    if (!wbCache_.empty() || !overflow_.empty())
        controller_.requestWriteMode();
}

} // namespace hdmr::core
