/**
 * @file
 * Replication management (Sections III-D and III-E).
 *
 * Decides *whether* a channel replicates (half of its modules must be
 * free, i.e. memory utilization below 50 %), *which* module runs
 * unsafely fast (margin-aware selection picks the module with the
 * highest measured margin), and *where* copies live (same location
 * across ranks so broadcast writes work), including the rank policies
 * the memory controller needs for FMR, Hetero-DMR, and
 * Hetero-DMR+FMR.  Also handles remapping away from modules with
 * permanent faults.
 */

#ifndef HDMR_CORE_REPLICATION_HH
#define HDMR_CORE_REPLICATION_HH

#include <cstdint>
#include <vector>

#include "dram/controller.hh"

namespace hdmr::core
{

/** Replication flavours evaluated in the paper (Section IV-A). */
enum class ReplicationMode : std::uint8_t
{
    kNone,          ///< Commercial Baseline: no copies
    kFmr,           ///< FMR: one copy, spec speed, fastest-copy reads
    kHeteroDmr,     ///< Hetero-DMR: one copy, unsafely fast reads
    kHeteroDmrFmr,  ///< Hetero-DMR+FMR: two copies in the Free Module
};

/** Memory-usage buckets of Figures 1 and 12. */
enum class MemoryUsage : std::uint8_t
{
    kUnder25,   ///< [0, 25%): room for two copies
    kUnder50,   ///< [25, 50%): room for one copy
    kOver50,    ///< [50, 100%]: no replication possible
};

const char *toString(ReplicationMode mode);
const char *toString(MemoryUsage usage);

/**
 * The replication plan for one channel with two dual-rank modules
 * (module 0 = ranks {0,1} holds originals; module 1 = ranks {2,3} is
 * the Free Module).
 */
struct ChannelPlan
{
    ReplicationMode mode = ReplicationMode::kNone;
    /** Ranks the address map spreads software data over. */
    unsigned addressRanks = 4;
    /** Ranks parked in self-refresh during read mode (Hetero-DMR). */
    std::uint32_t selfRefreshMask = 0;
    /** Rank policy for the memory controller. */
    dram::RankPolicy rankPolicy;
    /** True when the Free Module runs faster than specification. */
    bool fastReads = false;
};

/**
 * Builds channel plans.  Stateless; one instance per node.
 */
class ReplicationManager
{
  public:
    /**
     * Decide the effective mode for a requested design under the
     * given memory usage (Section IV-A): Hetero-DMR needs <50 %
     * utilization; the +FMR second copy needs <25 %; everything
     * degrades to the Commercial Baseline otherwise.
     */
    static ReplicationMode effectiveMode(ReplicationMode requested,
                                         MemoryUsage usage);

    /** Build the per-channel plan for a (resolved) mode. */
    static ChannelPlan planChannel(ReplicationMode mode);

    /**
     * Margin-aware Free-Module selection (Section III-D1): the index
     * of the module with the highest measured margin.  Returns 0 for
     * an empty input.
     */
    static std::size_t
    chooseFreeModule(const std::vector<unsigned> &module_margins_mts);

    /** Channel-level margin under margin-aware selection. */
    static unsigned
    channelMargin(const std::vector<unsigned> &module_margins_mts);

    /** Node-level margin: minimum across channels (Section III-D2). */
    static unsigned
    nodeMargin(const std::vector<unsigned> &channel_margins_mts);

    /**
     * Permanent-fault handling (Section III-E): given the faulty
     * module index, returns the module that should hold copies
     * instead (the other module of the pair).
     */
    static std::size_t remapForPermanentFault(std::size_t faulty_module,
                                              std::size_t num_modules);
};

} // namespace hdmr::core

#endif // HDMR_CORE_REPLICATION_HH
