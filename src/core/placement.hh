/**
 * @file
 * Heterogeneous-reliability placement policy (alongside
 * core::replication).
 *
 * Three ways to pay for margin exploitation:
 *
 *   Hetero-DMR        every page of a fast-read footprint carries a
 *                     full copy (the paper's design; 50 % capacity
 *                     tax, any UE kills the attempt);
 *   Het-Reliability   tolerant pages live *unreplicated* on the
 *                     margin-exploited fast modules while critical
 *                     pages keep the copy / at-spec protection (Luo
 *                     et al.'s HRM applied to margin exploitation);
 *   Hybrid            per-job choice - jobs whose tolerant fraction
 *                     clears a threshold run Het-Reliability, the
 *                     rest run full Hetero-DMR.
 *
 * The policy also carries the graceful-degradation semantics: a
 * detected UE (or injected fault) on a *tolerant* page downgrades the
 * page and lets the job continue with a recorded data-quality
 * penalty; a critical-page UE keeps the full kill + requeue +
 * quarantine behaviour of the resilience ladder.  The policy itself
 * is stateless and pure, so it folds into config fingerprints rather
 * than snapshots.
 */

#ifndef HDMR_CORE_PLACEMENT_HH
#define HDMR_CORE_PLACEMENT_HH

#include <array>
#include <cstdint>

#include "util/status.hh"

namespace hdmr::core
{

/** Placement architectures for margin-exploited memory. */
enum class PlacementMode : std::uint8_t
{
    kHeteroDmr,      ///< full copies for every fast page (existing)
    kHetReliability, ///< tolerant pages unreplicated, critical copied
    kHybrid,         ///< per-job: HRM above a tolerance threshold
};

const char *toString(PlacementMode mode);

/** What the degradation semantics do with one UE. */
enum class UeOutcome : std::uint8_t
{
    kKillRequeue,     ///< critical page: kill + requeue + quarantine
    kDegradeContinue, ///< tolerant page: downgrade, continue, penalize
};

/** The (stateless) placement policy. */
struct PlacementPolicy
{
    PlacementMode mode = PlacementMode::kHeteroDmr;
    /** Hybrid: minimum tolerant fraction for HRM placement. */
    double hybridTolerantThreshold = 0.5;
    /** Data-quality penalty recorded per degraded page (unitless;
     *  summed into the cluster metrics). */
    double degradePenalty = 1.0;
    /** Representative memory utilization per usage class (the
     *  midpoints of the Fig. 1/12 buckets <25 %, [25,50) %, >=50 %);
     *  drives the copy-capacity accounting and HRM eligibility. */
    std::array<double, 3> usageRepresentative = {0.15, 0.375, 0.75};

    /**
     * One-pass validation; returns kInvalidArgument naming the
     * offending field.  Construction sites checkOk() it.
     */
    util::Status validate() const;

    /**
     * True when a job with this tolerant fraction runs its tolerant
     * pages unreplicated (i.e. HRM semantics - and graceful
     * degradation - apply to it under this policy).
     */
    bool unreplicatedTolerant(double tolerant_fraction) const;

    /** Fraction of the job's footprint that still carries copies. */
    double replicatedShare(double tolerant_fraction) const;

    /**
     * Can a job of `usage_class` exploit margin?  Hetero-DMR needs
     * the *whole* footprint to fit beside its copy (<50 % usage);
     * HRM only needs the replicated (critical) share to fit, so
     * high-usage jobs with enough tolerant pages become eligible.
     */
    bool marginEligible(unsigned usage_class,
                        double tolerant_fraction) const;

    /**
     * Probability that a margin UE striking this job lands on a
     * tolerant (unreplicated) page; zero when the job runs full
     * Hetero-DMR, where every page has a copy to recover from.
     */
    double tolerantStrikeProbability(double tolerant_fraction) const;

    /** Degradation semantics for one UE. */
    UeOutcome outcomeFor(bool tolerant_page) const;

    /** SplitMix64-chained fingerprint of every field. */
    std::uint64_t digest() const;
};

} // namespace hdmr::core

#endif // HDMR_CORE_PLACEMENT_HH
