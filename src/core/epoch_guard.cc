#include "core/epoch_guard.hh"

#include "snapshot/serializer.hh"

namespace hdmr::core
{

EpochGuard::EpochGuard(EpochGuardConfig config)
    : config_(config), threshold_(config.errorThreshold())
{
}

void
EpochGuard::rollEpoch(Tick now)
{
    const std::uint64_t epoch = now / config_.epochLength;
    if (epoch != epochIndex_) {
        epochIndex_ = epoch;
        errorsThisEpoch_ = 0;
        trippedThisEpoch_ = false;
    }
}

bool
EpochGuard::recordError(Tick now)
{
    rollEpoch(now);
    ++errorsThisEpoch_;
    ++totalErrors_;
    if (!trippedThisEpoch_ && errorsThisEpoch_ > threshold_) {
        trippedThisEpoch_ = true;
        ++trips_;
        return true;
    }
    return false;
}

bool
EpochGuard::tripped(Tick now)
{
    rollEpoch(now);
    return trippedThisEpoch_;
}

Tick
EpochGuard::epochEnd(Tick now) const
{
    return (now / config_.epochLength + 1) * config_.epochLength;
}

void
EpochGuard::saveState(snapshot::Serializer &out) const
{
    out.writeU64(config_.epochLength);
    out.writeDouble(config_.mttSdcYears);
    out.writeU64(epochIndex_);
    out.writeU64(errorsThisEpoch_);
    out.writeU64(totalErrors_);
    out.writeU64(trips_);
    out.writeBool(trippedThisEpoch_);
}

bool
EpochGuard::restoreState(snapshot::Deserializer &in)
{
    const std::uint64_t epoch_length = in.readU64();
    const double mtt_sdc_years = in.readDouble();
    if (in.ok() && (epoch_length != config_.epochLength ||
                    mtt_sdc_years != config_.mttSdcYears)) {
        in.fail("epoch-guard snapshot was taken under a different "
                "epoch configuration");
        return false;
    }
    epochIndex_ = in.readU64();
    errorsThisEpoch_ = in.readU64();
    totalErrors_ = in.readU64();
    trips_ = in.readU64();
    trippedThisEpoch_ = in.readBool();
    return in.ok();
}

} // namespace hdmr::core
