#include "core/epoch_guard.hh"

#include "snapshot/serializer.hh"

namespace hdmr::core
{

EpochGuard::EpochGuard(EpochGuardConfig config)
    : config_(config), baseEpochLength_(config.epochLength),
      threshold_(config.errorThreshold())
{
}

void
EpochGuard::setEpochLength(Tick length, Tick now)
{
    if (length < 1)
        length = 1;
    if (length == config_.epochLength)
        return;
    config_.epochLength = length;
    threshold_ = config_.errorThreshold();
    // Re-anchor: the epoch containing `now` under the new length
    // continues with the counts accumulated so far.
    epochIndex_ = now / config_.epochLength;
}

void
EpochGuard::rollEpoch(Tick now)
{
    const std::uint64_t epoch = now / config_.epochLength;
    if (epoch != epochIndex_) {
        epochIndex_ = epoch;
        errorsThisEpoch_ = 0;
        trippedThisEpoch_ = false;
    }
}

bool
EpochGuard::recordError(Tick now)
{
    rollEpoch(now);
    ++errorsThisEpoch_;
    ++totalErrors_;
    if (!trippedThisEpoch_ && errorsThisEpoch_ > threshold_) {
        trippedThisEpoch_ = true;
        ++trips_;
        return true;
    }
    return false;
}

bool
EpochGuard::tripped(Tick now)
{
    rollEpoch(now);
    return trippedThisEpoch_;
}

Tick
EpochGuard::epochEnd(Tick now) const
{
    return (now / config_.epochLength + 1) * config_.epochLength;
}

void
EpochGuard::saveState(snapshot::Serializer &out) const
{
    out.writeU64(baseEpochLength_);
    out.writeDouble(config_.mttSdcYears);
    out.writeU64(config_.epochLength);
    out.writeU64(epochIndex_);
    out.writeU64(errorsThisEpoch_);
    out.writeU64(totalErrors_);
    out.writeU64(trips_);
    out.writeBool(trippedThisEpoch_);
}

bool
EpochGuard::restoreState(snapshot::Deserializer &in)
{
    const std::uint64_t base_length = in.readU64();
    const double mtt_sdc_years = in.readDouble();
    if (in.ok() && (base_length != baseEpochLength_ ||
                    mtt_sdc_years != config_.mttSdcYears)) {
        in.fail("epoch-guard snapshot was taken under a different "
                "epoch configuration");
        return false;
    }
    const std::uint64_t current_length = in.readU64();
    if (in.ok() && current_length < 1) {
        in.fail("epoch-guard snapshot carries a zero epoch length");
        return false;
    }
    if (in.ok()) {
        config_.epochLength = current_length;
        threshold_ = config_.errorThreshold();
    }
    epochIndex_ = in.readU64();
    errorsThisEpoch_ = in.readU64();
    totalErrors_ = in.readU64();
    trips_ = in.readU64();
    trippedThisEpoch_ = in.readBool();
    return in.ok();
}

} // namespace hdmr::core
