#include "core/epoch_guard.hh"

namespace hdmr::core
{

EpochGuard::EpochGuard(EpochGuardConfig config)
    : config_(config), threshold_(config.errorThreshold())
{
}

void
EpochGuard::rollEpoch(Tick now)
{
    const std::uint64_t epoch = now / config_.epochLength;
    if (epoch != epochIndex_) {
        epochIndex_ = epoch;
        errorsThisEpoch_ = 0;
        trippedThisEpoch_ = false;
    }
}

bool
EpochGuard::recordError(Tick now)
{
    rollEpoch(now);
    ++errorsThisEpoch_;
    ++totalErrors_;
    if (!trippedThisEpoch_ && errorsThisEpoch_ > threshold_) {
        trippedThisEpoch_ = true;
        ++trips_;
        return true;
    }
    return false;
}

bool
EpochGuard::tripped(Tick now)
{
    rollEpoch(now);
    return trippedThisEpoch_;
}

Tick
EpochGuard::epochEnd(Tick now) const
{
    return (now / config_.epochLength + 1) * config_.epochLength;
}

} // namespace hdmr::core
