/**
 * @file
 * The SDC epoch guard of Section III-B.
 *
 * Detection-only Bamboo ECC misses an "8B+" (wider than 8 bytes)
 * error with probability 2^-64, so the system would suffer one silent
 * data corruption per ~1.8e19 *detected* 8B+ errors.  To bound the
 * mean time to SDC at one billion years even under the unreal worst
 * case where every detected error is 8B+, Hetero-DMR counts detected
 * errors per one-hour epoch and, past a threshold of
 *
 *     2^64 / (1e9 years expressed in hours)  ~=  2.1e6 errors/hour,
 *
 * stops exploiting margins (drops to specification) for the rest of
 * the epoch.  Replication and fast operation resume at the next epoch
 * boundary.
 */

#ifndef HDMR_CORE_EPOCH_GUARD_HH
#define HDMR_CORE_EPOCH_GUARD_HH

#include <cstdint>

#include "util/units.hh"

namespace hdmr::snapshot
{
class Serializer;
class Deserializer;
} // namespace hdmr::snapshot

namespace hdmr::core
{

using util::Tick;

/** Epoch-guard parameters. */
struct EpochGuardConfig
{
    Tick epochLength = 3600ull * util::kTicksPerSec; ///< one hour
    /** Target mean time to SDC, in years. */
    double mttSdcYears = 1.0e9;

    /** The per-epoch detected-error budget implied by the target. */
    std::uint64_t
    errorThreshold() const
    {
        // 2^64 detected 8B+ errors per escape, spread over the MTTSDC
        // expressed in *epochs*: a half-hour epoch gets half the
        // hourly budget, a two-hour epoch twice, so the target MTT-SDC
        // holds for any epoch length (the paper's 2.1e6/hour is the
        // one-hour instance).
        const double escapes_per_sdc = 18446744073709551616.0;
        const double hours = mttSdcYears * 365.25 * 24.0;
        const double epoch_hours =
            static_cast<double>(epochLength) /
            static_cast<double>(3600ull * util::kTicksPerSec);
        return static_cast<std::uint64_t>(escapes_per_sdc / hours *
                                          epoch_hours);
    }
};

/** Tracks detected errors per epoch and trips past the threshold. */
class EpochGuard
{
  public:
    explicit EpochGuard(EpochGuardConfig config = {});

    /**
     * Record one detected error at `now`.  Returns true if this error
     * tripped the guard (margin exploitation must stop until the next
     * epoch).
     */
    bool recordError(Tick now);

    /** True while the guard is tripped at time `now`. */
    bool tripped(Tick now);

    /** Tick at which the current epoch (at `now`) ends. */
    Tick epochEnd(Tick now) const;

    /**
     * Adopt a new epoch length at time `now` (clamped to >= 1 tick).
     * The detected-error threshold rescales with the length (see
     * EpochGuardConfig::errorThreshold) so the MTT-SDC target is
     * preserved, and the epoch cursor re-anchors so the epoch
     * containing `now` continues rather than spuriously rolling.
     * Re-applying the current length is a no-op - monitors re-assert
     * their hold levels after a snapshot restore.
     */
    void setEpochLength(Tick length, Tick now);

    /** Epoch length currently in effect. */
    Tick epochLength() const { return config_.epochLength; }
    /** Epoch length the guard was constructed with. */
    Tick baseEpochLength() const { return baseEpochLength_; }

    std::uint64_t errorsThisEpoch() const { return errorsThisEpoch_; }
    std::uint64_t totalErrors() const { return totalErrors_; }
    std::uint64_t trips() const { return trips_; }
    const EpochGuardConfig &config() const { return config_; }

    /**
     * Serialize the guard's mutable state (epoch cursor, per-epoch and
     * total error counts, trip flag) plus a fingerprint of the
     * configuration it was built with.
     */
    void saveState(snapshot::Serializer &out) const;

    /**
     * Restore a captured state.  Fails the deserializer (and returns
     * false) when the snapshot was taken under a different epoch
     * configuration.
     */
    bool restoreState(snapshot::Deserializer &in);

  private:
    void rollEpoch(Tick now);

    EpochGuardConfig config_;
    /** Construction-time epoch length (setEpochLength scales off it). */
    Tick baseEpochLength_;
    std::uint64_t threshold_;
    std::uint64_t epochIndex_ = 0;
    std::uint64_t errorsThisEpoch_ = 0;
    std::uint64_t totalErrors_ = 0;
    std::uint64_t trips_ = 0;
    bool trippedThisEpoch_ = false;
};

} // namespace hdmr::core

#endif // HDMR_CORE_EPOCH_GUARD_HH
