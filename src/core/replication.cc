#include "core/replication.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::core
{

const char *
toString(ReplicationMode mode)
{
    switch (mode) {
      case ReplicationMode::kNone:
        return "Commercial Baseline";
      case ReplicationMode::kFmr:
        return "FMR";
      case ReplicationMode::kHeteroDmr:
        return "Hetero-DMR";
      case ReplicationMode::kHeteroDmrFmr:
        return "Hetero-DMR+FMR";
    }
    util::panic("unknown replication mode");
}

const char *
toString(MemoryUsage usage)
{
    switch (usage) {
      case MemoryUsage::kUnder25:
        return "[0~25%)";
      case MemoryUsage::kUnder50:
        return "[25~50%)";
      case MemoryUsage::kOver50:
        return "[50~100%]";
    }
    util::panic("unknown memory usage bucket");
}

ReplicationMode
ReplicationManager::effectiveMode(ReplicationMode requested,
                                  MemoryUsage usage)
{
    switch (requested) {
      case ReplicationMode::kNone:
        return ReplicationMode::kNone;
      case ReplicationMode::kFmr:
        // FMR replicates whenever half the ranks are free (<50 %).
        return usage == MemoryUsage::kOver50 ? ReplicationMode::kNone
                                             : ReplicationMode::kFmr;
      case ReplicationMode::kHeteroDmr:
        return usage == MemoryUsage::kOver50
                   ? ReplicationMode::kNone
                   : ReplicationMode::kHeteroDmr;
      case ReplicationMode::kHeteroDmrFmr:
        if (usage == MemoryUsage::kUnder25)
            return ReplicationMode::kHeteroDmrFmr;
        if (usage == MemoryUsage::kUnder50)
            return ReplicationMode::kHeteroDmr; // regresses (Sec. IV-A)
        return ReplicationMode::kNone;
    }
    util::panic("unknown replication mode");
}

ChannelPlan
ReplicationManager::planChannel(ReplicationMode mode)
{
    ChannelPlan plan;
    plan.mode = mode;

    switch (mode) {
      case ReplicationMode::kNone:
        plan.addressRanks = 4;
        plan.fastReads = false;
        // Identity policy: reads/writes go to the home rank only.
        return plan;

      case ReplicationMode::kFmr:
        // Software data compacted into module 0 (ranks 0-1), copies at
        // the same location in module 1 (ranks 2-3).  Reads pick the
        // faster of original/copy; writes broadcast to both.  All at
        // manufacturer specification.
        plan.addressRanks = 2;
        plan.fastReads = false;
        plan.rankPolicy.readCandidates = [](unsigned home) {
            dram::RankSet s;
            s.add(home);
            s.add(home + 2);
            return s;
        };
        plan.rankPolicy.writeTargets = [](unsigned home) {
            dram::RankSet s;
            s.add(home);
            s.add(home + 2);
            return s;
        };
        return plan;

      case ReplicationMode::kHeteroDmr:
        // Read mode touches ONLY the Free Module (ranks 2-3), which
        // runs unsafely fast; the original ranks sit in self-refresh.
        // Write mode broadcasts to original + copy at specification.
        plan.addressRanks = 2;
        plan.fastReads = true;
        plan.selfRefreshMask = 0b0011;
        plan.rankPolicy.readCandidates = [](unsigned home) {
            return dram::RankSet::single(home + 2);
        };
        plan.rankPolicy.writeTargets = [](unsigned home) {
            dram::RankSet s;
            s.add(home);
            s.add(home + 2);
            return s;
        };
        return plan;

      case ReplicationMode::kHeteroDmrFmr:
        // Below 25 % utilization software data fits in one rank, so
        // two copies fit in the Free Module, one per rank; reads pick
        // the faster copy (FMR's algorithm) at the unsafely fast
        // setting; writes broadcast to the original and both copies.
        plan.addressRanks = 1;
        plan.fastReads = true;
        plan.selfRefreshMask = 0b0011;
        plan.rankPolicy.readCandidates = [](unsigned) {
            dram::RankSet s;
            s.add(2);
            s.add(3);
            return s;
        };
        plan.rankPolicy.writeTargets = [](unsigned home) {
            dram::RankSet s;
            s.add(home);
            s.add(2);
            s.add(3);
            return s;
        };
        return plan;
    }
    util::panic("unknown replication mode");
}

std::size_t
ReplicationManager::chooseFreeModule(
    const std::vector<unsigned> &module_margins_mts)
{
    if (module_margins_mts.empty())
        return 0;
    return static_cast<std::size_t>(
        std::max_element(module_margins_mts.begin(),
                         module_margins_mts.end()) -
        module_margins_mts.begin());
}

unsigned
ReplicationManager::channelMargin(
    const std::vector<unsigned> &module_margins_mts)
{
    if (module_margins_mts.empty())
        return 0;
    return *std::max_element(module_margins_mts.begin(),
                             module_margins_mts.end());
}

unsigned
ReplicationManager::nodeMargin(
    const std::vector<unsigned> &channel_margins_mts)
{
    if (channel_margins_mts.empty())
        return 0;
    return *std::min_element(channel_margins_mts.begin(),
                             channel_margins_mts.end());
}

std::size_t
ReplicationManager::remapForPermanentFault(std::size_t faulty_module,
                                           std::size_t num_modules)
{
    hdmr_assert(num_modules >= 2);
    return faulty_module == 0 ? 1 : (faulty_module == num_modules - 1
                                         ? num_modules - 2
                                         : faulty_module - 1);
}

} // namespace hdmr::core
