#include "cache/cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hdmr::cache
{

Cache::Cache(CacheConfig config) : config_(config)
{
    hdmr_assert(config_.ways >= 1);
    hdmr_assert(config_.lineBytes > 0 &&
                (config_.lineBytes & (config_.lineBytes - 1)) == 0);
    numSets_ = config_.numSets();
    hdmr_assert(numSets_ >= 1, "cache smaller than one set");
    lines_.resize(numSets_ * config_.ways);
}

void
Cache::bindTelemetry(telemetry::Registry &registry,
                     const std::string &prefix)
{
    tmHits_ = &registry.counter(prefix + ".hits");
    tmMisses_ = &registry.counter(prefix + ".misses");
    tmWritebacks_ = &registry.counter(prefix + ".writebacks");
}

std::uint64_t
Cache::setIndex(std::uint64_t address) const
{
    return (address / config_.lineBytes) % numSets_;
}

std::uint64_t
Cache::tagOf(std::uint64_t address) const
{
    return (address / config_.lineBytes) / numSets_;
}

std::uint64_t
Cache::lineAddress(std::uint64_t set, std::uint64_t tag) const
{
    return (tag * numSets_ + set) * config_.lineBytes;
}

AccessResult
Cache::access(std::uint64_t address, bool is_write)
{
    AccessResult result;
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    Line *base = &lines_[set * config_.ways];
    ++useClock_;

    Line *victim = base;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            result.hit = true;
            if (line.prefetched) {
                result.prefetchHit = true;
                line.prefetched = false;
                ++prefetchUseful_;
            }
            line.lastUse = useClock_;
            if (is_write && !line.dirty) {
                line.dirty = true;
                ++dirtyLines_;
            }
            ++hits_;
            HDMR_TM_INC(tmHits_);
            return result;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++misses_;
    HDMR_TM_INC(tmMisses_);
    if (victim->valid && victim->dirty) {
        result.evictedDirty = true;
        result.victimAddress = lineAddress(set, victim->tag);
        --dirtyLines_;
        HDMR_TM_INC(tmWritebacks_);
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->prefetched = false;
    victim->lastUse = useClock_;
    if (is_write)
        ++dirtyLines_;
    return result;
}

AccessResult
Cache::fill(std::uint64_t address, bool dirty, bool prefetched)
{
    AccessResult result;
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    Line *base = &lines_[set * config_.ways];
    ++useClock_;

    Line *victim = base;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            // Already present: just merge the dirty bit.
            if (dirty && !line.dirty) {
                line.dirty = true;
                ++dirtyLines_;
            }
            result.hit = true;
            return result;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    if (victim->valid && victim->dirty) {
        result.evictedDirty = true;
        result.victimAddress = lineAddress(set, victim->tag);
        --dirtyLines_;
        HDMR_TM_INC(tmWritebacks_);
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = dirty;
    victim->prefetched = prefetched;
    victim->lastUse = useClock_;
    if (dirty)
        ++dirtyLines_;
    return result;
}

bool
Cache::probe(std::uint64_t address) const
{
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    const Line *base = &lines_[set * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(std::uint64_t address)
{
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    Line *base = &lines_[set * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.valid = false;
            const bool was_dirty = line.dirty;
            if (was_dirty) {
                line.dirty = false;
                --dirtyLines_;
            }
            return was_dirty;
        }
    }
    return false;
}

std::size_t
Cache::cleanLruDirtyLines(
    std::size_t max_lines,
    const std::function<bool(std::uint64_t)> &filter,
    const std::function<void(std::uint64_t)> &write_out,
    unsigned lru_depth)
{
    std::size_t cleaned = 0;
    // Round-robin over sets starting where the last clean stopped;
    // within a set, clean the least-recently-used dirty lines first.
    std::vector<Line *> valid_ways;
    for (std::size_t visited = 0;
         visited < numSets_ && cleaned < max_lines; ++visited) {
        const std::size_t set = (cleanCursor_ + visited) % numSets_;
        Line *base = &lines_[set * config_.ways];

        // Order the set's valid lines by recency.
        valid_ways.clear();
        for (unsigned w = 0; w < config_.ways; ++w) {
            if (base[w].valid)
                valid_ways.push_back(&base[w]);
        }
        std::sort(valid_ways.begin(), valid_ways.end(),
                  [](const Line *a, const Line *b) {
                      return a->lastUse < b->lastUse;
                  });

        const std::size_t depth =
            std::min<std::size_t>(valid_ways.size(), lru_depth);
        for (std::size_t i = 0; i < depth && cleaned < max_lines;
             ++i) {
            Line *line = valid_ways[i];
            if (!line->dirty)
                continue;
            const std::uint64_t addr = lineAddress(set, line->tag);
            if (filter && !filter(addr))
                continue;
            write_out(addr);
            line->dirty = false;
            --dirtyLines_;
            HDMR_TM_INC(tmWritebacks_);
            ++cleaned;
        }
        if (cleaned >= max_lines) {
            cleanCursor_ = (set + 1) % numSets_;
            return cleaned;
        }
    }
    cleanCursor_ = 0;
    return cleaned;
}

} // namespace hdmr::cache
