/**
 * @file
 * Hardware prefetchers of Table IV: a stride prefetcher (degree 2 at
 * L1, degree 4 at L2) and a next-line prefetcher with accuracy-based
 * auto turn-off.
 */

#ifndef HDMR_CACHE_PREFETCHER_HH
#define HDMR_CACHE_PREFETCHER_HH

#include <cstdint>
#include <vector>

namespace hdmr::cache
{

/**
 * Stride prefetcher with a small stream table: concurrent access
 * streams (different arrays of the same core) train independent
 * entries, matched by address proximity, the way real per-PC/stream
 * detectors behave.  A confident entry emits `degree` prefetch
 * addresses ahead of the stream.
 */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(unsigned degree, unsigned line_bytes = 64);

    /**
     * Observe a demand miss and append predicted addresses to `out`.
     * Returns the number of prefetches generated.
     */
    std::size_t observeMiss(std::uint64_t address,
                            std::vector<std::uint64_t> &out);

    std::uint64_t issued() const { return issued_; }

  private:
    struct StreamEntry
    {
        std::uint64_t lastAddress = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    static constexpr std::size_t kStreams = 16;
    /** A miss within this distance of a stream belongs to it. */
    static constexpr std::uint64_t kMatchWindow = 256 * 1024;

    unsigned degree_;
    unsigned lineBytes_;
    StreamEntry streams_[kStreams];
    std::uint64_t useClock_ = 0;
    std::uint64_t issued_ = 0;
};

/**
 * Next-line prefetcher with auto turn-off: tracks how many of its
 * prefetches get used; below an accuracy threshold it disables itself
 * and periodically re-probes.
 */
class NextLinePrefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned line_bytes = 64);

    /** Observe a demand miss; maybe emit the next line. */
    std::size_t observeMiss(std::uint64_t address,
                            std::vector<std::uint64_t> &out);

    /** Report that one of this prefetcher's fills was used. */
    void creditUse() { ++used_; }

    bool enabled() const { return enabled_; }
    std::uint64_t issued() const { return issued_; }

  private:
    void updateEnable();

    unsigned lineBytes_;
    bool enabled_ = true;
    std::uint64_t issued_ = 0;
    std::uint64_t used_ = 0;
    std::uint64_t issuedAtLastCheck_ = 0;
    std::uint64_t usedAtLastCheck_ = 0;
    std::uint64_t missesSinceDisable_ = 0;

    static constexpr std::uint64_t kCheckInterval = 1024;
    static constexpr double kMinAccuracy = 0.15;
    static constexpr std::uint64_t kRetryInterval = 65536;
};

} // namespace hdmr::cache

#endif // HDMR_CACHE_PREFETCHER_HH
