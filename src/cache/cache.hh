/**
 * @file
 * Set-associative write-back cache with LRU replacement.
 *
 * The model is functional-plus-latency: tags, dirty bits, prefetch
 * bits and LRU state are tracked exactly; data is not stored (the
 * simulators upstream only need hit/miss/eviction behaviour).  The
 * LLC additionally supports Hetero-DMR's "clean N least-recently-used
 * dirty lines" operation (Section III-E).
 */

#ifndef HDMR_CACHE_CACHE_HH
#define HDMR_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/telemetry.hh"
#include "util/units.hh"

namespace hdmr::cache
{

/** Cache geometry and latency. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 1ull << 20;
    unsigned ways = 16;
    unsigned lineBytes = 64;
    util::Tick latency = 3871; ///< 12 cycles @ 3.1 GHz

    std::uint64_t
    numLines() const
    {
        return sizeBytes / lineBytes;
    }

    std::uint64_t
    numSets() const
    {
        return numLines() / ways;
    }
};

/** Outcome of a cache access. */
struct AccessResult
{
    bool hit = false;
    /** Hit on a line brought in by a prefetch (first demand use). */
    bool prefetchHit = false;
    /** A dirty victim was evicted and must be written downstream. */
    bool evictedDirty = false;
    std::uint64_t victimAddress = 0;
};

/** The cache. */
class Cache
{
  public:
    explicit Cache(CacheConfig config);

    const CacheConfig &config() const { return config_; }

    /**
     * Demand access with allocate-on-miss.  On a miss the line is
     * installed immediately (MSHR-merge approximation: peer accesses
     * to an in-flight line count as hits) and the LRU victim falls
     * out; timing is handled by the caller.
     */
    AccessResult access(std::uint64_t address, bool is_write);

    /** Install a line without a demand access (prefetch fill). */
    AccessResult fill(std::uint64_t address, bool dirty,
                      bool prefetched);

    /** Tag probe without state change. */
    bool probe(std::uint64_t address) const;

    /** Invalidate a line; returns true if it was present and dirty. */
    bool invalidate(std::uint64_t address);

    /**
     * Clean up to `max_lines` least-recently-used dirty lines whose
     * address satisfies `filter`, invoking `write_out` for each and
     * marking it clean (Hetero-DMR write-mode LLC cleaning; the
     * LRU-first order minimizes re-dirtying).  Returns lines cleaned.
     *
     * `lru_depth` restricts cleaning to the N least-recently-used
     * valid lines of each set - the lines that would be evicted soon
     * anyway, so that proactive cleaning advances, rather than adds
     * to, the write traffic.  Pass `ways` (default) to consider all.
     */
    std::size_t
    cleanLruDirtyLines(std::size_t max_lines,
                       const std::function<bool(std::uint64_t)> &filter,
                       const std::function<void(std::uint64_t)> &write_out,
                       unsigned lru_depth = ~0u);

    /** Number of dirty lines currently resident. */
    std::uint64_t dirtyLines() const { return dirtyLines_; }

    // Statistics.
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t prefetchUsefulCount() const { return prefetchUseful_; }

    double
    hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total == 0 ? 0.0
                          : static_cast<double>(hits_) /
                                static_cast<double>(total);
    }

    /**
     * Bind observability metrics under `prefix` (e.g. "cache.l2.c0"):
     * hits, misses, and dirty writebacks (demand/fill evictions plus
     * proactive cleans).  Unbound, each update is one null check.
     */
    void bindTelemetry(telemetry::Registry &registry,
                       const std::string &prefix);

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
    };

    std::uint64_t setIndex(std::uint64_t address) const;
    std::uint64_t tagOf(std::uint64_t address) const;
    std::uint64_t lineAddress(std::uint64_t set, std::uint64_t tag) const;

    CacheConfig config_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
    std::uint64_t dirtyLines_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t prefetchUseful_ = 0;
    std::size_t cleanCursor_ = 0; ///< round-robin set scan position

    /** Registry-owned metric bindings; null until bindTelemetry(). */
    telemetry::Counter *tmHits_ = nullptr;
    telemetry::Counter *tmMisses_ = nullptr;
    telemetry::Counter *tmWritebacks_ = nullptr;
};

} // namespace hdmr::cache

#endif // HDMR_CACHE_CACHE_HH
