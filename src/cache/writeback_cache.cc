#include "cache/writeback_cache.hh"

#include "util/logging.hh"

namespace hdmr::cache
{

WritebackCache::WritebackCache(WritebackCacheConfig config)
    : config_(config)
{
    const std::size_t entries =
        config_.sizeBytes / config_.lineBytes;
    hdmr_assert(entries % config_.ways == 0);
    numSets_ = entries / config_.ways;
    entries_.resize(entries);
}

std::size_t
WritebackCache::setOf(std::uint64_t address) const
{
    return (address / config_.lineBytes) % numSets_;
}

bool
WritebackCache::insert(std::uint64_t address)
{
    const std::size_t set = setOf(address);
    Entry *base = &entries_[set * config_.ways];
    Entry *free_slot = nullptr;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.address == address)
            return true; // coalesce
        if (!e.valid && free_slot == nullptr)
            free_slot = &e;
    }
    if (free_slot == nullptr) {
        ++rejects_;
        return false; // set full: caller sends to the write buffer
    }
    free_slot->valid = true;
    free_slot->address = address;
    free_slot->insertedAt = ++insertClock_;
    ++occupancy_;
    ++inserts_;
    return true;
}

std::optional<std::uint64_t>
WritebackCache::pop()
{
    if (occupancy_ == 0)
        return std::nullopt;
    // Scan from the drain cursor for the set containing the oldest
    // entry encountered; strict global FIFO is not required, only
    // forward progress and rough age order.
    for (std::size_t visited = 0; visited < numSets_; ++visited) {
        const std::size_t set = (drainCursor_ + visited) % numSets_;
        Entry *base = &entries_[set * config_.ways];
        Entry *oldest = nullptr;
        for (unsigned w = 0; w < config_.ways; ++w) {
            Entry &e = base[w];
            if (e.valid &&
                (oldest == nullptr || e.insertedAt < oldest->insertedAt))
                oldest = &e;
        }
        if (oldest != nullptr) {
            drainCursor_ = set;
            oldest->valid = false;
            --occupancy_;
            return oldest->address;
        }
    }
    util::panic("writeback cache occupancy desynchronized");
}

bool
WritebackCache::remove(std::uint64_t address)
{
    const std::size_t set = setOf(address);
    Entry *base = &entries_[set * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.address == address) {
            e.valid = false;
            --occupancy_;
            return true;
        }
    }
    return false;
}

} // namespace hdmr::cache
