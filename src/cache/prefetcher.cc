#include "cache/prefetcher.hh"

namespace hdmr::cache
{

StridePrefetcher::StridePrefetcher(unsigned degree, unsigned line_bytes)
    : degree_(degree), lineBytes_(line_bytes)
{
}

std::size_t
StridePrefetcher::observeMiss(std::uint64_t address,
                              std::vector<std::uint64_t> &out)
{
    ++useClock_;

    // Find the stream this miss belongs to (nearest within window),
    // or a victim entry to (re)allocate.
    StreamEntry *entry = nullptr;
    StreamEntry *victim = &streams_[0];
    std::uint64_t best_distance = kMatchWindow;
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            continue;
        }
        const std::uint64_t distance =
            address > s.lastAddress ? address - s.lastAddress
                                    : s.lastAddress - address;
        if (distance <= best_distance) {
            best_distance = distance;
            entry = &s;
        }
        if (victim->valid && s.lastUse < victim->lastUse)
            victim = &s;
    }

    if (entry == nullptr) {
        victim->valid = true;
        victim->lastAddress = address;
        victim->stride = 0;
        victim->confidence = 0;
        victim->lastUse = useClock_;
        return 0;
    }

    const std::int64_t stride = static_cast<std::int64_t>(address) -
                                static_cast<std::int64_t>(entry->lastAddress);
    std::size_t generated = 0;
    if (stride != 0 && stride == entry->stride) {
        if (entry->confidence < 3)
            ++entry->confidence;
        if (entry->confidence >= 2) {
            for (unsigned d = 1; d <= degree_; ++d) {
                const std::int64_t target =
                    static_cast<std::int64_t>(address) +
                    stride * static_cast<std::int64_t>(d);
                if (target > 0) {
                    out.push_back(static_cast<std::uint64_t>(target));
                    ++generated;
                }
            }
            issued_ += generated;
        }
    } else if (stride != 0) {
        entry->stride = stride;
        entry->confidence = 0;
    }
    entry->lastAddress = address;
    entry->lastUse = useClock_;
    return generated;
}

NextLinePrefetcher::NextLinePrefetcher(unsigned line_bytes)
    : lineBytes_(line_bytes)
{
}

std::size_t
NextLinePrefetcher::observeMiss(std::uint64_t address,
                                std::vector<std::uint64_t> &out)
{
    if (!enabled_) {
        if (++missesSinceDisable_ >= kRetryInterval) {
            // Re-probe: turn back on and re-measure accuracy.
            enabled_ = true;
            missesSinceDisable_ = 0;
            issuedAtLastCheck_ = issued_;
            usedAtLastCheck_ = used_;
        }
        return 0;
    }
    out.push_back(address + lineBytes_);
    ++issued_;
    updateEnable();
    return 1;
}

void
NextLinePrefetcher::updateEnable()
{
    if (issued_ - issuedAtLastCheck_ < kCheckInterval)
        return;
    const double accuracy =
        static_cast<double>(used_ - usedAtLastCheck_) /
        static_cast<double>(issued_ - issuedAtLastCheck_);
    if (accuracy < kMinAccuracy) {
        enabled_ = false;
        missesSinceDisable_ = 0;
    }
    issuedAtLastCheck_ = issued_;
    usedAtLastCheck_ = used_;
}

} // namespace hdmr::cache
