/**
 * @file
 * The per-channel victim write-back cache of Section III-E: 128 KB,
 * 64-way, sitting between the LLC and the channel's write buffer.
 * Evicted dirty blocks park here so the (small) write buffer does not
 * fill up between write-mode windows; during write mode the contents
 * drain to DRAM through the write buffer.  The memory command
 * scheduler never inspects this structure.
 *
 * Address-only model (like the caches): entries are line addresses.
 */

#ifndef HDMR_CACHE_WRITEBACK_CACHE_HH
#define HDMR_CACHE_WRITEBACK_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace hdmr::cache
{

/** Victim write-back cache configuration (paper defaults). */
struct WritebackCacheConfig
{
    std::uint64_t sizeBytes = 128 * 1024;
    unsigned ways = 64;
    unsigned lineBytes = 64;
};

/** The victim write-back cache. */
class WritebackCache
{
  public:
    explicit WritebackCache(WritebackCacheConfig config = {});

    /**
     * Insert an evicted dirty block.  If its set is full the caller
     * must route the block to the write buffer instead; that case is
     * signalled by returning false.  A block already present is
     * coalesced (returns true).
     */
    bool insert(std::uint64_t address);

    /** Remove and return one entry (drain order: oldest first). */
    std::optional<std::uint64_t> pop();

    /** Drop an entry if present (e.g. re-dirtied in LLC). Returns hit. */
    bool remove(std::uint64_t address);

    bool empty() const { return occupancy_ == 0; }
    std::size_t occupancy() const { return occupancy_; }
    std::size_t capacity() const { return entries_.size(); }

    std::uint64_t inserts() const { return inserts_; }
    std::uint64_t rejects() const { return rejects_; }

  private:
    struct Entry
    {
        std::uint64_t address = 0;
        std::uint64_t insertedAt = 0;
        bool valid = false;
    };

    std::size_t setOf(std::uint64_t address) const;

    WritebackCacheConfig config_;
    std::size_t numSets_;
    std::vector<Entry> entries_;
    std::uint64_t insertClock_ = 0;
    std::size_t occupancy_ = 0;
    std::size_t drainCursor_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t rejects_ = 0;
};

} // namespace hdmr::cache

#endif // HDMR_CACHE_WRITEBACK_CACHE_HH
