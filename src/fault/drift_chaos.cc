#include "fault/drift_chaos.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace hdmr::fault
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

} // namespace

util::Status
DriftScenarioConfig::validate() const
{
    if (std::isnan(marginStepMts) || marginStepMts <= 0.0)
        return util::invalidArgument(
            "DriftScenarioConfig.marginStepMts must be > 0");
    if (targetsPerModule == 0)
        return util::invalidArgument(
            "DriftScenarioConfig.targetsPerModule must be at least 1");
    if (std::isnan(excursionThresholdC) || excursionThresholdC <= 0.0)
        return util::invalidArgument(
            "DriftScenarioConfig.excursionThresholdC must be > 0");
    if (std::isnan(spikeBurstErrors) || spikeBurstErrors < 0.0)
        return util::invalidArgument(
            "DriftScenarioConfig.spikeBurstErrors must be >= 0");
    return util::Status{};
}

DriftChaosCampaign::DriftChaosCampaign(const DriftScenarioConfig &config)
    : config_(config), model_(config.drift)
{
    util::checkOk(config_.validate());
    appendMarginCrossings();
    appendExcursionWindows();
    appendSpikeBursts();
    // Stable by time: events generated earlier (crossings, then
    // excursions, then bursts) win ties, so the schedule is a pure
    // function of the config.
    std::stable_sort(schedule_.begin(), schedule_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.atSeconds < b.atSeconds;
                     });
}

void
DriftChaosCampaign::appendMarginCrossings()
{
    const double horizon = config_.drift.horizonHours;
    if (horizon <= 0.0)
        return;
    for (unsigned m = 0; m < config_.drift.modules; ++m) {
        const double rate = model_.agingRateMtsPerKiloHour(m);
        if (rate <= 0.0)
            continue;
        // erosion(h) = rate * (h/1000)^q crosses k * step at
        // h_k = 1000 * (k * step / rate)^(1/q).
        for (unsigned k = 1;; ++k) {
            const double hour =
                1000.0 * std::pow(k * config_.marginStepMts / rate,
                                  1.0 / config_.drift.agingExponent);
            if (hour > horizon)
                break;
            for (unsigned t = 0; t < config_.targetsPerModule; ++t) {
                FaultEvent ev;
                ev.atSeconds = hour * 3600.0;
                ev.kind = FaultKind::kMarginDrift;
                ev.target = m * config_.targetsPerModule + t;
                ev.magnitude = config_.marginStepMts;
                schedule_.push_back(ev);
            }
        }
    }
}

void
DriftChaosCampaign::appendExcursionWindows()
{
    const double horizon = config_.drift.horizonHours;
    const double amplitude = config_.drift.diurnalAmplitudeC;
    if (horizon <= 0.0 || amplitude < config_.excursionThresholdC)
        return;
    // delta(h) = A/2 (1 + cos(2 pi (h - peak) / 24)) >= T holds inside
    // a window of half-width w = (24 / 2 pi) acos(2 T / A - 1) around
    // each daily peak.
    const double cos_edge = std::clamp(
        2.0 * config_.excursionThresholdC / amplitude - 1.0, -1.0, 1.0);
    const double half_width = 24.0 / (2.0 * kPi) * std::acos(cos_edge);
    if (half_width <= 0.0)
        return;
    for (double peak = config_.drift.diurnalPeakHour;
         peak - half_width < horizon; peak += 24.0) {
        const double start = std::max(0.0, peak - half_width);
        const double end = std::min(horizon, peak + half_width);
        if (end <= start)
            continue;
        FaultEvent ev;
        ev.atSeconds = start * 3600.0;
        ev.kind = FaultKind::kTemperatureExcursion;
        ev.target = 0; // machine-room ambient: fleet-wide
        ev.magnitude = 1.0;
        ev.durationSeconds = (end - start) * 3600.0;
        schedule_.push_back(ev);
    }
}

void
DriftChaosCampaign::appendSpikeBursts()
{
    for (unsigned m = 0; m < config_.drift.modules; ++m) {
        for (const margin::VoltageSpike &spike : model_.spikes(m)) {
            for (unsigned t = 0; t < config_.targetsPerModule; ++t) {
                FaultEvent ev;
                ev.atSeconds = spike.startHour * 3600.0;
                ev.kind = FaultKind::kErrorBurst;
                ev.target = m * config_.targetsPerModule + t;
                ev.magnitude = config_.spikeBurstErrors;
                ev.durationSeconds = spike.durationHours * 3600.0;
                schedule_.push_back(ev);
            }
        }
    }
}

std::vector<FaultEvent>
DriftChaosCampaign::schedule(FaultKind kind) const
{
    std::vector<FaultEvent> filtered;
    for (const FaultEvent &ev : schedule_) {
        if (ev.kind == kind)
            filtered.push_back(ev);
    }
    return filtered;
}

std::vector<FaultEvent>
DriftChaosCampaign::clusterSchedule() const
{
    std::vector<FaultEvent> cluster;
    for (const FaultEvent &ev : schedule_) {
        switch (ev.kind) {
          case FaultKind::kMarginDrift: {
            FaultEvent demotion = ev;
            demotion.kind = FaultKind::kGroupDemotion;
            demotion.magnitude = 1.0;
            cluster.push_back(demotion);
            break;
          }
          case FaultKind::kTemperatureExcursion:
            cluster.push_back(ev);
            break;
          default:
            break; // bursts have no cluster-layer consumer
        }
    }
    return cluster;
}

std::vector<FaultEvent>
DriftChaosCampaign::composeWith(const FaultCampaign &base) const
{
    std::vector<FaultEvent> merged = base.schedule();
    merged.insert(merged.end(), schedule_.begin(), schedule_.end());
    std::stable_sort(merged.begin(), merged.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.atSeconds < b.atSeconds;
                     });
    return merged;
}

} // namespace hdmr::fault
