/**
 * @file
 * Node-layer fault delivery: walks a campaign schedule and delivers
 * each fault to the targeted channel's ModeController through the
 * simulation event queue, so injected faults interleave with organic
 * traffic in deterministic event order.
 *
 * Channel-scoped kinds map onto the mode controller's fault surface
 * (UE, detected-error burst, margin drift, ambient multiplier);
 * node-scoped kinds (node failure, group demotion) are counted but
 * otherwise ignored here - they are cluster-layer faults.
 */

#ifndef HDMR_FAULT_INJECTOR_HH
#define HDMR_FAULT_INJECTOR_HH

#include <deque>
#include <vector>

#include "core/mode_controller.hh"
#include "fault/campaign.hh"
#include "sim/event_queue.hh"

namespace hdmr::fault
{

/** Delivers a fault schedule to a node's mode controllers. */
class NodeFaultInjector
{
  public:
    /**
     * @param events    the node's event queue
     * @param channels  one mode controller per channel; targets in the
     *                  schedule are taken modulo the channel count
     * @param hotFactor error-rate multiplier a temperature excursion
     *                  applies (Section II-C: ~4x at 45 degC)
     */
    NodeFaultInjector(sim::EventQueue &events,
                      std::vector<core::ModeController *> channels,
                      double hotFactor = 4.0);

    ~NodeFaultInjector();

    /**
     * Schedule every event in `schedule` (seconds -> ticks).  Events
     * beyond `horizon` ticks are dropped (the node simulation's
     * window is much shorter than a cluster campaign's).
     */
    void arm(const std::vector<FaultEvent> &schedule,
             util::Tick horizon = ~util::Tick(0));

    const FaultAccounting &accounting() const { return accounting_; }

  private:
    void deliver(const FaultEvent &fault);
    void endExcursion(unsigned channel);

    sim::EventQueue &events_;
    std::vector<core::ModeController *> channels_;
    double hotFactor_;
    FaultAccounting accounting_;

    /** One owned event per scheduled delivery (Events are pinned). */
    std::deque<sim::CallbackEvent> pendingEvents_;
    /** Nested-excursion depth per channel. */
    std::vector<unsigned> excursionDepth_;
};

} // namespace hdmr::fault

#endif // HDMR_FAULT_INJECTOR_HH
