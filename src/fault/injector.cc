#include "fault/injector.hh"

#include <cmath>

#include "util/logging.hh"

namespace hdmr::fault
{

using util::Tick;

NodeFaultInjector::NodeFaultInjector(
    sim::EventQueue &events,
    std::vector<core::ModeController *> channels, double hotFactor)
    : events_(events), channels_(std::move(channels)),
      hotFactor_(hotFactor), excursionDepth_(channels_.size(), 0)
{
    hdmr_assert(!channels_.empty(),
                "fault injector needs at least one channel");
}

NodeFaultInjector::~NodeFaultInjector()
{
    for (auto &event : pendingEvents_) {
        if (event.scheduled())
            events_.deschedule(&event);
    }
}

void
NodeFaultInjector::arm(const std::vector<FaultEvent> &schedule,
                       Tick horizon)
{
    for (const FaultEvent &fault : schedule) {
        const double ticks =
            fault.atSeconds * static_cast<double>(util::kTicksPerSec);
        if (ticks >= static_cast<double>(horizon))
            continue;
        const Tick when = static_cast<Tick>(ticks);
        pendingEvents_.emplace_back(
            [this, fault] { deliver(fault); });
        events_.schedule(&pendingEvents_.back(),
                         std::max(when, events_.curTick()));
    }
}

void
NodeFaultInjector::deliver(const FaultEvent &fault)
{
    ++accounting_.injected;
    const unsigned ch = fault.target % channels_.size();
    core::ModeController &channel = *channels_[ch];

    switch (fault.kind) {
      case FaultKind::kTransientUncorrectable:
        ++accounting_.uncorrectable;
        channel.injectUncorrectable();
        break;
      case FaultKind::kErrorBurst: {
        const auto count = static_cast<std::uint64_t>(
            std::max(1.0, fault.magnitude));
        accounting_.detectedErrors += count;
        channel.injectDetectedErrors(count);
        break;
      }
      case FaultKind::kMarginDrift: {
        const auto mts =
            static_cast<unsigned>(std::max(0.0, fault.magnitude));
        accounting_.marginDriftMts += mts;
        channel.applyMarginDrift(mts);
        break;
      }
      case FaultKind::kTemperatureExcursion: {
        ++accounting_.excursions;
        if (excursionDepth_[ch]++ == 0)
            channel.setAmbientErrorMultiplier(hotFactor_);
        const double ticks = fault.durationSeconds *
                             static_cast<double>(util::kTicksPerSec);
        pendingEvents_.emplace_back(
            [this, ch] { endExcursion(ch); });
        events_.schedule(&pendingEvents_.back(),
                         events_.curTick() +
                             static_cast<Tick>(std::max(ticks, 1.0)));
        break;
      }
      case FaultKind::kNodeFailure:
        ++accounting_.nodeFailures; // cluster-layer kind: count only
        break;
      case FaultKind::kGroupDemotion:
        ++accounting_.groupDemotions; // cluster-layer kind: count only
        break;
    }
}

void
NodeFaultInjector::endExcursion(unsigned channel)
{
    hdmr_assert(excursionDepth_[channel] > 0, "unbalanced excursion");
    if (--excursionDepth_[channel] == 0)
        channels_[channel]->setAmbientErrorMultiplier(1.0);
}

} // namespace hdmr::fault
