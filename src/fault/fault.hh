/**
 * @file
 * Fault taxonomy for the injection-campaign subsystem.
 *
 * The paper's architecture is only interesting while its reliability
 * assumptions hold: detected errors are recoverable from the original
 * module, a module's profiled stable rate stays stable, and nodes keep
 * the margin group they were binned into.  This subsystem models the
 * ways those assumptions break (related work: Heterogeneous-Reliability
 * Memory, AL-DRAM) so the rest of the repository can quantify graceful
 * degradation instead of only the happy path:
 *
 *  - transient uncorrectable errors (the recovery read of the original
 *    *also* returns corrupt data);
 *  - intermittent bursts of detected errors (a marginal module having
 *    a bad minute, pressure on the SDC epoch guard);
 *  - margin drift (aging erodes the profiled stable rate, so the
 *    "safe" fast setting slowly stops being safe);
 *  - temperature excursions (cooling failure; Section II-C measured a
 *    ~4x error-rate multiplier at 45 degC);
 *  - whole-node failures and margin-group demotions (cluster layer).
 */

#ifndef HDMR_FAULT_FAULT_HH
#define HDMR_FAULT_FAULT_HH

#include <cstdint>

#include "util/stats.hh"

namespace hdmr::fault
{

/** The kinds of injected fault the campaign engine schedules. */
enum class FaultKind : std::uint8_t
{
    kTransientUncorrectable, ///< detected error whose recovery fails too
    kErrorBurst,             ///< burst of detected-correctable errors
    kMarginDrift,            ///< permanent erosion of the stable rate
    kTemperatureExcursion,   ///< bounded 45 degC window
    kNodeFailure,            ///< whole node permanently lost (cluster)
    kGroupDemotion,          ///< node reclassified one margin group down
};

const char *toString(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    double atSeconds = 0.0;
    FaultKind kind = FaultKind::kErrorBurst;
    /** Channel index (node layer) or node index (cluster layer). */
    unsigned target = 0;
    /** Kind-specific size: burst error count, drift MT/s, 1 otherwise. */
    double magnitude = 1.0;
    /** Window length for bounded faults (temperature excursions). */
    double durationSeconds = 0.0;
};

/**
 * Bottom-up fault accounting.  Every layer that receives injected
 * faults keeps one of these; campaign runners merge them and report
 * through util::CounterSet so node-level and cluster-level numbers
 * share one vocabulary.
 */
struct FaultAccounting
{
    std::uint64_t injected = 0;        ///< fault events delivered
    std::uint64_t detectedErrors = 0;  ///< burst errors fed to the guard
    std::uint64_t uncorrectable = 0;   ///< UEs surfaced
    std::uint64_t marginDriftMts = 0;  ///< total MT/s of drift applied
    std::uint64_t excursions = 0;      ///< temperature windows opened
    std::uint64_t nodeFailures = 0;
    std::uint64_t groupDemotions = 0;

    void
    merge(const FaultAccounting &other)
    {
        injected += other.injected;
        detectedErrors += other.detectedErrors;
        uncorrectable += other.uncorrectable;
        marginDriftMts += other.marginDriftMts;
        excursions += other.excursions;
        nodeFailures += other.nodeFailures;
        groupDemotions += other.groupDemotions;
    }

    /** Export into the shared counter vocabulary. */
    util::CounterSet
    counters() const
    {
        util::CounterSet set;
        set.add("fault.injected", static_cast<double>(injected));
        set.add("fault.detected_errors",
                static_cast<double>(detectedErrors));
        set.add("fault.uncorrectable", static_cast<double>(uncorrectable));
        set.add("fault.margin_drift_mts",
                static_cast<double>(marginDriftMts));
        set.add("fault.excursions", static_cast<double>(excursions));
        set.add("fault.node_failures", static_cast<double>(nodeFailures));
        set.add("fault.group_demotions",
                static_cast<double>(groupDemotions));
        return set;
    }
};

} // namespace hdmr::fault

#endif // HDMR_FAULT_FAULT_HH
