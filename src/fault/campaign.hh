/**
 * @file
 * Deterministic, seeded fault-injection campaign engine.
 *
 * A campaign is a *schedule*: given per-kind base rates, a global
 * intensity knob, a target count and a horizon, it expands into a
 * time-sorted list of FaultEvents via independent Poisson processes
 * (one forked RNG stream per kind, so enabling one fault kind never
 * perturbs the arrival times of another).  Intensity 0 produces an
 * empty schedule and touches no RNG at all - a zero campaign is
 * bit-identical to not having the subsystem.
 *
 * Job-killing UEs at the cluster layer use killTimeSeconds() instead
 * of the schedule: each (job, attempt) pair owns one uniform draw that
 * is mapped through the exponential inverse CDF at the current rate.
 * Realizations are therefore *nested* across intensities - raising the
 * fault rate can only move every kill earlier, never un-kill a job -
 * which makes "speedup retained vs fault rate" sweeps monotone by
 * construction instead of by luck.
 */

#ifndef HDMR_FAULT_CAMPAIGN_HH
#define HDMR_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <vector>

#include "fault/fault.hh"

namespace hdmr::fault
{

/** Campaign parameters.  Rates are per target per hour at intensity 1. */
struct CampaignConfig
{
    /** Global fault-rate scale; 0 disables the campaign entirely. */
    double intensity = 0.0;
    std::uint64_t seed = 0xfa17u;
    /** Schedule horizon in seconds. */
    double horizonSeconds = 4.0 * 30 * 24 * 3600.0;
    /** Number of targets (channels or nodes) faults spread over. */
    unsigned targets = 1;

    // Base event rates, per target-hour, at intensity 1.0.
    double uncorrectablePerHour = 0.0;
    double burstsPerHour = 0.0;
    double driftEventsPerHour = 0.0;
    double excursionsPerHour = 0.0;
    double nodeFailuresPerHour = 0.0;
    double demotionsPerHour = 0.0;

    // Magnitudes.
    double burstErrorsMean = 50.0;      ///< detected errors per burst
    double driftStepMts = 200.0;        ///< stable-rate loss per event
    double excursionMeanSeconds = 1800.0; ///< mean 45 degC window

    bool
    enabled() const
    {
        return intensity > 0.0 &&
               (uncorrectablePerHour > 0.0 || burstsPerHour > 0.0 ||
                driftEventsPerHour > 0.0 || excursionsPerHour > 0.0 ||
                nodeFailuresPerHour > 0.0 || demotionsPerHour > 0.0);
    }

    /** Effective aggregate rate for one kind, per second, all targets. */
    double
    ratePerSecond(double base_per_hour) const
    {
        return intensity * base_per_hour *
               static_cast<double>(targets) / 3600.0;
    }
};

/** Expands a CampaignConfig into a deterministic fault schedule. */
class FaultCampaign
{
  public:
    explicit FaultCampaign(CampaignConfig config);

    /**
     * The full schedule, sorted by time (stable across kinds).  Same
     * config => same schedule, bit for bit.
     */
    std::vector<FaultEvent> schedule() const;

    /**
     * Time to the job-killing UE for (job, attempt) at the given
     * per-second aggregate rate, or +infinity when the rate is 0.
     * Deterministic in (seed, job, attempt) and nested across rates:
     * for fixed identifiers the kill time is strictly decreasing in
     * the rate, so fault realizations at a higher intensity are a
     * superset of those at a lower one.
     */
    static double killTimeSeconds(std::uint64_t seed, unsigned job_id,
                                  unsigned attempt,
                                  double rate_per_second);

    const CampaignConfig &config() const { return config_; }

  private:
    CampaignConfig config_;
};

} // namespace hdmr::fault

#endif // HDMR_FAULT_CAMPAIGN_HH
