/**
 * @file
 * Deterministic, seeded fault-injection campaign engine.
 *
 * A campaign is a *schedule*: given per-kind base rates, a global
 * intensity knob, a target count and a horizon, it expands into a
 * time-sorted list of FaultEvents via independent Poisson processes
 * (one forked RNG stream per kind, so enabling one fault kind never
 * perturbs the arrival times of another).  Intensity 0 produces an
 * empty schedule and touches no RNG at all - a zero campaign is
 * bit-identical to not having the subsystem.
 *
 * Job-killing UEs at the cluster layer use killTimeSeconds() instead
 * of the schedule: each (job, attempt) pair owns one uniform draw that
 * is mapped through the exponential inverse CDF at the current rate.
 * Realizations are therefore *nested* across intensities - raising the
 * fault rate can only move every kill earlier, never un-kill a job -
 * which makes "speedup retained vs fault rate" sweeps monotone by
 * construction instead of by luck.
 */

#ifndef HDMR_FAULT_CAMPAIGN_HH
#define HDMR_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "telemetry/metrics.hh"
#include "util/status.hh"

namespace hdmr::snapshot
{
class Serializer;
class Deserializer;
} // namespace hdmr::snapshot

namespace hdmr::fault
{

/** Campaign parameters.  Rates are per target per hour at intensity 1. */
struct CampaignConfig
{
    /** Global fault-rate scale; 0 disables the campaign entirely. */
    double intensity = 0.0;
    std::uint64_t seed = 0xfa17u;
    /** Schedule horizon in seconds. */
    double horizonSeconds = 4.0 * 30 * 24 * 3600.0;
    /** Number of targets (channels or nodes) faults spread over. */
    unsigned targets = 1;

    // Base event rates, per target-hour, at intensity 1.0.
    double uncorrectablePerHour = 0.0;
    double burstsPerHour = 0.0;
    double driftEventsPerHour = 0.0;
    double excursionsPerHour = 0.0;
    double nodeFailuresPerHour = 0.0;
    double demotionsPerHour = 0.0;

    // Magnitudes.
    double burstErrorsMean = 50.0;      ///< detected errors per burst
    double driftStepMts = 200.0;        ///< stable-rate loss per event
    double excursionMeanSeconds = 1800.0; ///< mean 45 degC window

    /**
     * Reject impossible campaigns (NaN/negative rates or magnitudes,
     * zero targets, negative horizon) with kInvalidArgument naming
     * the offending field.  FaultCampaign's constructor checkOk()s it
     * so bad configs fail loudly up front instead of deep inside a
     * run.
     */
    util::Status validate() const;

    bool
    enabled() const
    {
        return intensity > 0.0 &&
               (uncorrectablePerHour > 0.0 || burstsPerHour > 0.0 ||
                driftEventsPerHour > 0.0 || excursionsPerHour > 0.0 ||
                nodeFailuresPerHour > 0.0 || demotionsPerHour > 0.0);
    }

    /** Effective aggregate rate for one kind, per second, all targets. */
    double
    ratePerSecond(double base_per_hour) const
    {
        return intensity * base_per_hour *
               static_cast<double>(targets) / 3600.0;
    }
};

/** Expands a CampaignConfig into a deterministic fault schedule. */
class FaultCampaign
{
  public:
    explicit FaultCampaign(CampaignConfig config);

    /**
     * The full schedule, sorted by time (stable across kinds).  Same
     * config => same schedule, bit for bit.
     */
    std::vector<FaultEvent> schedule() const;

    /**
     * The events of one kind only, in schedule order.  A filtered view
     * of schedule(): consumers interested in a single process (e.g. the
     * SDC audit overlaying error bursts) get the same realization the
     * full schedule carries, so mixing filtered and unfiltered walks of
     * one campaign stays consistent.
     */
    std::vector<FaultEvent> schedule(FaultKind kind) const;

    /**
     * Time to the job-killing UE for (job, attempt) at the given
     * per-second aggregate rate, or +infinity when the rate is 0.
     * Deterministic in (seed, job, attempt) and nested across rates:
     * for fixed identifiers the kill time is strictly decreasing in
     * the rate, so fault realizations at a higher intensity are a
     * superset of those at a lower one.
     */
    static double killTimeSeconds(std::uint64_t seed, unsigned job_id,
                                  unsigned attempt,
                                  double rate_per_second);

    const CampaignConfig &config() const { return config_; }

  private:
    CampaignConfig config_;
};

/**
 * Publish a schedule's per-kind event counts as counters
 * `<prefix>.scheduled.<kind>` plus `<prefix>.scheduled.total`
 * (export-time enumeration, not a hot path).  Every FaultKind gets a
 * counter even when its count is zero, so campaign exports always
 * carry the full taxonomy.
 */
void publishScheduleTelemetry(const std::vector<FaultEvent> &schedule,
                              telemetry::Registry &registry,
                              const std::string &prefix);

/**
 * A resumable position inside an expanded fault schedule.
 *
 * The cursor owns the (deterministically re-derivable) schedule and a
 * consumption index; snapshots persist only the index plus an FNV-1a
 * digest of the whole schedule, so a resumed run proves it is walking
 * the *same* campaign realization and a snapshot taken under a
 * different campaign config is rejected instead of silently replayed
 * against the wrong fault sequence.
 */
class ScheduleCursor
{
  public:
    ScheduleCursor() = default;
    explicit ScheduleCursor(std::vector<FaultEvent> schedule);

    bool done() const { return index_ >= schedule_.size(); }

    /** Next undelivered event; must not be called when done(). */
    const FaultEvent &current() const;

    /** Arrival time of the next event, +infinity when exhausted. */
    double
    nextTimeSeconds() const
    {
        return done() ? std::numeric_limits<double>::infinity()
                      : schedule_[index_].atSeconds;
    }

    void advance();

    std::size_t index() const { return index_; }
    std::size_t size() const { return schedule_.size(); }

    /** Order- and content-sensitive digest of the full schedule. */
    std::uint64_t scheduleDigest() const;

    /** Persist the cursor (index + schedule digest). */
    void save(snapshot::Serializer &out) const;

    /**
     * Restore a cursor persisted by save() against this cursor's
     * schedule.  Fails the deserializer (and returns false) when the
     * digests disagree, i.e. the snapshot belongs to a different
     * campaign realization.
     */
    bool restore(snapshot::Deserializer &in);

  private:
    std::vector<FaultEvent> schedule_;
    std::size_t index_ = 0;
};

} // namespace hdmr::fault

#endif // HDMR_FAULT_CAMPAIGN_HH
