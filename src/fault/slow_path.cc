#include "fault/slow_path.hh"

#include <chrono>
#include <thread>

namespace hdmr::fault
{

void
SlowPathInjector::armDelay(std::uint64_t delay_micros)
{
    std::lock_guard<std::mutex> lock(mu_);
    delayMicros_ = delay_micros;
}

void
SlowPathInjector::armGate()
{
    std::lock_guard<std::mutex> lock(mu_);
    gate_ = true;
}

void
SlowPathInjector::release()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        gate_ = false;
    }
    cv_.notify_all();
}

void
SlowPathInjector::disarm()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        gate_ = false;
        delayMicros_ = 0;
    }
    cv_.notify_all();
}

void
SlowPathInjector::perturb()
{
    std::uint64_t delay = 0;
    {
        std::unique_lock<std::mutex> lock(mu_);
        ++perturbs_;
        ++blocked_;
        cv_.wait(lock, [this] { return !gate_; });
        --blocked_;
        delay = delayMicros_;
    }
    if (delay > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
}

std::uint64_t
SlowPathInjector::perturbs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return perturbs_;
}

unsigned
SlowPathInjector::blocked() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_;
}

} // namespace hdmr::fault
