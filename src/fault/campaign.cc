#include "fault/campaign.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "snapshot/digest.hh"
#include "snapshot/serializer.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace hdmr::fault
{

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kTransientUncorrectable:
        return "transient-UE";
      case FaultKind::kErrorBurst:
        return "error-burst";
      case FaultKind::kMarginDrift:
        return "margin-drift";
      case FaultKind::kTemperatureExcursion:
        return "temp-excursion";
      case FaultKind::kNodeFailure:
        return "node-failure";
      case FaultKind::kGroupDemotion:
        return "group-demotion";
    }
    return "unknown";
}

util::Status
CampaignConfig::validate() const
{
    const auto check_rate = [](const char *field,
                               double value) -> util::Status {
        if (!(value >= 0.0) || !std::isfinite(value))
            return util::invalidArgument(
                "CampaignConfig.%s must be a finite non-negative "
                "rate (got %g)",
                field, value);
        return util::Status{};
    };
    HDMR_RETURN_IF_ERROR(check_rate("intensity", intensity));
    HDMR_RETURN_IF_ERROR(
        check_rate("uncorrectablePerHour", uncorrectablePerHour));
    HDMR_RETURN_IF_ERROR(check_rate("burstsPerHour", burstsPerHour));
    HDMR_RETURN_IF_ERROR(
        check_rate("driftEventsPerHour", driftEventsPerHour));
    HDMR_RETURN_IF_ERROR(
        check_rate("excursionsPerHour", excursionsPerHour));
    HDMR_RETURN_IF_ERROR(
        check_rate("nodeFailuresPerHour", nodeFailuresPerHour));
    HDMR_RETURN_IF_ERROR(
        check_rate("demotionsPerHour", demotionsPerHour));
    if (!(horizonSeconds >= 0.0) || !std::isfinite(horizonSeconds))
        return util::invalidArgument(
            "CampaignConfig.horizonSeconds must be a finite "
            "non-negative duration (got %g)",
            horizonSeconds);
    if (targets == 0)
        return util::invalidArgument(
            "CampaignConfig.targets must be at least 1");
    if (!(burstErrorsMean >= 0.0) || !std::isfinite(burstErrorsMean))
        return util::invalidArgument(
            "CampaignConfig.burstErrorsMean must be finite and "
            "non-negative (got %g)",
            burstErrorsMean);
    if (!(driftStepMts >= 0.0) || !std::isfinite(driftStepMts))
        return util::invalidArgument(
            "CampaignConfig.driftStepMts must be finite and "
            "non-negative (got %g)",
            driftStepMts);
    if (!(excursionMeanSeconds > 0.0) ||
        !std::isfinite(excursionMeanSeconds))
        return util::invalidArgument(
            "CampaignConfig.excursionMeanSeconds must be a finite "
            "positive duration (got %g)",
            excursionMeanSeconds);
    return util::Status{};
}

FaultCampaign::FaultCampaign(CampaignConfig config) : config_(config)
{
    util::checkOk(config_.validate());
}

namespace
{

/** SplitMix64 finalizer: decorrelates structured (seed, id) inputs. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Append one kind's Poisson arrivals.  Each kind derives its RNG from
 * (seed, kind), so the streams are independent and a kind's schedule
 * is invariant under changes to the other kinds' rates.
 */
void
appendArrivals(std::vector<FaultEvent> &events,
               const CampaignConfig &config, FaultKind kind,
               double base_per_hour)
{
    const double rate = config.ratePerSecond(base_per_hour);
    if (rate <= 0.0 || config.horizonSeconds <= 0.0)
        return;

    util::Rng rng(mix(config.seed ^
                      (static_cast<std::uint64_t>(kind) + 1) *
                          0x100000001b3ULL));
    double t = 0.0;
    while (true) {
        t += rng.exponential(rate);
        if (t >= config.horizonSeconds)
            break;

        FaultEvent ev;
        ev.atSeconds = t;
        ev.kind = kind;
        ev.target = config.targets <= 1
                        ? 0
                        : static_cast<unsigned>(
                              rng.uniformInt(0, config.targets - 1));
        switch (kind) {
          case FaultKind::kErrorBurst:
            // 1 + Poisson keeps bursts non-empty at small means.
            ev.magnitude = 1.0 + static_cast<double>(rng.poisson(
                                     config.burstErrorsMean));
            break;
          case FaultKind::kMarginDrift:
            ev.magnitude = config.driftStepMts;
            break;
          case FaultKind::kTemperatureExcursion:
            ev.durationSeconds =
                rng.exponential(1.0 / config.excursionMeanSeconds);
            break;
          default:
            break;
        }
        events.push_back(ev);
    }
}

} // namespace

std::vector<FaultEvent>
FaultCampaign::schedule() const
{
    std::vector<FaultEvent> events;
    if (!config_.enabled())
        return events;

    appendArrivals(events, config_, FaultKind::kTransientUncorrectable,
                   config_.uncorrectablePerHour);
    appendArrivals(events, config_, FaultKind::kErrorBurst,
                   config_.burstsPerHour);
    appendArrivals(events, config_, FaultKind::kMarginDrift,
                   config_.driftEventsPerHour);
    appendArrivals(events, config_, FaultKind::kTemperatureExcursion,
                   config_.excursionsPerHour);
    appendArrivals(events, config_, FaultKind::kNodeFailure,
                   config_.nodeFailuresPerHour);
    appendArrivals(events, config_, FaultKind::kGroupDemotion,
                   config_.demotionsPerHour);

    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.atSeconds < b.atSeconds;
                     });
    return events;
}

std::vector<FaultEvent>
FaultCampaign::schedule(FaultKind kind) const
{
    std::vector<FaultEvent> filtered;
    for (const FaultEvent &ev : schedule()) {
        if (ev.kind == kind)
            filtered.push_back(ev);
    }
    return filtered;
}

double
FaultCampaign::killTimeSeconds(std::uint64_t seed, unsigned job_id,
                               unsigned attempt, double rate_per_second)
{
    if (rate_per_second <= 0.0)
        return std::numeric_limits<double>::infinity();

    // One uniform draw per (job, attempt); the inverse exponential CDF
    // maps it to a kill time at whatever rate the caller is sweeping.
    util::Rng rng(mix(seed ^ mix((static_cast<std::uint64_t>(job_id)
                                  << 20) +
                                 attempt)));
    const double u = rng.uniform(); // in [0, 1)
    return -std::log1p(-u) / rate_per_second;
}

void
publishScheduleTelemetry(const std::vector<FaultEvent> &schedule,
                         telemetry::Registry &registry,
                         const std::string &prefix)
{
    constexpr FaultKind kAllKinds[] = {
        FaultKind::kTransientUncorrectable,
        FaultKind::kErrorBurst,
        FaultKind::kMarginDrift,
        FaultKind::kTemperatureExcursion,
        FaultKind::kNodeFailure,
        FaultKind::kGroupDemotion,
    };
    for (const FaultKind kind : kAllKinds)
        registry.counter(prefix + ".scheduled." + toString(kind));
    telemetry::Counter &total =
        registry.counter(prefix + ".scheduled.total");
    for (const FaultEvent &event : schedule) {
        registry
            .counter(prefix + ".scheduled." + toString(event.kind))
            .inc();
        total.inc();
    }
}

// --------------------------------------------------------------------
// ScheduleCursor
// --------------------------------------------------------------------

ScheduleCursor::ScheduleCursor(std::vector<FaultEvent> schedule)
    : schedule_(std::move(schedule))
{
}

const FaultEvent &
ScheduleCursor::current() const
{
    hdmr_assert(!done(), "ScheduleCursor read past the end");
    return schedule_[index_];
}

void
ScheduleCursor::advance()
{
    hdmr_assert(!done(), "ScheduleCursor advanced past the end");
    ++index_;
}

std::uint64_t
ScheduleCursor::scheduleDigest() const
{
    snapshot::Fnv1a hash;
    hash.addU64(schedule_.size());
    for (const FaultEvent &ev : schedule_) {
        hash.addDouble(ev.atSeconds);
        hash.addU32(static_cast<std::uint32_t>(ev.kind));
        hash.addU32(ev.target);
        hash.addDouble(ev.magnitude);
        hash.addDouble(ev.durationSeconds);
    }
    return hash.value();
}

void
ScheduleCursor::save(snapshot::Serializer &out) const
{
    out.writeU64(scheduleDigest());
    out.writeU64(index_);
}

bool
ScheduleCursor::restore(snapshot::Deserializer &in)
{
    const std::uint64_t digest = in.readU64();
    const std::uint64_t index = in.readU64();
    if (!in.ok())
        return false;
    if (digest != scheduleDigest()) {
        in.fail("fault-schedule digest mismatch: the snapshot was taken "
                "under a different campaign realization");
        return false;
    }
    if (index > schedule_.size()) {
        in.fail("fault-schedule cursor out of range");
        return false;
    }
    index_ = static_cast<std::size_t>(index);
    return true;
}

} // namespace hdmr::fault
