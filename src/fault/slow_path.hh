/**
 * @file
 * Slow-path latency injection for resilience testing.
 *
 * The campaign engine (campaign.hh) injects *simulated* faults into
 * simulated time; this hook injects *wall-clock* latency into real
 * code paths, which is what the serving layer's resilience machinery
 * (src/serve: deadlines, circuit breaker, drain) is built to survive.
 * A component under test calls perturb() at its natural step
 * boundaries (the advisor engine polls it at every rollout decision
 * point); a test or the soak harness arms the injector to make those
 * steps slow or to wedge them entirely:
 *
 *   armDelay(us)  every perturb() sleeps `us` microseconds - a rollout
 *                 that normally finishes in ~1 ms now blows any sane
 *                 deadline, which must surface as a degraded answer
 *                 and, repeated, must open the circuit breaker;
 *   armGate()     every perturb() blocks until release() - the "stuck
 *                 in-flight request" a graceful drain has to time out
 *                 on instead of hanging forever.
 *
 * Disarmed (the default), perturb() is a mutex acquisition and a
 * counter bump - cheap enough to leave compiled into the serving path.
 */

#ifndef HDMR_FAULT_SLOW_PATH_HH
#define HDMR_FAULT_SLOW_PATH_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace hdmr::fault
{

/** Thread-safe wall-clock latency / wedge injector. */
class SlowPathInjector
{
  public:
    /** Every subsequent perturb() sleeps this long (0 disarms). */
    void armDelay(std::uint64_t delay_micros);

    /** Every subsequent perturb() blocks until release()/disarm(). */
    void armGate();

    /** Open the gate: blocked perturb() calls return, gate disarms. */
    void release();

    /** Clear delay and gate; releases any blocked perturb() calls. */
    void disarm();

    /**
     * The instrumented slow path's hook point.  Sleeps or blocks per
     * the armed mode; a no-op (plus accounting) when disarmed.
     */
    void perturb();

    /** Total perturb() calls observed (armed or not). */
    std::uint64_t perturbs() const;

    /** Threads currently blocked inside a gated perturb(). */
    unsigned blocked() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t delayMicros_ = 0;
    bool gate_ = false;
    std::uint64_t perturbs_ = 0;
    unsigned blocked_ = 0;
};

} // namespace hdmr::fault

#endif // HDMR_FAULT_SLOW_PATH_HH
