/**
 * @file
 * Drift chaos campaign: turns the continuous margin-drift model
 * (margin::MarginDriftModel) into discrete FaultEvents and composes
 * them with the existing Poisson campaign engine.
 *
 * The drift model describes *physics* - smooth erosion curves, a
 * diurnal ambient sinusoid, transient voltage-noise windows.  The
 * fault-injection machinery consumes *events*.  This harness is the
 * bridge:
 *
 *  - every crossing of one margin step of accumulated erosion emits a
 *    kMarginDrift event (the channel's stable rate just lost a step);
 *  - every interval where the diurnal ambient rise exceeds a threshold
 *    emits a bounded kTemperatureExcursion window;
 *  - every voltage-noise spike emits a kErrorBurst carrying the
 *    detected-error pressure of the noisy interval.
 *
 * Schedules are pure functions of the scenario config - same seed,
 * same events, bit for bit - so they ride the same ScheduleCursor
 * digest machinery as the Poisson campaigns, and composeWith() merges
 * a drift realization with an ordinary FaultCampaign (UEs, node
 * failures...) into one time-sorted schedule for a fleet sweep.
 */

#ifndef HDMR_FAULT_DRIFT_CHAOS_HH
#define HDMR_FAULT_DRIFT_CHAOS_HH

#include <vector>

#include "fault/campaign.hh"
#include "fault/fault.hh"
#include "margin/drift.hh"

namespace hdmr::fault
{

/** One drift chaos scenario. */
struct DriftScenarioConfig
{
    /** The physical drift realization (seeded; see margin/drift.hh). */
    margin::DriftConfig drift;
    /** Accumulated erosion per kMarginDrift event (one margin step). */
    double marginStepMts = 200.0;
    /** Consecutive schedule targets (channels or nodes) each drift
     *  module maps onto; module m drives targets [m*k, (m+1)*k). */
    unsigned targetsPerModule = 1;
    /** Diurnal ambient rise (degC) that opens an excursion window. */
    double excursionThresholdC = 10.0;
    /** Detected errors one voltage-noise spike delivers as a burst. */
    double spikeBurstErrors = 50.0;

    /**
     * Reject impossible scenarios with kInvalidArgument naming the
     * offending field (the nested DriftConfig validates itself on
     * model construction); one pass, first offender wins.
     * DriftChaosCampaign's constructor checkOk()s it.
     */
    util::Status validate() const;
};

/** Expands a DriftScenarioConfig into a deterministic fault schedule. */
class DriftChaosCampaign
{
  public:
    explicit DriftChaosCampaign(const DriftScenarioConfig &config);

    const DriftScenarioConfig &config() const { return config_; }
    const margin::MarginDriftModel &model() const { return model_; }

    /** The full drift-driven schedule, time-sorted (stable). */
    const std::vector<FaultEvent> &schedule() const { return schedule_; }

    /** The events of one kind only, in schedule order (e.g. the
     *  kErrorBurst view the SDC audit overlays). */
    std::vector<FaultEvent> schedule(FaultKind kind) const;

    /**
     * The cluster-consumable view: kMarginDrift crossings become
     * kGroupDemotion (a node whose margin eroded a step drops one
     * margin group), kTemperatureExcursion windows pass through
     * (fleet-wide hot windows raising the UE hazard), kErrorBurst
     * events are dropped (no cluster-layer consumer).
     */
    std::vector<FaultEvent> clusterSchedule() const;

    /**
     * The drift schedule merged with `base`'s schedule into one
     * time-sorted stream (stable: base events win ties).  This is the
     * composition a fleet sweep arms - organic Poisson faults plus the
     * drift realization.
     */
    std::vector<FaultEvent> composeWith(const FaultCampaign &base) const;

  private:
    void appendMarginCrossings();
    void appendExcursionWindows();
    void appendSpikeBursts();

    DriftScenarioConfig config_;
    margin::MarginDriftModel model_;
    std::vector<FaultEvent> schedule_;
};

} // namespace hdmr::fault

#endif // HDMR_FAULT_DRIFT_CHAOS_HH
