#include "serve/service.hh"

#include <chrono>
#include <utility>

#include "snapshot/keeper.hh"
#include "snapshot/serializer.hh"
#include "util/logging.hh"

namespace hdmr::serve
{

util::Status
ServiceConfig::validate() const
{
    if (workers == 0)
        return util::invalidArgument(
            "ServiceConfig.workers must be >= 1");
    if (queueCapacity == 0)
        return util::invalidArgument(
            "ServiceConfig.queueCapacity must be >= 1");
    if (defaultDeadlineMicros == 0)
        return util::invalidArgument(
            "ServiceConfig.defaultDeadlineMicros must be >= 1");
    if (maxDeadlineMicros < defaultDeadlineMicros)
        return util::invalidArgument(
            "ServiceConfig.maxDeadlineMicros (%llu) below "
            "defaultDeadlineMicros (%llu)",
            static_cast<unsigned long long>(maxDeadlineMicros),
            static_cast<unsigned long long>(defaultDeadlineMicros));
    return retry.validate();
}

AdvisorService::AdvisorService(ServiceConfig config, AdvisorConfig advisor)
    : config_(config), engine_(std::move(advisor)),
      retryBudget_(config.retry)
{
    util::checkOk(config_.validate());
    workers_.reserve(config_.workers);
    for (unsigned i = 0; i < config_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

AdvisorService::~AdvisorService()
{
    std::deque<Pending> flushed;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        drainAbort_.store(true, std::memory_order_release);
        flushed.swap(queue_);
        counters_.shedDraining += flushed.size();
    }
    workCv_.notify_all();
    for (Pending &p : flushed)
        refuse(p.callback,
               util::unavailable("advisor service shutting down"));
    for (std::thread &t : workers_)
        t.join();
}

void
AdvisorService::refuse(const ResponseCallback &callback,
                       util::Status status)
{
    ServedResponse response;
    response.shed = status.code() != util::StatusCode::kInvalidArgument;
    response.status = std::move(status);
    if (callback)
        callback(response);
}

std::uint64_t
AdvisorService::deadlineBudgetMicros(const AdvisorRequest &request) const
{
    if (request.deadlineMicros == 0)
        return config_.defaultDeadlineMicros;
    return std::min(request.deadlineMicros, config_.maxDeadlineMicros);
}

void
AdvisorService::submit(const AdvisorRequest &request,
                       ResponseCallback callback)
{
    const util::Status valid = request.validate();
    if (!valid.ok()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.rejectedInvalid;
        }
        refuse(callback, valid);
        return;
    }

    bool evicted = false;
    Pending evictee;
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (stopping_ || draining_) {
            ++counters_.shedDraining;
            lock.unlock();
            refuse(callback,
                   util::unavailable(
                       "advisor service is draining; not admitting"));
            return;
        }
        if (request.isRetry && !retryBudget_.tryWithdraw()) {
            ++counters_.shedRetryDenied;
            lock.unlock();
            refuse(callback,
                   util::unavailable(
                       "retry budget exhausted; back off"));
            return;
        }
        if (queue_.size() >= config_.queueCapacity) {
            // Adaptive LIFO: evict the OLDEST queued request - its
            // caller has waited longest and is the most likely to
            // have given up already.
            evictee = std::move(queue_.front());
            queue_.pop_front();
            evicted = true;
            ++counters_.shedQueueFull;
        }
        Pending p;
        p.request = request;
        p.callback = std::move(callback);
        p.deadline =
            Deadline::after(deadlineBudgetMicros(request), &drainAbort_);
        p.admitMicros = monotonicMicros();
        queue_.push_back(std::move(p));
        ++counters_.admitted;
    }
    workCv_.notify_one();
    if (evicted)
        refuse(evictee.callback,
               util::unavailable(
                   "queue full (%zu); oldest request shed",
                   config_.queueCapacity));
}

util::Status
AdvisorService::submitFrame(const std::uint8_t *payload,
                            std::size_t size, ResponseCallback callback)
{
    AdvisorRequest request;
    HDMR_RETURN_IF_ERROR(parseRequest(payload, size, &request));
    submit(request, std::move(callback));
    return util::Status{};
}

void
AdvisorService::workerLoop()
{
    for (;;) {
        std::unique_lock<std::mutex> lock(mu_);
        workCv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        // LIFO: newest first.  Under overload the oldest requests'
        // callers have usually already timed out; serving them first
        // (FIFO) would spend the whole capacity on dead work.
        Pending p = std::move(queue_.back());
        queue_.pop_back();

        if (p.deadline.expired()) {
            ++counters_.shedQueueExpired;
            const bool idle = queue_.empty() && inFlight_ == 0;
            lock.unlock();
            if (idle)
                idleCv_.notify_all();
            refuse(p.callback,
                   util::deadlineExceeded(
                       "request %llu: deadline passed while queued",
                       static_cast<unsigned long long>(p.request.id)));
            continue;
        }

        ++inFlight_;
        lock.unlock();

        ServedResponse response;
        response.decision = engine_.decide(p.request, p.deadline);
        response.latencyMicros = monotonicMicros() - p.admitMicros;
        retryBudget_.onSuccess();

        lock.lock();
        ++counters_.served;
        servedLatencyMicros_.record(response.latencyMicros);
        --inFlight_;
        const bool idle = queue_.empty() && inFlight_ == 0;
        lock.unlock();
        if (idle)
            idleCv_.notify_all();
        if (p.callback)
            p.callback(response);
    }
}

void
AdvisorService::beginDrain()
{
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
}

util::Status
AdvisorService::awaitDrain(std::uint64_t deadline_micros)
{
    std::deque<Pending> flushed;
    {
        std::unique_lock<std::mutex> lock(mu_);
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::microseconds(deadline_micros);
        const bool clean = idleCv_.wait_until(lock, until, [this] {
            return queue_.empty() && inFlight_ == 0;
        });
        if (clean)
            return util::Status{};
        // Out of time: force-expire in-flight rollouts (they poll the
        // drain flag through their Deadline and degrade) and shed
        // whatever is still queued.
        drainAbort_.store(true, std::memory_order_release);
        flushed.swap(queue_);
        counters_.shedDraining += flushed.size();
    }
    workCv_.notify_all();
    for (Pending &p : flushed)
        refuse(p.callback,
               util::unavailable("shed by drain-deadline expiry"));
    return util::deadlineExceeded(
        "drain did not complete within %llu us",
        static_cast<unsigned long long>(deadline_micros));
}

util::Status
AdvisorService::drainAndSnapshot(snapshot::Keeper &keeper,
                                 std::uint64_t drain_deadline_micros)
{
    beginDrain();
    const util::Status drained = awaitDrain(drain_deadline_micros);
    // The decision cache is consistent even after a forced drain, so
    // the warm-start snapshot is written either way.
    const util::Status saved =
        keeper.save(snapshot::kAdvisorStateKind, engine_.saveState());
    HDMR_RETURN_IF_ERROR(saved);
    return drained;
}

ServiceCounters
AdvisorService::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

std::size_t
AdvisorService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

unsigned
AdvisorService::inFlight() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return inFlight_;
}

bool
AdvisorService::draining() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return draining_;
}

std::uint64_t
AdvisorService::latencyQuantileMicros(double q) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return servedLatencyMicros_.valueAtQuantile(q);
}

void
AdvisorService::publishMetrics(telemetry::Registry &registry,
                               const std::string &prefix) const
{
    ServiceCounters c;
    telemetry::Log2Histogram latency;
    std::size_t depth = 0;
    unsigned inflight = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        c = counters_;
        latency = servedLatencyMicros_;
        depth = queue_.size();
        inflight = inFlight_;
    }
    registry.counter(prefix + ".admitted").set(c.admitted);
    registry.counter(prefix + ".served").set(c.served);
    registry.counter(prefix + ".shed_queue_full").set(c.shedQueueFull);
    registry.counter(prefix + ".shed_queue_expired")
        .set(c.shedQueueExpired);
    registry.counter(prefix + ".shed_draining").set(c.shedDraining);
    registry.counter(prefix + ".shed_retry_denied")
        .set(c.shedRetryDenied);
    registry.counter(prefix + ".rejected_invalid")
        .set(c.rejectedInvalid);
    registry.gauge(prefix + ".queue_depth")
        .set(static_cast<double>(depth));
    registry.gauge(prefix + ".in_flight")
        .set(static_cast<double>(inflight));

    telemetry::Log2Histogram &h =
        registry.histogram(prefix + ".served_latency_micros");
    for (unsigned b = 0; b < telemetry::Log2Histogram::kBuckets; ++b)
        h.setBucketCount(b, latency.bucketCount(b));
    h.setTotals(latency.count(), latency.sum());

    engine_.publishMetrics(registry, prefix);
}

} // namespace hdmr::serve
