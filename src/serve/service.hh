/**
 * @file
 * The advisor service: a thread pool in front of AdvisorEngine with
 * admission control, adaptive-LIFO load shedding, per-request
 * deadlines, a global retry budget, and graceful drain.
 *
 * Overload behaviour (DESIGN.md section 16), outermost gate first:
 *
 *   draining      every new request is refused (kUnavailable);
 *   retry budget  a request marked isRetry spends one token or is
 *                 refused (kUnavailable) - empty budget means the
 *                 fleet is already struggling and retries would only
 *                 amplify the overload;
 *   bounded queue admission past queueCapacity sheds the OLDEST
 *                 queued request (kUnavailable).  Workers serve the
 *                 NEWEST request first (LIFO): under overload the old
 *                 requests' callers have usually timed out anyway, so
 *                 FIFO would spend the whole budget on dead work;
 *   queue expiry  a request whose deadline passed while queued is
 *                 answered kDeadlineExceeded without touching the
 *                 engine.
 *
 * Every response says what happened: status kOk carries a decision
 * with its Quality tag; a shed response has shed == true and a
 * kUnavailable / kDeadlineExceeded status (only kUnavailable is
 * retriable - see util::isRetriable()).
 *
 * Drain: beginDrain() stops admission, awaitDrain() waits for the
 * queue and in-flight work to finish within a deadline, and on expiry
 * force-cancels in-flight rollouts (their Deadline carries the drain
 * cancel flag) and sheds whatever is still queued.  drainAndSnapshot()
 * additionally persists the engine's warm-start state through a
 * snapshot::Keeper so a restart serves bit-identical cached answers.
 */

#ifndef HDMR_SERVE_SERVICE_HH
#define HDMR_SERVE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/advisor.hh"
#include "serve/resilience.hh"
#include "serve/wire.hh"
#include "telemetry/metrics.hh"
#include "util/status.hh"

namespace hdmr::snapshot
{
class Keeper;
} // namespace hdmr::snapshot

namespace hdmr::serve
{

/** Service configuration. */
struct ServiceConfig
{
    /** Worker threads consuming the request queue. */
    unsigned workers = 2;
    /** Queued (admitted, unserved) request ceiling. */
    std::size_t queueCapacity = 64;
    /** Deadline applied when a request asks for 0. */
    std::uint64_t defaultDeadlineMicros = 10'000;
    /** Ceiling a request's own deadline is clamped to. */
    std::uint64_t maxDeadlineMicros = 250'000;
    RetryBudgetConfig retry;

    /** Reject zero workers/capacity/deadlines, naming the field. */
    util::Status validate() const;
};

/** What happened to one submitted request. */
struct ServedResponse
{
    /** Valid only when status.ok(). */
    AdvisorDecision decision;
    /** kOk, or kUnavailable / kDeadlineExceeded / kInvalidArgument. */
    util::Status status;
    /** True when the request was refused/dropped without an answer. */
    bool shed = false;
    /** Admission to completion, microseconds (0 for refusals). */
    std::uint64_t latencyMicros = 0;
};

using ResponseCallback = std::function<void(const ServedResponse &)>;

/** Service-level counters (monotonic; a copy, not a live view). */
struct ServiceCounters
{
    std::uint64_t admitted = 0;
    std::uint64_t served = 0;
    /** Oldest queued request evicted by an admission past capacity. */
    std::uint64_t shedQueueFull = 0;
    /** Deadline passed while queued (kDeadlineExceeded). */
    std::uint64_t shedQueueExpired = 0;
    /** Refused because the service was draining. */
    std::uint64_t shedDraining = 0;
    /** Retries refused by the empty retry budget. */
    std::uint64_t shedRetryDenied = 0;
    /** Requests rejected before admission (malformed). */
    std::uint64_t rejectedInvalid = 0;

    std::uint64_t totalShed() const
    {
        return shedQueueFull + shedQueueExpired + shedDraining +
               shedRetryDenied;
    }
};

/** The service. */
class AdvisorService
{
  public:
    /** Spawns the workers; checkOk()s both configs. */
    AdvisorService(ServiceConfig config, AdvisorConfig advisor);

    /** Joins the workers; still-queued requests are shed. */
    ~AdvisorService();

    AdvisorService(const AdvisorService &) = delete;
    AdvisorService &operator=(const AdvisorService &) = delete;

    /**
     * Submit one request.  `callback` fires exactly once - possibly
     * synchronously (refusals) or from a worker thread - and must not
     * re-enter the service.  Malformed requests are rejected
     * kInvalidArgument without being admitted.
     */
    void submit(const AdvisorRequest &request, ResponseCallback callback);

    /**
     * Parse one wire payload and submit it.  A parse error is
     * returned synchronously (no callback fires); an admitted or
     * refused request reports through `callback` as with submit().
     */
    util::Status submitFrame(const std::uint8_t *payload,
                             std::size_t size,
                             ResponseCallback callback);

    /** Stop admitting; already-queued work keeps draining. */
    void beginDrain();

    /**
     * Wait until the queue and in-flight requests are done, up to
     * `deadline_micros`.  On expiry: in-flight rollouts are
     * force-cancelled (they degrade and finish), whatever is still
     * queued is shed, and kDeadlineExceeded is returned.  kOk means a
     * clean drain.  Call beginDrain() first.
     */
    util::Status awaitDrain(std::uint64_t deadline_micros);

    /**
     * beginDrain() + awaitDrain() + persist the engine's warm-start
     * state through `keeper` (kAdvisorStateKind).  The snapshot is
     * written even after a forced drain - the decision cache is valid
     * either way.  Returns the save error if the write failed, else
     * the drain status.
     */
    util::Status drainAndSnapshot(snapshot::Keeper &keeper,
                                  std::uint64_t drain_deadline_micros);

    ServiceCounters counters() const;

    /** Queued (admitted, not yet started) requests right now. */
    std::size_t queueDepth() const;

    /** Requests currently inside the engine. */
    unsigned inFlight() const;

    bool draining() const;

    /**
     * Served-latency quantile in microseconds (log2-bucket upper
     * bound; see Log2Histogram::valueAtQuantile).
     */
    std::uint64_t latencyQuantileMicros(double q) const;

    /**
     * Copy service counters, queue gauges, the latency histogram, and
     * the engine's metrics into `registry` under `prefix`.  Callers
     * serialize publishMetrics() externally (the registry is not
     * thread-safe).
     */
    void publishMetrics(telemetry::Registry &registry,
                        const std::string &prefix) const;

    AdvisorEngine &engine() { return engine_; }
    const AdvisorEngine &engine() const { return engine_; }
    const ServiceConfig &config() const { return config_; }

  private:
    struct Pending
    {
        AdvisorRequest request;
        ResponseCallback callback;
        Deadline deadline;
        std::uint64_t admitMicros = 0;
    };

    void workerLoop();

    /** Build the shed/refusal response and fire the callback. */
    static void refuse(const ResponseCallback &callback,
                       util::Status status);

    /** Clamp a request's deadline budget to the configured window. */
    std::uint64_t deadlineBudgetMicros(const AdvisorRequest &request) const;

    ServiceConfig config_;
    AdvisorEngine engine_;
    RetryBudget retryBudget_;

    mutable std::mutex mu_;
    std::condition_variable workCv_; ///< queue became non-empty / stop
    std::condition_variable idleCv_; ///< queue empty and nothing in flight
    std::deque<Pending> queue_;
    unsigned inFlight_ = 0;
    bool draining_ = false;
    bool stopping_ = false;
    ServiceCounters counters_;
    telemetry::Log2Histogram servedLatencyMicros_;

    /** Force-expires in-flight deadlines when a drain runs out. */
    std::atomic<bool> drainAbort_{false};

    std::vector<std::thread> workers_;
};

} // namespace hdmr::serve

#endif // HDMR_SERVE_SERVICE_HH
