/**
 * @file
 * Resilience primitives for the advisor service: deadlines, the
 * circuit breaker, and the retry budget.
 *
 * These are deliberately small, self-contained state machines with an
 * injectable notion of time (monotonic microseconds passed in by the
 * caller), so tests drive them with a fake clock and the breaker's
 * half-open single-probe rule can be checked under real concurrency
 * without sleeping.  The service layer (service.hh) feeds them
 * std::chrono::steady_clock.
 *
 * Degradation ladder context (DESIGN.md section 16): a deadline that
 * expires mid-rollout degrades the answer (exact -> degraded); the
 * breaker opening removes the rollout path entirely until a half-open
 * probe proves it healthy again; the retry budget keeps client
 * retries of shed requests from amplifying the very overload that
 * shed them.
 */

#ifndef HDMR_SERVE_RESILIENCE_HH
#define HDMR_SERVE_RESILIENCE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "util/status.hh"

namespace hdmr::serve
{

/** Monotonic microseconds since an arbitrary epoch (steady_clock). */
std::uint64_t monotonicMicros();

/**
 * A wall-clock deadline with an optional external cancel flag.  The
 * default-constructed deadline never expires; Deadline::after() binds
 * one to "now + budget".  The cancel flag is how a draining service
 * force-expires in-flight work: the rollout's per-event deadline poll
 * sees either the clock or the flag trip, whichever comes first.
 */
class Deadline
{
  public:
    /** Never expires. */
    Deadline() = default;

    /** Expires `budget_micros` from now (or when *cancel is set). */
    static Deadline after(std::uint64_t budget_micros,
                          const std::atomic<bool> *cancel = nullptr);

    bool expired() const;

    /** Remaining budget in microseconds; 0 once expired/cancelled. */
    std::uint64_t remainingMicros() const;

    /** True for the default-constructed, never-expiring deadline. */
    bool unbounded() const { return !bounded_ && cancel_ == nullptr; }

  private:
    bool bounded_ = false;
    std::uint64_t expiresAtMicros_ = 0;
    const std::atomic<bool> *cancel_ = nullptr;
};

/** Circuit-breaker tuning. */
struct BreakerConfig
{
    /** Consecutive protected-path failures that open the breaker. */
    unsigned openAfterFailures = 5;
    /** Open dwell time before a half-open probe is allowed. */
    std::uint64_t cooldownMicros = 200'000;

    /** Reject zero thresholds/cooldowns naming the field. */
    util::Status validate() const;
};

/**
 * Classic three-state circuit breaker around an expensive path.
 *
 *   closed     requests flow; consecutive failures are counted and
 *              openAfterFailures of them trip the breaker open;
 *   open       requests are refused (the caller serves its fallback)
 *              until cooldownMicros elapse;
 *   half-open  exactly ONE probe request is let through; its success
 *              closes the breaker, its failure re-opens it and
 *              restarts the cooldown.  Concurrent callers during the
 *              probe are refused - single-probe exclusivity is what
 *              keeps a half-recovered backend from being stampeded.
 *
 * Thread-safe; time is injected (monotonic microseconds).  A caller
 * granted passage MUST eventually report recordSuccess() or
 * recordFailure(), or the half-open probe slot leaks and the breaker
 * stays half-open forever.
 */
class CircuitBreaker
{
  public:
    enum class State : std::uint8_t
    {
        kClosed = 0,
        kOpen = 1,
        kHalfOpen = 2,
    };

    explicit CircuitBreaker(BreakerConfig config = {});

    /** May the protected path be taken at `now_micros`? */
    bool allow(std::uint64_t now_micros);

    /** Protected path succeeded (closes a half-open breaker). */
    void recordSuccess(std::uint64_t now_micros);

    /** Protected path failed (counts toward / re-opens the breaker). */
    void recordFailure(std::uint64_t now_micros);

    State state() const;

    // ---- Transition counters (telemetry). ----
    /** Times the breaker tripped closed/half-open -> open. */
    std::uint64_t openedCount() const;
    /** Times a cooldown expired into a half-open probe. */
    std::uint64_t halfOpenedCount() const;
    /** Times a probe success closed the breaker again. */
    std::uint64_t reclosedCount() const;
    /** Requests refused while open / during a probe. */
    std::uint64_t rejectedCount() const;

    const BreakerConfig &config() const { return config_; }

  private:
    void openLocked(std::uint64_t now_micros);

    BreakerConfig config_;
    mutable std::mutex mu_;
    State state_ = State::kClosed;
    unsigned consecutiveFailures_ = 0;
    bool probeInFlight_ = false;
    std::uint64_t openedAtMicros_ = 0;
    std::uint64_t opened_ = 0;
    std::uint64_t halfOpened_ = 0;
    std::uint64_t reclosed_ = 0;
    std::uint64_t rejected_ = 0;
};

const char *toString(CircuitBreaker::State state);

/** Retry-budget tuning. */
struct RetryBudgetConfig
{
    /** Token ceiling (also the initial balance). */
    double capacity = 32.0;
    /** Tokens deposited per successfully served request. */
    double refillPerSuccess = 0.1;

    /** Reject non-positive capacity / negative refill by field. */
    util::Status validate() const;
};

/**
 * Global retry budget: a token bucket refilled by *successful* work.
 * Every admitted retry withdraws one token; when the bucket is empty
 * retries are refused (kUnavailable) even if the queue has room.
 * Under sustained overload successes dwindle, the bucket drains, and
 * retries stop amplifying the load - the refill ties permitted retry
 * traffic to a fraction (refillPerSuccess) of useful throughput.
 */
class RetryBudget
{
  public:
    explicit RetryBudget(RetryBudgetConfig config = {});

    /** Spend one token for a retry; false when the budget is empty. */
    bool tryWithdraw();

    /** A request was served successfully; deposit the refill. */
    void onSuccess();

    double tokens() const;

    /** Retries refused because the bucket was empty. */
    std::uint64_t deniedCount() const;

  private:
    RetryBudgetConfig config_;
    mutable std::mutex mu_;
    double tokens_;
    std::uint64_t denied_ = 0;
};

} // namespace hdmr::serve

#endif // HDMR_SERVE_RESILIENCE_HH
