#include "serve/resilience.hh"

namespace hdmr::serve
{

std::uint64_t
monotonicMicros()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Deadline
Deadline::after(std::uint64_t budget_micros,
                const std::atomic<bool> *cancel)
{
    Deadline d;
    d.bounded_ = true;
    d.expiresAtMicros_ = monotonicMicros() + budget_micros;
    d.cancel_ = cancel;
    return d;
}

bool
Deadline::expired() const
{
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed))
        return true;
    return bounded_ && monotonicMicros() >= expiresAtMicros_;
}

std::uint64_t
Deadline::remainingMicros() const
{
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed))
        return 0;
    if (!bounded_)
        return ~std::uint64_t{0};
    const std::uint64_t now = monotonicMicros();
    return now >= expiresAtMicros_ ? 0 : expiresAtMicros_ - now;
}

util::Status
BreakerConfig::validate() const
{
    if (openAfterFailures == 0)
        return util::invalidArgument(
            "BreakerConfig.openAfterFailures must be >= 1");
    if (cooldownMicros == 0)
        return util::invalidArgument(
            "BreakerConfig.cooldownMicros must be >= 1");
    return util::Status{};
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {}

void
CircuitBreaker::openLocked(std::uint64_t now_micros)
{
    state_ = State::kOpen;
    probeInFlight_ = false;
    consecutiveFailures_ = 0;
    openedAtMicros_ = now_micros;
    ++opened_;
}

bool
CircuitBreaker::allow(std::uint64_t now_micros)
{
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (now_micros - openedAtMicros_ < config_.cooldownMicros) {
            ++rejected_;
            return false;
        }
        // Cooldown over: this caller becomes the single half-open
        // probe; everyone else keeps being rejected until it reports.
        state_ = State::kHalfOpen;
        probeInFlight_ = true;
        ++halfOpened_;
        return true;
      case State::kHalfOpen:
        if (probeInFlight_) {
            ++rejected_;
            return false;
        }
        probeInFlight_ = true;
        return true;
    }
    return false;
}

void
CircuitBreaker::recordSuccess(std::uint64_t now_micros)
{
    (void)now_micros;
    std::lock_guard<std::mutex> lock(mu_);
    consecutiveFailures_ = 0;
    if (state_ == State::kHalfOpen) {
        state_ = State::kClosed;
        probeInFlight_ = false;
        ++reclosed_;
    }
}

void
CircuitBreaker::recordFailure(std::uint64_t now_micros)
{
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case State::kClosed:
        if (++consecutiveFailures_ >= config_.openAfterFailures)
            openLocked(now_micros);
        break;
      case State::kHalfOpen:
        // The probe failed: back to open, cooldown restarts.
        openLocked(now_micros);
        break;
      case State::kOpen:
        break;
    }
}

CircuitBreaker::State
CircuitBreaker::state() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
}

std::uint64_t
CircuitBreaker::openedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return opened_;
}

std::uint64_t
CircuitBreaker::halfOpenedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return halfOpened_;
}

std::uint64_t
CircuitBreaker::reclosedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return reclosed_;
}

std::uint64_t
CircuitBreaker::rejectedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
}

const char *
toString(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::kClosed:
        return "closed";
      case CircuitBreaker::State::kOpen:
        return "open";
      case CircuitBreaker::State::kHalfOpen:
        return "half_open";
    }
    return "unknown";
}

util::Status
RetryBudgetConfig::validate() const
{
    if (!(capacity > 0.0))
        return util::invalidArgument(
            "RetryBudgetConfig.capacity must be > 0");
    if (refillPerSuccess < 0.0)
        return util::invalidArgument(
            "RetryBudgetConfig.refillPerSuccess must be >= 0");
    return util::Status{};
}

RetryBudget::RetryBudget(RetryBudgetConfig config)
    : config_(config), tokens_(config.capacity)
{
}

bool
RetryBudget::tryWithdraw()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (tokens_ < 1.0) {
        ++denied_;
        return false;
    }
    tokens_ -= 1.0;
    return true;
}

void
RetryBudget::onSuccess()
{
    std::lock_guard<std::mutex> lock(mu_);
    tokens_ += config_.refillPerSuccess;
    if (tokens_ > config_.capacity)
        tokens_ = config_.capacity;
}

double
RetryBudget::tokens() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tokens_;
}

std::uint64_t
RetryBudget::deniedCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return denied_;
}

} // namespace hdmr::serve
