#include "serve/advisor.hh"

#include <algorithm>
#include <cmath>

#include "fault/slow_path.hh"
#include "snapshot/digest.hh"
#include "snapshot/serializer.hh"
#include "telemetry/metrics.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace hdmr::serve
{

namespace
{

/** Runtime quantum for cache keys: mixes within the same minute of
 *  per-class runtime share a cached decision. */
constexpr double kRuntimeQuantumSeconds = 60.0;
/** Weight-share quantum for cache keys (1/256ths of the mix). */
constexpr double kWeightQuantum = 1.0 / 256.0;

/** Eligible-mix thresholds of the table policy: at least half the mix
 *  under 50 % usage recommends the 0.8 GT/s bucket, at least a quarter
 *  the 0.6 GT/s bucket, less recommends staying at spec. */
constexpr double kAt800EligibleFraction = 0.5;
constexpr double kAt600EligibleFraction = 0.25;

/** Rollout verdict: under this accelerated fraction the recommended
 *  bucket is demoted one step (the table was too optimistic). */
constexpr double kDemoteBelowAcceleratedFraction = 0.5;

double
totalWeight(const AdvisorRequest &request)
{
    double w = 0.0;
    for (const MixClass &c : request.mix)
        w += c.weight;
    return w;
}

} // namespace

util::Status
AdvisorConfig::validate() const
{
    HDMR_RETURN_IF_ERROR(speedups.validate());
    HDMR_RETURN_IF_ERROR(breaker.validate());
    double sum = 0.0;
    for (std::size_t g = 0; g < sched::kGroups; ++g) {
        const double f = groupFractions[g];
        if (!std::isfinite(f) || f < 0.0 || f > 1.0)
            return util::invalidArgument(
                "AdvisorConfig.groupFractions[%zu] = %g outside [0, 1]",
                g, f);
        sum += f;
    }
    if (std::fabs(sum - 1.0) > 1e-6)
        return util::invalidArgument(
            "AdvisorConfig.groupFractions sum to %g, not 1", sum);
    if (rolloutNodes == 0)
        return util::invalidArgument(
            "AdvisorConfig.rolloutNodes must be >= 1");
    if (rolloutJobs == 0)
        return util::invalidArgument(
            "AdvisorConfig.rolloutJobs must be >= 1");
    if (!std::isfinite(rolloutHorizonSeconds) ||
        rolloutHorizonSeconds <= 0.0)
        return util::invalidArgument(
            "AdvisorConfig.rolloutHorizonSeconds = %g is not a finite "
            "positive duration",
            rolloutHorizonSeconds);
    if (cacheCapacity == 0)
        return util::invalidArgument(
            "AdvisorConfig.cacheCapacity must be >= 1");
    return util::Status{};
}

AdvisorEngine::AdvisorEngine(AdvisorConfig config)
    : config_(config), breaker_(config.breaker)
{
    util::checkOk(config_.validate());
}

std::uint64_t
AdvisorEngine::configDigest() const
{
    snapshot::Fnv1a fnv;
    fnv.addDouble(config_.speedups.at800);
    fnv.addDouble(config_.speedups.at600);
    for (double f : config_.groupFractions)
        fnv.addDouble(f);
    fnv.addU32(config_.rolloutNodes);
    fnv.addU64(config_.rolloutJobs);
    fnv.addDouble(config_.rolloutHorizonSeconds);
    fnv.addU64(config_.cacheCapacity);
    fnv.addU64(config_.seed);
    fnv.addU32(config_.breaker.openAfterFailures);
    fnv.addU64(config_.breaker.cooldownMicros);
    return fnv.value();
}

std::uint64_t
AdvisorEngine::cacheKey(const AdvisorRequest &request)
{
    const double total = totalWeight(request);
    snapshot::Fnv1a fnv;
    fnv.addU64(request.mix.size());
    for (const MixClass &c : request.mix) {
        fnv.addU32(c.nodes);
        fnv.addU32(c.usageClass);
        fnv.addU64(static_cast<std::uint64_t>(
            c.runtimeSeconds / kRuntimeQuantumSeconds));
        const double share = total > 0.0 ? c.weight / total : 0.0;
        fnv.addU64(static_cast<std::uint64_t>(share / kWeightQuantum));
    }
    return fnv.value();
}

double
AdvisorEngine::eligibleFraction(const AdvisorRequest &request)
{
    const double total = totalWeight(request);
    if (total <= 0.0)
        return 0.0;
    double eligible = 0.0;
    for (const MixClass &c : request.mix)
        if (c.usageClass < 2)
            eligible += c.weight;
    return eligible / total;
}

AdvisorDecision
AdvisorEngine::tableDecision(const AdvisorRequest &request) const
{
    AdvisorDecision d;
    d.id = request.id;
    d.quality = Quality::kDegraded;
    const double eligible = eligibleFraction(request);
    if (eligible >= kAt800EligibleFraction)
        d.marginGroup = 0;
    else if (eligible >= kAt600EligibleFraction)
        d.marginGroup = 1;
    else
        d.marginGroup = 2;
    d.heteroDmr = d.marginGroup < 2;
    const double speedup = config_.speedups.forGroup(d.marginGroup);
    d.expectedSpeedup =
        std::max(1.0, 1.0 + eligible * (speedup - 1.0));
    d.rolloutTurnaroundSeconds = 0.0;
    return d;
}

std::vector<traces::Job>
AdvisorEngine::rolloutTrace(const AdvisorRequest &request,
                            std::uint64_t key) const
{
    // Purely a function of (config seed, quantized mix): two requests
    // that share a cache key roll out the same synthetic trace, so an
    // exact answer and its cached replay describe the same experiment.
    util::Rng rng(config_.seed ^ key);
    const double total = totalWeight(request);
    std::vector<traces::Job> jobs;
    jobs.reserve(config_.rolloutJobs);
    for (std::size_t i = 0; i < config_.rolloutJobs; ++i) {
        double pick = rng.uniform() * total;
        const MixClass *chosen = &request.mix.back();
        for (const MixClass &c : request.mix) {
            pick -= c.weight;
            if (pick <= 0.0) {
                chosen = &c;
                break;
            }
        }
        traces::Job job;
        job.id = static_cast<unsigned>(i + 1);
        job.submitSeconds =
            rng.uniform(0.0, config_.rolloutHorizonSeconds * 0.5);
        job.nodes = std::max(
            1u, std::min(chosen->nodes, config_.rolloutNodes));
        job.runtimeSeconds =
            std::max(1.0, chosen->runtimeSeconds * rng.uniform(0.5, 1.5));
        job.walltimeSeconds = job.runtimeSeconds * 1.5;
        job.usageClass = chosen->usageClass;
        jobs.push_back(job);
    }
    std::sort(jobs.begin(), jobs.end(),
              [](const traces::Job &a, const traces::Job &b) {
                  return a.submitSeconds < b.submitSeconds ||
                         (a.submitSeconds == b.submitSeconds &&
                          a.id < b.id);
              });
    return jobs;
}

Quality
AdvisorEngine::rolloutRefine(const AdvisorRequest &request,
                             std::uint64_t key, const Deadline &deadline,
                             AdvisorDecision *decision)
{
    stats_.rolloutsAttempted.fetch_add(1, std::memory_order_relaxed);

    sched::ClusterConfig cc;
    cc.nodes = config_.rolloutNodes;
    cc.groupFractions = config_.groupFractions;
    cc.heteroDmr = true;
    cc.marginAware = true;
    cc.speedups = config_.speedups;
    cc.seed = config_.seed ^ key;
    sched::ClusterSimulator sim(cc);

    sched::RunOptions options;
    options.digestEverySeconds = config_.rolloutHorizonSeconds * 1e3;
    fault::SlowPathInjector *injector =
        injector_.load(std::memory_order_acquire);
    options.deadlineExpired = [injector, &deadline]() {
        if (injector != nullptr)
            injector->perturb();
        return deadline.expired();
    };

    const sched::RunOutcome outcome =
        sim.run(rolloutTrace(request, key), options);
    const std::uint64_t now = monotonicMicros();
    if (outcome.deadlineHit || !outcome.completed) {
        // The deadline (or a drain cancel) fired mid-rollout: the
        // table answer stands, and the slow rollout counts toward
        // opening the breaker.
        stats_.rolloutsDeadlineHit.fetch_add(1,
                                             std::memory_order_relaxed);
        breaker_.recordFailure(now);
        return Quality::kDegraded;
    }
    stats_.rolloutsCompleted.fetch_add(1, std::memory_order_relaxed);
    breaker_.recordSuccess(now);

    // Refine the table's recommendation with what the rollout saw:
    // when fewer than half the eligible jobs actually ran fast (group
    // contention, fragmentation), demote the bucket one step.
    const double accelerated = outcome.metrics.acceleratedFraction;
    if (decision->marginGroup < 2 &&
        accelerated < kDemoteBelowAcceleratedFraction) {
        decision->marginGroup =
            static_cast<std::uint8_t>(decision->marginGroup + 1);
        decision->heteroDmr = decision->marginGroup < 2;
    }
    const double speedup =
        config_.speedups.forGroup(decision->marginGroup);
    decision->expectedSpeedup =
        std::max(1.0, 1.0 + accelerated * (speedup - 1.0));
    decision->rolloutTurnaroundSeconds =
        outcome.metrics.meanTurnaroundSeconds;
    return Quality::kExact;
}

bool
AdvisorEngine::cacheLookup(std::uint64_t key,
                           AdvisorDecision *decision) const
{
    std::shared_lock<std::shared_mutex> lock(cacheMu_);
    const auto it = cache_.find(key);
    if (it == cache_.end())
        return false;
    *decision = it->second;
    return true;
}

void
AdvisorEngine::cacheInsert(std::uint64_t key,
                           const AdvisorDecision &decision)
{
    std::unique_lock<std::shared_mutex> lock(cacheMu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        it->second = decision; // raced duplicate; keep its order slot
        return;
    }
    cache_.emplace(key, decision);
    cacheOrder_.push_back(key);
    while (cacheOrder_.size() > config_.cacheCapacity) {
        cache_.erase(cacheOrder_.front());
        cacheOrder_.pop_front();
        stats_.cacheEvictions.fetch_add(1, std::memory_order_relaxed);
    }
}

AdvisorDecision
AdvisorEngine::decide(const AdvisorRequest &request,
                      const Deadline &deadline)
{
    const std::uint64_t key = cacheKey(request);

    if (request.allowCached) {
        AdvisorDecision cached;
        if (cacheLookup(key, &cached)) {
            stats_.cacheHits.fetch_add(1, std::memory_order_relaxed);
            stats_.decisionsCached.fetch_add(1,
                                             std::memory_order_relaxed);
            cached.id = request.id;
            cached.quality = Quality::kCached;
            return cached;
        }
        stats_.cacheMisses.fetch_add(1, std::memory_order_relaxed);
    }

    AdvisorDecision decision = tableDecision(request);
    if (request.allowRollout && !deadline.expired()) {
        if (breaker_.allow(monotonicMicros())) {
            if (rolloutRefine(request, key, deadline, &decision) ==
                Quality::kExact) {
                decision.quality = Quality::kExact;
                // Cache the exact answer under the *request's* id;
                // cache hits rewrite the id on the way out.
                cacheInsert(key, decision);
                stats_.decisionsExact.fetch_add(
                    1, std::memory_order_relaxed);
                return decision;
            }
        } else {
            stats_.rolloutsBreakerRejected.fetch_add(
                1, std::memory_order_relaxed);
        }
    }
    decision.quality = Quality::kDegraded;
    stats_.decisionsDegraded.fetch_add(1, std::memory_order_relaxed);
    return decision;
}

std::vector<std::uint8_t>
AdvisorEngine::saveState() const
{
    std::shared_lock<std::shared_mutex> lock(cacheMu_);
    snapshot::Serializer out;
    out.writeU64(configDigest());
    out.writeU64(cacheOrder_.size());
    for (const std::uint64_t key : cacheOrder_) {
        const AdvisorDecision &d = cache_.at(key);
        out.writeU64(key);
        out.writeU64(d.id);
        out.writeU8(d.marginGroup);
        out.writeBool(d.heteroDmr);
        out.writeU8(static_cast<std::uint8_t>(d.quality));
        out.writeDouble(d.expectedSpeedup);
        out.writeDouble(d.rolloutTurnaroundSeconds);
    }
    return out.data();
}

util::Status
AdvisorEngine::restoreState(const std::vector<std::uint8_t> &state)
{
    snapshot::Deserializer in(state);
    const std::uint64_t digest = in.readU64();
    HDMR_RETURN_IF_ERROR(in.status());
    if (digest != configDigest())
        return util::failedPrecondition(
            "advisor state: config digest %016llx does not match this "
            "engine's %016llx",
            static_cast<unsigned long long>(digest),
            static_cast<unsigned long long>(configDigest()));

    // One cache entry is key + id + group + dmr + quality + 2 doubles.
    constexpr std::uint64_t kEntryBytes = 8 + 8 + 1 + 1 + 1 + 8 + 8;
    const std::uint64_t count =
        in.readCount("advisor cache entries", kEntryBytes);
    HDMR_RETURN_IF_ERROR(in.status());
    if (count > config_.cacheCapacity)
        return util::resourceExhausted(
            "advisor state: %llu cache entries exceed the configured "
            "capacity of %llu",
            static_cast<unsigned long long>(count),
            static_cast<unsigned long long>(config_.cacheCapacity));

    // Decode into locals and commit only on success.
    std::unordered_map<std::uint64_t, AdvisorDecision> cache;
    std::deque<std::uint64_t> order;
    cache.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t key = in.readU64();
        AdvisorDecision d;
        d.id = in.readU64();
        d.marginGroup = in.readU8();
        d.heteroDmr = in.readBool();
        d.quality = static_cast<Quality>(in.readU8());
        d.expectedSpeedup = in.readDouble();
        d.rolloutTurnaroundSeconds = in.readDouble();
        HDMR_RETURN_IF_ERROR(in.status());
        HDMR_RETURN_IF_ERROR(d.validate());
        if (!cache.emplace(key, d).second)
            return util::dataLoss(
                "advisor state: duplicate cache key %016llx",
                static_cast<unsigned long long>(key));
        order.push_back(key);
    }
    if (in.remaining() != 0)
        return util::dataLoss("advisor state: %zu trailing bytes",
                              in.remaining());

    std::unique_lock<std::shared_mutex> lock(cacheMu_);
    cache_ = std::move(cache);
    cacheOrder_ = std::move(order);
    return util::Status{};
}

void
AdvisorEngine::setSlowPathInjector(fault::SlowPathInjector *injector)
{
    injector_.store(injector, std::memory_order_release);
}

AdvisorStats
AdvisorEngine::stats() const
{
    AdvisorStats s;
    s.decisionsExact =
        stats_.decisionsExact.load(std::memory_order_relaxed);
    s.decisionsCached =
        stats_.decisionsCached.load(std::memory_order_relaxed);
    s.decisionsDegraded =
        stats_.decisionsDegraded.load(std::memory_order_relaxed);
    s.rolloutsAttempted =
        stats_.rolloutsAttempted.load(std::memory_order_relaxed);
    s.rolloutsCompleted =
        stats_.rolloutsCompleted.load(std::memory_order_relaxed);
    s.rolloutsDeadlineHit =
        stats_.rolloutsDeadlineHit.load(std::memory_order_relaxed);
    s.rolloutsBreakerRejected =
        stats_.rolloutsBreakerRejected.load(std::memory_order_relaxed);
    s.cacheHits = stats_.cacheHits.load(std::memory_order_relaxed);
    s.cacheMisses = stats_.cacheMisses.load(std::memory_order_relaxed);
    s.cacheEvictions =
        stats_.cacheEvictions.load(std::memory_order_relaxed);
    return s;
}

std::size_t
AdvisorEngine::cacheSize() const
{
    std::shared_lock<std::shared_mutex> lock(cacheMu_);
    return cache_.size();
}

void
AdvisorEngine::publishMetrics(telemetry::Registry &registry,
                              const std::string &prefix) const
{
    const AdvisorStats s = stats();
    registry.counter(prefix + ".decisions_exact").set(s.decisionsExact);
    registry.counter(prefix + ".decisions_cached")
        .set(s.decisionsCached);
    registry.counter(prefix + ".decisions_degraded")
        .set(s.decisionsDegraded);
    registry.counter(prefix + ".rollouts_attempted")
        .set(s.rolloutsAttempted);
    registry.counter(prefix + ".rollouts_completed")
        .set(s.rolloutsCompleted);
    registry.counter(prefix + ".rollouts_deadline_hit")
        .set(s.rolloutsDeadlineHit);
    registry.counter(prefix + ".rollouts_breaker_rejected")
        .set(s.rolloutsBreakerRejected);
    registry.counter(prefix + ".cache_hits").set(s.cacheHits);
    registry.counter(prefix + ".cache_misses").set(s.cacheMisses);
    registry.counter(prefix + ".cache_evictions").set(s.cacheEvictions);
    registry.gauge(prefix + ".cache_entries")
        .set(static_cast<double>(cacheSize()));
    registry.gauge(prefix + ".breaker_state")
        .set(static_cast<double>(
            static_cast<std::uint8_t>(breaker_.state())));
    registry.counter(prefix + ".breaker_opened")
        .set(breaker_.openedCount());
    registry.counter(prefix + ".breaker_half_opened")
        .set(breaker_.halfOpenedCount());
    registry.counter(prefix + ".breaker_reclosed")
        .set(breaker_.reclosedCount());
    registry.counter(prefix + ".breaker_rejected")
        .set(breaker_.rejectedCount());
}

} // namespace hdmr::serve
