/**
 * @file
 * Advisor wire format: length-prefixed binary frames over any byte
 * stream (pipes, sockets, test vectors, fuzz corpora).
 *
 * The advisor service deliberately has no network dependency - a
 * front end feeds it frames and collects frames back, so the whole
 * protocol stays testable in-process and fuzzable as plain bytes.
 * A frame is
 *
 *     [0)  payload length   u32 LE, <= kMaxFramePayloadBytes
 *     [4)  payload bytes
 *
 * and a payload is one request or one decision, encoded with the
 * snapshot serializer's fixed-width little-endian vocabulary behind a
 * magic + version prefix.
 *
 * Untrusted-input rules (DESIGN.md section 15): the parsers return a
 * structured util::Status for every malformed input, check every
 * length/count against hard caps *before* allocating, and never leave
 * the output half-filled - an error means the output still holds
 * whatever it held before the call.  fuzz/fuzz_advisor_request.cc
 * holds them to that contract with a trap.
 */

#ifndef HDMR_SERVE_WIRE_HH
#define HDMR_SERVE_WIRE_HH

#include <cstdint>
#include <vector>

#include "util/status.hh"

namespace hdmr::serve
{

/** Request-payload magic ("ADVQ" little-endian). */
inline constexpr std::uint32_t kRequestMagic = 0x51564441;
/** Decision-payload magic ("ADVD" little-endian). */
inline constexpr std::uint32_t kDecisionMagic = 0x44564441;
/** Wire version; bumped on incompatible change. */
inline constexpr std::uint32_t kWireVersion = 1;
/** Hard ceiling on one frame's payload. */
inline constexpr std::uint32_t kMaxFramePayloadBytes = 1u << 16;
/** Hard ceiling on the job-class mix in one request. */
inline constexpr std::uint64_t kMaxMixClasses = 64;
/** Hard ceiling on a single job class's node count. */
inline constexpr std::uint32_t kMaxMixNodes = 1u << 20;

/** One job class in a request's workload mix. */
struct MixClass
{
    /** Nodes per job of this class. */
    std::uint32_t nodes = 1;
    /** Memory-usage class: 0 => <25 %, 1 => [25,50) %, 2 => >=50 %. */
    std::uint32_t usageClass = 0;
    /** Runtime per job at spec frequency, seconds. */
    double runtimeSeconds = 600.0;
    /** Relative share of this class in the mix (> 0). */
    double weight = 1.0;
};

bool operator==(const MixClass &a, const MixClass &b);

/** "Which margin bucket / mode schedule for this job mix?" */
struct AdvisorRequest
{
    /** Caller-chosen id, echoed in the decision. */
    std::uint64_t id = 0;
    /** Latency budget, microseconds; 0 asks for the service default. */
    std::uint64_t deadlineMicros = 0;
    /** Accept an answer served from the decision cache? */
    bool allowCached = true;
    /** Spend a cluster-sim rollout on this request if healthy? */
    bool allowRollout = true;
    /** Retry of a previously shed request (spends retry budget). */
    bool isRetry = false;
    std::vector<MixClass> mix;

    /**
     * Semantic validation (the parser applies it too): non-empty mix
     * within kMaxMixClasses, every class with nodes in
     * [1, kMaxMixNodes], usageClass <= 2, finite positive runtime and
     * weight.  kInvalidArgument naming the offending field.
     */
    util::Status validate() const;
};

bool operator==(const AdvisorRequest &a, const AdvisorRequest &b);

/** Answer quality ladder (DESIGN.md section 16): exact beats cached
 *  beats degraded; shed requests get no decision at all. */
enum class Quality : std::uint8_t
{
    kExact = 0,   ///< fresh deadline-bounded rollout
    kCached = 1,  ///< a prior exact decision served from the cache
    kDegraded = 2 ///< table-only fallback (deadline/breaker/policy)
};

const char *qualityName(Quality quality);

/** The advisor's answer. */
struct AdvisorDecision
{
    /** Echo of AdvisorRequest::id. */
    std::uint64_t id = 0;
    /** Recommended margin bucket (0: 0.8 GT/s, 1: 0.6 GT/s, 2: none). */
    std::uint8_t marginGroup = 2;
    /** Deploy Hetero-DMR for this mix? */
    bool heteroDmr = false;
    /** How the answer was produced. */
    Quality quality = Quality::kDegraded;
    /** Expected speedup of the recommended schedule (>= 1). */
    double expectedSpeedup = 1.0;
    /** Mean turnaround from the rollout, seconds; 0 => table-only. */
    double rolloutTurnaroundSeconds = 0.0;

    util::Status validate() const;
};

bool operator==(const AdvisorDecision &a, const AdvisorDecision &b);

// ---- Payload codecs. ----

/** Encode one request as a payload (no frame prefix). */
std::vector<std::uint8_t> encodeRequest(const AdvisorRequest &request);

/**
 * Parse a request payload.  On success *out is overwritten; on any
 * error *out is untouched and the Status names what was wrong
 * (kDataLoss for structural damage, kResourceExhausted past a cap,
 * kFailedPrecondition for a foreign magic/version, kInvalidArgument
 * for a well-formed but semantically impossible request).
 */
util::Status parseRequest(const std::uint8_t *data, std::size_t size,
                          AdvisorRequest *out);

/** Encode one decision as a payload (no frame prefix). */
std::vector<std::uint8_t> encodeDecision(const AdvisorDecision &decision);

/** Parse a decision payload; same contract as parseRequest(). */
util::Status parseDecision(const std::uint8_t *data, std::size_t size,
                           AdvisorDecision *out);

// ---- Stream framing. ----

/** Append `payload` as one length-prefixed frame to `stream`. */
void appendFrame(const std::vector<std::uint8_t> &payload,
                 std::vector<std::uint8_t> *stream);

/**
 * Cut the next frame out of `data` + `size` starting at *offset.
 * Outcomes:
 *   - a whole frame is available: *payload and *payload_size point
 *     into `data`, *offset advances past the frame, returns kOk;
 *   - the stream ends cleanly at *offset (no bytes left): kOk with
 *     *payload == nullptr;
 *   - a partial header/payload remains: kDataLoss ("truncated");
 *   - the length field exceeds kMaxFramePayloadBytes: kResourceExhausted
 *     (the reader must refuse *before* trusting the length).
 * On error *offset does not advance.
 */
util::Status nextFrame(const std::uint8_t *data, std::size_t size,
                       std::size_t *offset,
                       const std::uint8_t **payload,
                       std::size_t *payload_size);

} // namespace hdmr::serve

#endif // HDMR_SERVE_WIRE_HH
