/**
 * @file
 * The advisor engine: answers "which margin bucket / mode schedule
 * for this job mix?" using the node-level SpeedupTable plus, when the
 * latency budget and the circuit breaker permit, a small
 * deadline-bounded cluster-sim rollout of the mix.
 *
 * Degradation ladder (DESIGN.md section 16), best first:
 *
 *   exact     fresh rollout finished inside the deadline;
 *   cached    a prior exact decision for the same (quantized) mix,
 *             served from the decision cache;
 *   degraded  table-only answer - the deadline expired mid-rollout,
 *             the breaker is open, or the request forbade rollouts.
 *
 * The engine itself always answers (shedding is the service layer's
 * job); every answer carries its Quality tag so callers can tell how
 * much to trust it.
 *
 * Thread safety: decide() is safe from any number of worker threads.
 * The speedup table and config are read-only after construction, the
 * decision cache is guarded by a shared_mutex (read-mostly), rollouts
 * build their own throwaway ClusterSimulator, and the stats are
 * atomics.  saveState()/restoreState() must not race decide() -
 * the service calls them only at startup and during drain.
 */

#ifndef HDMR_SERVE_ADVISOR_HH
#define HDMR_SERVE_ADVISOR_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/cluster_sim.hh"
#include "serve/resilience.hh"
#include "serve/wire.hh"
#include "util/status.hh"

namespace hdmr::fault
{
class SlowPathInjector;
} // namespace hdmr::fault

namespace hdmr::telemetry
{
class Registry;
} // namespace hdmr::telemetry

namespace hdmr::serve
{

/** Engine configuration. */
struct AdvisorConfig
{
    /** Node-level Hetero-DMR speedups (the read-mostly shared table). */
    sched::SpeedupTable speedups;
    /** Fleet margin-group fractions (Fig. 11 defaults). */
    std::array<double, sched::kGroups> groupFractions = {0.62, 0.36,
                                                         0.02};
    /** Rollout cluster size (small on purpose: latency over fidelity). */
    unsigned rolloutNodes = 48;
    /** Synthetic jobs per rollout. */
    std::size_t rolloutJobs = 96;
    /** Simulated horizon one rollout covers. */
    double rolloutHorizonSeconds = 4.0 * 3600.0;
    /** Decision-cache capacity (entries; FIFO eviction). */
    std::size_t cacheCapacity = 4096;
    /** Seed for the deterministic synthetic rollout traces. */
    std::uint64_t seed = 1;
    /** Breaker around the rollout path. */
    BreakerConfig breaker;

    /**
     * Reject zero rollout sizes/horizon, bad group fractions, and the
     * nested SpeedupTable/BreakerConfig problems, naming the field.
     */
    util::Status validate() const;
};

/** Engine-level decision statistics (all monotonic). */
struct AdvisorStats
{
    std::uint64_t decisionsExact = 0;
    std::uint64_t decisionsCached = 0;
    std::uint64_t decisionsDegraded = 0;
    std::uint64_t rolloutsAttempted = 0;
    std::uint64_t rolloutsCompleted = 0;
    std::uint64_t rolloutsDeadlineHit = 0;
    std::uint64_t rolloutsBreakerRejected = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;
};

/** The engine. */
class AdvisorEngine
{
  public:
    /** checkOk()s config.validate() - a bad config is a caller bug. */
    explicit AdvisorEngine(AdvisorConfig config);

    /**
     * Answer one (already wire-validated) request under `deadline`.
     * Always returns a decision; the Quality tag says how it was
     * produced.  The request's allowCached/allowRollout gates and the
     * breaker pick the path; a deadline that expires mid-rollout
     * degrades to the table answer and counts as a rollout failure
     * toward the breaker.
     */
    AdvisorDecision decide(const AdvisorRequest &request,
                           const Deadline &deadline);

    /**
     * Serialize the warm-start state: config digest + the decision
     * cache in insertion order (so a restored engine serves
     * bit-identical cached answers).  Wrap in a snapshot file or hand
     * to snapshot::Keeper::save(kAdvisorStateKind, ...).
     */
    std::vector<std::uint8_t> saveState() const;

    /**
     * Restore a saveState() image.  kFailedPrecondition when the image
     * was saved under a different config digest, kDataLoss on
     * truncation/corruption or caps exceeded.  On any error the engine
     * keeps its current state - never half-restored.
     */
    util::Status restoreState(const std::vector<std::uint8_t> &state);

    /** Inject artificial per-event rollout latency (soak/chaos). */
    void setSlowPathInjector(fault::SlowPathInjector *injector);

    /**
     * Copy the stats, breaker counters, and cache gauge into
     * `registry` under `prefix` (e.g. "advisor").  The registry is not
     * thread-safe, so callers serialize publishMetrics() externally;
     * the sources read here are atomics/locked and may race decide().
     */
    void publishMetrics(telemetry::Registry &registry,
                        const std::string &prefix) const;

    AdvisorStats stats() const;
    std::size_t cacheSize() const;
    CircuitBreaker &breaker() { return breaker_; }
    const CircuitBreaker &breaker() const { return breaker_; }

    /** FNV-1a fingerprint of the configuration (stored in images). */
    std::uint64_t configDigest() const;

    /** Cache key of a request's quantized mix (exposed for tests). */
    static std::uint64_t cacheKey(const AdvisorRequest &request);

    const AdvisorConfig &config() const { return config_; }

  private:
    /** Pure table-driven answer (the degraded floor and the prior). */
    AdvisorDecision tableDecision(const AdvisorRequest &request) const;

    /** Weighted fraction of the mix with usageClass < 2. */
    static double eligibleFraction(const AdvisorRequest &request);

    /** Build the deterministic synthetic rollout trace for a mix. */
    std::vector<traces::Job> rolloutTrace(const AdvisorRequest &request,
                                          std::uint64_t key) const;

    /** Run one deadline-bounded rollout; returns quality achieved. */
    Quality rolloutRefine(const AdvisorRequest &request,
                          std::uint64_t key, const Deadline &deadline,
                          AdvisorDecision *decision);

    void cacheInsert(std::uint64_t key, const AdvisorDecision &decision);
    bool cacheLookup(std::uint64_t key, AdvisorDecision *decision) const;

    AdvisorConfig config_;
    CircuitBreaker breaker_;
    std::atomic<fault::SlowPathInjector *> injector_{nullptr};

    mutable std::shared_mutex cacheMu_;
    std::unordered_map<std::uint64_t, AdvisorDecision> cache_;
    /** Insertion order for FIFO eviction and deterministic saves. */
    std::deque<std::uint64_t> cacheOrder_;

    struct AtomicStats
    {
        std::atomic<std::uint64_t> decisionsExact{0};
        std::atomic<std::uint64_t> decisionsCached{0};
        std::atomic<std::uint64_t> decisionsDegraded{0};
        std::atomic<std::uint64_t> rolloutsAttempted{0};
        std::atomic<std::uint64_t> rolloutsCompleted{0};
        std::atomic<std::uint64_t> rolloutsDeadlineHit{0};
        std::atomic<std::uint64_t> rolloutsBreakerRejected{0};
        std::atomic<std::uint64_t> cacheHits{0};
        std::atomic<std::uint64_t> cacheMisses{0};
        std::atomic<std::uint64_t> cacheEvictions{0};
    };
    mutable AtomicStats stats_;
};

} // namespace hdmr::serve

#endif // HDMR_SERVE_ADVISOR_HH
