#include "serve/wire.hh"

#include <cmath>

#include "snapshot/serializer.hh"
#include "util/logging.hh"

namespace hdmr::serve
{

namespace
{

/** Request flag bits; the rest of the byte must be zero. */
constexpr std::uint8_t kFlagAllowCached = 1u << 0;
constexpr std::uint8_t kFlagAllowRollout = 1u << 1;
constexpr std::uint8_t kFlagIsRetry = 1u << 2;
constexpr std::uint8_t kKnownFlags =
    kFlagAllowCached | kFlagAllowRollout | kFlagIsRetry;

/** Serialized size of one MixClass (nodes, usage, runtime, weight). */
constexpr std::uint64_t kMixClassBytes = 4 + 4 + 8 + 8;

util::Status
checkHeader(snapshot::Deserializer &in, std::uint32_t magic,
            const char *what)
{
    const std::uint32_t got_magic = in.readU32();
    const std::uint32_t got_version = in.readU32();
    HDMR_RETURN_IF_ERROR(in.status());
    if (got_magic != magic)
        return util::failedPrecondition(
            "%s payload: magic 0x%08x is not 0x%08x", what, got_magic,
            magic);
    if (got_version != kWireVersion)
        return util::failedPrecondition(
            "%s payload: wire version %u, this build speaks %u", what,
            got_version, kWireVersion);
    return util::Status{};
}

} // namespace

bool
operator==(const MixClass &a, const MixClass &b)
{
    return a.nodes == b.nodes && a.usageClass == b.usageClass &&
           a.runtimeSeconds == b.runtimeSeconds && a.weight == b.weight;
}

bool
operator==(const AdvisorRequest &a, const AdvisorRequest &b)
{
    return a.id == b.id && a.deadlineMicros == b.deadlineMicros &&
           a.allowCached == b.allowCached &&
           a.allowRollout == b.allowRollout && a.isRetry == b.isRetry &&
           a.mix == b.mix;
}

bool
operator==(const AdvisorDecision &a, const AdvisorDecision &b)
{
    return a.id == b.id && a.marginGroup == b.marginGroup &&
           a.heteroDmr == b.heteroDmr && a.quality == b.quality &&
           a.expectedSpeedup == b.expectedSpeedup &&
           a.rolloutTurnaroundSeconds == b.rolloutTurnaroundSeconds;
}

const char *
qualityName(Quality quality)
{
    switch (quality) {
      case Quality::kExact:
        return "exact";
      case Quality::kCached:
        return "cached";
      case Quality::kDegraded:
        return "degraded";
    }
    return "unknown";
}

util::Status
AdvisorRequest::validate() const
{
    if (mix.empty())
        return util::invalidArgument("request %llu: empty job-class mix",
                                     static_cast<unsigned long long>(id));
    if (mix.size() > kMaxMixClasses)
        return util::resourceExhausted(
            "request %llu: %zu job classes exceed the cap of %llu",
            static_cast<unsigned long long>(id), mix.size(),
            static_cast<unsigned long long>(kMaxMixClasses));
    for (std::size_t i = 0; i < mix.size(); ++i) {
        const MixClass &c = mix[i];
        if (c.nodes == 0 || c.nodes > kMaxMixNodes)
            return util::invalidArgument(
                "request %llu: mix[%zu].nodes = %u outside [1, %u]",
                static_cast<unsigned long long>(id), i, c.nodes,
                kMaxMixNodes);
        if (c.usageClass > 2)
            return util::invalidArgument(
                "request %llu: mix[%zu].usageClass = %u above 2",
                static_cast<unsigned long long>(id), i, c.usageClass);
        if (!std::isfinite(c.runtimeSeconds) || c.runtimeSeconds <= 0.0)
            return util::invalidArgument(
                "request %llu: mix[%zu].runtimeSeconds = %g is not a "
                "finite positive duration",
                static_cast<unsigned long long>(id), i,
                c.runtimeSeconds);
        if (!std::isfinite(c.weight) || c.weight <= 0.0)
            return util::invalidArgument(
                "request %llu: mix[%zu].weight = %g is not finite "
                "positive",
                static_cast<unsigned long long>(id), i, c.weight);
    }
    return util::Status{};
}

util::Status
AdvisorDecision::validate() const
{
    if (marginGroup > 2)
        return util::invalidArgument(
            "decision %llu: marginGroup %u above 2",
            static_cast<unsigned long long>(id), marginGroup);
    if (quality != Quality::kExact && quality != Quality::kCached &&
        quality != Quality::kDegraded)
        return util::invalidArgument(
            "decision %llu: quality byte %u is not exact/cached/"
            "degraded",
            static_cast<unsigned long long>(id),
            static_cast<unsigned>(quality));
    if (!std::isfinite(expectedSpeedup) || expectedSpeedup < 1.0)
        return util::invalidArgument(
            "decision %llu: expectedSpeedup %g below 1",
            static_cast<unsigned long long>(id), expectedSpeedup);
    if (!std::isfinite(rolloutTurnaroundSeconds) ||
        rolloutTurnaroundSeconds < 0.0)
        return util::invalidArgument(
            "decision %llu: rolloutTurnaroundSeconds %g is negative "
            "or non-finite",
            static_cast<unsigned long long>(id),
            rolloutTurnaroundSeconds);
    return util::Status{};
}

std::vector<std::uint8_t>
encodeRequest(const AdvisorRequest &request)
{
    snapshot::Serializer out;
    out.writeU32(kRequestMagic);
    out.writeU32(kWireVersion);
    out.writeU64(request.id);
    out.writeU64(request.deadlineMicros);
    std::uint8_t flags = 0;
    if (request.allowCached)
        flags |= kFlagAllowCached;
    if (request.allowRollout)
        flags |= kFlagAllowRollout;
    if (request.isRetry)
        flags |= kFlagIsRetry;
    out.writeU8(flags);
    out.writeU32(static_cast<std::uint32_t>(request.mix.size()));
    for (const MixClass &c : request.mix) {
        out.writeU32(c.nodes);
        out.writeU32(c.usageClass);
        out.writeDouble(c.runtimeSeconds);
        out.writeDouble(c.weight);
    }
    return out.data();
}

util::Status
parseRequest(const std::uint8_t *data, std::size_t size,
             AdvisorRequest *out)
{
    snapshot::Deserializer in(data, size);
    HDMR_RETURN_IF_ERROR(checkHeader(in, kRequestMagic, "request"));

    // Parse into a local and commit only on success, so an error can
    // never leave *out half-filled.
    AdvisorRequest request;
    request.id = in.readU64();
    request.deadlineMicros = in.readU64();
    const std::uint8_t flags = in.readU8();
    const std::uint32_t count = in.readU32();
    HDMR_RETURN_IF_ERROR(in.status());
    if ((flags & ~kKnownFlags) != 0)
        return util::dataLoss("request payload: unknown flag bits 0x%02x",
                              flags & ~kKnownFlags);
    request.allowCached = (flags & kFlagAllowCached) != 0;
    request.allowRollout = (flags & kFlagAllowRollout) != 0;
    request.isRetry = (flags & kFlagIsRetry) != 0;
    // Cap the count before allocating: the cap check must not trust
    // the wire value further than comparing it.
    if (count > kMaxMixClasses)
        return util::resourceExhausted(
            "request payload: %u job classes exceed the cap of %llu",
            count,
            static_cast<unsigned long long>(kMaxMixClasses));
    if (static_cast<std::uint64_t>(count) * kMixClassBytes >
        in.remaining())
        return util::dataLoss(
            "request payload: %u job classes do not fit in %zu "
            "remaining bytes",
            count, in.remaining());
    request.mix.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        MixClass c;
        c.nodes = in.readU32();
        c.usageClass = in.readU32();
        c.runtimeSeconds = in.readDouble();
        c.weight = in.readDouble();
        request.mix.push_back(c);
    }
    HDMR_RETURN_IF_ERROR(in.status());
    if (in.remaining() != 0)
        return util::dataLoss(
            "request payload: %zu trailing garbage bytes",
            in.remaining());
    HDMR_RETURN_IF_ERROR(request.validate());
    *out = std::move(request);
    return util::Status{};
}

std::vector<std::uint8_t>
encodeDecision(const AdvisorDecision &decision)
{
    snapshot::Serializer out;
    out.writeU32(kDecisionMagic);
    out.writeU32(kWireVersion);
    out.writeU64(decision.id);
    out.writeU8(decision.marginGroup);
    out.writeU8(decision.heteroDmr ? 1 : 0);
    out.writeU8(static_cast<std::uint8_t>(decision.quality));
    out.writeDouble(decision.expectedSpeedup);
    out.writeDouble(decision.rolloutTurnaroundSeconds);
    return out.data();
}

util::Status
parseDecision(const std::uint8_t *data, std::size_t size,
              AdvisorDecision *out)
{
    snapshot::Deserializer in(data, size);
    HDMR_RETURN_IF_ERROR(checkHeader(in, kDecisionMagic, "decision"));

    AdvisorDecision decision;
    decision.id = in.readU64();
    decision.marginGroup = in.readU8();
    const std::uint8_t dmr = in.readU8();
    const std::uint8_t quality = in.readU8();
    decision.expectedSpeedup = in.readDouble();
    decision.rolloutTurnaroundSeconds = in.readDouble();
    HDMR_RETURN_IF_ERROR(in.status());
    if (in.remaining() != 0)
        return util::dataLoss(
            "decision payload: %zu trailing garbage bytes",
            in.remaining());
    if (dmr > 1)
        return util::dataLoss(
            "decision payload: heteroDmr byte %u is not 0/1", dmr);
    decision.heteroDmr = dmr == 1;
    decision.quality = static_cast<Quality>(quality);
    HDMR_RETURN_IF_ERROR(decision.validate());
    *out = decision;
    return util::Status{};
}

void
appendFrame(const std::vector<std::uint8_t> &payload,
            std::vector<std::uint8_t> *stream)
{
    hdmr_assert(payload.size() <= kMaxFramePayloadBytes,
                "frame payload exceeds kMaxFramePayloadBytes");
    const auto length = static_cast<std::uint32_t>(payload.size());
    stream->push_back(static_cast<std::uint8_t>(length & 0xff));
    stream->push_back(static_cast<std::uint8_t>((length >> 8) & 0xff));
    stream->push_back(static_cast<std::uint8_t>((length >> 16) & 0xff));
    stream->push_back(static_cast<std::uint8_t>((length >> 24) & 0xff));
    stream->insert(stream->end(), payload.begin(), payload.end());
}

util::Status
nextFrame(const std::uint8_t *data, std::size_t size,
          std::size_t *offset, const std::uint8_t **payload,
          std::size_t *payload_size)
{
    *payload = nullptr;
    *payload_size = 0;
    if (*offset > size)
        return util::dataLoss("frame stream: offset %zu past end %zu",
                              *offset, size);
    const std::size_t remaining = size - *offset;
    if (remaining == 0)
        return util::Status{}; // clean end of stream
    if (remaining < 4)
        return util::dataLoss(
            "frame stream: truncated length prefix (%zu of 4 bytes)",
            remaining);
    const std::uint8_t *p = data + *offset;
    const std::uint32_t length =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    if (length > kMaxFramePayloadBytes)
        return util::resourceExhausted(
            "frame stream: length %u exceeds the %u-byte frame cap",
            length, kMaxFramePayloadBytes);
    if (remaining - 4 < length)
        return util::dataLoss(
            "frame stream: payload truncated (%zu of %u bytes)",
            remaining - 4, length);
    *payload = p + 4;
    *payload_size = length;
    *offset += 4 + static_cast<std::size_t>(length);
    return util::Status{};
}

} // namespace hdmr::serve
