/**
 * @file
 * Summary statistics used across characterization and evaluation code:
 * streaming mean/variance (Welford), percentiles, confidence intervals,
 * and fixed-bin histograms.
 */

#ifndef HDMR_UTIL_STATS_HH
#define HDMR_UTIL_STATS_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace hdmr::util
{

/**
 * Streaming sample statistics via Welford's online algorithm.
 * Numerically stable; O(1) memory.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

    std::size_t count() const { return count_; }
    double mean() const { return mean_; }
    double min() const;
    double max() const;

    /** Unbiased sample variance (n-1 denominator); 0 for n < 2. */
    double variance() const;

    /** Sample standard deviation. */
    double stdev() const;

    /**
     * Half-width of the two-sided normal-approximation confidence
     * interval at the given confidence (e.g. 0.99), matching the
     * paper's use of the normal distribution for its 99 % CIs.
     */
    double confidenceHalfWidth(double confidence) const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of a vector; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation of a vector; 0 for n < 2. */
double stdev(const std::vector<double> &xs);

/** Geometric mean; all inputs must be positive. */
double geomean(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile, p in [0, 100].
 * The input is copied and sorted.
 */
double percentile(std::vector<double> xs, double p);

/**
 * Inverse standard-normal CDF (Acklam's rational approximation,
 * relative error < 1.2e-9).  Used for confidence intervals.
 */
double inverseNormalCdf(double p);

/**
 * Named-counter accumulator used to plumb event accounting (injected /
 * detected / corrected / uncorrected errors, demotions, requeues,
 * checkpoint overhead, ...) from every simulation layer up to the
 * campaign runners without each layer inventing its own struct.
 * Counters are created on first touch and keyed by name; merging is
 * element-wise addition, so per-channel / per-node sets roll up into
 * cluster-wide totals.
 */
class CounterSet
{
  public:
    /** Add `delta` (default 1) to the named counter. */
    void add(const std::string &name, double delta = 1.0);

    /** Overwrite the named counter. */
    void set(const std::string &name, double value);

    /** Current value; 0 for a counter never touched. */
    double get(const std::string &name) const;

    /** Element-wise addition of another set into this one. */
    void merge(const CounterSet &other);

    bool empty() const { return values_.empty(); }
    const std::map<std::string, double> &values() const { return values_; }

    /** Render as aligned "name  value" lines (sorted by name). */
    std::string toString() const;

  private:
    std::map<std::string, double> values_;
};

/**
 * Fixed-width-bin histogram over [lo, hi); samples outside the range
 * are clamped into the first/last bin so totals are preserved.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x, double weight = 1.0);

    std::size_t numBins() const { return counts_.size(); }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const;
    double binCount(std::size_t i) const { return counts_[i]; }
    double total() const { return total_; }

    /** Fraction of total weight in bin i (0 if empty histogram). */
    double fraction(std::size_t i) const;

    /** Fraction of total weight at or above x. */
    double fractionAtLeast(double x) const;

    /** Render as an ASCII bar chart, one bin per line. */
    std::string toAscii(std::size_t width = 50) const;

  private:
    double lo_, hi_, binWidth_;
    std::vector<double> counts_;
    double total_ = 0.0;
    std::vector<double> raw_; // retained for exact fractionAtLeast()
};

} // namespace hdmr::util

#endif // HDMR_UTIL_STATS_HH
