/**
 * @file
 * Time and data-rate unit helpers.
 *
 * The simulation kernel counts integer picoseconds (`Tick`).  DDR data
 * rates are expressed in MT/s (mega-transfers per second); a DDR bus
 * clocks at half the transfer rate, so e.g. 3200 MT/s means a 1600 MHz
 * clock with tCK = 625 ps.
 */

#ifndef HDMR_UTIL_UNITS_HH
#define HDMR_UTIL_UNITS_HH

#include <cstdint>

namespace hdmr::util
{

/** Simulation time in integer picoseconds. */
using Tick = std::uint64_t;

constexpr Tick kTicksPerNs = 1000;
constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Convert nanoseconds (double) to ticks, rounding to nearest. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

/** Convert microseconds (double) to ticks, rounding to nearest. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs) + 0.5);
}

/** Convert ticks to (double) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Convert ticks to (double) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

/**
 * DDR bus clock period in ticks for a data rate in MT/s.
 * tCK[ps] = 2e6 / rate_mts (two transfers per clock).
 */
constexpr Tick
dataRateToTck(unsigned rate_mts)
{
    return static_cast<Tick>(2000000.0 / static_cast<double>(rate_mts) + 0.5);
}

/**
 * Time in ticks for one 64-byte burst (BL8: 8 beats = 4 clocks) at the
 * given data rate.
 */
constexpr Tick
burstTicks(unsigned rate_mts)
{
    return 4 * dataRateToTck(rate_mts);
}

/** Peak channel bandwidth in bytes/second for a 64-bit data bus. */
constexpr double
channelPeakBandwidth(unsigned rate_mts)
{
    return static_cast<double>(rate_mts) * 1.0e6 * 8.0;
}

/** CPU core clock period in ticks for a frequency in MHz. */
constexpr Tick
mhzToPeriod(double mhz)
{
    return static_cast<Tick>(1.0e6 / mhz + 0.5);
}

} // namespace hdmr::util

#endif // HDMR_UTIL_UNITS_HH
