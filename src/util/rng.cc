#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace hdmr::util
{

namespace
{

/** SplitMix64 step, used only for seed expansion. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s_)
        word = splitMix64(sm);
    hasSpareNormal_ = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    hdmr_assert(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    hdmr_assert(lo <= hi);
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit && limit != 0);
    return lo + draw % span;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u, v, r2;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        r2 = u * u + v * v;
    } while (r2 >= 1.0 || r2 == 0.0);
    const double scale = std::sqrt(-2.0 * std::log(r2) / r2);
    spareNormal_ = v * scale;
    hasSpareNormal_ = true;
    return u * scale;
}

double
Rng::normal(double mean, double stdev)
{
    return mean + stdev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double rate)
{
    hdmr_assert(rate > 0.0);
    return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t
Rng::poisson(double mean)
{
    hdmr_assert(mean >= 0.0);
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's product-of-uniforms method.
        const double threshold = std::exp(-mean);
        std::uint64_t k = 0;
        double product = uniform();
        while (product > threshold) {
            ++k;
            product *= uniform();
        }
        return k;
    }
    // Normal approximation for large means.
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa5a5a5a55a5a5a5aULL);
}

RngState
Rng::state() const
{
    RngState state;
    for (std::size_t i = 0; i < state.s.size(); ++i)
        state.s[i] = s_[i];
    state.hasSpareNormal = hasSpareNormal_;
    state.spareNormal = spareNormal_;
    return state;
}

void
Rng::setState(const RngState &state)
{
    for (std::size_t i = 0; i < state.s.size(); ++i)
        s_[i] = state.s[i];
    hasSpareNormal_ = state.hasSpareNormal;
    spareNormal_ = state.spareNormal;
}

} // namespace hdmr::util
