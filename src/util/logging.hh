/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something is modelled approximately; simulation continues.
 * inform() - plain status output.
 */

#ifndef HDMR_UTIL_LOGGING_HH
#define HDMR_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace hdmr::util
{

/** Print "panic: <msg>" to stderr and abort(). For simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print "fatal: <msg>" to stderr and exit(1). For user/config errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print "warn: <msg>" to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Backend for hdmr_assert(); prints and aborts. */
[[noreturn]] void assertFail(const char *condition, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Assert a simulation invariant.  Unlike assert(), stays on in release
 * builds: timing-model invariants are cheap relative to event dispatch.
 * An optional printf-style message may follow the condition.
 */
#define hdmr_assert(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::hdmr::util::assertFail(#cond, "" __VA_ARGS__);            \
        }                                                               \
    } while (0)

} // namespace hdmr::util

#endif // HDMR_UTIL_LOGGING_HH
