#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace hdmr::util
{

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::min() const
{
    hdmr_assert(count_ > 0);
    return min_;
}

double
RunningStats::max() const
{
    hdmr_assert(count_ > 0);
    return max_;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stdev() const
{
    return std::sqrt(variance());
}

double
RunningStats::confidenceHalfWidth(double confidence) const
{
    if (count_ < 2)
        return 0.0;
    const double alpha = 1.0 - confidence;
    const double z = inverseNormalCdf(1.0 - alpha / 2.0);
    return z * stdev() / std::sqrt(static_cast<double>(count_));
}

double
mean(const std::vector<double> &xs)
{
    RunningStats s;
    for (double x : xs)
        s.add(x);
    return s.count() ? s.mean() : 0.0;
}

double
stdev(const std::vector<double> &xs)
{
    RunningStats s;
    for (double x : xs)
        s.add(x);
    return s.stdev();
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        hdmr_assert(x > 0.0, "geomean input must be positive, got %f", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    hdmr_assert(!xs.empty());
    hdmr_assert(p >= 0.0 && p <= 100.0);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs.front();
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
inverseNormalCdf(double p)
{
    hdmr_assert(p > 0.0 && p < 1.0);

    // Peter Acklam's rational approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double p_low = 0.02425;
    const double p_high = 1.0 - p_low;

    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= p_high) {
        const double q = p - 0.5;
        const double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
                1.0);
    }
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

void
CounterSet::add(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
CounterSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
CounterSet::get(const std::string &name) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

void
CounterSet::merge(const CounterSet &other)
{
    for (const auto &[name, value] : other.values_)
        values_[name] += value;
}

std::string
CounterSet::toString() const
{
    std::size_t width = 0;
    for (const auto &[name, value] : values_)
        width = std::max(width, name.size());

    std::ostringstream out;
    for (const auto &[name, value] : values_) {
        out << name;
        for (std::size_t i = name.size(); i < width + 2; ++i)
            out << ' ';
        // Counters are semantically integers unless a layer reports a
        // fractional quantity (e.g. overhead seconds).
        if (value == std::floor(value) && std::abs(value) < 1e15) {
            out << static_cast<long long>(value) << '\n';
        } else {
            out << value << '\n';
        }
    }
    return out.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), binWidth_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0)
{
    hdmr_assert(hi > lo && bins > 0);
}

void
Histogram::add(double x, double weight)
{
    auto bin = static_cast<std::ptrdiff_t>((x - lo_) / binWidth_);
    bin = std::clamp<std::ptrdiff_t>(
        bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    counts_[static_cast<std::size_t>(bin)] += weight;
    total_ += weight;
    raw_.push_back(x);
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + binWidth_ * static_cast<double>(i);
}

double
Histogram::binHigh(std::size_t i) const
{
    return binLow(i) + binWidth_;
}

double
Histogram::fraction(std::size_t i) const
{
    return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

double
Histogram::fractionAtLeast(double x) const
{
    if (raw_.empty())
        return 0.0;
    std::size_t n = 0;
    for (double v : raw_)
        if (v >= x)
            ++n;
    return static_cast<double>(n) / static_cast<double>(raw_.size());
}

std::string
Histogram::toAscii(std::size_t width) const
{
    double max_count = 0.0;
    for (double c : counts_)
        max_count = std::max(max_count, c);
    std::ostringstream out;
    char label[64];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::snprintf(label, sizeof(label), "[%8.1f, %8.1f) %6.0f |",
                      binLow(i), binHigh(i), counts_[i]);
        out << label;
        const auto bar =
            max_count > 0.0
                ? static_cast<std::size_t>(counts_[i] / max_count *
                                           static_cast<double>(width))
                : 0;
        out << std::string(bar, '#') << '\n';
    }
    return out.str();
}

} // namespace hdmr::util
