#include "util/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace hdmr::util
{

namespace
{

void
vreport(FILE *stream, const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stream, "%s: ", tag);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stderr, "warn", fmt, args);
    va_end(args);
}

void
assertFail(const char *condition, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed", condition);
    if (fmt != nullptr && fmt[0] != '\0') {
        std::fprintf(stderr, ": ");
        va_list args;
        va_start(args, fmt);
        std::vfprintf(stderr, fmt, args);
        va_end(args);
    }
    std::fprintf(stderr, "\n");
    std::abort();
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport(stdout, "info", fmt, args);
    va_end(args);
}

} // namespace hdmr::util
