/**
 * @file
 * Structured error channel for the library's input boundaries.
 *
 * The simulator started life crash-only: every untrusted input -
 * snapshot images, CSV traces, bench caches, user configs - was
 * checked with util::fatal(), which is fine for a batch reproduction
 * but fatal (literally) for a long-running decision service.  Status
 * carries the same message a fatal() would have printed plus a coarse
 * machine-readable code, so library code *returns* errors and only
 * the CLI layer (checkOk()) retains the exit-on-error behaviour.
 *
 * Code vocabulary (deliberately small - callers branch on "retry with
 * an older snapshot generation?" and "is this a user error?", not on
 * forty distinct conditions):
 *
 *   kInvalidArgument    a config/field value the user gave is impossible
 *   kOutOfRange         a parsed value lies outside its documented range
 *   kDataLoss           an on-disk image is corrupt, truncated, or forged
 *   kNotFound           a named file/entry does not exist
 *   kResourceExhausted  an input demands more than the reader's caps allow
 *   kFailedPrecondition the input is well-formed but belongs elsewhere
 *                       (wrong benchmark, foreign config/trace digest)
 *   kIoError            the OS failed us (open/write/fsync/rename)
 *   kDeadlineExceeded   the caller's latency budget ran out before an
 *                       answer existed (advisor service, src/serve)
 *   kUnavailable        the server declined the request - shed under
 *                       overload, draining, or retry budget empty -
 *                       and a retry elsewhere/later may succeed
 */

#ifndef HDMR_UTIL_STATUS_HH
#define HDMR_UTIL_STATUS_HH

#include <string>
#include <utility>

namespace hdmr::util
{

enum class StatusCode
{
    kOk = 0,
    kInvalidArgument,
    kOutOfRange,
    kDataLoss,
    kNotFound,
    kResourceExhausted,
    kFailedPrecondition,
    kIoError,
    kDeadlineExceeded,
    kUnavailable,
};

/** Stable lower-snake name of a code ("data_loss"...), for logs. */
const char *statusCodeName(StatusCode code);

/**
 * True for codes a client may retry against a retry budget.  Only
 * kUnavailable qualifies: the server declined *this* attempt but
 * another may land (shedding subsides, the breaker closes, another
 * replica answers).  kDeadlineExceeded is deliberately not retriable -
 * the budget the deadline represented is gone, and retrying a timed-out
 * request is exactly the amplification a retry budget exists to stop.
 * Every other code is a deterministic property of the input or the
 * environment that a retry would reproduce.
 */
bool isRetriable(StatusCode code);

/** An error code plus a human-readable message; kOk carries neither. */
class [[nodiscard]] Status
{
  public:
    /** Default-constructed Status is OK. */
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** isRetriable(code()); never true for kOk. */
    bool isRetriable() const
    {
        return !ok() && util::isRetriable(code_);
    }

    /** "data_loss: snapshot x.snap: CRC mismatch" (or "ok"). */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/** printf-style constructors, one per code. */
Status invalidArgument(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status outOfRange(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status dataLoss(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status notFound(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status resourceExhausted(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status failedPrecondition(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status ioError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status deadlineExceeded(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
Status unavailable(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * The thin CLI-level wrapper that keeps bench behaviour unchanged:
 * fatal() with the status message (exit 1) when it is not OK.  Library
 * code must never call this on data that arrived from outside the
 * process; it exists for main()-adjacent code where "print why and
 * exit" is the whole error policy.
 */
void checkOk(const Status &status);

/**
 * A Status or a value.  Minimal by design (no monadic combinators):
 * the repository's parsing code reads better as early-return chains.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(Status status) : status_(std::move(status)) {}
    Result(T value) : value_(std::move(value)) {}

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    /** Value access; caller must have checked ok(). */
    T &value() { return value_; }
    const T &value() const { return value_; }

  private:
    Status status_;
    T value_{};
};

/** Propagate-on-error helper for Status-returning functions. */
#define HDMR_RETURN_IF_ERROR(expr)                                      \
    do {                                                                \
        ::hdmr::util::Status hdmr_status_ = (expr);                     \
        if (!hdmr_status_.ok())                                         \
            return hdmr_status_;                                        \
    } while (0)

} // namespace hdmr::util

#endif // HDMR_UTIL_STATUS_HH
