/**
 * @file
 * ASCII table and CSV rendering for benchmark harness output.  Every
 * figure/table reproduction prints through this so the console output
 * has a uniform, diffable format.
 */

#ifndef HDMR_UTIL_TABLE_HH
#define HDMR_UTIL_TABLE_HH

#include <initializer_list>
#include <string>
#include <vector>

namespace hdmr::util
{

/**
 * A simple column-aligned text table.  Cells are strings; numeric
 * helpers format with a fixed precision.  Render with toString() or
 * write CSV with toCsv().
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls append to it. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a formatted numeric cell. */
    Table &cell(double value, int precision = 2);

    /** Append an integer cell. */
    Table &cell(long long value);

    /** Convenience: add a complete row of string cells. */
    Table &addRow(std::initializer_list<std::string> cells);

    std::size_t numRows() const { return rows_.size(); }

    /** Render as an aligned ASCII table with a header rule. */
    std::string toString() const;

    /** Render as RFC-4180-ish CSV (quotes cells containing commas). */
    std::string toCsv() const;

    /** Print toString() to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (fixed notation). */
std::string formatDouble(double value, int precision = 2);

/** Format a ratio like "1.19x". */
std::string formatSpeedup(double value);

/** Format a fraction like "27.3%". */
std::string formatPercent(double fraction, int precision = 1);

} // namespace hdmr::util

#endif // HDMR_UTIL_TABLE_HH
