#include "util/status.hh"

#include <cstdarg>
#include <cstdio>

#include "util/logging.hh"

namespace hdmr::util
{

namespace
{

std::string
vformat(const char *fmt, va_list args)
{
    va_list probe;
    va_copy(probe, args);
    const int size = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    if (size <= 0)
        return {};
    std::string text(static_cast<std::size_t>(size), '\0');
    std::vsnprintf(text.data(), text.size() + 1, fmt, args);
    return text;
}

} // anonymous namespace

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk:
        return "ok";
      case StatusCode::kInvalidArgument:
        return "invalid_argument";
      case StatusCode::kOutOfRange:
        return "out_of_range";
      case StatusCode::kDataLoss:
        return "data_loss";
      case StatusCode::kNotFound:
        return "not_found";
      case StatusCode::kResourceExhausted:
        return "resource_exhausted";
      case StatusCode::kFailedPrecondition:
        return "failed_precondition";
      case StatusCode::kIoError:
        return "io_error";
      case StatusCode::kDeadlineExceeded:
        return "deadline_exceeded";
      case StatusCode::kUnavailable:
        return "unavailable";
    }
    return "unknown";
}

bool
isRetriable(StatusCode code)
{
    return code == StatusCode::kUnavailable;
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

#define HDMR_STATUS_CTOR(name, code)                                    \
    Status name(const char *fmt, ...)                                   \
    {                                                                   \
        va_list args;                                                   \
        va_start(args, fmt);                                            \
        std::string message = vformat(fmt, args);                       \
        va_end(args);                                                   \
        return Status(StatusCode::code, std::move(message));            \
    }

HDMR_STATUS_CTOR(invalidArgument, kInvalidArgument)
HDMR_STATUS_CTOR(outOfRange, kOutOfRange)
HDMR_STATUS_CTOR(dataLoss, kDataLoss)
HDMR_STATUS_CTOR(notFound, kNotFound)
HDMR_STATUS_CTOR(resourceExhausted, kResourceExhausted)
HDMR_STATUS_CTOR(failedPrecondition, kFailedPrecondition)
HDMR_STATUS_CTOR(ioError, kIoError)
HDMR_STATUS_CTOR(deadlineExceeded, kDeadlineExceeded)
HDMR_STATUS_CTOR(unavailable, kUnavailable)

#undef HDMR_STATUS_CTOR

void
checkOk(const Status &status)
{
    if (!status.ok())
        fatal("%s", status.message().c_str());
}

} // namespace hdmr::util
