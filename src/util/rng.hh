/**
 * @file
 * Deterministic pseudo-random number generation for all simulations.
 *
 * Every stochastic component in the repository draws from an Rng seeded
 * explicitly by its owner, so whole experiments replay bit-identically.
 * The generator is xoshiro256** (Blackman & Vigna), which is fast, has a
 * 2^256-1 period, and passes BigCrush.
 */

#ifndef HDMR_UTIL_RNG_HH
#define HDMR_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <limits>

namespace hdmr::util
{

/**
 * Complete generator state, exposed for snapshot/resume.  Restoring a
 * captured state replays the exact draw sequence that would have
 * followed the capture, bit for bit (including a buffered spare
 * normal from the Marsaglia polar method).
 */
struct RngState
{
    std::array<std::uint64_t, 4> s{};
    bool hasSpareNormal = false;
    double spareNormal = 0.0;
};

/**
 * Deterministic random number generator with the distributions the
 * simulators need (uniform, normal, log-normal, exponential, Poisson,
 * Bernoulli).  Satisfies UniformRandomBitGenerator so it can also feed
 * <random> adaptors if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed in place; the generator forgets all prior state. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t
    min()
    {
        return 0;
    }

    static constexpr std::uint64_t
    max()
    {
        return std::numeric_limits<std::uint64_t>::max();
    }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Standard normal via Marsaglia polar method. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stdev);

    /** Log-normal where the *underlying* normal has (mu, sigma). */
    double logNormal(double mu, double sigma);

    /** Exponential with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Poisson-distributed count with the given mean. */
    std::uint64_t poisson(double mean);

    /**
     * Fork a statistically independent child generator.  Used to hand
     * each simulated component its own stream so adding draws in one
     * component cannot perturb another.
     */
    Rng fork();

    /** Capture the full generator state (snapshot/resume). */
    RngState state() const;

    /** Restore a previously captured state. */
    void setState(const RngState &state);

  private:
    std::uint64_t s_[4];
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace hdmr::util

#endif // HDMR_UTIL_RNG_HH
