#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace hdmr::util
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    hdmr_assert(!headers_.empty());
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    hdmr_assert(!rows_.empty(), "call row() before cell()");
    hdmr_assert(rows_.back().size() < headers_.size(),
                "row has more cells than headers");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatDouble(value, precision));
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

Table &
Table::addRow(std::initializer_list<std::string> cells)
{
    row();
    for (const auto &c : cells)
        cell(c);
    return *this;
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &r : rows_)
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());

    auto render_row = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t i = 0; i < headers_.size(); ++i) {
            const std::string &text = i < cells.size() ? cells[i] : "";
            line += "| " + text + std::string(widths[i] - text.size(), ' ') +
                    ' ';
        }
        line += "|\n";
        return line;
    };

    std::string rule = "+";
    for (std::size_t w : widths)
        rule += std::string(w + 2, '-') + "+";
    rule += "\n";

    std::string out = rule + render_row(headers_) + rule;
    for (const auto &r : rows_)
        out += render_row(r);
    out += rule;
    return out;
}

std::string
Table::toCsv() const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (char ch : cell) {
            if (ch == '"')
                quoted += '"';
            quoted += ch;
        }
        quoted += '"';
        return quoted;
    };
    std::ostringstream out;
    for (std::size_t i = 0; i < headers_.size(); ++i)
        out << (i ? "," : "") << escape(headers_[i]);
    out << '\n';
    for (const auto &r : rows_) {
        for (std::size_t i = 0; i < r.size(); ++i)
            out << (i ? "," : "") << escape(r[i]);
        out << '\n';
    }
    return out.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatSpeedup(double value)
{
    return formatDouble(value, 2) + "x";
}

std::string
formatPercent(double fraction, int precision)
{
    return formatDouble(fraction * 100.0, precision) + "%";
}

} // namespace hdmr::util
