/**
 * @file
 * Fuzz harness for the bench result-cache input boundary.
 *
 * Runs the eval-cache stream loader (and, on the first line, the
 * single-record parser) over arbitrary bytes.  A result cache is
 * machine-written, so any malformed line is treated as corruption;
 * the loader must reject it with a structured util::Status naming
 * the file, line and field - never crash, never fatal(), and never
 * allocate past its documented caps (kMaxCsvLineBytes per line,
 * kMaxEvalCacheRows per file, kMaxEvalNameBytes per name field).
 *
 * Built two ways (see fuzz/CMakeLists.txt): as a libFuzzer binary
 * under -DHDMR_FUZZ=ON (Clang only), and as a plain replay binary
 * that runs the checked-in corpus under ctest with any compiler.
 */

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "eval_cache.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace hdmr;

    const std::string text(reinterpret_cast<const char *>(data), size);

    {
        std::istringstream in(text);
        std::vector<bench::EvalRow> rows;
        const util::Status status =
            bench::loadEvalCache(in, "<fuzz>", &rows);
        // The "never half-filled" contract: an error leaves no rows.
        if (!status.ok() && !rows.empty())
            __builtin_trap();
    }

    {
        const std::string first_line =
            text.substr(0, text.find('\n'));
        const traces::CsvCursor at{"<fuzz>", 1};
        bench::EvalRow row;
        (void)bench::parseEvalRow(at, first_line, &row);
    }
    return 0;
}
