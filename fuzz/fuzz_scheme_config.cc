/**
 * @file
 * Fuzz harness for the scheme-config text parser
 * (monitor::parseSchemeConfig).
 *
 * Scheme configs are operator-supplied policy files, so the parser
 * faces arbitrary text from outside the process: it must reject every
 * malformation with a structured util::Status - never crash, never
 * allocate past kMaxSchemes / kMaxSchemeConfigBytes, and never leave
 * the output half-filled (an error leaves *out exactly as it was; the
 * sentinel trap below holds it to that).  Anything that parses must
 * also pass SchemeConfig::validate() (the parser's contract) and be
 * accepted by a SchemeEngine without fataling.
 *
 * Built two ways (see fuzz/CMakeLists.txt): as a libFuzzer binary
 * under -DHDMR_FUZZ=ON (Clang only), and as a plain replay binary
 * that runs the checked-in corpus under ctest with any compiler.
 */

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "monitor/scheme.hh"
#include "util/logging.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace hdmr;
    using namespace hdmr::monitor;

    const std::string_view text(reinterpret_cast<const char *>(data),
                                size);

    // Sentinel no parse could produce: a failed parse must leave it.
    SchemeConfig out;
    Scheme sentinel;
    sentinel.name = "sentinel_untouched";
    sentinel.quota = 0xfeedfaceULL;
    out.schemes = {sentinel};
    out.writeTriggerBoost = 0.375;
    out.drainCleanFraction = 0.625;

    const util::Status status = parseSchemeConfig(text, &out);
    if (!status.ok()) {
        // Never half-filled: the sentinel survives any rejection.
        if (out.schemes.size() != 1 ||
            out.schemes[0].name != "sentinel_untouched" ||
            out.schemes[0].quota != 0xfeedfaceULL ||
            out.writeTriggerBoost != 0.375 ||
            out.drainCleanFraction != 0.625)
            util::panic("rejected parse half-filled the output");
        return 0;
    }

    // Parser contract: success implies validate() already passed.
    util::checkOk(out.validate());
    if (out.schemes.size() > kMaxSchemes)
        util::panic("parse exceeded kMaxSchemes");

    // An engine must accept any parsed config (nullptr sink =
    // evaluate-only), and its empty-state digest must be stable.
    SchemeEngine engine(out, nullptr);
    const std::uint64_t digest = engine.digest();
    SchemeEngine again(out, nullptr);
    if (again.digest() != digest)
        util::panic("engine digest unstable for identical configs");
    return 0;
}
