/**
 * @file
 * Fuzz harness for the snapshot input boundary.
 *
 * Drives the three decoders that consume snapshot bytes straight off
 * disk: the file-image validator (magic / version / kind / CRC /
 * size-cap checks) for every payload kind the repository writes, the
 * digest-trail decoder, and the telemetry-registry decoder.  The
 * contract under test is "reject, never crash, never allocate
 * unboundedly": any abort, sanitizer report, or OOM on arbitrary
 * bytes is a bug in the boundary, not in the fuzzer.
 *
 * Built two ways (see fuzz/CMakeLists.txt): as a libFuzzer binary
 * under -DHDMR_FUZZ=ON (Clang only), and as a plain replay binary
 * that runs the checked-in corpus under ctest with any compiler.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "snapshot/digest.hh"
#include "snapshot/serializer.hh"
#include "telemetry/metrics.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace hdmr;

    static constexpr std::uint32_t kKinds[] = {
        snapshot::kClusterStateKind,
        snapshot::kSweepStateKind,
        snapshot::kSdcAuditStateKind,
    };
    for (const std::uint32_t kind : kKinds) {
        std::vector<std::uint8_t> payload;
        (void)snapshot::parseSnapshotImage(data, size, kind, &payload,
                                           "<fuzz>");
    }

    {
        snapshot::Deserializer in(data, size);
        snapshot::DigestTrail trail;
        (void)trail.restore(in);
    }

    {
        snapshot::Deserializer in(data, size);
        telemetry::Registry registry;
        (void)registry.restore(in);
    }
    return 0;
}
