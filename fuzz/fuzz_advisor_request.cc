/**
 * @file
 * Fuzz harness for the advisor wire boundary (src/serve/wire).
 *
 * Treats the input as a length-prefixed frame stream and walks it
 * exactly the way the service request loop does: cut frames with
 * nextFrame(), feed each payload to parseRequest() and
 * parseDecision().  The parsers face a byte stream from outside the
 * process, so they must reject every malformation with a structured
 * util::Status - never crash, never allocate past kMaxMixClasses /
 * kMaxFramePayloadBytes, and never leave the output half-filled (an
 * error leaves *out exactly as it was; the trap below holds them to
 * it).  Anything that parses must survive an encode -> parse round
 * trip bit-for-bit.
 *
 * Built two ways (see fuzz/CMakeLists.txt): as a libFuzzer binary
 * under -DHDMR_FUZZ=ON (Clang only), and as a plain replay binary
 * that runs the checked-in corpus under ctest with any compiler.
 */

#include <cstddef>
#include <cstdint>

#include "serve/wire.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace hdmr;
    using namespace hdmr::serve;

    // Sentinel values no parser would produce from a valid payload:
    // a failed parse must leave them untouched.
    const auto pristineRequest = [] {
        AdvisorRequest r;
        r.id = 0xfeedfacecafebeefULL;
        r.deadlineMicros = 0x123456789abcdef0ULL;
        r.allowCached = false;
        MixClass c;
        c.nodes = 77;
        c.runtimeSeconds = 1234.5;
        r.mix = {c, c, c};
        return r;
    }();
    const auto pristineDecision = [] {
        AdvisorDecision d;
        d.id = 0xfeedfacecafebeefULL;
        d.marginGroup = 1;
        d.expectedSpeedup = 1.875;
        return d;
    }();

    std::size_t offset = 0;
    for (;;) {
        const std::uint8_t *payload = nullptr;
        std::size_t payload_size = 0;
        const util::Status cut =
            nextFrame(data, size, &offset, &payload, &payload_size);
        if (!cut.ok() || payload == nullptr)
            break; // truncated/oversized frame or clean end

        {
            AdvisorRequest request = pristineRequest;
            const util::Status parsed =
                parseRequest(payload, payload_size, &request);
            if (!parsed.ok()) {
                if (!(request == pristineRequest))
                    __builtin_trap(); // half-filled output on error
            } else {
                if (!request.validate().ok())
                    __builtin_trap(); // parser let an invalid mix through
                AdvisorRequest again;
                if (!parseRequest(encodeRequest(request).data(),
                                  encodeRequest(request).size(), &again)
                         .ok() ||
                    !(again == request))
                    __builtin_trap(); // round trip not bit-stable
            }
        }

        {
            AdvisorDecision decision = pristineDecision;
            const util::Status parsed =
                parseDecision(payload, payload_size, &decision);
            if (!parsed.ok()) {
                if (!(decision == pristineDecision))
                    __builtin_trap(); // half-filled output on error
            } else {
                if (!decision.validate().ok())
                    __builtin_trap();
                AdvisorDecision again;
                if (!parseDecision(encodeDecision(decision).data(),
                                   encodeDecision(decision).size(),
                                   &again)
                         .ok() ||
                    !(again == decision))
                    __builtin_trap();
            }
        }
    }

    // The raw bytes (no frame prefix) exercise the payload parsers'
    // own bounds checks, including sizes past one frame's cap.
    AdvisorRequest request;
    (void)parseRequest(data, size, &request);
    AdvisorDecision decision;
    (void)parseDecision(data, size, &decision);
    return 0;
}
