/**
 * @file
 * Fuzz harness for the CSV trace input boundary.
 *
 * Runs the job-trace and usage-trace loaders over arbitrary bytes via
 * their stream entry points.  Both loaders must return a structured
 * util::Status for any malformed input - truncated records,
 * non-numeric cells, out-of-range values, over-long lines past
 * traces::kMaxCsvLineBytes - without crashing, fatal()ing, or leaving
 * the output vector half-filled.
 *
 * Built two ways (see fuzz/CMakeLists.txt): as a libFuzzer binary
 * under -DHDMR_FUZZ=ON (Clang only), and as a plain replay binary
 * that runs the checked-in corpus under ctest with any compiler.
 */

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "traces/job_trace.hh"
#include "traces/memory_usage.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace hdmr;

    const std::string text(reinterpret_cast<const char *>(data), size);

    {
        std::istringstream in(text);
        std::vector<traces::Job> jobs;
        const util::Status status =
            traces::loadJobTraceCsv(in, "<fuzz>", &jobs);
        // The "never half-filled" contract: an error leaves no rows.
        if (!status.ok() && !jobs.empty())
            __builtin_trap();
    }

    {
        std::istringstream in(text);
        std::vector<traces::JobUsageTrace> usage;
        const util::Status status =
            traces::loadUsageTraceCsv(in, "<fuzz>", &usage);
        if (!status.ok() && !usage.empty())
            __builtin_trap();
    }
    return 0;
}
