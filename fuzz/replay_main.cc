/**
 * @file
 * Corpus replay driver: a plain main() for the fuzz harnesses.
 *
 * libFuzzer needs Clang, which not every build environment has; this
 * driver links the same LLVMFuzzerTestOneInput() entry point into an
 * ordinary binary that replays files (or whole directories) named on
 * the command line.  The checked-in corpus under tests/fuzz/corpus/
 * thereby doubles as a regression suite: every input that ever
 * crashed a reader is replayed on every ctest run, with any
 * compiler, sanitizers or not.
 *
 * Exit status is 0 when every input was processed (the harness traps
 * or aborts on a contract violation, so "processed" means "survived").
 * Missing or unreadable inputs exit 2 so a mis-wired corpus path
 * fails loudly instead of green-washing the test.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace
{

namespace fs = std::filesystem;

bool
replayFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        std::fprintf(stderr, "replay: cannot open '%s'\n",
                     path.string().c_str());
        return false;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    std::printf("ok: %s (%zu bytes)\n", path.string().c_str(),
                bytes.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <corpus-file-or-directory>...\n",
                     argv[0]);
        return 2;
    }
    std::size_t replayed = 0;
    for (int i = 1; i < argc; ++i) {
        const fs::path arg(argv[i]);
        std::error_code ec;
        if (fs::is_directory(arg, ec)) {
            std::vector<fs::path> files;
            for (const auto &entry :
                 fs::recursive_directory_iterator(arg)) {
                if (entry.is_regular_file())
                    files.push_back(entry.path());
            }
            // Deterministic order, for reproducible failure reports.
            std::sort(files.begin(), files.end());
            for (const auto &file : files) {
                if (!replayFile(file))
                    return 2;
                ++replayed;
            }
        } else if (fs::is_regular_file(arg, ec)) {
            if (!replayFile(arg))
                return 2;
            ++replayed;
        } else {
            std::fprintf(stderr, "replay: no such input '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    if (replayed == 0) {
        std::fprintf(stderr, "replay: corpus is empty\n");
        return 2;
    }
    std::printf("replayed %zu corpus input(s), all survived\n",
                replayed);
    return 0;
}
