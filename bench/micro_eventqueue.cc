/**
 * @file
 * Microbenchmarks: event-queue schedule/dispatch throughput.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "sim/event_queue.hh"
#include "util/rng.hh"

namespace
{

using namespace hdmr;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto events_per_batch =
        static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue queue;
        util::Rng rng(3);
        std::vector<sim::CallbackEvent> batch(events_per_batch);
        std::uint64_t fired = 0;
        for (auto &event : batch) {
            event.setCallback([&fired] { ++fired; });
            queue.schedule(&event, rng.uniformInt(0, 1000000));
        }
        queue.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * events_per_batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void
BM_EventQueueSelfRescheduling(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue queue;
        std::uint64_t count = 0;
        sim::CallbackEvent tick;
        tick.setCallback([&] {
            if (++count < 100000)
                queue.scheduleIn(&tick, 625);
        });
        queue.schedule(&tick, 0);
        queue.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_EventQueueSelfRescheduling);

} // namespace

BENCHMARK_MAIN();
