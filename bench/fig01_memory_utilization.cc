/**
 * @file
 * Fig. 1: fraction of jobs in which every node stays below 50 % /
 * 25 % memory utilization throughout the job's lifetime, from
 * synthetic LANL-style usage traces.
 */

#include <cstdio>

#include "traces/memory_usage.hh"
#include "util/table.hh"

int
main()
{
    using namespace hdmr;

    traces::UsageModel model;
    traces::MemoryUsageTraceGenerator generator(model, 1029);
    const auto jobs = generator.generate(20000);

    std::uint64_t samples = 0;
    for (const auto &job : jobs)
        samples += static_cast<std::uint64_t>(job.nodes) *
                   model.samplesPerJob;

    const auto analysis = traces::analyzeUsage(jobs);

    std::printf("FIG. 1: Job-level memory utilization "
                "(synthetic LANL-style traces)\n");
    std::printf("analyzed %zu jobs / %llu node-samples\n\n",
                analysis.jobs,
                static_cast<unsigned long long>(samples));

    util::Table table({"all-node peak utilization", "fraction of jobs",
                       "paper"});
    table.row()
        .cell("< 50% for whole lifetime")
        .cell(util::formatPercent(analysis.fractionUnder50))
        .cell("~80%");
    table.row()
        .cell("< 25% for whole lifetime")
        .cell(util::formatPercent(analysis.fractionUnder25))
        .cell("~55%");
    table.print();

    std::printf("\nThese two fractions are the memory-usage weights "
                "used by Figs. 12/13 and the Fig. 17 simulation.\n");
    return 0;
}
