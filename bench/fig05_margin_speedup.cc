/**
 * @file
 * Fig. 5: speedup from exploiting memory margins (the four Table II
 * settings) per benchmark suite and hierarchy, relative to the
 * manufacturer-specified setting.
 */

#include <cstdio>
#include <map>

#include "eval_common.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace hdmr;
    using namespace hdmr::bench;

    EvalHarness harness("fig05_margin_speedup", argc, argv);
    const EvalSizing sizing;
    const auto grid =
        EvalGrid::runOrLoad("results/fig05_results.csv",
                            marginSettingsGrid(sizing),
                            harness.threads());

    std::printf("FIG. 5: Real-system speedup from exploiting memory "
                "margins\n(speedup = exec@spec / exec@setting)\n\n");

    const char *kinds[] = {"Exploit Latency Margin",
                           "Exploit Frequency Margin",
                           "Exploit Freq+Lat Margins"};

    std::map<std::string, double> overall; // kind -> sum across hier
    for (const auto &hierarchy : {"Hierarchy1", "Hierarchy2"}) {
        std::printf("%s:\n", hierarchy);
        util::Table table({"suite", "lat margin", "freq margin",
                           "freq+lat margins"});

        std::map<std::string,
                 std::map<std::string, std::vector<double>>> by_suite;
        for (const auto &workload : wl::benchmarkCatalog()) {
            const double base =
                grid.lookup(workload.name, hierarchy,
                            "Commercial Baseline", 800, 1)
                    .execSeconds;
            for (const char *kind : kinds) {
                const double exec =
                    grid.lookup(workload.name, hierarchy, kind, 800, 1)
                        .execSeconds;
                by_suite[workload.suite][kind].push_back(base / exec);
            }
        }
        for (const auto &suite : wl::suiteNames()) {
            auto &per_kind = by_suite[suite];
            table.row()
                .cell(suite)
                .cell(util::formatSpeedup(
                    util::mean(per_kind[kinds[0]])))
                .cell(util::formatSpeedup(
                    util::mean(per_kind[kinds[1]])))
                .cell(util::formatSpeedup(
                    util::mean(per_kind[kinds[2]])));
        }
        table.print();

        for (const char *kind : kinds) {
            std::map<std::string, std::vector<double>> flat;
            for (auto &[suite, per_kind] : by_suite)
                flat[suite] = per_kind[kind];
            overall[kind] += suiteAverage(flat);
        }
        std::printf("\n");
    }

    std::printf("Average across six suites and both hierarchies:\n");
    for (const char *kind : kinds) {
        std::printf("  %-28s %s\n", kind,
                    util::formatSpeedup(overall[kind] / 2.0).c_str());
    }
    std::printf("Paper: exploiting freq+lat margins averages 1.19x "
                "(Linpack 1.24x); the frequency component dominates "
                "the latency component.\n");
    return harness.finish({&grid});
}
