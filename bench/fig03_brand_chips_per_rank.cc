/**
 * @file
 * Fig. 3: impact of brand (99 % CI) and chips/rank (STDev) on
 * measured frequency margin.
 */

#include <cstdio>

#include "margin/population.hh"
#include "margin/study.hh"
#include "margin/test_machine.hh"
#include "util/table.hh"

int
main()
{
    using namespace hdmr;
    using namespace hdmr::margin;

    const auto fleet = makeStudyFleet(2021);
    TestMachine machine(TestMachineConfig{}, 7);
    const auto measurements = machine.characterizeFleet(fleet);

    std::printf("FIG. 3a: Impact of brand (mean margin, 99%% CI)\n");
    util::Table brand({"brand", "modules", "mean margin (MT/s)",
                       "99% CI half-width"});
    for (const auto &g : groupMargins(fleet, measurements,
                                      [](const MemoryModule &m) {
                                          return toString(m.spec.brand);
                                      })) {
        brand.row()
            .cell(g.label)
            .cell(static_cast<long long>(g.count))
            .cell(g.meanMarginMts, 0)
            .cell(g.ci99HalfWidthMts, 0);
    }
    brand.print();

    const auto abc = aggregateMargins(
        fleet, measurements,
        [](const MemoryModule &m) { return m.spec.brand != Brand::kD; },
        "A-C");
    const auto d = aggregateMargins(
        fleet, measurements,
        [](const MemoryModule &m) { return m.spec.brand == Brand::kD; },
        "D");
    std::printf("\nA-C vs D mean margin ratio: %.1fx "
                "(paper: 2.6x; 770 vs 213 MT/s)\n\n",
                abc.meanMarginMts / d.meanMarginMts);

    std::printf("FIG. 3b: Impact of chips per rank (brands A-C)\n");
    util::Table chips({"chips/rank", "modules", "mean margin (MT/s)",
                       "stdev (MT/s)", "min margin (MT/s)"});
    for (const unsigned cpr : {9u, 18u}) {
        const auto g = aggregateMargins(
            fleet, measurements,
            [cpr](const MemoryModule &m) {
                return m.spec.brand != Brand::kD &&
                       m.spec.chipsPerRank == cpr;
            },
            std::to_string(cpr));
        chips.row()
            .cell(g.label)
            .cell(static_cast<long long>(g.count))
            .cell(g.meanMarginMts, 0)
            .cell(g.stdevMts, 0)
            .cell(g.minMarginMts, 0);
    }
    chips.print();
    std::printf("\nPaper: 9-chip/rank modules show STDev 124 MT/s and "
                "600 MT/s minimum; 18-chip/rank STDev is 2.1x.\n");
    return 0;
}
