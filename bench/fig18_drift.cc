/**
 * @file
 * Fig. 18 (drift extension): margin-drift chaos campaign - what happens
 * to Hetero-DMR's fleet when the margins themselves move.
 *
 * The reference scenario arms a seeded margin::MarginDriftModel (aging
 * erosion with correlated cohorts, a diurnal temperature sinusoid,
 * transient voltage-noise spikes) through fault::DriftChaosCampaign and
 * replays the Grizzly trace four ways:
 *
 *   conventional            no margin exploitation (speedup anchor)
 *   hetero-dmr-clean        static margins, organic faults only - the
 *                           paper's world, and the loss baseline
 *   static-margin-drift     the fleet flies the qualification-time
 *                           margins into the drift: every erosion
 *                           crossing lands as an error-storm demotion,
 *                           UEs run elevated (errors eaten between the
 *                           crossing and the reactive ladder noticing),
 *                           hot windows carry the full UE multiplier
 *   recalibrating-drift     the online guard-band loop
 *                           (core::ModeController recalibration)
 *                           re-qualifies margins as they move: the same
 *                           physical demotions, but no error storms -
 *                           base UE rate and halved hot-window exposure
 *
 * Graceful degradation is gated, not just printed: the recalibrating
 * fleet must keep steady-state throughput loss <= 15 % vs. the
 * static-margin (clean) baseline and must degrade no worse than the
 * uncalibrated fleet.  A verify::SdcAudit pair (drift error-burst
 * overlay vs. none) proves drift raises detected-error pressure
 * without a single additional silent escape, and `--smoke` additionally
 * proves a mid-campaign interrupt/resume bit-identical to the
 * straight-through run via the state-digest trail.
 *
 * Flags: `--smoke` (alone) runs the deterministic self-checking
 * campaign ctest registers as fig18_drift_smoke; otherwise the
 * standard SweepRunner flags apply (--snapshot-every, --resume-from,
 * --telemetry-out, ... - see --help).
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ecc/bamboo.hh"
#include "fault/drift_chaos.hh"
#include "sched/cluster_sim.hh"
#include "snapshot/digest.hh"
#include "snapshot/serializer.hh"
#include "snapshot_cli.hh"
#include "traces/job_trace.hh"
#include "util/logging.hh"
#include "util/status.hh"
#include "util/table.hh"
#include "verify/audit.hh"

namespace
{

using namespace hdmr;

/** Organic fault rates shared by every faulted leg (fig18 baseline). */
constexpr double kUePerHour = 1.0e-4;
constexpr double kNodeFailuresPerHour = 2.0e-6;
constexpr double kDemotionsPerHour = 1.0e-5;
/** UE elevation while a static-margin fleet flies eroded margins. */
constexpr double kStaticDriftUeFactor = 4.0;

/** The reference drift scenario, scaled to a trace horizon. */
fault::DriftScenarioConfig
referenceScenario(double horizon_hours, unsigned modules,
                  unsigned targets_per_module, double aging_rate,
                  double spikes_per_kilo_hour)
{
    fault::DriftScenarioConfig scenario;
    scenario.drift.seed = 0xd21f7;
    scenario.drift.modules = modules;
    scenario.drift.horizonHours = horizon_hours;
    scenario.drift.agingMtsPerKiloHour = aging_rate;
    scenario.drift.agingSigma = 0.5;
    scenario.drift.agingExponent = 1.0;
    scenario.drift.cohortSize = 8;
    scenario.drift.cohortCorrelation = 0.5;
    scenario.drift.diurnalAmplitudeC = 12.0;
    scenario.drift.diurnalPeakHour = 14.0;
    scenario.drift.spikesPerKiloHour = spikes_per_kilo_hour;
    scenario.drift.spikeMeanHours = 0.25;
    scenario.drift.spikeErrorMultiplier = 6.0;
    scenario.marginStepMts = 200.0;
    scenario.targetsPerModule = targets_per_module;
    scenario.excursionThresholdC = 10.0;
    scenario.spikeBurstErrors = 200.0;
    return scenario;
}

sched::ClusterConfig
legConfig(bool hdmr, const std::vector<fault::FaultEvent> &overlay,
          double ue_per_hour, double excursion_multiplier,
          double horizon_seconds, unsigned nodes,
          const sched::SpeedupTable &speedups)
{
    sched::ClusterConfig config;
    config.nodes = nodes;
    config.heteroDmr = hdmr;
    config.marginAware = hdmr;
    config.speedups = speedups;
    config.faults.intensity = 1.0;
    config.faults.uncorrectablePerHour = ue_per_hour;
    config.faults.nodeFailuresPerHour = kNodeFailuresPerHour;
    config.faults.demotionsPerHour = kDemotionsPerHour;
    config.faults.horizonSeconds = horizon_seconds;
    config.scheduleOverlay = overlay;
    config.excursionUeMultiplier = excursion_multiplier;
    return config;
}

/** Throughput loss of `leg` vs. `baseline` (1 - relative throughput). */
double
throughputLoss(const sched::ClusterMetrics &baseline,
               const sched::ClusterMetrics &leg)
{
    if (leg.meanTurnaroundSeconds <= 0.0)
        return 0.0;
    return 1.0 -
           baseline.meanTurnaroundSeconds / leg.meanTurnaroundSeconds;
}

std::size_t
countKind(const std::vector<fault::FaultEvent> &schedule,
          fault::FaultKind kind)
{
    std::size_t n = 0;
    for (const fault::FaultEvent &ev : schedule)
        n += ev.kind == kind ? 1 : 0;
    return n;
}

bool
schedulesIdentical(const std::vector<fault::FaultEvent> &a,
                   const std::vector<fault::FaultEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].atSeconds != b[i].atSeconds || a[i].kind != b[i].kind ||
            a[i].target != b[i].target ||
            a[i].magnitude != b[i].magnitude ||
            a[i].durationSeconds != b[i].durationSeconds)
            return false;
    }
    return true;
}

/** Incrementing check harness shared by smoke and the full campaign. */
struct Checks
{
    int failures = 0;

    void
    operator()(bool ok, const char *what)
    {
        std::printf("check: %-52s %s\n", what, ok ? "PASS" : "FAIL");
        failures += ok ? 0 : 1;
    }
};

/**
 * The SDC leg pair: the same audit fleet with and without the drift
 * scenario's error-burst overlay.  Run with the constructed-escape
 * sampler branch off (escapeLambda = 0) so "zero silent escapes" is a
 * literal raw count, then once more with importance sampling on to
 * show the 2^-64 escape bound itself survives the drift bursts.
 */
void
runSdcSection(const fault::DriftScenarioConfig &scenario,
              double accesses_per_hour, Checks &check)
{
    const auto escape =
        static_cast<unsigned>(verify::AccessClass::kSilentEscape);
    fault::DriftChaosCampaign chaos(scenario);
    const std::vector<fault::FaultEvent> bursts =
        chaos.schedule(fault::FaultKind::kErrorBurst);

    verify::SdcAuditConfig quiet;
    quiet.modules = scenario.drift.modules;
    quiet.hours = static_cast<unsigned>(scenario.drift.horizonHours);
    quiet.accessesPerHour = accesses_per_hour;
    quiet.escapeLambda = 0.0; // natural wide draws only
    verify::SdcAuditConfig drifted = quiet;
    drifted.scheduleOverlay = bursts;

    verify::SdcAudit baseline(quiet);
    baseline.run();
    verify::SdcAudit drift(drifted);
    drift.run();
    const verify::SdcAuditReport base_report = baseline.report();
    const verify::SdcAuditReport drift_report = drift.report();

    std::printf("\nSDC containment under drift (%zu burst events):\n"
                "  %-28s %18s %18s\n"
                "  %-28s %18llu %18llu\n"
                "  %-28s %18llu %18llu\n",
                bursts.size(), "", "baseline", "drift",
                "detected errors",
                static_cast<unsigned long long>(
                    base_report.detectedErrors),
                static_cast<unsigned long long>(
                    drift_report.detectedErrors),
                "silent escapes (raw)",
                static_cast<unsigned long long>(
                    base_report.total.raw[escape]),
                static_cast<unsigned long long>(
                    drift_report.total.raw[escape]));

    check(base_report.total.unclassified == 0 &&
              drift_report.total.unclassified == 0,
          "every audited access classified");
    check(drift_report.detectedErrors > base_report.detectedErrors,
          "drift bursts raise detected-error pressure");
    check(drift_report.total.raw[escape] <=
              base_report.total.raw[escape],
          "zero silent-escape increase under drift");

    // Importance-sampled pass: the measured per-wide-error escape
    // probability stays consistent with the codec's analytic bound.
    verify::SdcAuditConfig sampled = drifted;
    sampled.escapeLambda = 0.5;
    sampled.wideOversample = 0.5;
    verify::SdcAudit tail(sampled);
    tail.run();
    check(tail.report().escapeConsistentWith(
              ecc::BambooCodec::escapeProbability8BPlus(), 2.0),
          "escape rate under drift consistent with 2^-64 bound");
}

/**
 * Straight-through vs. interrupt-at-midpoint-and-resume on one leg;
 * bit-identity proven by metrics equality and the state-digest trail.
 */
void
runInterruptResumeCheck(const sched::ClusterConfig &config,
                        const std::vector<traces::Job> &jobs,
                        double stop_after_seconds,
                        double digest_every_seconds, Checks &check)
{
    sched::RunOptions options;
    options.digestEverySeconds = digest_every_seconds;

    sched::ClusterSimulator straight(config);
    const sched::RunOutcome full = straight.run(jobs, options);
    check(full.completed && !full.digests.digests.empty(),
          "straight-through run records a digest trail");

    std::vector<std::uint8_t> image;
    sched::RunOptions stopping = options;
    stopping.stopAfterSeconds = stop_after_seconds;
    stopping.snapshotSink =
        [&image](const std::vector<std::uint8_t> &state) {
            image = state;
        };
    sched::ClusterSimulator interrupted(config);
    const sched::RunOutcome partial = interrupted.run(jobs, stopping);
    check(!partial.completed && !image.empty(),
          "mid-campaign interrupt emits a snapshot");

    sched::ClusterSimulator resumed_sim(config);
    const util::Status restored =
        resumed_sim.restoreState(image, jobs);
    if (!restored.ok()) {
        std::fprintf(stderr, "fig18_drift: restore failed: %s\n",
                     restored.message().c_str());
        check(false, "mid-campaign snapshot restores");
        return;
    }
    check(true, "mid-campaign snapshot restores");
    const sched::RunOutcome resumed = resumed_sim.resume(options);
    check(resumed.completed, "resumed campaign runs to completion");
    check(sched::metricsIdentical(full.metrics, resumed.metrics),
          "resumed metrics bit-identical to straight-through");
    check(!snapshot::DigestTrail::firstDivergence(full.digests,
                                                  resumed.digests)
               .has_value(),
          "digest trail identical across interrupt/resume");
}

/** The deterministic self-checking campaign ctest gates on. */
int
runSmoke()
{
    Checks check;

    // A compressed scenario: one week, 64 nodes, aging fast enough
    // that most modules cross a margin step inside the horizon.
    const double horizon_hours = 7.0 * 24.0;
    const fault::DriftScenarioConfig scenario =
        referenceScenario(horizon_hours, 8, 4, 1500.0, 12.0);

    std::printf("FIG. 18 DRIFT (smoke): %u drift modules x %.0f h\n\n",
                scenario.drift.modules, horizon_hours);

    // Schedule determinism and realization fingerprinting.
    fault::DriftChaosCampaign chaos(scenario);
    fault::DriftChaosCampaign again(scenario);
    check(schedulesIdentical(chaos.schedule(), again.schedule()) &&
              chaos.model().digest() == again.model().digest(),
          "drift schedule is a pure function of the scenario");
    const std::vector<fault::FaultEvent> overlay =
        chaos.clusterSchedule();
    check(countKind(overlay, fault::FaultKind::kGroupDemotion) > 0 &&
              countKind(overlay,
                        fault::FaultKind::kTemperatureExcursion) > 0 &&
              countKind(chaos.schedule(),
                        fault::FaultKind::kErrorBurst) > 0,
          "reference scenario produces all three drift event kinds");

    snapshot::Serializer out;
    chaos.model().save(out);
    {
        margin::MarginDriftModel same(scenario.drift);
        snapshot::Deserializer in(out.data());
        check(same.restore(in) && in.ok() && in.remaining() == 0,
              "drift realization fingerprint round-trips");
    }
    {
        margin::DriftConfig other = scenario.drift;
        other.seed ^= 1;
        margin::MarginDriftModel different(other);
        snapshot::Deserializer in(out.data());
        check(!different.restore(in),
              "fingerprint rejects a different drift realization");
    }

    // The fleet sweep on a one-week trace slice.
    traces::JobTraceModel trace_model;
    trace_model.numJobs = 1200;
    trace_model.spanSeconds = 7.0 * 86400.0;
    trace_model.systemNodes = 64;
    traces::GrizzlyTraceGenerator generator(trace_model, 42);
    const auto jobs = generator.generate();

    sched::SpeedupTable speedups;
    speedups.at800 = 1.13;
    speedups.at600 = 1.10;

    const sched::ClusterConfig clean_config =
        legConfig(true, {}, kUePerHour, 4.0, trace_model.spanSeconds,
                  trace_model.systemNodes, speedups);
    const sched::ClusterConfig static_config = legConfig(
        true, overlay, kUePerHour * kStaticDriftUeFactor, 4.0,
        trace_model.spanSeconds, trace_model.systemNodes, speedups);
    const sched::ClusterConfig recal_config =
        legConfig(true, overlay, kUePerHour, 2.0,
                  trace_model.spanSeconds, trace_model.systemNodes,
                  speedups);

    const auto clean =
        sched::ClusterSimulator(clean_config).run(jobs);
    const auto statm =
        sched::ClusterSimulator(static_config).run(jobs);
    const auto recal =
        sched::ClusterSimulator(recal_config).run(jobs);

    check(statm.nodesDemoted > clean.nodesDemoted &&
              statm.excursions > 0 && recal.excursions > 0,
          "drift overlay lands demotions and hot windows");

    const double static_loss = throughputLoss(clean, statm);
    const double recal_loss = throughputLoss(clean, recal);
    std::printf("\nthroughput loss vs clean: static %.2f%%, "
                "recalibrating %.2f%%\n",
                static_loss * 100.0, recal_loss * 100.0);
    check(recal_loss <= 0.15,
          "recalibrating fleet keeps throughput loss <= 15%");
    check(recal_loss <= static_loss + 0.02,
          "recalibration degrades no worse than static margins");

    // Interrupt/resume bit-identity on the most eventful leg.
    runInterruptResumeCheck(static_config, jobs,
                            trace_model.spanSeconds / 2.0, 21600.0,
                            check);

    // SDC containment: drift bursts on a small audit fleet.
    fault::DriftScenarioConfig audit_scenario =
        referenceScenario(8.0, 2, 1, 0.0, 500.0);
    runSdcSection(audit_scenario, 1.0e8, check);

    if (check.failures > 0) {
        std::fprintf(stderr, "fig18_drift: %d smoke check(s) FAILED\n",
                     check.failures);
        return 1;
    }
    std::printf("\nfig18_drift: all smoke checks passed\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            if (argc != 2)
                util::fatal("fig18_drift: --smoke takes no other "
                            "flags");
            return runSmoke();
        }
    }

    bench::SweepRunner runner("fig18_drift", argc, argv);

    traces::JobTraceModel trace_model;
    traces::GrizzlyTraceGenerator generator(trace_model, 42);
    const auto jobs = generator.generate();

    const double horizon_hours = trace_model.spanSeconds / 3600.0;
    const fault::DriftScenarioConfig scenario =
        referenceScenario(horizon_hours, 64, 16, 100.0, 2.0);
    fault::DriftChaosCampaign chaos(scenario);
    const std::vector<fault::FaultEvent> overlay =
        chaos.clusterSchedule();

    std::printf("FIG. 18 DRIFT: margin-drift chaos campaign\n");
    std::printf("trace: %zu jobs / %u nodes / %.0f days\n",
                jobs.size(), trace_model.systemNodes,
                trace_model.spanSeconds / 86400.0);
    std::printf("drift schedule: %zu demotion crossings, %zu hot "
                "windows, %zu voltage-noise bursts\n\n",
                countKind(overlay, fault::FaultKind::kGroupDemotion),
                countKind(overlay,
                          fault::FaultKind::kTemperatureExcursion),
                countKind(chaos.schedule(),
                          fault::FaultKind::kErrorBurst));

    sched::SpeedupTable speedups;
    speedups.at800 = 1.13;
    speedups.at600 = 1.10;

    const auto conventional = runner.leg(
        "conventional",
        legConfig(false, {}, kUePerHour, 4.0, trace_model.spanSeconds,
                  trace_model.systemNodes, speedups),
        jobs);
    const auto clean = runner.leg(
        "hetero-dmr-clean",
        legConfig(true, {}, kUePerHour, 4.0, trace_model.spanSeconds,
                  trace_model.systemNodes, speedups),
        jobs);
    const auto statm = runner.leg(
        "static-margin-drift",
        legConfig(true, overlay, kUePerHour * kStaticDriftUeFactor, 4.0,
                  trace_model.spanSeconds, trace_model.systemNodes,
                  speedups),
        jobs);
    const auto recal = runner.leg(
        "recalibrating-drift",
        legConfig(true, overlay, kUePerHour, 2.0,
                  trace_model.spanSeconds, trace_model.systemNodes,
                  speedups),
        jobs);
    if (runner.stoppedEarly())
        return runner.finish();

    util::Table table({"leg", "UE kills", "requeues", "demoted",
                       "hot windows", "mean turnaround (h)",
                       "speedup vs conv"});
    const auto row = [&](const char *label,
                         const sched::ClusterMetrics &m) {
        table.row()
            .cell(label)
            .cell(static_cast<double>(m.jobKills), 0)
            .cell(static_cast<double>(m.requeues), 0)
            .cell(static_cast<double>(m.nodesDemoted), 0)
            .cell(static_cast<double>(m.excursions), 0)
            .cell(m.meanTurnaroundSeconds / 3600.0, 2)
            .cell(conventional.meanTurnaroundSeconds /
                      m.meanTurnaroundSeconds,
                  3);
    };
    row("conventional", conventional);
    row("hetero-dmr-clean", clean);
    row("static-margin-drift", statm);
    row("recalibrating-drift", recal);
    table.print();

    const double static_loss = throughputLoss(clean, statm);
    const double recal_loss = throughputLoss(clean, recal);
    std::printf("\nthroughput loss vs static-margin clean baseline:\n"
                "  static margins under drift   %6.2f%%\n"
                "  recalibrating under drift    %6.2f%%\n\n",
                static_loss * 100.0, recal_loss * 100.0);

    Checks check;
    check(recal_loss <= 0.15,
          "recalibrating fleet keeps throughput loss <= 15%");
    check(recal_loss <= static_loss + 0.02,
          "recalibration degrades no worse than static margins");

    fault::DriftScenarioConfig audit_scenario =
        referenceScenario(24.0, 4, 1, 0.0, 250.0);
    runSdcSection(audit_scenario, 2.0e8, check);

    const int rc = runner.finish();
    return rc != 0 ? rc : (check.failures > 0 ? 1 : 0);
}
