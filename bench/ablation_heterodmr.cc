/**
 * @file
 * Ablation study of Hetero-DMR's design choices (Section III-A1 /
 * III-E): the proactive-cleaning batch size (the "100x write batch")
 * and the frequency-transition latency.  Shows why 12,800-line
 * batches are needed once a read<->write switch costs ~1 us, and how
 * sensitive the design is if the JEDEC-compliant transition were
 * slower or faster.
 */

#include <cstdio>

#include "node/config.hh"
#include "node/node_system.hh"
#include "util/table.hh"

int
main()
{
    using namespace hdmr;
    using namespace hdmr::node;

    NodeConfig base;
    base.hierarchy = HierarchyConfig::hierarchy1();
    base.workload = wl::benchmarkByName("lulesh"); // write-heavy
    base.memOpsPerCore = 40000;
    base.warmupOpsPerCore = 20000;
    base.memorySystem = MemorySystemKind::kCommercialBaseline;
    const double baseline = NodeSystem(base).run().execSeconds;

    base.memorySystem = MemorySystemKind::kHeteroDmr;

    std::printf("ABLATION: Hetero-DMR design knobs (lulesh, "
                "Hierarchy 1, speedup vs Commercial Baseline)\n\n");

    std::printf("(a) proactive-cleaning batch size per write-mode "
                "window (paper: 12800 = 100x a 128-entry buffer):\n");
    util::Table batch({"clean lines/window", "speedup",
                       "write-mode entries/ms"});
    for (const std::size_t lines : {0ul, 1600ul, 12800ul, 51200ul}) {
        auto config = base;
        config.cleanLinesPerWriteMode = lines;
        const auto stats = NodeSystem(config).run();
        batch.row()
            .cell(static_cast<long long>(lines))
            .cell(util::formatSpeedup(baseline / stats.execSeconds))
            .cell(static_cast<double>(stats.writeModeEntries) /
                      (stats.execSeconds * 1e3),
                  1);
    }
    batch.print();

    std::printf("\n(b) frequency-transition latency (paper: ~1 us for "
                "the Fig. 9/10 sequence):\n");
    util::Table transition({"transition latency", "speedup"});
    for (const double us : {0.1, 0.5, 1.0, 2.0, 5.0}) {
        auto config = base;
        config.frequencyTransitionUs = us;
        const auto stats = NodeSystem(config).run();
        transition.row()
            .cell(util::formatDouble(us, 1) + " us")
            .cell(util::formatSpeedup(baseline / stats.execSeconds));
    }
    transition.print();

    std::printf("\n(c) node-level margin sensitivity:\n");
    util::Table margin({"node margin", "speedup"});
    for (const unsigned mts : {200u, 400u, 600u, 800u}) {
        auto config = base;
        config.nodeMarginMts = mts;
        const auto stats = NodeSystem(config).run();
        margin.row()
            .cell(std::to_string(mts) + " MT/s")
            .cell(util::formatSpeedup(baseline / stats.execSeconds));
    }
    margin.print();
    return 0;
}
