/**
 * @file
 * Ablation study of Hetero-DMR's design choices (Section III-A1 /
 * III-E): the proactive-cleaning batch size (the "100x write batch")
 * and the frequency-transition latency.  Shows why 12,800-line
 * batches are needed once a read<->write switch costs ~1 us, and how
 * sensitive the design is if the JEDEC-compliant transition were
 * slower or faster.
 *
 * Flags (unknown flags are fatal):
 *   --telemetry-out=<dir>  export every ablation point as a metric
 *                          (CSV + JSON) plus a
 *                          BENCH_ablation_heterodmr.json perf record
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "node/config.hh"
#include "node/node_system.hh"
#include "telemetry/bench_record.hh"
#include "telemetry/sinks.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace
{

using namespace hdmr;

/** Publishes ablation points and totals for the perf record. */
struct Recorder
{
    telemetry::Registry registry;
    std::uint64_t simEvents = 0;
    double simSeconds = 0.0;

    node::NodeStats
    run(const node::NodeConfig &config, const std::string &metric)
    {
        const node::NodeStats stats = node::NodeSystem(config).run();
        simEvents += stats.memOps;
        simSeconds += stats.execSeconds;
        registry.gauge("ablation." + metric + ".exec_seconds")
            .set(stats.execSeconds);
        return stats;
    }
};

/**
 * Export the registry and the perf-trajectory record.  Fatal on I/O
 * failure: an explicitly requested export that silently vanished
 * would poison the trajectory.
 */
void
exportTelemetry(const std::string &dir, Recorder &recorder,
                const telemetry::WallTimer &timer)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        util::fatal("ablation_heterodmr: cannot create '%s': %s",
                    dir.c_str(), ec.message().c_str());

    std::string error;
    const std::string csv = dir + "/metrics.csv";
    if (!telemetry::writeMetricsCsv(recorder.registry, csv, &error))
        util::fatal("ablation_heterodmr: %s", error.c_str());
    const std::string json = dir + "/metrics.json";
    if (!telemetry::writeMetricsJson(recorder.registry, json, &error))
        util::fatal("ablation_heterodmr: %s", error.c_str());

    telemetry::BenchRecord record;
    record.bench = "ablation_heterodmr";
    record.gitSha = telemetry::currentGitSha();
    record.wallSeconds = timer.seconds();
    record.simSeconds = recorder.simSeconds;
    record.simEvents = recorder.simEvents;
    record.peakRssBytes = telemetry::currentPeakRssBytes();
    record.threads = 1;
    std::string bench_path;
    if (!telemetry::writeBenchRecord(dir, record, &error, &bench_path))
        util::fatal("ablation_heterodmr: %s", error.c_str());
    std::printf("\ntelemetry: %s, %s, %s\n", csv.c_str(), json.c_str(),
                bench_path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hdmr::node;

    const telemetry::WallTimer timer;
    std::string telemetry_dir;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--telemetry-out=", 16) == 0)
            telemetry_dir = arg + 16;
        else
            util::fatal("ablation_heterodmr: unknown flag '%s'", arg);
    }

    Recorder recorder;

    NodeConfig base;
    base.hierarchy = HierarchyConfig::hierarchy1();
    base.workload = wl::benchmarkByName("lulesh"); // write-heavy
    base.memOpsPerCore = 40000;
    base.warmupOpsPerCore = 20000;
    base.memorySystem = MemorySystemKind::kCommercialBaseline;
    const double baseline =
        recorder.run(base, "baseline").execSeconds;

    base.memorySystem = MemorySystemKind::kHeteroDmr;

    std::printf("ABLATION: Hetero-DMR design knobs (lulesh, "
                "Hierarchy 1, speedup vs Commercial Baseline)\n\n");

    std::printf("(a) proactive-cleaning batch size per write-mode "
                "window (paper: 12800 = 100x a 128-entry buffer):\n");
    util::Table batch({"clean lines/window", "speedup",
                       "write-mode entries/ms"});
    for (const std::size_t lines : {0ul, 1600ul, 12800ul, 51200ul}) {
        auto config = base;
        config.cleanLinesPerWriteMode = lines;
        const auto stats = recorder.run(
            config, "batch_lines_" + std::to_string(lines));
        recorder.registry
            .gauge("ablation.batch_lines_" + std::to_string(lines) +
                   ".speedup")
            .set(baseline / stats.execSeconds);
        batch.row()
            .cell(static_cast<long long>(lines))
            .cell(util::formatSpeedup(baseline / stats.execSeconds))
            .cell(static_cast<double>(stats.writeModeEntries) /
                      (stats.execSeconds * 1e3),
                  1);
    }
    batch.print();

    std::printf("\n(b) frequency-transition latency (paper: ~1 us for "
                "the Fig. 9/10 sequence):\n");
    util::Table transition({"transition latency", "speedup"});
    for (const double us : {0.1, 0.5, 1.0, 2.0, 5.0}) {
        auto config = base;
        config.frequencyTransitionUs = us;
        const auto stats = recorder.run(
            config, "transition_us_" + util::formatDouble(us, 1));
        recorder.registry
            .gauge("ablation.transition_us_" +
                   util::formatDouble(us, 1) + ".speedup")
            .set(baseline / stats.execSeconds);
        transition.row()
            .cell(util::formatDouble(us, 1) + " us")
            .cell(util::formatSpeedup(baseline / stats.execSeconds));
    }
    transition.print();

    std::printf("\n(c) node-level margin sensitivity:\n");
    util::Table margin({"node margin", "speedup"});
    for (const unsigned mts : {200u, 400u, 600u, 800u}) {
        auto config = base;
        config.nodeMarginMts = mts;
        const auto stats = recorder.run(
            config, "margin_mts_" + std::to_string(mts));
        recorder.registry
            .gauge("ablation.margin_mts_" + std::to_string(mts) +
                   ".speedup")
            .set(baseline / stats.execSeconds);
        margin.row()
            .cell(std::to_string(mts) + " MT/s")
            .cell(util::formatSpeedup(baseline / stats.execSeconds));
    }
    margin.print();

    if (!telemetry_dir.empty())
        exportTelemetry(telemetry_dir, recorder, timer);
    return 0;
}
