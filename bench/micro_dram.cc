/**
 * @file
 * Microbenchmarks: memory-controller simulation throughput (host
 * events/second for random vs sequential read streams).
 */

#include <benchmark/benchmark.h>

#include <functional>

#include "dram/controller.hh"
#include "util/rng.hh"

namespace
{

using namespace hdmr;
using util::Tick;

void
BM_ControllerRandomReads(benchmark::State &state)
{
    const double seq_fraction =
        static_cast<double>(state.range(0)) / 100.0;
    for (auto _ : state) {
        sim::EventQueue events;
        dram::ControllerConfig config;
        config.readModeTiming = dram::DramTiming::fromSetting(
            dram::MemorySetting::manufacturerSpec());
        config.writeModeTiming = config.readModeTiming;
        dram::MemoryController controller(events, config);

        util::Rng rng(7);
        std::uint64_t sequential = 0;
        int outstanding = 0, sent = 0;
        const int total = 20000;
        std::function<void()> pump = [&] {
            while (outstanding < 64 && sent < total &&
                   !controller.readQueueFull()) {
                dram::MemRequest request;
                request.address =
                    rng.uniform() < seq_fraction
                        ? (sequential++) * 64
                        : (rng.next() % (1ull << 30)) & ~63ull;
                request.arrival = events.curTick();
                request.onComplete = [&](Tick) {
                    --outstanding;
                    pump();
                };
                controller.enqueueRead(std::move(request));
                ++outstanding;
                ++sent;
            }
        };
        pump();
        events.run();
        benchmark::DoNotOptimize(controller.stats().reads);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 20000);
}
BENCHMARK(BM_ControllerRandomReads)->Arg(0)->Arg(50)->Arg(100);

} // namespace

BENCHMARK_MAIN();
